#!/usr/bin/env python
"""Decimation vs error-bounded compression (paper Section I).

The paper's motivation: decimation (keep one snapshot in k) loses
irreplaceable simulation states, while error-bounded compression of
*every* snapshot at the same storage budget keeps post-analysis quality.
This example generates a correlated Nyx time series and compares the two
strategies head to head.

Run:  python examples/decimation_vs_compression.py
"""

from repro.analysis.decimation_study import decimation_vs_compression
from repro.cosmo.timeseries import make_nyx_series
from repro.foresight.visualization import format_table


def main() -> None:
    series = make_nyx_series(grid_size=48, n_snapshots=8, seed=13)
    print(f"{series.n_snapshots} snapshots of {series.snapshots[0].grid_size}^3 "
          f"({series.total_bytes() / 1e6:.1f} MB total)\n")

    rows = decimation_vs_compression(
        series, field="dark_matter_density", keep_everies=(2, 4)
    )
    print(format_table(rows, ["strategy", "storage_ratio", "worst_psnr_db",
                              "worst_pk_deviation"]))
    print(
        "\nReading: at every storage budget, compressing all snapshots "
        "preserves tens of dB more fidelity on the worst snapshot than "
        "interpolating decimated ones — the paper's case for replacing "
        "decimation with error-bounded lossy compression."
    )


if __name__ == "__main__":
    main()
