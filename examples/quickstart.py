#!/usr/bin/env python
"""Quickstart: compress a cosmology field with both GPU-era compressors.

Generates a small synthetic Nyx snapshot, compresses the dark-matter
density with SZ (error-bounded) and ZFP (fixed-rate), and prints the
paper's Metric 1 + 2 numbers for each configuration.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compressors import SZCompressor, ZFPCompressor
from repro.cosmo import make_nyx_dataset
from repro.foresight.visualization import format_table
from repro.metrics import evaluate_distortion


def main() -> None:
    nyx = make_nyx_dataset(grid_size=64, seed=1)
    field = nyx.fields["dark_matter_density"]
    print(f"field: dark_matter_density {field.shape} {field.dtype}, "
          f"range ({field.min():.3g}, {field.max():.3g})\n")

    rows = []
    sz = SZCompressor()
    for eb_fraction in (1e-1, 1e-2, 1e-3):
        eb = float(field.std()) * eb_fraction
        recon, buf = sz.roundtrip(field, error_bound=eb)
        metrics = evaluate_distortion(field, recon)
        rows.append({
            "compressor": "sz (abs)",
            "knob": f"eb={eb:.3g}",
            "ratio": buf.compression_ratio,
            "bitrate": buf.bitrate,
            "psnr_db": metrics["psnr"],
            "max_err": metrics["max_abs_error"],
        })

    zfp = ZFPCompressor()
    for rate in (2, 4, 8):
        recon, buf = zfp.roundtrip(field, rate=rate)
        metrics = evaluate_distortion(field, recon)
        rows.append({
            "compressor": "zfp (fixed-rate)",
            "knob": f"rate={rate}",
            "ratio": buf.compression_ratio,
            "bitrate": buf.bitrate,
            "psnr_db": metrics["psnr"],
            "max_err": metrics["max_abs_error"],
        })

    print(format_table(rows, ["compressor", "knob", "ratio", "bitrate",
                              "psnr_db", "max_err"]))
    print("\nNote: SZ bounds the *max* error; ZFP fixes the *rate*. "
          "That asymmetry is the crux of the paper's comparison.")


if __name__ == "__main__":
    main()
