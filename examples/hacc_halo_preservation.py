#!/usr/bin/env python
"""HACC halo preservation under lossy compression (paper Fig. 6).

Generates a synthetic HACC snapshot, compresses positions with GPU-SZ at
several absolute error bounds (and velocities at PW_REL 0.025, the
paper's choice), re-runs the Friends-of-Friends halo finder on the
reconstructed particles, and prints the mass-binned halo-count ratios.

Run:  python examples/hacc_halo_preservation.py
"""

import numpy as np

from repro.compressors import SZCompressor
from repro.cosmo import make_hacc_dataset
from repro.cosmo.halos import find_halos, halo_count_ratio, halo_mass_function
from repro.foresight.visualization import format_table, render_ascii_plot


def main() -> None:
    hacc = make_hacc_dataset(particles_per_side=40, seed=3)
    n_side = round(hacc.n_particles ** (1 / 3))
    ll = 0.2 * hacc.box_size / n_side
    print(f"{hacc.n_particles:,} particles, box {hacc.box_size} Mpc/h, "
          f"FoF linking length {ll:.3f}\n")

    cat0 = find_halos(hacc.positions, hacc.box_size, ll, min_members=10)
    mf0 = halo_mass_function(cat0, nbins=8)
    print(f"original: {cat0.n_halos} halos, largest {cat0.sizes.max()} particles")

    sz = SZCompressor()
    rows = []
    curves = {}
    for eb in (0.005, 0.05, 0.25, 1.0):
        recon = {}
        nbytes = comp = 0
        for name in ("x", "y", "z"):
            buf = sz.compress(hacc.fields[name], error_bound=eb, mode="abs")
            recon[name] = sz.decompress(buf)
            nbytes += buf.original_nbytes
            comp += buf.compressed_nbytes
        pos = np.mod(np.stack([recon[k] for k in "xyz"], axis=1), hacc.box_size)
        cat = find_halos(pos, hacc.box_size, ll, min_members=10)
        mf = halo_mass_function(cat, bin_edges=mf0.bin_edges)
        ratio = halo_count_ratio(mf0, mf)
        curves[f"eb={eb}"] = np.nan_to_num(ratio, nan=1.0)
        rows.append({
            "abs_bound": eb,
            "position_CR": nbytes / comp,
            "halos": cat.n_halos,
            "worst_bin_ratio_dev": float(np.nanmax(np.abs(ratio - 1))),
        })

    print(format_table(rows))
    print()
    print(render_ascii_plot(mf0.bin_centers, curves,
                            title="halo count ratio vs halo mass", logx=True))

    # Velocities: the paper's PW_REL 0.025 choice.
    vbuf = sz.compress(hacc.fields["vx"], pwrel=0.025, mode="pw_rel")
    print(f"\nvelocity vx at PW_REL 0.025: CR {vbuf.compression_ratio:.2f}x")
    print("paper conclusion: ABS 0.005 on positions keeps every mass bin's "
          "ratio ~1 while maximizing ratio (4.25x overall on the real data).")


if __name__ == "__main__":
    main()
