#!/usr/bin/env python
"""Nyx power-spectrum study: find the best-fit configuration (paper §V-D).

Sweeps cuZFP rates and GPU-SZ error bounds over all six Nyx fields,
checks every spectrum (including the overall-density and velocity-
magnitude composites) against the 1 +/- 1% band, and applies the
optimization guideline: keep acceptable configs, pick the highest
compression ratio.

Run:  python examples/nyx_power_spectrum_study.py
"""

import numpy as np

from repro.analysis.optimizer import ConfigCandidate, select_best_fit
from repro.compressors import SZCompressor, ZFPCompressor
from repro.cosmo import make_nyx_dataset
from repro.cosmo.power_spectrum import (
    power_spectrum,
    power_spectrum_ratio,
    ratio_within_band,
)
from repro.foresight.visualization import format_table

FIELDS = ("baryon_density", "dark_matter_density", "temperature",
          "velocity_x", "velocity_y", "velocity_z")


def pk_acceptable(orig: np.ndarray, recon: np.ndarray, box: float) -> tuple[bool, float]:
    ref = power_spectrum(orig.astype(np.float64), box, nbins=12)
    spec = power_spectrum(recon.astype(np.float64), box, nbins=12)
    ratio = power_spectrum_ratio(ref, spec)
    return ratio_within_band(ratio, 0.01), float(np.nanmax(np.abs(ratio - 1)))


def main() -> None:
    nyx = make_nyx_dataset(grid_size=64, seed=2)
    candidates: list[ConfigCandidate] = []
    rows = []

    zfp = ZFPCompressor()
    for rate in (1.0, 2.0, 4.0, 8.0):
        for name in FIELDS:
            field = nyx.fields[name]
            recon, buf = zfp.roundtrip(field, rate=rate)
            ok, dev = pk_acceptable(field, recon, nyx.box_size)
            candidates.append(ConfigCandidate(name, "cuzfp", "fixed_rate",
                                              rate, buf.compression_ratio, ok))
            rows.append({"compressor": "cuzfp", "field": name, "knob": rate,
                         "CR": buf.compression_ratio, "max_pk_dev": dev, "ok": ok})

    sz = SZCompressor()
    for frac in (0.1, 0.01, 1e-3):
        for name in FIELDS:
            field = nyx.fields[name]
            eb = float(field.std()) * frac
            recon, buf = sz.roundtrip(field, error_bound=eb)
            ok, dev = pk_acceptable(field, recon, nyx.box_size)
            candidates.append(ConfigCandidate(name, "gpu-sz", "abs",
                                              eb, buf.compression_ratio, ok))
            rows.append({"compressor": "gpu-sz", "field": name, "knob": eb,
                         "CR": buf.compression_ratio, "max_pk_dev": dev, "ok": ok})

    print(format_table(rows, ["compressor", "field", "knob", "CR",
                              "max_pk_dev", "ok"]))
    print()
    for comp in ("cuzfp", "gpu-sz"):
        subset = [c for c in candidates if c.compressor == comp]
        try:
            best = select_best_fit(subset)
            print(f"best-fit {comp}: overall CR {best.overall_compression_ratio:.2f}x")
            for fname, choice in best.per_field.items():
                print(f"  {fname:22s} -> {choice.parameter:.4g} "
                      f"(CR {choice.compression_ratio:.2f}x)")
        except Exception as exc:
            print(f"best-fit {comp}: {exc}")
    print("\nPaper reference: GPU-SZ 15.4x vs cuZFP 10.7x on 512^3 Nyx — "
          "the ordering (SZ > ZFP) is the reproducible claim at this scale.")


if __name__ == "__main__":
    main()
