#!/usr/bin/env python
"""Plan in-situ compression for a GPU supercomputer node (paper §V-C/D).

Uses the analytic GPU model to answer the paper's operational questions:
how does the cuZFP time budget decompose (Fig. 7), which GPU generation
helps (Fig. 9), and what does bitrate cost end to end (Fig. 10) — then
sizes the I/O win for a Summit-like 6-GPU node against raw PCIe output.

Run:  python examples/gpu_throughput_planning.py
"""

from repro.foresight.visualization import format_table
from repro.gpu import (
    GPU_CATALOG,
    V100,
    simulate_compression,
    simulate_decompression,
)

N = 512**3  # one paper-size Nyx field


def main() -> None:
    print("== Fig. 7-style breakdown (V100, compression) ==")
    rows = []
    for rate in (1, 2, 4, 8, 16):
        run = simulate_compression(N, rate, device=V100)
        row = {"bitrate": rate}
        row.update({k: f"{v * 1e3:.2f} ms" for k, v in run.breakdown().items()})
        row["total"] = f"{run.total_seconds * 1e3:.2f} ms"
        row["baseline"] = f"{run.baseline_seconds * 1e3:.1f} ms"
        rows.append(row)
    print(format_table(rows, ["bitrate", "init", "kernel", "memcpy", "free",
                              "total", "baseline"]))

    print("\n== Fig. 9-style device comparison (kernel GB/s at rate 4) ==")
    rows = [
        {
            "gpu": g.name,
            "compress": f"{simulate_compression(N, 4, device=g).kernel_throughput / 1e9:.0f}",
            "decompress": f"{simulate_decompression(N, 4, device=g).kernel_throughput / 1e9:.0f}",
        }
        for g in GPU_CATALOG
    ]
    print(format_table(rows, ["gpu", "compress", "decompress"]))

    print("\n== Node-level planning (Summit-like: 6x V100 per node) ==")
    snapshot_bytes = 6 * N * 4  # six fields
    run = simulate_compression(N, 3.0, device=V100)  # best-fit mean rate
    per_gpu_time = run.total_seconds * 6  # six fields per GPU sequentially
    node_time = per_gpu_time  # one field set per GPU, 6 GPUs in parallel
    raw_time = run.baseline_seconds * 6
    print(f"snapshot: {snapshot_bytes / 1e9:.1f} GB of fields")
    print(f"compressed output per node: {6 * run.compressed_bytes / 1e9:.2f} GB")
    print(f"in-situ compression wall time (6 GPUs): {node_time:.3f} s "
          f"vs raw PCIe dump {raw_time:.3f} s")
    print(f"I/O volume reduction: {snapshot_bytes / (6 * run.compressed_bytes):.1f}x")
    print("\npaper's point: with 6 V100s/node, compression overhead drops to "
          "<0.3% of a 10 s timestep (from >10% with CPU compressors).")


if __name__ == "__main__":
    main()
