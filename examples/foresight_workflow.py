#!/usr/bin/env python
"""Full Foresight pipeline from one JSON config (paper Figs. 2-3).

CBench sweeps -> PAT workflow on the SLURM simulator -> power-spectrum
analysis -> Cinema database on disk, plus the sbatch submission script
PAT would hand to a real cluster.

Run:  python examples/foresight_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cosmo import make_nyx_dataset
from repro.cosmo.power_spectrum import (
    power_spectrum,
    power_spectrum_ratio,
    ratio_within_band,
)
from repro.foresight import CBench, CinemaDatabase, load_config
from repro.foresight.pat import Job, SlurmSimulator, Workflow
from repro.foresight.visualization import save_series_csv

CONFIG = {
    "input": {
        "dataset": "nyx",
        "generator": {"grid_size": 48, "seed": 9},
        "fields": ["baryon_density", "temperature"],
    },
    "compressors": [
        {"name": "cuzfp", "mode": "fixed_rate", "sweep": {"rate": [2, 4, 8]}},
        {"name": "gpu-sz", "mode": "abs",
         "sweep": {"error_bound": {"baryon_density": [0.1, 0.01],
                                    "temperature": [200.0, 20.0]}}},
    ],
    "analyses": ["distortion", "power_spectrum"],
    "output": {"directory": "foresight-demo"},
}


def main() -> None:
    cfg = load_config(CONFIG)
    nyx = make_nyx_dataset(**cfg.generator)
    fields = {name: nyx.fields[name] for name in cfg.fields}
    bench = CBench(fields)
    state: dict = {}

    def cbench_job():
        state["records"] = bench.run_all(cfg.compressors, cfg.fields)
        return f"{len(state['records'])} configurations benchmarked"

    def pk_job():
        out = []
        for rec in state["records"]:
            ref = power_spectrum(fields[rec.field].astype(np.float64),
                                 nyx.box_size, nbins=10)
            spec = power_spectrum(rec.reconstruction.astype(np.float64),
                                  nyx.box_size, nbins=10)
            ratio = power_spectrum_ratio(ref, spec)
            row = rec.to_row()
            row["pk_acceptable"] = ratio_within_band(ratio, 0.01)
            row["pk_max_dev"] = float(np.nanmax(np.abs(ratio - 1)))
            out.append((row, ref.k, ratio))
        state["analyzed"] = out
        return f"{len(out)} spectra analyzed"

    wf = Workflow("foresight-demo")
    wf.add_job(Job(name="cbench", action=cbench_job, walltime_minutes=30))
    wf.add_job(Job(name="pk", action=pk_job, depends_on=["cbench"]))
    wf.add_job(Job(name="cinema", command="python make_cinema.py",
                   depends_on=["pk"]))

    outdir = Path(tempfile.mkdtemp(prefix="foresight-"))
    script = wf.write_submission_script(outdir / "submit.sh")
    print(f"sbatch script written to {outdir / 'submit.sh'} "
          f"({script.count('sbatch')} submissions)\n")

    records = SlurmSimulator(nodes=4).run(wf, raise_on_failure=True)
    for name, rec in records.items():
        print(f"job {name:8s} [{rec.job_id}] {rec.state.value:10s} {rec.result or ''}")

    def artifact(row, artifact_dir):
        match = next(
            (k, r) for rr, k, r in state["analyzed"]
            if rr["compressor"] == row["compressor"]
            and rr["field"] == row["field"] and rr["parameter"] == row["parameter"]
        )
        name = f"pk_{row['compressor']}_{row['field']}_{row['parameter']:g}.csv"
        save_series_csv(artifact_dir / name, match[0], {"pk_ratio": match[1]},
                        x_name="k")
        return f"artifacts/{name}"

    db = CinemaDatabase(outdir / "study")
    db.write([row for row, _, _ in state["analyzed"]], artifact_writer=artifact)
    print(f"\nCinema database: {db.path} ({len(db.read())} rows + pk artifacts)")


if __name__ == "__main__":
    main()
