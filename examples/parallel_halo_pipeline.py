#!/usr/bin/env python
"""Distributed pipeline: per-rank compression + parallel halo finding.

HACC writes snapshots from an MPI domain decomposition and compresses
each rank's share independently; its halo finder runs in parallel with
ghost-zone exchanges.  This example drives the full simulated pipeline:

1. decompose a synthetic HACC snapshot over 2x2x2 ranks;
2. compress each rank's position arrays independently with GPU-SZ
   settings (the global ABS bound survives decomposition by construction);
3. reconstruct and run the *distributed* FoF (local FoF + ghost merge),
   reporting the communication volume;
4. verify the distributed catalog matches a serial run bit for bit.

Run:  python examples/parallel_halo_pipeline.py
"""

import numpy as np

from repro.compressors import SZCompressor
from repro.cosmo import make_hacc_dataset
from repro.cosmo.fof import friends_of_friends
from repro.foresight.visualization import format_table
from repro.parallel import CartesianDecomposition, compress_distributed, distributed_fof
from repro.parallel.compression import decompress_distributed


def main() -> None:
    hacc = make_hacc_dataset(particles_per_side=32, seed=17)
    n_side = 32
    ll = 0.2 * hacc.box_size / n_side
    decomp = CartesianDecomposition(hacc.box_size, (2, 2, 2))
    sz = SZCompressor()

    # Per-rank compression of the three position components.
    rows = []
    recon = {}
    for name in ("x", "y", "z"):
        result = compress_distributed(
            sz, hacc.fields[name], hacc.positions, decomp,
            error_bound=0.005, mode="abs",
        )
        recon[name] = decompress_distributed(sz, result)
        rows.append(
            {
                "field": name,
                "ranks": len(result.buffers),
                "overall_CR": result.compression_ratio,
                "per_rank_CR_spread": max(result.per_rank_ratios())
                - min(result.per_rank_ratios()),
            }
        )
    print(format_table(rows))

    pos = np.mod(
        np.stack([recon[k] for k in "xyz"], axis=1).astype(np.float64),
        hacc.box_size,
    )

    # Distributed FoF on the reconstructed particles.
    dist, stats = distributed_fof(pos, hacc.box_size, ll, dims=(2, 2, 2))
    serial = friends_of_friends(pos, hacc.box_size, ll)
    print(f"\ndistributed FoF: {dist.n_groups} groups over {stats['n_ranks']} ranks "
          f"(serial: {serial.n_groups})")
    print(f"ghost exchange: {stats['ghost_bytes'] / 1e3:.1f} kB "
          f"({max(stats['ghosts_per_rank'])} ghosts on the busiest rank)")
    sizes_d = np.sort(np.bincount(dist.labels))[::-1][:5]
    sizes_s = np.sort(np.bincount(serial.labels))[::-1][:5]
    print(f"largest groups (distributed): {sizes_d.tolist()}")
    print(f"largest groups (serial):      {sizes_s.tolist()}")
    assert dist.n_groups == serial.n_groups, "distributed/serial mismatch!"
    print("\ndistributed and serial partitions agree — the parallel halo "
          "finder sees the same compressed universe.")


if __name__ == "__main__":
    main()
