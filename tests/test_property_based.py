"""Property-based tests (hypothesis) for the core invariants.

Each property is the contract a downstream user relies on: round-trip
identity for lossless stages, error-bound satisfaction for lossy ones,
and structural invariants of the analysis substrate.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors import SZCompressor, ZFPCompressor
from repro.compressors.sz.quantizer import (
    _unzigzag,
    _zigzag,
    residuals_to_symbols,
    symbols_to_residuals,
)
from repro.compressors.zfp.blockcodec import int_to_negabinary, negabinary_to_int
from repro.compressors.zfp.transform import forward_transform, inverse_transform
from repro.lossless.huffman import HuffmanCodec, canonical_codes, huffman_lengths
from repro.lossless.lzss import lzss_compress, lzss_decompress
from repro.lossless.rle import rle_decode, rle_encode
from repro.util.bits import pack_varlen_codes, unpack_fixed_width
from repro.util.blocks import block_partition, block_reassemble
from repro.util.logtransform import LogTransform

_slow = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestBitPacking:
    @given(
        hnp.arrays(np.uint64, st.integers(1, 200),
                   elements=st.integers(0, 2**20 - 1)),
        st.integers(1, 20),
    )
    @_slow
    def test_fixed_width_round_trip(self, values, width):
        masked = values & np.uint64((1 << width) - 1)
        payload, nbits = pack_varlen_codes(
            masked, np.full(values.size, width, dtype=np.int64)
        )
        assert nbits == width * values.size
        out = unpack_fixed_width(payload, width, values.size)
        assert np.array_equal(out, masked)


class TestLossless:
    @given(hnp.arrays(np.int64, st.integers(0, 2000),
                      elements=st.integers(0, 300)))
    @_slow
    def test_huffman_round_trip(self, symbols):
        codec = HuffmanCodec(chunk_size=97)  # odd chunk: boundary coverage
        out = codec.decode(codec.encode(symbols, 301))
        assert np.array_equal(out, symbols)

    @given(hnp.arrays(np.int64, st.integers(1, 500),
                      elements=st.integers(0, 10**6)))
    @_slow
    def test_huffman_lengths_kraft(self, symbols):
        freqs = np.bincount(symbols % 64, minlength=64)
        lengths = huffman_lengths(freqs, max_len=16)
        used = lengths[lengths > 0]
        if used.size:
            assert np.sum(2.0 ** (-used.astype(float))) <= 1.0 + 1e-9
            canonical_codes(lengths)  # must not raise

    @given(st.binary(max_size=3000))
    @_slow
    def test_lzss_round_trip(self, data):
        assert lzss_decompress(lzss_compress(data)) == data

    @given(hnp.arrays(np.int64, st.integers(0, 3000),
                      elements=st.integers(-5, 5)))
    @_slow
    def test_rle_round_trip(self, data):
        v, l = rle_decode, rle_encode
        vals, runs = rle_encode(data)
        assert np.array_equal(rle_decode(vals, runs), data)
        # RLE never produces more runs than elements.
        assert vals.size <= data.size


class TestQuantizer:
    @given(hnp.arrays(np.int64, st.integers(1, 500),
                      elements=st.integers(-(10**9), 10**9)))
    @_slow
    def test_zigzag_bijection(self, v):
        assert np.array_equal(_unzigzag(_zigzag(v)), v)

    @given(
        hnp.arrays(np.int64, st.integers(1, 500),
                   elements=st.integers(-(10**6), 10**6)),
        st.integers(2, 2048),
    )
    @_slow
    def test_symbols_round_trip(self, residuals, radius):
        sym, out = residuals_to_symbols(residuals, radius)
        assert np.array_equal(symbols_to_residuals(sym, out, radius), residuals)
        assert sym.min() >= 0 and sym.max() < 2 * radius


class TestNegabinaryAndTransform:
    @given(hnp.arrays(np.int64, st.integers(1, 300),
                      elements=st.integers(-(2**50), 2**50)))
    @_slow
    def test_negabinary_bijection(self, v):
        assert np.array_equal(negabinary_to_int(int_to_negabinary(v)), v)

    @given(hnp.arrays(np.int64, (5, 4, 4, 4),
                      elements=st.integers(-(2**30), 2**30)))
    @_slow
    def test_transform_rounding_bounded(self, blocks):
        # The integer lifting scheme drops fractional bits on every axis
        # pass, so the round trip is only bounded, not exact.  The
        # documented worst case (see the derivation in zfp/transform.py)
        # is E_3 <= E_1 + (15/4)*E_2 ~= 37.6, rounded up to 40 for the
        # inverse pass's own shift slack — O(1), independent of the
        # 2^30 input magnitude.  The old bound of 64 was pure margin.
        out = inverse_transform(forward_transform(blocks))
        assert np.abs(out - blocks).max() <= 40

    def test_transform_rounding_adversarial_case(self):
        # Pinned worst case from a randomized greedy search over residue
        # blocks [-8, 8)^4^3: roundtrip error exactly 30 — beyond
        # anything hypothesis found (26), within the derived bound of 40.
        # Guards against a "fix" that silently worsens the rounding.
        block = np.array([
            1, -4, -4, 1, 6, -2, -3, 5, -5, -3, -7, 2, 6, -7, -8, -2,
            -5, 6, -5, 5, -4, 1, -4, -6, -5, 0, 7, -5, 3, -5, -4, -6,
            -3, 3, -2, -2, -8, 1, 6, 0, -1, -4, -5, 1, 0, 3, 7, -2,
            -3, 0, 5, -2, 4, 2, -5, -4, -8, -5, -7, 0, 7, 1, 4, 1,
        ], dtype=np.int64).reshape(1, 4, 4, 4)
        for offset in (0, np.int64(1) << 40):  # magnitude independence
            shifted = block + offset
            out = inverse_transform(forward_transform(shifted))
            assert np.abs(out - shifted).max() == 30


class TestBlocks:
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(1, 20), st.integers(1, 20)),
                   elements=st.floats(-1e6, 1e6)),
        st.integers(2, 7),
    )
    @_slow
    def test_partition_reassemble_identity(self, data, side):
        blocks, grid, orig = block_partition(data, (side, side))
        assert np.array_equal(block_reassemble(blocks, grid, orig), data)


class TestLogTransform:
    @given(hnp.arrays(np.float64, st.integers(1, 300),
                      elements=st.floats(-1e8, 1e8, allow_nan=False)))
    @_slow
    def test_forward_backward_identity(self, data):
        logmag, xform = LogTransform.forward(data)
        out = xform.backward(logmag)
        assert np.allclose(out, data, rtol=1e-9, atol=1e-300)


class TestCompressorContracts:
    @given(
        hnp.arrays(np.float32, st.tuples(st.integers(6, 24), st.integers(6, 24)),
                   elements=st.floats(-1e4, 1e4, width=32)),
        st.sampled_from([1e-1, 1e-2, 1e-3]),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sz_abs_error_bound_always_holds(self, data, eb):
        sz = SZCompressor()
        recon = sz.decompress(sz.compress(data, error_bound=eb))
        tol = float(np.spacing(np.abs(data).max())) if data.size else 0.0
        err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
        assert err <= eb + tol

    @given(
        hnp.arrays(np.float32, st.tuples(st.integers(4, 16), st.integers(4, 16)),
                   elements=st.floats(-1e6, 1e6, width=32)),
        st.sampled_from([4.0, 8.0, 16.0]),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_zfp_round_trip_shape_and_rate(self, data, rate):
        zfp = ZFPCompressor()
        buf = zfp.compress(data, rate=rate)
        recon = zfp.decompress(buf)
        assert recon.shape == data.shape
        # Fixed-rate invariant: payload is exactly maxbits per (padded) block.
        nblocks = int(np.prod([-(-s // 4) for s in data.shape]))
        body_bits = nblocks * buf.meta["maxbits_per_block"]
        assert len(buf.payload) * 8 >= body_bits

    @given(
        hnp.arrays(np.float32, st.integers(10, 500),
                   elements=st.floats(-1e5, 1e5, width=32).filter(lambda x: x == 0 or abs(x) > 1e-20)),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sz_pwrel_bound_always_holds(self, data):
        sz = SZCompressor()
        recon = sz.decompress(sz.compress(data, pwrel=0.05, mode="pw_rel"))
        nz = data != 0
        if nz.any():
            rel = np.abs(
                (recon[nz].astype(np.float64) - data[nz]) / data[nz].astype(np.float64)
            )
            assert rel.max() <= 0.05 * (1 + 1e-4)
        assert np.all(recon[~nz] == 0)
