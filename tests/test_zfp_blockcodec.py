"""Unit tests for ZFP negabinary mapping and embedded plane coding."""

import numpy as np
import pytest

from repro.compressors.zfp.blockcodec import (
    EBITS,
    NBMASK,
    _BlockReader,
    _Emitter,
    _rev_bits,
    decode_block_planes,
    encode_block_planes,
    int_to_negabinary,
    negabinary_to_int,
    plane_words,
    words_matrix_to_coeffs,
    words_to_coeffs,
)
from repro.errors import CorruptStreamError


class TestNegabinary:
    def test_known_values(self):
        vals = np.array([0, 1, -1, 2, -2, 5], dtype=np.int64)
        u = int_to_negabinary(vals)
        assert u.tolist() == [0, 1, 3, 6, 2, 0b101]

    def test_round_trip_random(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(-(2**50), 2**50, 10000)
        assert np.array_equal(negabinary_to_int(int_to_negabinary(vals)), vals)

    def test_bit_length_bounded(self):
        # |i| <= 2^(P-2) must fit in P negabinary bits.
        for p in (8, 16, 30):
            vals = np.array([2 ** (p - 2), -(2 ** (p - 2))], dtype=np.int64)
            u = int_to_negabinary(vals)
            assert int(u.max()).bit_length() <= p

    def test_mask_constant(self):
        assert NBMASK == np.uint64(0xAAAAAAAAAAAAAAAA)


class TestPlaneWords:
    def test_round_trip_via_words_to_coeffs(self):
        rng = np.random.default_rng(1)
        u = rng.integers(0, 2**40, (5, 64)).astype(np.uint64)
        words = plane_words(u, 48)
        for b in range(5):
            back = words_to_coeffs([int(w) for w in words[b]], 64)
            assert np.array_equal(back, u[b])

    def test_matrix_inverse_matches_scalar(self):
        rng = np.random.default_rng(2)
        u = rng.integers(0, 2**30, (7, 16)).astype(np.uint64)
        words = plane_words(u, 32)
        back = words_matrix_to_coeffs(words, 16)
        assert np.array_equal(back, u)

    def test_single_plane_extraction(self):
        u = np.array([[0b1, 0b0, 0b1, 0b1]], dtype=np.uint64)
        words = plane_words(u, 1)
        assert words[0, 0] == 0b1101


class TestRevBits:
    def test_basic(self):
        assert _rev_bits(0b1, 3) == 0b100
        assert _rev_bits(0b110, 3) == 0b011
        assert _rev_bits(0, 0) == 0
        assert _rev_bits(1, 1) == 1

    def test_involution(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(1, 40))
            x = int(rng.integers(0, 2**n))
            assert _rev_bits(_rev_bits(x, n), n) == x


def _roundtrip_block(u: np.ndarray, budget: int, nplanes: int = 32):
    """Encode then decode one block at the given bit budget."""
    size = u.size
    words = plane_words(u[None, :], nplanes)[0]
    emitter = _Emitter()
    encode_block_planes(emitter, [int(w) for w in words], size, budget)
    payload, nbits = emitter.pack()
    assert nbits == budget  # exact fixed-rate padding
    value = int.from_bytes(payload, "big") >> (len(payload) * 8 - budget)
    reader = _BlockReader(value, budget)
    out_words = decode_block_planes(reader, nplanes, size, budget)
    return words_to_coeffs(out_words, size)


class TestEmbeddedCoding:
    def test_lossless_with_full_budget(self):
        rng = np.random.default_rng(0)
        u = rng.integers(0, 2**28, 16).astype(np.uint64)
        out = _roundtrip_block(u, budget=16 * 64, nplanes=30)
        assert np.array_equal(out, u)

    def test_truncation_keeps_top_planes(self):
        rng = np.random.default_rng(1)
        u = rng.integers(0, 2**28, 16).astype(np.uint64)
        full = _roundtrip_block(u, 16 * 64, nplanes=30).astype(np.float64)
        small = _roundtrip_block(u, 64, nplanes=30).astype(np.float64)
        # Truncated decode approximates; error bounded by untransmitted planes.
        assert np.abs(small - u.astype(np.float64)).max() < np.abs(u).max()
        assert np.abs(full - u.astype(np.float64)).max() == 0

    def test_more_budget_never_worse(self):
        rng = np.random.default_rng(2)
        u = rng.integers(0, 2**24, 64).astype(np.uint64)
        errs = []
        for budget in (64, 128, 256, 512, 2048):
            out = _roundtrip_block(u, budget)
            # compare in signed space where truncation error is meaningful
            err = np.abs(
                negabinary_to_int(out).astype(np.float64)
                - negabinary_to_int(u).astype(np.float64)
            ).max()
            errs.append(err)
        assert all(a >= b for a, b in zip(errs, errs[1:]))

    def test_all_zero_block(self):
        u = np.zeros(64, dtype=np.uint64)
        out = _roundtrip_block(u, 128)
        assert np.array_equal(out, u)

    def test_single_hot_coefficient(self):
        u = np.zeros(64, dtype=np.uint64)
        u[63] = 1  # worst case for group testing: last position, LSB plane
        out = _roundtrip_block(u, 64 * 64)
        assert np.array_equal(out, u)

    def test_ebits_covers_float64_exponents(self):
        assert EBITS >= 12


class TestBlockReader:
    def test_overrun_raises(self):
        reader = _BlockReader(0b101, 3)
        reader.read_msb(3)
        with pytest.raises(CorruptStreamError):
            reader.read_bit()

    def test_msb_order(self):
        reader = _BlockReader(0b10110, 5)
        assert reader.read_bit() == 1
        assert reader.read_msb(4) == 0b0110

    def test_lsb_matches_emitter(self):
        emitter = _Emitter()
        emitter.emit_lsb(0b1011010, 7)
        payload, nbits = emitter.pack()
        value = int.from_bytes(payload, "big") >> (len(payload) * 8 - nbits)
        reader = _BlockReader(value, nbits)
        assert reader.read_lsb(7) == 0b1011010

    def test_long_lsb_chunking(self):
        emitter = _Emitter()
        v = (1 << 50) | 0b1011
        emitter.emit_lsb(v, 55)
        payload, nbits = emitter.pack()
        value = int.from_bytes(payload, "big") >> (len(payload) * 8 - nbits)
        reader = _BlockReader(value, nbits)
        assert reader.read_lsb(55) == v
