"""Tests for the Foresight framework: config, CBench, Cinema, analyses."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.foresight import (
    CBench,
    CinemaDatabase,
    available_analyses,
    get_analysis,
    load_config,
    register_analysis,
)
from repro.foresight.config import CompressorSweep

VALID_CONFIG = {
    "input": {
        "dataset": "nyx",
        "generator": {"grid_size": 16},
        "fields": ["baryon_density"],
    },
    "compressors": [
        {"name": "cuzfp", "mode": "fixed_rate", "sweep": {"rate": [2, 4]}},
        {
            "name": "gpu-sz",
            "mode": "abs",
            "sweep": {"error_bound": {"baryon_density": [0.5]}},
        },
    ],
    "analyses": ["distortion"],
    "output": {"directory": "out"},
}


class TestConfig:
    def test_load_from_dict(self):
        cfg = load_config(VALID_CONFIG)
        assert cfg.dataset == "nyx"
        assert len(cfg.compressors) == 2
        assert cfg.compressors[0].knob == "rate"

    def test_load_from_file(self, tmp_path):
        p = tmp_path / "cfg.json"
        p.write_text(json.dumps(VALID_CONFIG))
        assert load_config(p).dataset == "nyx"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_config(tmp_path / "missing.json")

    def test_invalid_json_raises(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ConfigError, match="JSON"):
            load_config(p)

    def test_unknown_dataset_raises(self):
        bad = dict(VALID_CONFIG, input={"dataset": "illustris"})
        with pytest.raises(ConfigError):
            load_config(bad)

    def test_unknown_compressor_raises(self):
        bad = json.loads(json.dumps(VALID_CONFIG))
        bad["compressors"][0]["name"] = "mgard"
        with pytest.raises(ConfigError):
            load_config(bad)

    def test_mode_knob_mismatch_raises(self):
        with pytest.raises(ConfigError):
            CompressorSweep(name="cuzfp", mode="fixed_rate", sweep={"error_bound": [1]})

    def test_per_field_sweep_values(self):
        cfg = load_config(VALID_CONFIG)
        sz = cfg.compressors[1]
        assert sz.values_for("baryon_density") == [0.5]
        assert sz.values_for("temperature") == []

    def test_scalar_sweep_promoted_to_list(self):
        sweep = CompressorSweep(name="cuzfp", mode="fixed_rate", sweep={"rate": 4})
        assert sweep.values_for("anything") == [4.0]

    def test_nonpositive_knob_rejected(self):
        sweep = CompressorSweep(name="cuzfp", mode="fixed_rate", sweep={"rate": [-1]})
        with pytest.raises(ConfigError):
            sweep.values_for("f")


class TestCBench:
    def test_sweep_produces_expected_records(self, nyx_small):
        bench = CBench({"baryon_density": nyx_small.fields["baryon_density"]})
        sweep = CompressorSweep(name="cuzfp", mode="fixed_rate", sweep={"rate": [2, 4]})
        records = bench.run(sweep)
        assert len(records) == 2
        for rec in records:
            assert rec.compression_ratio > 1
            assert "psnr" in rec.metrics
            assert rec.reconstruction is not None
            assert rec.compress_seconds > 0

    def test_sz_record_meta(self, nyx_small):
        bench = CBench({"t": nyx_small.fields["temperature"]})
        sweep = CompressorSweep(
            name="sz", mode="abs", sweep={"error_bound": [100.0]}
        )
        rec = bench.run(sweep)[0]
        assert rec.metrics["max_abs_error"] <= 100.0 * (1 + 1e-5)
        assert "predictor_regression_fraction" in rec.meta

    def test_to_row_is_flat(self, nyx_small):
        bench = CBench({"f": nyx_small.fields["temperature"]})
        sweep = CompressorSweep(name="cuzfp", mode="fixed_rate", sweep={"rate": [4]})
        row = bench.run(sweep)[0].to_row()
        assert all(not isinstance(v, (dict, np.ndarray)) for v in row.values())

    def test_unknown_field_raises(self, nyx_small):
        bench = CBench({"f": nyx_small.fields["temperature"]})
        sweep = CompressorSweep(name="cuzfp", mode="fixed_rate", sweep={"rate": [4]})
        with pytest.raises(DataError):
            bench.run_one(sweep, "nope", 4.0)

    def test_empty_fields_rejected(self):
        with pytest.raises(DataError):
            CBench({})

    def test_keep_reconstructions_false(self, nyx_small):
        bench = CBench(
            {"f": nyx_small.fields["temperature"]}, keep_reconstructions=False
        )
        sweep = CompressorSweep(name="cuzfp", mode="fixed_rate", sweep={"rate": [4]})
        assert bench.run(sweep)[0].reconstruction is None


class TestCinema:
    def test_write_and_read(self, tmp_path):
        db = CinemaDatabase(tmp_path / "study")
        records = [{"a": 1, "b": 2.5}, {"a": 2, "b": 3.5}]
        db.write(records)
        back = db.read()
        assert len(back) == 2
        assert back[0]["a"] == "1"

    def test_cdb_suffix_enforced(self, tmp_path):
        db = CinemaDatabase(tmp_path / "study")
        assert db.path.suffix == ".cdb"

    def test_artifacts_written(self, tmp_path):
        db = CinemaDatabase(tmp_path / "study")

        def writer(rec, artifact_dir):
            p = artifact_dir / f"r{rec['a']}.txt"
            p.write_text(str(rec))
            return f"artifacts/{p.name}"

        db.write([{"a": 1}, {"a": 2}], artifact_writer=writer)
        rows = db.read()
        assert all((db.path / r["FILE"]).exists() for r in rows)

    def test_heterogeneous_records_unioned(self, tmp_path):
        db = CinemaDatabase(tmp_path / "h")
        db.write([{"a": 1}, {"b": 2}])
        rows = db.read()
        assert set(rows[0]) == {"a", "b"}

    def test_empty_records_raise(self, tmp_path):
        with pytest.raises(DataError):
            CinemaDatabase(tmp_path / "e").write([])


class TestAnalysisRegistry:
    def test_builtins_available(self):
        names = available_analyses()
        for expected in ("distortion", "power_spectrum", "halo_finder"):
            assert expected in names

    def test_distortion_analysis(self, nyx_small):
        fn = get_analysis("distortion")
        out = fn(nyx_small.fields["temperature"], nyx_small.fields["temperature"])
        assert out["psnr"] == float("inf")

    def test_power_spectrum_analysis(self, nyx_small):
        fn = get_analysis("power_spectrum")
        f = nyx_small.fields["dark_matter_density"]
        out = fn(f, f, box_size=nyx_small.box_size)
        assert out["within_band"] is True
        assert out["max_deviation"] == pytest.approx(0.0, abs=1e-9)

    def test_halo_finder_analysis(self, hacc_small):
        fn = get_analysis("halo_finder")
        pos = hacc_small.positions
        out = fn(pos, pos, box_size=hacc_small.box_size)
        assert out["n_halos_original"] == out["n_halos_reconstructed"] > 0

    def test_unknown_analysis_raises(self):
        with pytest.raises(ConfigError):
            get_analysis("lensing")

    def test_custom_registration(self):
        register_analysis("always-ok-test", lambda o, r, **k: {"ok": True})
        assert get_analysis("always-ok-test")(None, None)["ok"]
        with pytest.raises(ConfigError):
            register_analysis("always-ok-test", lambda o, r, **k: {})
