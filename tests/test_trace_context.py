"""Trace-context propagation, W3C serialization, and span ctx identity."""

import threading

import pytest

from repro import telemetry
from repro.telemetry import context as trace_context
from repro.telemetry.context import TraceContext


class TestTraceContext:
    def test_new_ids_are_hex_of_spec_length(self):
        assert len(trace_context.new_trace_id()) == 32
        assert len(trace_context.new_span_id()) == 16
        int(trace_context.new_trace_id(), 16)  # must parse as hex

    def test_traceparent_round_trip(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        back = TraceContext.from_traceparent(ctx.to_traceparent())
        assert back is not None
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id

    @pytest.mark.parametrize("bad", [
        None,
        42,
        "",
        "not-a-traceparent",
        "00-zz" + "0" * 30 + "-" + "1" * 16 + "-01",  # non-hex
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",    # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",    # all-zero span id
        "00-" + "1" * 31 + "-" + "1" * 16 + "-01",    # short trace id
    ])
    def test_malformed_traceparent_is_none_not_an_error(self, bad):
        assert TraceContext.from_traceparent(bad) is None

    def test_child_keeps_trace_forks_span(self):
        parent = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_use_activates_and_restores(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert trace_context.current() is None
        with trace_context.use(ctx):
            assert trace_context.current() is ctx
        assert trace_context.current() is None

    def test_use_none_is_a_passthrough(self):
        with trace_context.use(None) as active:
            assert active is None

    def test_start_trace_reuses_active_context(self):
        with trace_context.start_trace() as outer:
            with trace_context.start_trace() as inner:
                assert inner is outer

    def test_inject_no_context_returns_header_uncopied(self):
        header = {"op": "compress"}
        assert trace_context.inject(header) is header

    def test_inject_extract_round_trip(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with trace_context.use(ctx):
            header = trace_context.inject({"op": "compress"})
        assert trace_context.TRACE_FIELD in header
        back = trace_context.extract(header)
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id

    def test_context_is_thread_local(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        seen = []
        with trace_context.use(ctx):
            t = threading.Thread(target=lambda: seen.append(trace_context.current()))
            t.start()
            t.join()
        assert seen == [None]

    def test_request_id_scoping(self):
        assert trace_context.current_request_id() is None
        with trace_context.use_request_id("17"):
            assert trace_context.current_request_id() == "17"
        assert trace_context.current_request_id() is None


class TestSpanContextIntegration:
    def test_spans_chain_under_active_context(self):
        with telemetry.enabled_telemetry() as tm:
            with trace_context.start_trace() as root:
                with tm.span("outer"):
                    with tm.span("inner"):
                        pass
        outer = next(s for s in tm.tracer.finished_spans() if s.name == "outer")
        inner = next(s for s in tm.tracer.finished_spans() if s.name == "inner")
        assert outer.trace_id == inner.trace_id == root.trace_id
        assert outer.ctx_parent_id == root.span_id
        assert inner.ctx_parent_id == outer.ctx_id

    def test_spans_without_context_have_no_ctx_ids(self):
        with telemetry.enabled_telemetry() as tm:
            with tm.span("plain"):
                pass
        (sp,) = tm.tracer.finished_spans()
        assert sp.trace_id is None
        assert sp.ctx_id is None
        assert "trace_id" not in sp.to_dict()

    def test_ingest_preserves_ctx_identity_verbatim(self):
        with telemetry.enabled_telemetry("worker") as worker_tm:
            ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
            with trace_context.use(ctx):
                with worker_tm.span("remote.work"):
                    pass
            shipped = [s.to_dict() for s in worker_tm.tracer.finished_spans()]
        with telemetry.enabled_telemetry("parent") as parent_tm:
            adopted = parent_tm.tracer.ingest(shipped)
        assert adopted[0].trace_id == "ab" * 16
        assert adopted[0].ctx_parent_id == "cd" * 8

    def test_add_span_with_explicit_ctx_and_root(self):
        with telemetry.enabled_telemetry() as tm:
            identity = TraceContext("ab" * 16, "cd" * 8, parent_id="ef" * 8)
            with tm.span("unrelated"):
                sp = tm.tracer.add_span(
                    "synthetic", start=0.0, end=1.0, ctx=identity, root=True
                )
        assert sp.parent_id is None  # root=True skipped the open span
        assert sp.ctx_id == "cd" * 8
        assert sp.ctx_parent_id == "ef" * 8

    def test_max_finished_caps_retention_but_not_total(self):
        tracer = telemetry.Tracer("capped", max_finished=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished_spans()) == 4
        assert tracer.finished_total() == 10
        assert [s.name for s in tracer.finished_spans()] == [
            "s6", "s7", "s8", "s9",
        ]
