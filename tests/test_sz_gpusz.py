"""Tests for the GPU-SZ facade's paper-documented restrictions."""

import numpy as np
import pytest

from conftest import ulp_tolerance
from repro.compressors import GPUSZ, CompressorMode
from repro.errors import DataError, UnsupportedModeError
from repro.util.dims import convert_1d_to_3d, convert_3d_to_1d


@pytest.fixture(scope="module")
def gpusz():
    return GPUSZ()


class TestRestrictions:
    def test_rejects_1d_input(self, gpusz):
        with pytest.raises(DataError, match="3-D"):
            gpusz.compress(np.ones(100, dtype=np.float32), error_bound=0.1)

    def test_rejects_2d_input(self, gpusz):
        with pytest.raises(DataError, match="3-D"):
            gpusz.compress(np.ones((10, 10), dtype=np.float32), error_bound=0.1)

    def test_rejects_pw_rel_mode(self, gpusz, smooth_field3d):
        with pytest.raises(UnsupportedModeError):
            gpusz.compress(smooth_field3d, error_bound=0.1, mode="pw_rel")

    def test_abs_mode_works(self, gpusz, smooth_field3d):
        buf = gpusz.compress(smooth_field3d, error_bound=1e-2)
        assert buf.mode is CompressorMode.ABS
        recon = gpusz.decompress(buf)
        assert np.abs(recon - smooth_field3d).max() <= 1e-2 + ulp_tolerance(smooth_field3d)


class TestPaperWorkflow:
    def test_1d_via_dimension_conversion(self, gpusz):
        """The full Section IV-B-4 path: 1-D -> 3-D -> GPU-SZ -> 1-D."""
        rng = np.random.default_rng(0)
        data = (rng.random(3000) * 256).astype(np.float32)
        parts, n = convert_1d_to_3d(data, (8, 8, 8))
        recon_parts = np.stack(
            [gpusz.decompress(gpusz.compress(p, error_bound=0.005)) for p in parts]
        )
        recon = convert_3d_to_1d(recon_parts, n)
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= 0.005 + ulp_tolerance(data)

    def test_pwrel_via_log_workaround(self, gpusz):
        """The paper's velocity-field recipe: log transform + ABS mode."""
        rng = np.random.default_rng(1)
        vel = (rng.standard_normal((12, 12, 12)) * 1000).astype(np.float32)
        buf = gpusz.compress_pwrel_via_log(vel, pwrel=0.025)
        recon = gpusz.decompress(buf)
        nz = vel != 0
        rel = np.abs((recon[nz].astype(np.float64) - vel[nz]) / vel[nz])
        assert rel.max() <= 0.025 * (1 + 1e-5)

    def test_pwrel_via_log_requires_3d(self, gpusz):
        with pytest.raises(DataError):
            gpusz.compress_pwrel_via_log(np.ones(10, dtype=np.float32), 0.1)
