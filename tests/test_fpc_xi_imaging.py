"""Tests for the FPC lossless baseline, the correlation function, and
image rendering."""

import numpy as np
import pytest

from repro.cosmo.power_spectrum import correlation_function, power_spectrum
from repro.errors import CorruptStreamError, DataError
from repro.foresight.imaging import read_pgm, render_slice, write_pgm
from repro.lossless.fpc import fpc_compress, fpc_decompress


class TestFPC:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bit_exact_round_trip(self, dtype):
        rng = np.random.default_rng(0)
        data = (rng.standard_normal(2001) * 1e5).astype(dtype)
        back = fpc_decompress(fpc_compress(data))
        assert back.dtype == dtype
        assert np.array_equal(back.view(np.uint8), data.view(np.uint8))

    def test_odd_length_float32(self):
        data = np.arange(7, dtype=np.float32)
        assert np.array_equal(fpc_decompress(fpc_compress(data)), data)

    def test_shape_preserved(self):
        data = np.zeros((3, 5, 7), dtype=np.float64)
        assert fpc_decompress(fpc_compress(data)).shape == (3, 5, 7)

    def test_special_values_survive(self):
        data = np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1e-300, -1e300])
        back = fpc_decompress(fpc_compress(data))
        assert np.array_equal(back.view(np.uint64), data.view(np.uint64))

    def test_smooth_data_compresses_well(self):
        data = np.linspace(0, 1, 4096)
        ratio = data.nbytes / len(fpc_compress(data))
        assert ratio > 2.0

    def test_paper_claim_under_2x_on_cosmology_fields(self, nyx_small, hacc_small):
        """Section II-A: lossless ratios 'typically lower than 2:1 for
        dense scientific data'."""
        for field in (nyx_small.fields["dark_matter_density"],
                      hacc_small.fields["vx"]):
            ratio = field.nbytes / len(fpc_compress(field))
            assert ratio < 2.0

    def test_lossy_beats_lossless_by_far(self, nyx_small):
        """The paper's framing: lossy reaches 5-15x where lossless stalls."""
        from repro.compressors import SZCompressor

        field = nyx_small.fields["dark_matter_density"]
        lossless_ratio = field.nbytes / len(fpc_compress(field))
        lossy = SZCompressor().compress(field, error_bound=float(field.std()) * 1e-2)
        assert lossy.compression_ratio > 3 * lossless_ratio

    def test_integer_dtype_rejected(self):
        with pytest.raises(DataError):
            fpc_compress(np.arange(10))

    def test_bad_magic_raises(self):
        with pytest.raises(CorruptStreamError):
            fpc_decompress(b"XXXX" + b"\x00" * 64)


class TestCorrelationFunction:
    def test_xi_zero_lag_equals_variance_limit(self):
        # xi at the smallest bin approaches the variance for a field with
        # only large-scale power.
        rng = np.random.default_rng(0)
        from repro.cosmo.grf import gaussian_random_field
        from repro.cosmo.spectra import CosmoPowerSpectrum

        f = gaussian_random_field(32, 100.0, CosmoPowerSpectrum(), rng)
        res = correlation_function(f, 100.0, nbins=10)
        assert res.xi[0] > 0
        assert res.xi[0] <= f.var() * 1.05

    def test_xi_decreases_with_separation_for_clustered_field(self, nyx_small):
        f = nyx_small.fields["dark_matter_density"].astype(np.float64)
        res = correlation_function(f, nyx_small.box_size, nbins=8)
        assert res.xi[0] > res.xi[-1]

    def test_white_noise_xi_near_zero_at_large_r(self):
        rng = np.random.default_rng(1)
        f = rng.standard_normal((24, 24, 24))
        res = correlation_function(f, 10.0, nbins=8)
        assert abs(res.xi[-1]) < 0.05 * f.var()

    def test_consistency_with_power_spectrum(self):
        # A field with more power has a larger xi everywhere (same shape).
        rng = np.random.default_rng(2)
        from repro.cosmo.grf import gaussian_random_field
        from repro.cosmo.spectra import power_law_spectrum

        f = gaussian_random_field(24, 50.0, power_law_spectrum(10.0, -2.0), rng)
        xi1 = correlation_function(f, 50.0, nbins=6)
        xi2 = correlation_function(2 * f, 50.0, nbins=6)
        assert np.allclose(xi2.xi, 4 * xi1.xi)

    def test_validation(self):
        with pytest.raises(DataError):
            correlation_function(np.zeros((4, 8, 8)), 10.0)


class TestImaging:
    def test_render_and_read_pgm(self, tmp_path, nyx_small):
        img = render_slice(nyx_small.fields["baryon_density"])
        assert img.dtype == np.uint8 and img.ndim == 2
        path = write_pgm(tmp_path / "slice.pgm", img)
        back = read_pgm(path)
        assert np.array_equal(back, img)

    def test_pinned_scaling_makes_renders_comparable(self, nyx_small):
        f = nyx_small.fields["baryon_density"]
        vmin, vmax = float(f[f > 0].min()), float(f.max())
        a = render_slice(f, vmin=vmin, vmax=vmax)
        b = render_slice(f * 1.0, vmin=vmin, vmax=vmax)
        assert np.array_equal(a, b)

    def test_visually_similar_reconstruction(self, nyx_small):
        """Fig. 1's visual point: the PW_REL=0.1 render is nearly pixel-
        identical to the original."""
        from repro.compressors.sz import GPUSZ

        f = nyx_small.fields["baryon_density"]
        sz = GPUSZ()
        recon = sz.decompress(sz.compress_pwrel_via_log(f, 0.1))
        vmin, vmax = float(f[f > 0].min()), float(f.max())
        a = render_slice(f, vmin=vmin, vmax=vmax).astype(int)
        b = render_slice(recon, vmin=vmin, vmax=vmax).astype(int)
        assert np.mean(np.abs(a - b)) < 3.0  # of 255 gray levels

    def test_axis_and_index_selection(self, nyx_small):
        f = nyx_small.fields["temperature"]
        img0 = render_slice(f, axis=0, index=3)
        img1 = render_slice(f, axis=1, index=3)
        assert img0.shape == img1.shape
        assert not np.array_equal(img0, img1)

    def test_constant_field_renders_black(self):
        img = render_slice(np.ones((8, 8, 8)), log_scale=False)
        assert img.max() == 0

    def test_validation(self, tmp_path):
        with pytest.raises(DataError):
            render_slice(np.zeros((4, 4)))
        with pytest.raises(DataError):
            render_slice(np.zeros((4, 4, 4)), axis=3)
        with pytest.raises(DataError):
            write_pgm(tmp_path / "x.pgm", np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(DataError):
            read_pgm(__file__)
