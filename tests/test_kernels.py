"""The kernel-backend registry: selection, fallback, and propagation.

Covers the dispatch contract of :mod:`repro.kernels` — environment and
override precedence, capability probing, call-time trip-and-degrade —
plus the three places a backend selection must provably travel:
``process_map`` worker processes, the streaming CBench engine, and a
running service daemon (asserted via STATS / METRICS).
"""

import numpy as np
import pytest

from repro import kernels
from repro.errors import ConfigError, DataError, KernelUnavailableError
from repro.kernels.registry import Backend, KernelRegistry
from repro.parallel.executor import _apply_chunk, process_map


# -- fault-injection fixtures (module-level: importable by impl spec) -------

CALLS = {"boom": 0, "ref": 0}


def _ref_impl(x):
    CALLS["ref"] += 1
    return x * 2


def _boom_impl(x):
    CALLS["boom"] += 1
    raise RuntimeError("native kernel exploded")


def _bad_data_impl(x):
    raise DataError("input rejected")


def _probe_fail():
    raise KernelUnavailableError("no compiler on this host")


def _worker_backend(task):
    """process_map task body: report the backend the worker resolved."""
    return kernels.requested_backend()


def _fresh(native_impl, probe=None):
    reg = KernelRegistry()
    reg.register(Backend(name="scalar", impls={"demo.k": "test_kernels:_ref_impl"}))
    reg.register(Backend(
        name="native", impls={"demo.k": f"test_kernels:{native_impl}"}, probe=probe,
    ))
    return reg


class TestSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
        monkeypatch.delenv(kernels.LEGACY_SCALAR_ENV, raising=False)
        assert kernels.requested_backend() == "auto"

    @pytest.mark.parametrize("value", ["scalar", "numpy", "native", "auto"])
    def test_env_values(self, monkeypatch, value):
        monkeypatch.setenv(kernels.BACKEND_ENV, value)
        assert kernels.requested_backend() == value

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV, "cuda")
        with pytest.raises(ConfigError, match="REPRO_BACKEND"):
            kernels.requested_backend()

    def test_legacy_scalar_alias(self, monkeypatch):
        monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
        monkeypatch.setenv(kernels.LEGACY_SCALAR_ENV, "1")
        assert kernels.requested_backend() == "scalar"
        # The new variable supersedes the deprecated alias.
        monkeypatch.setenv(kernels.BACKEND_ENV, "numpy")
        assert kernels.requested_backend() == "numpy"

    def test_use_restores_override(self, monkeypatch):
        monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
        monkeypatch.delenv(kernels.LEGACY_SCALAR_ENV, raising=False)
        assert kernels.current_override() is None
        with kernels.use("scalar"):
            assert kernels.requested_backend() == "scalar"
            with kernels.use("numpy"):
                assert kernels.requested_backend() == "numpy"
            assert kernels.requested_backend() == "scalar"
        assert kernels.current_override() is None

    def test_use_none_is_noop(self):
        with kernels.use(None):
            assert kernels.current_override() is None

    def test_set_backend_validates(self):
        with pytest.raises(ConfigError):
            kernels.set_backend("gpu")

    def test_explicit_argument_beats_override(self):
        with kernels.use("native"):
            assert kernels.resolve_name("sz.lorenzo", "scalar") == "scalar"

    def test_active_covers_every_kernel(self):
        active = kernels.active("scalar")
        assert set(active) >= {
            "sz.lorenzo", "sz.lorenzo_inverse", "pack.varlen",
            "huffman.package_merge", "huffman.canonical",
            "huffman.encode", "huffman.decode",
            "zfp.transpose", "zfp.transpose_inverse",
            "zfp.encode", "zfp.decode",
        }
        assert set(active.values()) == {"scalar"}

    def test_numpy_tier_resolves_everywhere(self):
        assert set(kernels.active("numpy").values()) == {"numpy"}


class TestFallback:
    def test_call_time_failure_degrades_and_trips(self):
        reg = _fresh("_boom_impl")
        CALLS["boom"] = CALLS["ref"] = 0
        assert reg.call("demo.k", 21, backend="auto") == 42
        assert CALLS["boom"] == 1 and CALLS["ref"] == 1
        assert reg.last_used()["demo.k"] == "scalar"
        assert ("native", "demo.k") in reg.tripped()
        # The tripped pair is skipped on the next call: no second boom.
        assert reg.call("demo.k", 1, backend="auto") == 2
        assert CALLS["boom"] == 1

    def test_probe_time_failure_skips_tier(self):
        reg = _fresh("_ref_impl", probe=_probe_fail)
        CALLS["ref"] = 0
        name, _ = reg.resolve("demo.k", "auto")
        assert name == "scalar"
        assert "no compiler" in reg.backends()["native"].unavailable_reason()
        assert reg.tripped() == {}  # probe failures are not call trips

    def test_explicit_tier_still_degrades(self):
        # A daemon pinned to `native` on a host without it keeps serving.
        reg = _fresh("_ref_impl", probe=_probe_fail)
        assert reg.call("demo.k", 3, backend="native") == 6
        assert reg.last_used()["demo.k"] == "scalar"

    def test_repro_errors_are_results_not_failures(self):
        reg = _fresh("_bad_data_impl")
        with pytest.raises(DataError, match="input rejected"):
            reg.call("demo.k", 1, backend="auto")
        assert reg.tripped() == {}  # data errors must not degrade the tier
        assert reg.last_used()["demo.k"] == "native"

    def test_scalar_failure_surfaces(self):
        reg = KernelRegistry()
        reg.register(Backend(
            name="scalar", impls={"demo.k": "test_kernels:_boom_impl"}
        ))
        with pytest.raises(RuntimeError, match="exploded"):
            reg.call("demo.k", 1, backend="scalar")

    def test_unknown_kernel(self):
        reg = _fresh("_ref_impl")
        with pytest.raises(KernelUnavailableError, match="no backend provides"):
            reg.resolve("demo.missing")

    def test_real_registry_never_fails_resolution(self):
        # scalar provides every kernel, so auto resolution always lands.
        for kernel in kernels.active():
            name, fn = kernels.REGISTRY.resolve(kernel, "auto")
            assert callable(fn) and name in kernels.TIER_ORDER


class TestNativeTier:
    def test_flavor_env_validated(self, monkeypatch):
        from repro.kernels import native

        monkeypatch.setenv(native.FLAVOR_ENV, "fortran")
        native.reset()
        try:
            with pytest.raises(ConfigError, match="REPRO_NATIVE_FLAVOR"):
                native.probe()
        finally:
            monkeypatch.delenv(native.FLAVOR_ENV, raising=False)
            native.reset()

    def test_probe_is_memoized(self):
        from repro.kernels import native

        try:
            native.probe()
        except KernelUnavailableError:
            pytest.skip("native tier unavailable here")
        assert native.flavor() in ("numba", "cc")


class TestTelemetryExport:
    def test_publish_gauges(self):
        from repro.telemetry import Telemetry

        tm = Telemetry("test")
        mapping = kernels.publish_gauges(tm)
        assert set(mapping) == set(kernels.active())
        flat = str(tm.metrics.snapshot())
        assert "kernels.backend" in flat and "sz.lorenzo" in flat
        from repro.telemetry.exposition import render_prometheus

        text = render_prometheus(tm.metrics)
        assert 'kernels_backend{stage="sz.lorenzo"}' in text
        assert 'kernels_backend_info{backend="' in text


class TestPropagation:
    def test_apply_chunk_installs_and_restores(self):
        seen = []

        def probe_task(task):
            seen.append(kernels.requested_backend())
            return task

        assert _apply_chunk(probe_task, [1, 2], None, "scalar") == [1, 2]
        assert seen == ["scalar", "scalar"]
        assert kernels.current_override() is None

    def test_process_map_workers_inherit_override(self, monkeypatch):
        monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
        monkeypatch.delenv(kernels.LEGACY_SCALAR_ENV, raising=False)
        with kernels.use("scalar"):
            out = process_map(_worker_backend, list(range(8)), workers=2)
        assert out == ["scalar"] * 8
        # Without an override, workers fall back to their environment.
        assert process_map(_worker_backend, [0, 1], workers=2) == ["auto"] * 2

    def test_cbench_backend_reaches_streaming_engine(self):
        from repro.foresight.cbench import CBench
        from repro.foresight.config import CompressorSweep

        rng = np.random.default_rng(2)
        fields = {"x": rng.standard_normal((256,)).astype(np.float32)}
        sweep = CompressorSweep(
            name="sz", mode="abs", sweep={"error_bound": [1e-2]}
        )
        bench = CBench(fields, chunk_budget=256, backend="scalar")
        rec = bench.run_one(sweep, "x", 1e-2)
        assert rec.meta["kernels"]["sz.lorenzo"] == "scalar"
        assert rec.meta["streaming"]["n_chunks"] > 1
        assert kernels.current_override() is None

    def test_cbench_validates_backend(self):
        from repro.foresight.cbench import CBench

        with pytest.raises(ConfigError, match="backend"):
            CBench({"x": np.zeros(4, dtype=np.float32)}, backend="gpu")

    def test_daemon_reports_backend_in_stats_and_metrics(self):
        from repro.service import ServiceClient, ServiceThread

        with ServiceThread(backend="scalar") as st:
            with ServiceClient(port=st.port) as client:
                arr = np.linspace(0, 1, 512, dtype=np.float32)
                buf = client.compress(arr, compressor="sz", mode="abs",
                                      value=1e-3)
                stats = client.stats()
                text = client.metrics_text()
        assert stats["kernels"]["requested"] == "scalar"
        assert set(stats["kernels"]["active"].values()) == {"scalar"}
        assert stats["kernels"]["tripped"] == {}
        assert 'kernels_backend{stage="sz.lorenzo"} 0' in text
        assert 'kernels_backend_info{backend="scalar",stage="sz.lorenzo"} 1' in text
        # The daemon restored the embedding process's selection on drain.
        assert kernels.current_override() is None

    def test_zfp_batched_compat(self, monkeypatch):
        monkeypatch.setenv(kernels.LEGACY_SCALAR_ENV, "1")
        monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
        from repro.compressors.zfp.zfpcompressor import ZFPCompressor

        assert ZFPCompressor().batched is False
        assert ZFPCompressor().backend == "scalar"
        assert ZFPCompressor(batched=True).batched is True
        assert ZFPCompressor(batched=False).backend == "scalar"
