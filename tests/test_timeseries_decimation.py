"""Tests for snapshot time series, decimation, and the §I comparison."""

import numpy as np
import pytest

from repro.analysis.decimation_study import decimation_vs_compression
from repro.compressors.decimation import DecimatedSeries, decimate
from repro.cosmo.timeseries import SnapshotSeries, make_nyx_series
from repro.errors import DataError


@pytest.fixture(scope="module")
def series():
    return make_nyx_series(grid_size=16, n_snapshots=6, seed=4)


class TestSeriesGenerator:
    def test_shape_and_count(self, series):
        assert series.n_snapshots == 6
        for snap in series.snapshots:
            assert snap.grid_size == 16
            assert len(snap.fields) == 6

    def test_snapshots_are_correlated(self, series):
        a = series.snapshots[0].fields["dark_matter_density"].ravel()
        b = series.snapshots[1].fields["dark_matter_density"].ravel()
        assert np.corrcoef(a, b)[0, 1] > 0.8

    def test_structure_grows_with_time(self, series):
        # Later snapshots are more clustered: larger density variance.
        stds = [s.fields["dark_matter_density"].std() for s in series.snapshots]
        assert stds[-1] > stds[0]

    def test_velocities_scale_with_growth_rate(self, series):
        v0 = np.abs(series.snapshots[0].fields["velocity_x"]).max()
        v1 = np.abs(series.snapshots[-1].fields["velocity_x"]).max()
        assert v1 > v0

    def test_validation(self):
        with pytest.raises(DataError):
            make_nyx_series(grid_size=16, n_snapshots=1)
        with pytest.raises(DataError):
            SnapshotSeries(times=np.array([0.0, 0.0]), snapshots=[None, None])


class TestDecimation:
    def test_kept_snapshots_bit_exact(self, series):
        dec = decimate(series, keep_every=2)
        recon = dec.reconstruct()
        for i in dec.kept_indices:
            for name in series.field_names:
                assert np.array_equal(
                    recon[i].fields[name], series.snapshots[i].fields[name]
                )

    def test_last_snapshot_always_kept(self, series):
        dec = decimate(series, keep_every=4)
        assert dec.kept_indices[-1] == series.n_snapshots - 1

    def test_storage_ratio(self, series):
        dec = decimate(series, keep_every=2)
        assert dec.storage_ratio == series.n_snapshots / dec.kept_indices.size

    def test_linear_beats_nearest_on_smooth_growth(self, series):
        from repro.metrics.error import psnr

        lin = decimate(series, keep_every=2, interpolation="linear").reconstruct()
        near = decimate(series, keep_every=2, interpolation="nearest").reconstruct()
        i = 1  # a dropped snapshot
        orig = series.snapshots[i].fields["dark_matter_density"]
        assert psnr(orig, lin[i].fields["dark_matter_density"]) >= psnr(
            orig, near[i].fields["dark_matter_density"]
        )

    def test_reconstruction_count_and_dtype(self, series):
        recon = decimate(series, keep_every=3).reconstruct()
        assert len(recon) == series.n_snapshots
        assert recon[1].fields["temperature"].dtype == np.float32

    def test_validation(self, series):
        with pytest.raises(DataError):
            decimate(series, keep_every=1)
        with pytest.raises(DataError):
            decimate(series, interpolation="cubic")


class TestDecimationVsCompression:
    def test_compression_dominates(self, series):
        rows = decimation_vs_compression(series, keep_everies=(2,))
        dec, sz = rows
        assert sz["worst_psnr_db"] > dec["worst_psnr_db"]
        assert sz["worst_pk_deviation"] <= dec["worst_pk_deviation"]

    def test_storage_budgets_comparable(self, series):
        rows = decimation_vs_compression(series, keep_everies=(2,))
        dec, sz = rows
        assert sz["storage_ratio"] >= 0.7 * dec["storage_ratio"]
