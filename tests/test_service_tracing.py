"""End-to-end distributed tracing, Prometheus exposition, and the
dashboard: one client call must yield one stitched span tree, METRICS
must render valid exposition text, and the MSG1 protocol must stay
byte-compatible when no trace context is present."""

import json
import logging
import re
import socket

import numpy as np
import pytest

from repro import telemetry
from repro.service import ServiceClient, ServiceThread, protocol
from repro.telemetry import context as trace_context
from repro.telemetry.exposition import (
    PROM_CONTENT_TYPE,
    parse_metric_key,
    render_prometheus,
)
from repro.telemetry.logs import JsonLogFormatter
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.top import render_frame


def _field(n=4096, seed=0):
    return np.random.default_rng(seed).normal(size=n).astype(np.float32)


# -- protocol compatibility --------------------------------------------------


class TestProtocolTraceField:
    def test_frame_round_trip_with_trace_field(self):
        header = {"op": "compress", protocol.TRACE_FIELD:
                  "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"}
        decoded, payload = protocol.decode_frame(
            protocol.encode_frame(header, b"xyz")
        )
        assert decoded == header
        assert payload == b"xyz"
        assert trace_context.extract(decoded) is not None

    def test_frame_without_trace_field_is_byte_identical_to_before(self):
        header = {"id": 1, "op": "stats"}
        frame = protocol.encode_frame(header)
        # The exact bytes an old client produced: nothing about tracing
        # may leak into an untraced frame.
        raw = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        assert frame == protocol.PREFIX.pack(protocol.MAGIC, len(raw), 0) + raw
        decoded, _ = protocol.decode_frame(frame)
        assert protocol.TRACE_FIELD not in decoded
        assert trace_context.extract(decoded) is None

    def test_untraced_client_header_carries_no_trace_field(self):
        captured = {}
        original = ServiceClient._roundtrip

        def spy(self, header, payload):
            captured.update(header)
            return {"status": "ok"}, b""

        ServiceClient._roundtrip = spy
        try:
            client = ServiceClient(port=1)
            client.stats()
        finally:
            ServiceClient._roundtrip = original
        assert protocol.TRACE_FIELD not in captured

    def test_old_style_request_against_new_server(self):
        """A raw socket speaking trace-less MSG1 (an old client) is served."""
        with ServiceThread(max_pending=8) as svc:
            with socket.create_connection(("127.0.0.1", svc.port), 5) as sock:
                sock.settimeout(30)
                data = _field(256)
                header = {"id": 1, "op": "compress", "compressor": "sz",
                          "mode": "abs", "value": 1e-3, "options": {},
                          **protocol.array_fields(data)}
                protocol.write_frame_sock(
                    sock, header, protocol.pack_array(data)
                )
                reply, body = protocol.read_frame_sock(sock)
        assert reply["status"] == "ok"
        assert protocol.TRACE_FIELD not in reply
        assert len(body) > 0


# -- the tentpole: one request, one stitched tree ----------------------------


class TestStitchedTraces:
    def test_sweep_produces_one_connected_cross_process_tree(self):
        with telemetry.enabled_telemetry("client") as tm:
            with ServiceThread(workers=2, max_pending=16) as svc:
                with ServiceClient(port=svc.port) as client:
                    rows = client.sweep(_field(), [{
                        "name": "sz", "mode": "abs",
                        "sweep": {"error_bound": [1e-3, 1e-2]},
                    }])
        assert len(rows) == 2
        spans = tm.tracer.finished_spans()
        root = next(s for s in spans if s.name == "client.sweep")
        tree = [s for s in spans if s.trace_id == root.trace_id]

        # Single trace id covers client, server, and worker spans.
        names = {s.name for s in tree}
        assert {"client.sweep", "service.request", "service.queue_wait",
                "service.dispatch", "cbench.run_one"} <= names
        assert any(n.startswith("sz.") for n in names), names

        # Exactly one root (the client call); every other span's ctx
        # parent is present in the tree — i.e. the tree is connected.
        ids = {s.ctx_id for s in tree}
        roots = [s for s in tree
                 if s.ctx_parent_id is None or s.ctx_parent_id not in ids]
        assert [s.name for s in roots] == ["client.sweep"]

        # Walking down from the root reaches every span.
        children = {}
        for s in tree:
            children.setdefault(s.ctx_parent_id, []).append(s)
        reached, frontier = set(), [root.ctx_id]
        while frontier:
            nxt = frontier.pop()
            for child in children.get(nxt, []):
                if child.ctx_id not in reached:
                    reached.add(child.ctx_id)
                    frontier.append(child.ctx_id)
        assert len(reached) == len(tree) - 1  # everything except the root

    def test_compress_decompress_each_get_their_own_trace(self):
        with telemetry.enabled_telemetry("client") as tm:
            with ServiceThread(max_pending=16) as svc:
                with ServiceClient(port=svc.port) as client:
                    buf = client.compress(_field(512), "sz",
                                          mode="abs", value=1e-3)
                    client.decompress(buf)
        spans = tm.tracer.finished_spans()
        t_compress = {s.trace_id for s in spans if s.name == "client.compress"}
        t_decompress = {s.trace_id for s in spans
                        if s.name == "client.decompress"}
        assert len(t_compress) == 1 and len(t_decompress) == 1
        assert t_compress != t_decompress
        for trace_id in (*t_compress, *t_decompress):
            names = {s.name for s in spans if s.trace_id == trace_id}
            assert "service.request" in names
            assert "service.dispatch" in names

    def test_dispatch_span_is_tagged_with_request_id_and_batch_size(self):
        with telemetry.enabled_telemetry("client") as tm:
            with ServiceThread(max_pending=16) as svc:
                with ServiceClient(port=svc.port) as client:
                    client.compress(_field(512), "sz", mode="abs", value=1e-3)
        dispatch = next(s for s in tm.tracer.finished_spans()
                        if s.name == "service.dispatch")
        assert dispatch.attrs["op"] == "compress"
        assert dispatch.attrs["compressor"] == "sz"
        assert dispatch.attrs["batch_size"] >= 1
        assert isinstance(dispatch.attrs["request_id"], int)

    def test_trace_out_dumps_spans_on_drain(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with ServiceThread(max_pending=8, trace_out=str(out)) as svc:
            with ServiceClient(port=svc.port) as client:
                client.compress(_field(512), "sz", mode="abs", value=1e-3)
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) > 0
        assert {"name", "start", "end", "duration"} <= set(lines[0])
        assert any(s["name"] == "service.request" for s in lines)


# -- metrics exposition ------------------------------------------------------


def _parse_exposition(text):
    """name -> [(labels_str, value)] for every sample line."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$", line)
        assert match, f"unparseable exposition line: {line!r}"
        name, labels, value = match.groups()
        float(value.replace("+Inf", "inf"))  # every value must be numeric
        samples.setdefault(name, []).append((labels or "", value))
    return samples


class TestExposition:
    def test_parse_metric_key(self):
        assert parse_metric_key("service.bytes_in") == ("service_bytes_in", {})
        name, labels = parse_metric_key('service.latency_ms{op="compress"}')
        assert name == "service_latency_ms"
        assert labels == {"op": "compress"}
        name, labels = parse_metric_key('x{a="1",b="2"}')
        assert labels == {"a": "1", "b": "2"}

    def test_render_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.count("service.requests", 3)
        reg.count('service.requests.by_op{op="compress"}', 2)
        reg.set_gauge("service.queue_depth", 5)
        reg.observe("service.latency_ms", 3.0, bounds=(1, 5, 10))
        reg.observe("service.latency_ms", 7.0, bounds=(1, 5, 10))
        reg.observe("service.latency_ms", 99.0, bounds=(1, 5, 10))
        text = render_prometheus(reg)
        samples = _parse_exposition(text)
        assert samples["service_requests_total"] == [("", "3")]
        assert samples["service_queue_depth"] == [("", "5")]
        assert ('{op="compress"}', "2") in samples["service_requests_by_op_total"]
        # Histogram: buckets must be cumulative (monotone), +Inf == count.
        buckets = dict(samples["service_latency_ms_bucket"])
        values = [int(buckets[f'{{le="{b}"}}']) for b in ("1", "5", "10")]
        assert values == sorted(values) == [0, 1, 2]
        assert int(buckets['{le="+Inf"}']) == 3
        assert samples["service_latency_ms_count"] == [("", "3")]
        assert float(samples["service_latency_ms_sum"][0][1]) == pytest.approx(109.0)

    def test_histogram_buckets_monotone_from_live_daemon(self):
        with ServiceThread(max_pending=8) as svc:
            with ServiceClient(port=svc.port) as client:
                for seed in range(3):
                    client.compress(_field(512, seed), "sz",
                                    mode="abs", value=1e-3)
                text = client.metrics_text()
        samples = _parse_exposition(text)
        assert "service_requests_total" in samples
        assert "service_uptime_seconds" in samples
        for name, rows in samples.items():
            if not name.endswith("_bucket"):
                continue
            by_series = {}
            for labels, value in rows:
                key = re.sub(r'le="[^"]*",?', "", labels)
                by_series.setdefault(key, []).append(float(
                    value.replace("+Inf", "inf")))
            for series in by_series.values():
                assert series == sorted(series), f"{name} not cumulative"

    def test_metrics_op_reply_carries_content_type(self):
        with ServiceThread(max_pending=8) as svc:
            with ServiceClient(port=svc.port) as client:
                reply, body = client._request({"op": "metrics"})
        assert reply["content_type"] == PROM_CONTENT_TYPE
        assert b"# TYPE" in body


# -- stats fields, dashboard, logs -------------------------------------------


class TestStatsAndDashboard:
    def test_stats_reports_uptime_inflight_and_window_n(self):
        with ServiceThread(max_pending=8) as svc:
            with ServiceClient(port=svc.port) as client:
                client.compress(_field(512), "sz", mode="abs", value=1e-3)
                stats = client.stats()
        assert stats["uptime_s"] > 0
        assert stats["requests_inflight"] == 0  # nothing besides STATS itself
        assert stats["latency"]["window_n"] >= 1
        assert stats["latency"]["window_n"] == stats["latency"]["window"]

    def test_render_frame_from_live_stats(self):
        with ServiceThread(max_pending=8) as svc:
            with ServiceClient(port=svc.port) as client:
                client.compress(_field(512), "sz", mode="abs", value=1e-3)
                first = client.stats()
                client.compress(_field(512, 1), "sz", mode="abs", value=1e-3)
                second = client.stats()
        frame = render_frame(second, first, dt=0.5, endpoint="x:1")
        assert "repro service x:1" in frame
        assert "qps" in frame and "p99" in frame
        assert "service.request" in frame  # top-stages table is populated
        # Rates come from the snapshot delta: 2 requests in 0.5 s = 4 qps.
        assert re.search(r"qps\s+4\.0", frame)

    def test_render_frame_without_previous_snapshot(self):
        frame = render_frame({"uptime_s": 1.0, "requests_total": 0,
                              "latency": {}, "metrics": {}})
        assert "–" in frame  # rates unknown on the first poll

    def test_json_log_formatter_stamps_trace_and_request_ids(self):
        record = logging.LogRecord(
            "repro.service", logging.INFO, __file__, 1, "served %s", ("x",),
            None,
        )
        ctx = trace_context.TraceContext("ab" * 16, "cd" * 8)
        with trace_context.use(ctx), trace_context.use_request_id("17"):
            line = JsonLogFormatter().format(record)
        out = json.loads(line)
        assert out["message"] == "served x"
        assert out["trace_id"] == "ab" * 16
        assert out["span_id"] == "cd" * 8
        assert out["request_id"] == "17"
        plain = json.loads(JsonLogFormatter().format(record))
        assert "trace_id" not in plain and "request_id" not in plain
