"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones run end to end in a
subprocess so a broken public API surfaces here (the slower simulation
examples are exercised piecemeal by their subsystem tests).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_all_examples_present(self):
        names = {p.stem for p in ALL_EXAMPLES}
        assert {
            "quickstart",
            "nyx_power_spectrum_study",
            "hacc_halo_preservation",
            "gpu_throughput_planning",
            "foresight_workflow",
            "decimation_vs_compression",
            "insitu_simulation_loop",
            "parallel_halo_pipeline",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("name", ["quickstart", "gpu_throughput_planning"])
    def test_fast_examples_run(self, name):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / f"{name}.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()
