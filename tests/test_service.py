"""The compression daemon: correctness under concurrency, backpressure,
deadlines, graceful drain, and the service CLI."""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.compressors.registry import (
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.errors import ConfigError, ServiceBusyError, ServiceError
from repro.service import ServiceClient, ServiceThread
from repro.service import protocol

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


class SleepyCompressor(Compressor):
    """Test-only codec that holds the batcher for a controllable time.

    Only usable with in-process batches (``workers=1``): worker
    processes import a fresh registry that has never seen it.
    """

    name = "sleepy-test"
    supported_modes = (CompressorMode.ABS,)

    def __init__(self, delay: float = 0.5) -> None:
        self.delay = delay

    def compress(self, data, error_bound=None, mode=None, **_):
        time.sleep(self.delay)
        data = np.asarray(data)
        return CompressedBuffer(
            payload=data.tobytes(),
            original_shape=data.shape,
            original_dtype=data.dtype,
            mode=CompressorMode.ABS,
            parameter=float(error_bound or 0.0),
        )

    def decompress(self, buf):
        return np.frombuffer(buf.payload, dtype=buf.original_dtype).reshape(
            buf.original_shape
        )


try:
    register_compressor("sleepy-test", SleepyCompressor)
except ConfigError:  # re-imported module; already registered
    pass


def _field(side: int = 12, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((side, side, side)) * 40).astype(np.float32)


def _counter(stats: dict, name: str) -> float:
    inst = stats.get("metrics", {}).get(name)
    return float(inst["value"]) if inst else 0.0


class TestBasicOps:
    def test_compress_matches_direct_call(self):
        field = _field()
        with ServiceThread() as st, ServiceClient(port=st.port) as client:
            buf = client.compress(field, "sz", mode="abs", value=0.1)
            local = get_compressor("sz").compress(
                field, mode="abs", error_bound=0.1
            )
            assert buf.payload == local.payload
            assert buf.compression_ratio == local.compression_ratio
            assert buf.mode is CompressorMode.ABS
            assert buf.original_shape == field.shape
            recon = client.decompress(buf)
            assert np.array_equal(recon, get_compressor("sz").decompress(local))

    def test_list_health_stats(self):
        with ServiceThread() as st, ServiceClient(port=st.port) as client:
            assert client.list_compressors() == available_compressors()
            health = client.health()
            assert health["status"] == "ok" and not health["draining"]
            client.compress(_field(8), "zfp", mode="fixed_rate", value=8.0)
            stats = client.stats()
            assert stats["requests_total"] >= 3
            assert stats["latency"]["window"] >= 1
            assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"]
            assert _counter(stats, "service.requests.compress") >= 1
            assert _counter(stats, "service.bytes_in") > 0

    def test_error_reply_does_not_kill_connection(self):
        with ServiceThread() as st, ServiceClient(port=st.port) as client:
            with pytest.raises(ServiceError, match="unknown compressor"):
                client.compress(_field(8), "no-such-codec", value=0.1)
            # Same socket keeps working afterwards.
            buf = client.compress(_field(8), "sz", mode="abs", value=0.5)
            assert buf.compressed_nbytes > 0

    def test_bad_array_fails_alone(self):
        with ServiceThread() as st, ServiceClient(port=st.port) as client:
            ints = np.arange(64, dtype=np.int64).reshape(4, 4, 4)
            with pytest.raises(ServiceError, match="dtype"):
                client.compress(ints, "sz", mode="abs", value=0.1)

    def test_unknown_op_is_an_error(self):
        with ServiceThread() as st:
            with socket.create_connection(("127.0.0.1", st.port)) as sock:
                protocol.write_frame_sock(sock, {"op": "frobnicate", "id": 1})
                reply, _ = protocol.read_frame_sock(sock)
                assert reply["status"] == "error"
                assert reply["code"] == "bad_op"

    def test_malformed_frame_gets_protocol_error_then_close(self):
        with ServiceThread() as st:
            with socket.create_connection(("127.0.0.1", st.port)) as sock:
                sock.sendall(b"GARBAGE-NOT-MSG1" * 4)
                reply, _ = protocol.read_frame_sock(sock)
                assert reply["status"] == "error"
                assert reply["code"] == "protocol"
                assert sock.recv(1) == b""  # server hung up: no resync
            # The daemon survives hostile input: a new connection works.
            with ServiceClient(port=st.port) as client:
                assert client.health()["status"] == "ok"

    def test_fuzzed_junk_never_kills_the_daemon(self):
        rng = np.random.default_rng(42)
        with ServiceThread() as st:
            for _ in range(10):
                blob = rng.integers(
                    0, 256, size=int(rng.integers(1, 200)), dtype=np.uint8
                ).tobytes()
                with socket.create_connection(("127.0.0.1", st.port)) as sock:
                    sock.sendall(blob)
                    sock.shutdown(socket.SHUT_WR)
                    sock.recv(1 << 16)  # whatever the server answers
            with ServiceClient(port=st.port) as client:
                assert client.health()["status"] == "ok"


class TestConcurrentStress:
    def test_responses_bit_exact_under_concurrency(self):
        """N threads hammer one daemon; every reply must be byte-identical
        to the direct library call for its configuration."""
        field = _field(16)
        configs = [
            ("sz", "abs", 0.5),
            ("sz", "abs", 0.1),
            ("zfp", "fixed_rate", 8.0),
            ("zfp", "fixed_rate", 4.0),
        ]
        expected = {}
        for name, mode, value in configs:
            knob = {"abs": "error_bound", "fixed_rate": "rate"}[mode]
            expected[(name, mode, value)] = get_compressor(name).compress(
                field, mode=mode, **{knob: value}
            ).payload

        n_threads, per_thread = 8, 8
        failures: list[str] = []

        with ServiceThread(max_pending=256) as st:
            before_client = ServiceClient(port=st.port)
            before = before_client.stats()
            before_client.close()

            def worker(tid: int) -> None:
                with ServiceClient(port=st.port, seed=tid) as client:
                    for i in range(per_thread):
                        name, mode, value = configs[(tid + i) % len(configs)]
                        buf = client.compress(field, name, mode=mode, value=value)
                        if buf.payload != expected[(name, mode, value)]:
                            failures.append(
                                f"thread {tid} req {i}: {name}/{mode}/{value}"
                            )

            threads = [
                threading.Thread(target=worker, args=(t,))
                for t in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            stats_client = ServiceClient(port=st.port)
            stats = stats_client.stats()
            stats_client.close()

        assert not failures, failures
        # Telemetry counters are process-wide and survive across servers,
        # so assert on deltas over this test's window.
        compressed = (
            _counter(stats, "service.requests.compress")
            - _counter(before, "service.requests.compress")
        )
        batches = (
            _counter(stats, "service.batches")
            - _counter(before, "service.batches")
        )
        assert compressed == n_threads * per_thread
        # Concurrent same-config arrivals must have coalesced: strictly
        # fewer dispatches than requests.
        assert batches < n_threads * per_thread

    def test_large_fields_through_shm_dispatch(self):
        """A multi-request batch of >=64 KiB arrays with workers=2 takes
        the shared-memory dispatch path and stays bit-exact."""
        field = _field(32)  # 128 KiB: above SHM_MIN_BYTES
        expected = get_compressor("zfp").compress(
            field, mode="fixed_rate", rate=8.0
        ).payload
        results: list[bytes] = []
        with ServiceThread(workers=2, batch_window_s=0.1) as st:
            def worker() -> None:
                with ServiceClient(port=st.port) as client:
                    buf = client.compress(
                        field, "zfp", mode="fixed_rate", value=8.0
                    )
                    results.append(buf.payload)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
        assert len(results) == 4
        assert all(r == expected for r in results)


class TestBackpressure:
    def test_busy_reply_when_queue_full(self):
        field = _field(6)
        with ServiceThread(max_pending=1, workers=1, batch_window_s=0.0) as st:
            blocker_done = threading.Event()

            def blocker() -> None:
                with ServiceClient(port=st.port) as client:
                    client.compress(field, "sleepy-test", mode="abs", value=2.0)
                blocker_done.set()

            t = threading.Thread(target=blocker)
            t.start()
            # Wait until the blocker's request was *dequeued* (in flight).
            with ServiceClient(port=st.port) as probe:
                rejected0 = _counter(probe.stats(), "service.rejected_busy")
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    h = probe.health()
                    if h["requests_total"] >= 1 and h["queue_depth"] == 0:
                        break
                    time.sleep(0.01)

                # Fill the single queue slot from another thread...
                filler_started = threading.Event()

                def filler() -> None:
                    with ServiceClient(port=st.port) as client:
                        filler_started.set()
                        client.compress(field, "sz", mode="abs", value=0.5)

                f = threading.Thread(target=filler)
                f.start()
                filler_started.wait(5)
                deadline = time.monotonic() + 5
                while probe.health()["queue_depth"] < 1:
                    assert time.monotonic() < deadline, "filler never queued"
                    time.sleep(0.01)

                # ...so the next request must bounce with BUSY.
                with ServiceClient(port=st.port, busy_retries=0) as client:
                    with pytest.raises(ServiceBusyError):
                        client.compress(field, "sz", mode="abs", value=0.25)

                stats = probe.stats()
                assert _counter(stats, "service.rejected_busy") >= rejected0 + 1
            t.join(30)
            f.join(30)
            assert blocker_done.is_set()

    def test_client_retry_rides_out_the_busy_window(self):
        """With retries enabled the same overload resolves transparently."""
        field = _field(6)
        with ServiceThread(max_pending=1, workers=1, batch_window_s=0.0) as st:
            def blocker() -> None:
                with ServiceClient(port=st.port) as client:
                    client.compress(field, "sleepy-test", mode="abs", value=2.0)

            threads = [threading.Thread(target=blocker) for _ in range(3)]
            for t in threads:
                t.start()
                time.sleep(0.05)
            # Three sleepy requests saturate a 1-deep queue; a patient
            # client gets through anyway.
            with ServiceClient(
                port=st.port, busy_retries=40, retry_base_s=0.05, seed=1
            ) as client:
                buf = client.compress(field, "sz", mode="abs", value=0.5)
                assert buf.compressed_nbytes > 0
            for t in threads:
                t.join(60)


class TestDeadlines:
    def test_deadline_expires_in_queue(self):
        field = _field(6)
        with ServiceThread(max_pending=8, workers=1, batch_window_s=0.0) as st:
            def blocker() -> None:
                with ServiceClient(port=st.port) as client:
                    client.compress(field, "sleepy-test", mode="abs", value=2.0)

            t = threading.Thread(target=blocker)
            t.start()
            time.sleep(0.1)  # let the sleepy batch occupy the dispatcher
            with ServiceClient(port=st.port) as client:
                expired0 = _counter(client.stats(), "service.deadline_expired")
                with pytest.raises(ServiceError, match="deadline"):
                    client.compress(
                        field, "sz", mode="abs", value=0.5, timeout_ms=50
                    )
                stats = client.stats()
                assert _counter(stats, "service.deadline_expired") >= expired0 + 1
            t.join(30)


class TestGracefulDrain:
    def test_drain_finishes_in_flight_and_refuses_new(self):
        field = _field(6)
        with ServiceThread(workers=1, batch_window_s=0.0) as st:
            result: dict = {}

            def in_flight() -> None:
                with ServiceClient(port=st.port) as client:
                    result["buf"] = client.compress(
                        field, "sleepy-test", mode="abs", value=2.0
                    )

            t = threading.Thread(target=in_flight)
            t.start()
            time.sleep(0.15)  # request admitted and computing

            with ServiceClient(port=st.port) as probe:
                assert probe.health()["status"] == "ok"
                st.loop.call_soon_threadsafe(st.service.request_drain)
                deadline = time.monotonic() + 5
                while not st.service.draining:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # New work on an existing connection: refused as draining.
                with pytest.raises(ServiceBusyError):
                    probe.busy_retries = 0
                    probe.compress(field, "sz", mode="abs", value=0.5)

            t.join(30)
            assert result["buf"].payload == np.ascontiguousarray(field).tobytes()
        # ServiceThread.__exit__ joined the server thread: fully drained.
        assert not st.thread.is_alive()

    def test_sigterm_drains_the_cli_daemon(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=str(SRC))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", "0", "--quiet"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("serving on ")
            port = int(line.rsplit(":", 1)[1])
            with ServiceClient(port=port, connect_timeout_s=20) as client:
                buf = client.compress(
                    _field(8), "zfp", mode="fixed_rate", value=8.0
                )
                assert buf.compressed_nbytes > 0
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "drained" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)


class TestSweep:
    def test_sweep_matches_local_cbench_and_serves_warm(self, tmp_path):
        from repro.foresight.cbench import CBench
        from repro.foresight.config import CompressorSweep

        field = _field(10)
        sweeps = [{
            "name": "sz", "mode": "abs",
            "sweep": {"error_bound": [0.5, 0.25]},
        }]
        local = CBench(
            {"field": field}, keep_reconstructions=False
        ).run(CompressorSweep(name="sz", mode="abs",
                              sweep={"error_bound": [0.5, 0.25]}))
        # workers=1 keeps the sweep's cache lookups in the server process:
        # ResultCache stats are per-instance, so worker-process hits would
        # not show in the server's STATS (the rows' cache column still would).
        with ServiceThread(cache=str(tmp_path / "cache"), workers=1) as st:
            with ServiceClient(port=st.port) as client:
                cold = client.sweep(field, sweeps)
                warm = client.sweep(field, sweeps)
                stats = client.stats()
        assert [r["parameter"] for r in cold] == [r.parameter for r in local]
        assert [r["compression_ratio"] for r in cold] == [
            r.compression_ratio for r in local
        ]
        assert all(r["cache"] == "miss" for r in cold)
        assert all(r["cache"] == "hit" for r in warm)
        assert stats["cache"]["hits"] >= 2

    def test_sweep_without_entries_is_an_error(self):
        with ServiceThread() as st, ServiceClient(port=st.port) as client:
            with pytest.raises(ServiceError, match="sweeps"):
                client.sweep(_field(6), [])


class TestCli:
    def test_compress_subcommand_round_trip(self, tmp_path):
        field = _field(8)
        src = tmp_path / "field.npy"
        np.save(src, field)
        out = tmp_path / "field.sz"
        with ServiceThread() as st:
            from repro.service.cli import main

            rc = main([
                "compress", str(src), "--compressor", "sz",
                "--mode", "abs", "--value", "0.5",
                "--port", str(st.port), "--out", str(out),
            ])
        assert rc == 0
        local = get_compressor("sz").compress(field, mode="abs", error_bound=0.5)
        assert out.read_bytes() == local.payload
