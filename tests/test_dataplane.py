"""The zero-copy data plane: pipelined framing, shm handoff, and hygiene.

Three families of guarantees:

* **Protocol robustness** — request ids survive interleaving and
  duplication, and malformed or lying shm descriptors produce error
  replies (or a clean connection close), never a dead daemon.
* **Bit-exactness** — a reply served through a shared-memory segment is
  byte-identical to the same request served inline, for both the
  blocking and the pooled client.
* **Hygiene** — no shared-memory segments survive a client crash, a
  drained daemon, or a fork()ed worker pool (the owner-pid regression).
"""

import multiprocessing
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.compressors.registry import register_compressor
from repro.errors import ConfigError, ServiceError
from repro.service import (
    ClusterThread,
    PooledClient,
    ServiceClient,
    ServiceThread,
    protocol,
    routing_key,
)
from repro.parallel.shm import SegmentPool, SharedArray, ShmDescriptor, shm_enabled

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no POSIX shared memory here"
)

#: For tests that assert the shm path actually *ran* — under
#: REPRO_NO_SHM the transparent inline fallback is the correct
#: behavior, and the remaining tests in this file prove it.
requires_shm = pytest.mark.skipif(
    not shm_enabled(), reason="REPRO_NO_SHM disables the shm data plane"
)


def _psm_segments() -> set[str]:
    """Names of live shared-memory segments (best effort)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except OSError:  # pragma: no cover - platform without /dev/shm
        return set()


def _wait_until(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached in time")


def _counter(stats: dict, name: str) -> float:
    inst = stats.get("metrics", {}).get(name)
    return float(inst["value"]) if inst else 0.0


def _field(kib: int = 256, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n = (kib << 10) // 4
    return (rng.standard_normal(n) * 40).astype(np.float32)


class SlowpokeCompressor(Compressor):
    """Store-like codec that sleeps first (in-process batches only)."""

    name = "slowpoke-test"
    supported_modes = (CompressorMode.ABS,)

    def __init__(self, delay: float = 0.5) -> None:
        self.delay = delay

    def compress(self, data, error_bound=None, mode=None, **_):
        time.sleep(self.delay)
        data = np.asarray(data)
        return CompressedBuffer(
            payload=data.tobytes(),
            original_shape=data.shape,
            original_dtype=data.dtype,
            mode=CompressorMode.ABS,
            parameter=float(error_bound or 0.0),
        )

    def decompress(self, buf):
        return np.frombuffer(buf.payload, dtype=buf.original_dtype).reshape(
            buf.original_shape
        )


try:
    register_compressor("slowpoke-test", SlowpokeCompressor)
except ConfigError:  # re-imported module; already registered
    pass


def _connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.settimeout(10)
    return sock


def _compress_header(arr: np.ndarray, **extra) -> dict:
    return {
        "op": "compress",
        "compressor": "store",
        "mode": "abs",
        "value": 0.0,
        "options": {},
        **protocol.array_fields(arr),
        **extra,
    }


# -- protocol robustness ------------------------------------------------------


class TestRequestIds:
    def test_hello_echoes_id_and_filters_caps(self):
        with ServiceThread() as st:
            with _connect(st.port) as sock:
                protocol.write_frame_sock(sock, {
                    "op": "hello", "id": 41,
                    protocol.CAPS_FIELD: [
                        protocol.CAP_PIPELINE, protocol.CAP_SHM,
                        "bogus-cap-from-the-future",
                    ],
                })
                reply, _ = protocol.read_frame_sock(sock)
            assert reply["status"] == "ok"
            assert reply["id"] == 41
            granted = set(reply[protocol.CAPS_FIELD])
            assert protocol.CAP_PIPELINE in granted
            assert "bogus-cap-from-the-future" not in granted

    def test_interleaved_requests_are_matched_by_id(self):
        fields = {i: _field(kib=4, seed=i) for i in (3, 1, 2)}
        with ServiceThread() as st:
            with _connect(st.port) as sock:
                for i, arr in fields.items():
                    protocol.write_frame_sock(
                        sock,
                        _compress_header(arr, id=i),
                        protocol.pack_array(arr),
                    )
                replies = {}
                for _ in fields:
                    reply, body = protocol.read_frame_sock(sock)
                    replies[reply["id"]] = (reply, body)
            assert set(replies) == set(fields)
            for i, arr in fields.items():
                reply, body = replies[i]
                assert reply["status"] == "ok"
                assert body == arr.tobytes()  # store: payload is the input

    def test_duplicate_ids_get_two_replies(self):
        # Ids are the *client's* correlation tokens; the daemon answers
        # every frame and echoes whatever id it carried.
        arr = _field(kib=4)
        with ServiceThread() as st:
            with _connect(st.port) as sock:
                for _ in range(2):
                    protocol.write_frame_sock(
                        sock, _compress_header(arr, id=7),
                        protocol.pack_array(arr),
                    )
                for _ in range(2):
                    reply, body = protocol.read_frame_sock(sock)
                    assert reply["id"] == 7
                    assert reply["status"] == "ok"
                    assert body == arr.tobytes()

    def test_cancel_of_unknown_id_is_harmless(self):
        with ServiceThread() as st:
            with _connect(st.port) as sock:
                protocol.write_frame_sock(
                    sock, {"op": "cancel", "cancel_id": 10**9, "id": 1}
                )
                reply, _ = protocol.read_frame_sock(sock)
                assert reply["status"] == "ok"
                assert reply["cancelled"] is False
                # Same connection keeps serving.
                protocol.write_frame_sock(sock, {"op": "health", "id": 2})
                reply, _ = protocol.read_frame_sock(sock)
                assert reply["status"] == "ok" and reply["id"] == 2


class TestShmDescriptorFuzz:
    BAD_DESCRIPTORS = [
        "not-a-mapping",
        {},
        {"name": "psm_does_not_exist"},
        {"name": "psm_does_not_exist", "shape": [16], "dtype": "<f4"},
        {"name": 7, "shape": [16], "dtype": "<f4"},
        {"name": "x", "shape": "wat", "dtype": "<f4"},
        {"name": "x", "shape": [-4], "dtype": "<f4"},
        {"name": "x", "shape": [16], "dtype": "no-such-dtype"},
    ]

    def test_garbage_shm_descriptors_never_kill_the_daemon(self):
        arr = _field(kib=4)
        with ServiceThread() as st:
            for bad in self.BAD_DESCRIPTORS:
                with _connect(st.port) as sock:
                    protocol.write_frame_sock(
                        sock,
                        _compress_header(arr, **{protocol.SHM_FIELD: bad}),
                    )
                    try:
                        reply, _ = protocol.read_frame_sock(sock)
                    except (ServiceError, OSError):
                        continue  # clean close is acceptable for junk
                    assert reply["status"] == "error", bad
                # A fresh connection must always work afterwards.
                with ServiceClient(port=st.port, shm=False) as client:
                    assert client.health()["status"] == "ok"

    @requires_shm
    def test_truncated_segment_is_a_clean_attach_error(self):
        # The descriptor promises more bytes than the segment holds —
        # e.g. a peer that resized or unlinked mid-flight.
        arr = _field(kib=64)
        seg = SharedArray.create(1 << 12)  # 4 KiB, far short of 256 KiB
        try:
            lie = protocol.shm_fields(
                ShmDescriptor(name=seg.name, shape=arr.shape,
                              dtype=arr.dtype.str)
            )
            with ServiceThread() as st:
                with _connect(st.port) as sock:
                    protocol.write_frame_sock(
                        sock,
                        _compress_header(arr, **{protocol.SHM_FIELD: lie}),
                    )
                    reply, _ = protocol.read_frame_sock(sock)
                assert reply["status"] == "error"
                assert reply["code"] == "shm_attach"
                with ServiceClient(port=st.port, shm=False) as client:
                    assert client.health()["status"] == "ok"
        finally:
            seg.unlink()

    def test_lying_reply_shm_falls_back_to_inline(self):
        # The offered scratch segment claims more capacity than it has;
        # the daemon must notice and answer inline instead.
        arr = _field(kib=256)
        scratch = SharedArray.create(1 << 12)
        try:
            offer = protocol.reply_shm_fields(scratch.name, arr.nbytes * 2)
            with ServiceThread() as st:
                with _connect(st.port) as sock:
                    protocol.write_frame_sock(
                        sock,
                        _compress_header(
                            arr, **{protocol.REPLY_SHM_FIELD: offer}
                        ),
                        protocol.pack_array(arr),
                    )
                    reply, body = protocol.read_frame_sock(sock)
                assert reply["status"] == "ok"
                assert protocol.SHM_NBYTES_FIELD not in reply
                assert body == arr.tobytes()
        finally:
            scratch.unlink()

    def test_unknown_reply_shm_name_falls_back_to_inline(self):
        arr = _field(kib=256)
        offer = protocol.reply_shm_fields("psm_never_was", arr.nbytes * 2)
        with ServiceThread() as st:
            with _connect(st.port) as sock:
                protocol.write_frame_sock(
                    sock,
                    _compress_header(arr, **{protocol.REPLY_SHM_FIELD: offer}),
                    protocol.pack_array(arr),
                )
                reply, body = protocol.read_frame_sock(sock)
            assert reply["status"] == "ok"
            assert body == arr.tobytes()


# -- bit-exactness ------------------------------------------------------------


class TestShmInlineEquivalence:
    @requires_shm
    @pytest.mark.parametrize("codec,value", [("store", 0.0), ("sz", 1e-3)])
    def test_blocking_client_shm_reply_is_byte_identical(self, codec, value):
        arr = _field(kib=256)
        with ServiceThread() as st:
            with ServiceClient(port=st.port, shm=False) as inline_client, \
                    ServiceClient(port=st.port, shm=True) as shm_client:
                ref = inline_client.compress(arr, codec, mode="abs",
                                             value=value)
                via = shm_client.compress(arr, codec, mode="abs", value=value)
                assert via.payload == ref.payload
                out_ref = inline_client.decompress(ref)
                out_via = shm_client.decompress(via)
                assert out_via.tobytes() == out_ref.tobytes()
                # Prove the shm path actually ran, not a silent fallback.
                stats = shm_client.stats()
                assert _counter(stats, "service.shm_requests") >= 2
                assert _counter(stats, "service.shm_replies") >= 1

    def test_pooled_client_matches_blocking_inline(self):
        arr = _field(kib=256)
        with ServiceThread() as st:
            with ServiceClient(port=st.port, shm=False) as ref_client:
                ref = ref_client.compress(arr, "store", mode="abs", value=0.0)
            with PooledClient(port=st.port, connections=2) as pool:
                futures = [
                    pool.compress_async(arr, "store", mode="abs", value=0.0)
                    for _ in range(6)
                ]
                for fut in futures:
                    assert fut.result(timeout=60).payload == ref.payload
                out = pool.decompress(ref)
                assert out.tobytes() == arr.tobytes()

    @requires_shm
    def test_attach_failure_mid_flight_falls_back_inline(self, monkeypatch):
        # The server granted shm at HELLO but the attach breaks later
        # (e.g. namespace isolation): the client must retry inline once,
        # mark the path broken, and keep returning correct results.
        import repro.service.server as server_mod

        arr = _field(kib=256)
        with ServiceThread() as st:
            with ServiceClient(port=st.port, shm=True) as client:
                ref = client.compress(arr, "store", mode="abs", value=0.0)
                assert not client._shm_broken

                def broken_attach(desc):
                    from repro.errors import DataError
                    raise DataError("segment namespace not shared")

                monkeypatch.setattr(
                    server_mod.SharedArray, "attach",
                    staticmethod(broken_attach),
                )
                buf = client.compress(arr, "store", mode="abs", value=0.0)
                assert buf.payload == ref.payload
                assert client._shm_broken
                monkeypatch.undo()
                # Broken stays broken for this client — no flapping.
                buf = client.compress(arr, "store", mode="abs", value=0.0)
                assert buf.payload == ref.payload
                assert client._shm_broken

    @requires_shm
    def test_forced_inline_server_still_serves_shm_clients(self, tmp_path):
        # REPRO_NO_SHM on the daemon: HELLO never grants the shm cap, so
        # a willing client ships inline without ever seeing an error.
        env = dict(os.environ, PYTHONPATH=str(SRC), REPRO_NO_SHM="1")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", "0", "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("serving on ")
            port = int(line.rsplit(":", 1)[1])
            arr = _field(kib=256)
            with ServiceClient(port=port, shm=True) as client:
                buf = client.compress(arr, "store", mode="abs", value=0.0)
                assert buf.payload == arr.tobytes()
                assert client._negotiated
                assert protocol.CAP_SHM not in client._caps
        finally:
            proc.terminate()
            proc.wait(timeout=30)


# -- hygiene ------------------------------------------------------------------


class TestSegmentHygiene:
    def test_clean_close_leaves_no_segments(self):
        before = _psm_segments()
        arr = _field(kib=256)
        with ServiceThread() as st:
            with ServiceClient(port=st.port, shm=True) as client:
                client.compress(arr, "store", mode="abs", value=0.0)
            with PooledClient(port=st.port, connections=2) as pool:
                pool.compress(arr, "store", mode="abs", value=0.0)
        _wait_until(lambda: _psm_segments() <= before, timeout_s=10)

    def test_killed_client_process_leaks_nothing(self):
        before = _psm_segments()
        with ServiceThread() as st:
            # The child publishes request + reply segments, fires the
            # request, and dies without reading the reply or cleaning up.
            code = (
                "import numpy as np, sys, os\n"
                "from repro.service import ServiceClient\n"
                "from repro.service import protocol\n"
                "port = int(sys.argv[1])\n"
                "arr = np.arange(1 << 16, dtype=np.float32)\n"
                "client = ServiceClient(port=port, shm=True)\n"
                "client.compress(arr, 'store', mode='abs', value=0.0)\n"
                "print('ready', flush=True)\n"
                "os.kill(os.getpid(), 9)\n"
            )
            proc = subprocess.Popen(
                [sys.executable, "-c", code, str(st.port)],
                stdout=subprocess.PIPE, text=True,
                env=dict(os.environ, PYTHONPATH=str(SRC)),
            )
            assert proc.stdout.readline().strip() == "ready"
            proc.wait(timeout=30)
            assert proc.returncode == -signal.SIGKILL
            # The dead client's resource tracker unlinks its segments.
            _wait_until(lambda: _psm_segments() <= before, timeout_s=20)
            # And the daemon shrugs it off.
            with ServiceClient(port=st.port, shm=False) as client:
                assert client.health()["status"] == "ok"

    def test_sigterm_drain_leaves_no_segments(self):
        before = _psm_segments()
        env = dict(os.environ, PYTHONPATH=str(SRC))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", "0", "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("serving on ")
            port = int(line.rsplit(":", 1)[1])
            arr = _field(kib=256)
            with ServiceClient(port=port, shm=True) as client:
                buf = client.compress(arr, "store", mode="abs", value=0.0)
                assert buf.payload == arr.tobytes()
                proc.send_signal(signal.SIGTERM)
                assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=30)
        _wait_until(lambda: _psm_segments() <= before, timeout_s=10)

    def test_forked_worker_exit_does_not_unlink_parent_segments(self):
        # Regression: a fork()ed child inherits owner handles, and its
        # exit-time GC used to unlink segments the parent still serves.
        seg = SharedArray.create(1 << 16)
        try:
            ctx = multiprocessing.get_context("fork")
            child = ctx.Process(target=_touch_nothing)
            child.start()
            child.join(timeout=30)
            assert child.exitcode == 0
            # The segment must still be attachable by name.
            desc = ShmDescriptor(name=seg.name, shape=(1 << 16,), dtype="|u1")
            SharedArray.attach(desc).close()
        finally:
            seg.unlink()
        assert seg.name not in _psm_segments()

    def test_pool_reuse_survives_a_forked_batch(self):
        # End to end: batches running in forked worker pools must not
        # break the client's pooled segments between requests.
        before = _psm_segments()
        arr = _field(kib=256)
        with ServiceThread(workers=2, batch_window_s=0.05) as st:
            with ServiceClient(port=st.port, shm=True) as client:
                for _ in range(4):
                    buf = client.compress(arr, "store", mode="abs", value=0.0)
                    assert buf.payload == arr.tobytes()
                assert not client._shm_broken
                stats = client.stats()
                assert _counter(stats, "service.shm_attach_errors") == 0
        _wait_until(lambda: _psm_segments() <= before, timeout_s=10)


def _touch_nothing() -> None:
    """Fork target: exit immediately, running interpreter teardown."""


# -- hedged late replies ------------------------------------------------------


class TestHedgeDrain:
    def test_late_reply_is_drained_and_the_channel_survives(self):
        # Both shards run a slow codec, so the hedge loser *does* reply
        # eventually — after its future was abandoned.  The pipelined
        # channel must swallow that orphan by id and keep the
        # connection; the legacy behavior was to tear it down.
        arr = _pick_field_for_any_primary()
        with ServiceThread(workers=1, batch_window_s=0.0) as sa, \
                ServiceThread(workers=1, batch_window_s=0.0) as sb:
            shards = [f"127.0.0.1:{sa.port}", f"127.0.0.1:{sb.port}"]
            with ClusterThread(shards=shards, hedge_after_s=0.1,
                               fail_after=10_000) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                buf = client.compress(
                    arr, "slowpoke-test", mode="abs", value=1.0,
                    options={"delay": 0.5},
                )
                assert buf.payload == arr.tobytes()
                stats = client.stats()
                assert _counter(stats, "router.hedges") >= 1

                def drained() -> bool:
                    return _counter(client.stats(),
                                    "router.hedge_drains") >= 1

                _wait_until(drained, timeout_s=20)
                # The loser's channel is still live: another request
                # through the router round-trips without a redial.
                buf = client.compress(
                    arr, "slowpoke-test", mode="abs", value=1.0,
                    options={"delay": 0.0},
                )
                assert buf.payload == arr.tobytes()
                topo = client._request({"op": "cluster"}, b"")[0]
                assert all(
                    s.get("pipelined") for s in topo["shards"]
                ), topo["shards"]


def _pick_field_for_any_primary() -> np.ndarray:
    rng = np.random.default_rng(11)
    return (rng.standard_normal((1 << 14,)) * 40).astype(np.float32)
