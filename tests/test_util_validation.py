"""Unit tests for argument validation helpers."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.util.validation import check_dtype, check_positive, check_shape_nd


class TestCheckDtype:
    def test_accepts_listed(self):
        check_dtype(np.zeros(3, np.float32), [np.float32, np.float64])

    def test_rejects_other(self):
        with pytest.raises(DataError, match="dtype"):
            check_dtype(np.zeros(3, np.int32), [np.float32])


class TestCheckPositive:
    def test_strict(self):
        check_positive(1.5)
        with pytest.raises(DataError):
            check_positive(0.0)

    def test_nonstrict_allows_zero(self):
        check_positive(0.0, strict=False)
        with pytest.raises(DataError):
            check_positive(-1.0, strict=False)

    def test_nonfinite_rejected(self):
        with pytest.raises(DataError):
            check_positive(float("nan"))
        with pytest.raises(DataError):
            check_positive(float("inf"))


class TestCheckShapeNd:
    def test_single_rank(self):
        check_shape_nd(np.zeros((2, 2)), 2)
        with pytest.raises(DataError):
            check_shape_nd(np.zeros(4), 2)

    def test_multiple_ranks(self):
        check_shape_nd(np.zeros(4), (1, 3))
        check_shape_nd(np.zeros((2, 2, 2)), (1, 3))
        with pytest.raises(DataError):
            check_shape_nd(np.zeros((2, 2)), (1, 3))

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            check_shape_nd(np.zeros(0), 1)
