"""Telemetry subsystem: spans, metrics, export formats, instrumentation."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.cosmo.nyx import make_nyx_dataset
from repro.foresight.cbench import CBench
from repro.foresight.config import CompressorSweep
from repro.gpu.runtime import simulate_compression
from repro.parallel.compression import compress_distributed, decompress_distributed
from repro.parallel.decomposition import CartesianDecomposition
from repro.telemetry.export import load_trace, spans_to_chrome, write_jsonl
from repro.telemetry.metrics import Histogram
from repro.telemetry.report import render_report, report_file, summarize
from repro.telemetry.spans import Tracer


@pytest.fixture()
def tm():
    """A live telemetry installed for the test, restored afterwards."""
    with telemetry.enabled_telemetry("test") as live:
        yield live


@pytest.fixture(scope="module")
def nyx_field():
    return make_nyx_dataset(grid_size=16, seed=7).fields["temperature"]


class TestSpans:
    def test_nesting_parent_child(self, tm):
        with tm.span("outer") as outer:
            with tm.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tm.tracer.current_span() is outer
        assert tm.tracer.current_span() is None
        names = [s.name for s in tm.tracer.finished_spans()]
        assert names == ["inner", "outer"]  # children finish first

    def test_exception_marks_error_and_restores_parent(self, tm):
        with tm.span("outer"):
            with pytest.raises(ValueError, match="boom"):
                with tm.span("failing"):
                    raise ValueError("boom")
            # parent must be restored after the failing child
            assert tm.tracer.current_span().name == "outer"
        failing = next(s for s in tm.tracer.finished_spans() if s.name == "failing")
        assert failing.status == "error"
        assert "ValueError: boom" in failing.attrs["exception"]
        assert failing.end is not None

    def test_decorator(self, tm):
        @tm.trace("decorated", kind="unit-test")
        def work(x):
            return x + 1

        assert work(1) == 2
        (sp,) = tm.tracer.finished_spans()
        assert sp.name == "decorated"
        assert sp.attrs["kind"] == "unit-test"

    def test_add_span_synthetic(self, tm):
        sp = tm.tracer.add_span("synthetic", 1.0, 1.5, bytes=10)
        assert sp.duration == pytest.approx(0.5)
        assert sp in tm.tracer.finished_spans()

    def test_drain_and_high_water_mark(self, tm):
        with tm.span("first"):
            pass
        mark = tm.tracer.last_span_id()
        with tm.span("second"):
            pass
        assert [s.name for s in tm.tracer.drain(mark)] == ["second"]

    def test_null_telemetry_is_reusable_noop(self):
        null = telemetry.NullTelemetry()
        ctx1 = null.span("a")
        ctx2 = null.span("b", bytes=1)
        assert ctx1 is ctx2  # one shared context manager, no allocation
        with ctx1 as sp:
            sp.attrs["ignored"] = True  # span-ish surface works
        null.count("c", 5)
        null.observe("h", 1.0)
        assert null.metrics.snapshot() == {}


class TestMetrics:
    def test_counter_monotonic(self, tm):
        c = tm.metrics.counter("n")
        c.inc()
        c.inc(2)
        assert c.value == 3
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_bucket_edges(self):
        h = Histogram("h", bounds=(1.0, 2.0, 5.0))
        # upper edges are inclusive; above the last bound -> overflow
        for v in (0.5, 1.0, 1.5, 2.0, 5.0, 5.1):
            h.observe(v)
        assert h.bucket_counts() == [2, 2, 1, 1]
        assert h.count == 6
        assert h.sum == pytest.approx(15.1)

    def test_histogram_observe_many_matches_observe(self):
        values = [0.0, 1.0, 3.0, 7.0, 100.0]
        one = Histogram("a", bounds=(1.0, 4.0, 16.0))
        many = Histogram("b", bounds=(1.0, 4.0, 16.0))
        for v in values:
            one.observe(v)
        many.observe_many(np.array(values))
        assert one.bucket_counts() == many.bucket_counts()
        assert one.sum == many.sum

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_registry_type_conflict(self, tm):
        tm.metrics.counter("x")
        with pytest.raises(TypeError):
            tm.metrics.gauge("x")

    def test_snapshot_round_trips_json(self, tm):
        tm.count("c", 2)
        tm.set_gauge("g", 1.5)
        tm.observe("h", 3.0, bounds=(1.0, 4.0))
        snap = json.loads(json.dumps(tm.metrics.snapshot()))
        assert snap["c"] == {"type": "counter", "value": 2}
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["counts"] == [0, 1, 0]


class TestExport:
    def test_jsonl_round_trip(self, tm, tmp_path):
        with tm.span("stage", bytes=128):
            pass
        path = write_jsonl(tmp_path / "t.jsonl", tm.tracer.finished_spans())
        loaded = load_trace(path)
        assert len(loaded) == 1
        assert loaded[0]["name"] == "stage"
        assert loaded[0]["attrs"]["bytes"] == 128

    def test_chrome_trace_round_trips_through_json_loads(self, tm, tmp_path):
        with tm.span("outer"):
            with tm.span("inner", bytes=64):
                pass
        doc = spans_to_chrome(tm.tracer.finished_spans())
        parsed = json.loads(json.dumps(doc))
        events = parsed["traceEvents"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["ph"] == "X"
        assert inner["args"]["bytes"] == 64
        assert inner["args"]["parent_id"] is not None
        # and the loader normalizes it back to span dicts
        path = tmp_path / "t.json"
        path.write_text(json.dumps(doc))
        loaded = load_trace(path)
        assert {s["name"] for s in loaded} == {"outer", "inner"}

    def test_gpu_run_events_merge_into_chrome_trace(self, tm):
        run = simulate_compression(64**3, 4.0)
        doc = spans_to_chrome([], extra_events=run.trace_events())
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == [
            "gpu.cuzfp.compress.init",
            "gpu.cuzfp.compress.kernel",
            "gpu.cuzfp.compress.memcpy",
            "gpu.cuzfp.compress.free",
        ]
        # simulated stages replayed into the live tracer share the schema
        spans = run.record()
        assert [s.name for s in spans] == names

    def test_report_renders_mb_per_s(self, tm, tmp_path):
        tm.tracer.add_span("stage.a", 0.0, 0.5, bytes=1_000_000)
        path = write_jsonl(tmp_path / "t.jsonl", tm.tracer.finished_spans())
        table = report_file(path)
        assert "stage.a" in table
        assert "2.00" in table  # 1 MB in 0.5 s = 2 MB/s

    def test_summarize_aggregates_errors_and_bytes(self):
        spans = [
            {"name": "s", "duration": 0.1, "attrs": {"bytes": 10}, "status": "ok"},
            {"name": "s", "duration": 0.3, "attrs": {"bytes": 30}, "status": "error"},
        ]
        (summary,) = summarize(spans)
        assert summary.count == 2
        assert summary.total_bytes == 40
        assert summary.errors == 1
        assert summary.total_seconds == pytest.approx(0.4)
        assert "errors" in render_report([summary])


class TestInstrumentation:
    def test_sz_pipeline_stage_spans(self, tm, nyx_field):
        sz = SZCompressor()
        recon, _ = sz.roundtrip(nyx_field, error_bound=1.0)
        names = {s.name for s in tm.tracer.finished_spans()}
        assert {"sz.prequant", "sz.predict", "sz.huffman", "sz.lossless"} <= names
        assert tm.metrics.counter("sz.bytes_in").value == nyx_field.nbytes

    def test_zfp_pipeline_stage_spans(self, tm, nyx_field):
        zfp = ZFPCompressor()
        zfp.roundtrip(nyx_field, rate=4.0)
        names = {s.name for s in tm.tracer.finished_spans()}
        assert {"zfp.transform", "zfp.reorder", "zfp.bitplane"} <= names
        assert tm.metrics.histogram("zfp.block_used_bits").count > 0

    def test_cbench_attaches_span_tree_to_meta(self, tm, nyx_field):
        bench = CBench({"t": nyx_field}, keep_reconstructions=False)
        sweep = CompressorSweep(name="sz", mode="abs", sweep={"error_bound": [1.0]})
        rec = bench.run_one(sweep, "t", 1.0)
        spans = rec.meta["telemetry"]["spans"]
        names = {s["name"] for s in spans}
        assert "cbench.run_one" in names
        assert {"sz.prequant", "sz.predict", "sz.huffman", "sz.lossless"} <= names
        # the subtree is rooted at this cell's run_one span
        root = next(s for s in spans if s["name"] == "cbench.run_one")
        children = {s["name"] for s in spans if s["parent_id"] == root["span_id"]}
        assert {"cbench.compress", "cbench.decompress", "cbench.metrics"} <= children

    def test_cbench_record_unchanged_with_null_telemetry(self, nyx_field):
        """NullTelemetry (the default) must leave rows byte-identical."""
        assert not telemetry.get_telemetry().enabled
        bench = CBench({"t": nyx_field}, keep_reconstructions=False)
        sweep = CompressorSweep(name="sz", mode="abs", sweep={"error_bound": [1.0]})
        rec = bench.run_one(sweep, "t", 1.0)
        assert "telemetry" not in rec.meta
        assert set(rec.meta) == {
            "predictor_regression_fraction", "outlier_count",
            "huffman_bits_per_symbol", "kernels",
        }
        # deterministic row payload: two runs serialize byte-identically
        # (timings excluded — they are genuine measurements)
        rec2 = bench.run_one(sweep, "t", 1.0)
        drop = ("compress_seconds", "decompress_seconds")
        row1 = {k: v for k, v in rec.to_row().items() if k not in drop}
        row2 = {k: v for k, v in rec2.to_row().items() if k not in drop}
        assert json.dumps(row1, sort_keys=True).encode() == \
            json.dumps(row2, sort_keys=True).encode()

    def test_concurrent_rank_spans_do_not_interleave(self, tm):
        """Threaded per-rank compression keeps each thread's tree intact."""
        rng = np.random.default_rng(3)
        n = 4096
        positions = rng.uniform(0, 64.0, size=(n, 3))
        values = rng.normal(size=n).astype(np.float32)
        decomp = CartesianDecomposition(64.0, (2, 2, 1))
        sz = SZCompressor()
        result = compress_distributed(
            sz, values, positions, decomp, max_workers=4, error_bound=0.01
        )
        rank_spans = [
            s for s in tm.tracer.finished_spans() if s.name == "parallel.rank_compress"
        ]
        assert len(rank_spans) == len(result.buffers) == 4
        # every rank span is a tree root and its codec children live on the
        # same thread — a cross-thread parent means corrupt interleaving
        by_id = {s.span_id: s for s in tm.tracer.finished_spans()}
        for s in tm.tracer.finished_spans():
            if s.parent_id is not None:
                assert by_id[s.parent_id].thread_id == s.thread_id
        for rs in rank_spans:
            assert rs.parent_id is None
        out = decompress_distributed(sz, result)
        assert np.abs(out - values).max() <= 0.01 + 1e-7

    def test_tracer_thread_safety_raw(self):
        """Hammer one tracer from many threads; all spans land uncorrupted."""
        tracer = Tracer()
        errors: list[Exception] = []

        def worker(i: int) -> None:
            try:
                for j in range(50):
                    with tracer.span(f"w{i}", j=j):
                        with tracer.span(f"w{i}.inner"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.finished_spans()
        assert len(spans) == 8 * 50 * 2
        assert len({s.span_id for s in spans}) == len(spans)


class TestReportCLI:
    def test_report_command(self, tm, nyx_field, tmp_path, capsys):
        from repro.telemetry.__main__ import main as telemetry_main

        SZCompressor().compress(nyx_field, error_bound=1.0)
        trace = write_jsonl(tmp_path / "t.jsonl", tm.tracer.finished_spans())
        assert telemetry_main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        for stage in ("sz.prequant", "sz.predict", "sz.huffman", "sz.lossless"):
            assert stage in out
        assert "MB/s" in out

    def test_convert_command(self, tm, tmp_path, capsys):
        from repro.telemetry.__main__ import main as telemetry_main

        with tm.span("a"):
            pass
        trace = write_jsonl(tmp_path / "t.jsonl", tm.tracer.finished_spans())
        out_path = tmp_path / "t.json"
        assert telemetry_main(["convert", str(trace), "-o", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"][0]["name"] == "a"

    def test_report_missing_file(self, capsys):
        from repro.telemetry.__main__ import main as telemetry_main

        assert telemetry_main(["report", "/nonexistent/trace.jsonl"]) == 2
        assert "error" in capsys.readouterr().err
