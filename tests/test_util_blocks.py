"""Unit tests for repro.util.blocks."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.util.blocks import (
    block_partition,
    block_reassemble,
    iter_block_slices,
    pad_to_multiple,
)


class TestPadToMultiple:
    def test_no_padding_needed_returns_same_object(self):
        a = np.arange(8).reshape(4, 2)
        padded, orig = pad_to_multiple(a, (2, 2))
        assert padded is a and orig == (4, 2)

    def test_edge_padding_replicates_boundary(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        padded, _ = pad_to_multiple(a, (2, 2))
        assert padded.shape == (4, 2)
        assert np.array_equal(padded[3], padded[2])

    def test_constant_padding_zeroes(self):
        a = np.ones(5)
        padded, _ = pad_to_multiple(a, (4,), mode="constant")
        assert padded.shape == (8,)
        assert padded[5:].sum() == 0

    def test_rank_mismatch_raises(self):
        with pytest.raises(DataError):
            pad_to_multiple(np.ones((2, 2)), (2,))

    def test_nonpositive_block_raises(self):
        with pytest.raises(DataError):
            pad_to_multiple(np.ones(4), (0,))


class TestPartitionReassemble:
    @pytest.mark.parametrize("shape,block", [
        ((8,), (4,)),
        ((9,), (4,)),
        ((8, 8), (4, 4)),
        ((7, 9), (4, 4)),
        ((8, 8, 8), (4, 4, 4)),
        ((5, 6, 7), (4, 4, 4)),
        ((12, 12, 12), (6, 6, 6)),
    ])
    def test_round_trip(self, shape, block):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(shape)
        blocks, grid, orig = block_partition(a, block)
        assert blocks.shape[1:] == block
        assert np.array_equal(block_reassemble(blocks, grid, orig), a)

    def test_block_ordering_is_c_order(self):
        a = np.arange(16).reshape(4, 4)
        blocks, grid, _ = block_partition(a, (2, 2))
        assert grid == (2, 2)
        assert np.array_equal(blocks[0], [[0, 1], [4, 5]])
        assert np.array_equal(blocks[1], [[2, 3], [6, 7]])

    def test_nblocks_count(self):
        a = np.zeros((10, 10, 10))
        blocks, grid, _ = block_partition(a, (4, 4, 4))
        assert blocks.shape[0] == 27 and grid == (3, 3, 3)

    def test_reassemble_rank_mismatch_raises(self):
        blocks = np.zeros((4, 2, 2))
        with pytest.raises(DataError):
            block_reassemble(blocks, (2,), (4,))


class TestIterBlockSlices:
    def test_covers_everything_once(self):
        shape, block = (7, 5), (3, 2)
        seen = np.zeros(shape, dtype=int)
        for sl in iter_block_slices(shape, block):
            seen[sl] += 1
        assert np.all(seen == 1)

    def test_boundary_blocks_are_smaller(self):
        slices = list(iter_block_slices((5,), (4,)))
        assert slices[0][0] == slice(0, 4)
        assert slices[1][0] == slice(4, 5)

    def test_rank_mismatch_raises(self):
        with pytest.raises(DataError):
            list(iter_block_slices((4, 4), (2,)))
