"""The in-situ driver: step log, baselines, drift metrics, CLI."""

import json

import numpy as np
import pytest

from repro.analysis.drift import drift_curve, halo_mass_proxy, snapshot_drift
from repro.errors import DataError
from repro.experiments.insitu import main, run_insitu


class TestDriftMetrics:
    def test_identical_fields_have_zero_drift(self):
        rng = np.random.default_rng(1)
        a = rng.lognormal(size=(12, 12, 12)).astype(np.float32)
        d = snapshot_drift(a, a.copy(), box_size=50.0)
        assert d["max_abs_error"] == 0.0
        assert d["pk_max_dev"] == pytest.approx(0.0, abs=1e-12)
        assert d["halo_mass_ratio"] == pytest.approx(1.0)

    def test_perturbation_registers_in_all_three_metrics(self):
        rng = np.random.default_rng(2)
        a = rng.lognormal(size=(12, 12, 12)).astype(np.float32)
        b = a + rng.normal(scale=0.3, size=a.shape).astype(np.float32)
        d = snapshot_drift(a, b, box_size=50.0)
        assert d["max_abs_error"] > 0.0
        assert d["pk_max_dev"] > 0.0
        assert d["halo_mass_ratio"] != pytest.approx(1.0, abs=1e-9)

    def test_halo_mass_threshold_computed_on_original(self):
        rng = np.random.default_rng(3)
        a = rng.lognormal(size=(10, 10, 10))
        mass, threshold = halo_mass_proxy(a)
        assert threshold == pytest.approx(float(a.mean() + 2 * a.std()))
        mass_b, _ = halo_mass_proxy(a * 2.0, threshold=threshold)
        assert mass_b > mass

    def test_drift_curve_shapes_and_errors(self):
        rng = np.random.default_rng(4)
        orig = [rng.lognormal(size=(8, 8, 8)) for _ in range(3)]
        cols = drift_curve(orig, [a.copy() for a in orig], box_size=50.0)
        assert cols["step"] == [0.0, 1.0, 2.0]
        assert len(cols["max_abs_error"]) == 3
        with pytest.raises(DataError):
            drift_curve(orig, orig[:2], box_size=50.0)
        with pytest.raises(DataError):
            snapshot_drift(orig[0], orig[0][:4], box_size=50.0)


class TestDriver:
    def test_library_run_logs_all_steps_with_baselines(self, tmp_path):
        log = tmp_path / "steps.jsonl"
        summary = run_insitu(
            grid_size=12, n_steps=6, value=1e-2, keyframe_every=4,
            keep_every=2, log=log,
        )
        lines = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        # 6 step records + 1 summary line.
        assert len(lines) == 7
        records, tail = lines[:6], lines[6]
        assert tail["summary"] is True
        for i, rec in enumerate(records):
            assert rec["step"] == i
            for key in ("temporal", "independent", "decimation"):
                assert "max_abs_error" in rec[key]
                assert "pk_max_dev" in rec[key]
                assert "halo_mass_ratio" in rec[key]
        # Per-step bound holds at every step (no accumulation).
        assert all(
            r["temporal"]["max_abs_error"] <= 1e-2 * (1 + 1e-4)
            for r in records
        )
        # Keyframe cadence is visible in the log.
        assert [r["keyframe"] for r in records] == [
            True, False, False, False, True, False,
        ]
        # Decimation keeps every 2nd snapshot; kept ones are bit-exact.
        kept = [r for r in records if r["decimation"]["kept"]]
        assert kept and all(
            r["decimation"]["max_abs_error"] == 0.0 for r in kept
        )
        dropped = [r for r in records if not r["decimation"]["kept"]]
        assert dropped and all(
            r["decimation"]["max_abs_error"]
            > r["temporal"]["max_abs_error"]
            for r in dropped
        )
        assert summary["ratio_gain"] > 1.0
        assert summary["max_abs_error"] <= 1e-2 * (1 + 1e-4)

    def test_service_target_matches_library_bytes(self):
        from repro.service.server import ServiceThread

        with ServiceThread() as service:
            summary = run_insitu(
                grid_size=12, n_steps=4, value=1e-2, keyframe_every=4,
                target="service", port=service.port,
            )
        # run_insitu itself asserts byte identity per step; reaching
        # here with sane output means the SESSION path reproduced the
        # library stream exactly.
        assert summary["target"] == "service"
        assert summary["n_steps"] == 4
        assert summary["max_abs_error"] <= 1e-2 * (1 + 1e-4)

    def test_rejects_bad_target_and_mode(self):
        with pytest.raises(DataError):
            run_insitu(grid_size=8, n_steps=2, target="carrier-pigeon")
        with pytest.raises(DataError):
            run_insitu(grid_size=8, n_steps=2, mode="sideways")


class TestCLI:
    def test_main_prints_summary_json(self, capsys, tmp_path):
        rc = main([
            "--grid", "10", "--steps", "4", "--value", "1e-2",
            "--keyframe-every", "2",
            "--log", str(tmp_path / "cli.jsonl"),
        ])
        assert rc == 0
        brief = json.loads(capsys.readouterr().out)
        assert brief["n_steps"] == 4
        assert "steps" not in brief
        assert (tmp_path / "cli.jsonl").exists()
