"""Tests for the particle-mesh gravity solver (HACC's long-range method)."""

import numpy as np
import pytest

from repro.cosmo.cic import cic_deposit, cic_gather, density_contrast
from repro.cosmo.pm import (
    ParticleMeshSolver,
    PMState,
    zeldovich_initial_conditions,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def solver():
    return ParticleMeshSolver(box_size=32.0, mesh_size=32)


def _lattice(n: int, box: float) -> np.ndarray:
    g = (np.arange(n) + 0.5) * (box / n)
    return np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)


class TestCICGather:
    def test_reads_linear_field_exactly(self):
        n, box = 8, 8.0
        grid = (np.arange(n)[:, None, None] * np.ones((1, n, n))).astype(float)
        pts = np.array([[2.0, 3.0, 4.0], [5.5, 1.0, 1.0]])
        out = cic_gather(grid, pts, box)
        assert out == pytest.approx([2.0, 5.5])

    def test_adjoint_consistency(self):
        # sum(gather(grid, pts)) == sum(grid * deposit(pts)) for unit masses.
        rng = np.random.default_rng(0)
        grid = rng.standard_normal((8, 8, 8))
        pts = rng.random((100, 3)) * 8.0
        lhs = cic_gather(grid, pts, 8.0).sum()
        rhs = (grid * cic_deposit(pts, 8, 8.0)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_validation(self):
        with pytest.raises(DataError):
            cic_gather(np.zeros((4, 4)), np.zeros((1, 3)), 8.0)
        with pytest.raises(DataError):
            cic_gather(np.zeros((4, 4, 4)), np.zeros((1, 2)), 8.0)


class TestForces:
    def test_uniform_lattice_zero_force(self, solver):
        acc = solver.acceleration(_lattice(16, 32.0))
        assert np.abs(acc).max() < 1e-10

    def test_attraction_toward_overdensity(self, solver):
        center = np.full((500, 3), 16.0)
        probes = np.array([[12.0, 16, 16], [20.0, 16, 16],
                           [16.0, 12.0, 16], [16, 16, 20.0]])
        acc = solver.acceleration(np.vstack([center, probes]))[-4:]
        assert acc[0, 0] > 0  # left probe pulled right
        assert acc[1, 0] < 0  # right probe pulled left
        assert acc[2, 1] > 0
        assert acc[3, 2] < 0

    def test_force_decays_with_distance(self, solver):
        center = np.full((500, 3), 16.0)
        near = solver.acceleration(np.vstack([center, [[13.0, 16, 16]]]))[-1][0]
        far = solver.acceleration(np.vstack([center, [[8.0, 16, 16]]]))[-1][0]
        assert near > far > 0

    def test_force_antisymmetry_two_clumps(self, solver):
        rng = np.random.default_rng(0)
        a = np.full((200, 3), 12.0) + rng.normal(0, 0.2, (200, 3))
        b = np.full((200, 3), 20.0) + rng.normal(0, 0.2, (200, 3))
        acc = solver.acceleration(np.vstack([a, b]))
        # Total momentum change is ~zero (Newton's third law on the mesh).
        assert np.abs(acc.sum(axis=0)).max() < 1e-8 * np.abs(acc).max() * 400

    def test_periodic_wraparound_force(self, solver):
        center = np.full((500, 3), 1.0)  # near the origin corner
        probe = np.array([[30.0, 1.0, 1.0]])  # 3 units away through the wrap
        acc = solver.acceleration(np.vstack([center, probe]))[-1]
        assert acc[0] > 0  # pulled in +x, through the periodic boundary


class TestIntegration:
    def test_momentum_conserved(self):
        solver = ParticleMeshSolver(32.0, 32)
        state = zeldovich_initial_conditions(10, 32.0, seed=2)
        p0 = state.velocities.sum(axis=0)
        final = solver.evolve(state, dt=0.1, n_steps=5)
        assert np.abs(final.velocities.sum(axis=0) - p0).max() < 1e-9

    def test_structure_grows(self):
        solver = ParticleMeshSolver(32.0, 32)
        state = zeldovich_initial_conditions(12, 32.0, seed=3)
        final = solver.evolve(state, dt=0.1, n_steps=10)
        s0 = density_contrast(cic_deposit(state.positions, 32, 32.0)).std()
        s1 = density_contrast(cic_deposit(final.positions, 32, 32.0)).std()
        assert s1 > s0

    def test_positions_stay_in_box(self):
        solver = ParticleMeshSolver(32.0, 16)
        state = zeldovich_initial_conditions(8, 32.0, seed=4, velocity_factor=5.0)
        final = solver.evolve(state, dt=0.2, n_steps=5)
        assert final.positions.min() >= 0 and final.positions.max() < 32.0

    def test_callback_invoked_each_step(self):
        solver = ParticleMeshSolver(32.0, 16)
        state = zeldovich_initial_conditions(6, 32.0, seed=5)
        steps = []
        solver.evolve(state, dt=0.1, n_steps=4, callback=lambda i, s: steps.append(i))
        assert steps == [0, 1, 2, 3]

    def test_time_accumulates(self):
        solver = ParticleMeshSolver(32.0, 16)
        state = zeldovich_initial_conditions(6, 32.0, seed=6)
        final = solver.evolve(state, dt=0.25, n_steps=4)
        assert final.time == pytest.approx(1.0)

    def test_validation(self):
        solver = ParticleMeshSolver(32.0, 16)
        state = zeldovich_initial_conditions(6, 32.0)
        with pytest.raises(DataError):
            solver.step(state, dt=0.0)
        with pytest.raises(DataError):
            solver.evolve(state, 0.1, 0)
        with pytest.raises(DataError):
            ParticleMeshSolver(32.0, 2)
        with pytest.raises(DataError):
            PMState(positions=np.zeros((3, 3)), velocities=np.zeros((4, 3)))
        with pytest.raises(DataError):
            zeldovich_initial_conditions(2, 32.0)

    def test_potential_energy_proxy_negative_for_clustered(self):
        solver = ParticleMeshSolver(32.0, 32)
        rng = np.random.default_rng(7)
        clustered = np.full((500, 3), 16.0) + rng.normal(0, 0.5, (500, 3))
        assert solver.potential_energy_proxy(clustered) < 0
