"""Tests for the analysis layer: RD curves, pk/halo sweeps, optimizer,
throughput studies."""

import numpy as np
import pytest

from repro.analysis import (
    breakdown_study,
    cpu_gpu_comparison,
    gpu_comparison_study,
    halo_ratio_sweep,
    pk_ratio_sweep,
    rate_distortion_curve,
    select_best_fit,
    throughput_vs_rate_study,
)
from repro.analysis.optimizer import ConfigCandidate
from repro.analysis.pk_ratio import composite_pk_ratio
from repro.compressors import SZCompressor, ZFPCompressor
from repro.errors import AnalysisError, DataError


class TestRateDistortion:
    def test_curve_sorted_by_bitrate(self, smooth_field3d):
        pts = rate_distortion_curve(
            ZFPCompressor(), smooth_field3d, "rate", [8, 2, 4], "fixed_rate"
        )
        assert [p.bitrate for p in pts] == sorted(p.bitrate for p in pts)

    def test_psnr_increases_with_bitrate(self, smooth_field3d):
        pts = rate_distortion_curve(
            ZFPCompressor(), smooth_field3d, "rate", [1, 4, 16], "fixed_rate"
        )
        psnrs = [p.psnr for p in pts]
        assert psnrs == sorted(psnrs)

    def test_sz_curve(self, smooth_field3d):
        pts = rate_distortion_curve(
            SZCompressor(), smooth_field3d, "error_bound", [1e-1, 1e-3], "abs"
        )
        assert pts[0].psnr < pts[1].psnr

    def test_empty_values_raise(self, smooth_field3d):
        with pytest.raises(DataError):
            rate_distortion_curve(ZFPCompressor(), smooth_field3d, "rate", [], "fixed_rate")


class TestPkRatioSweep:
    def test_tight_bound_acceptable(self, nyx_small):
        f = nyx_small.fields["dark_matter_density"]
        eb = float(np.std(f)) * 1e-4
        pts = pk_ratio_sweep(
            SZCompressor(), f, nyx_small.box_size, "error_bound", [eb], "abs"
        )
        assert pts[0].acceptable

    def test_loose_bound_unacceptable(self, nyx_small):
        f = nyx_small.fields["dark_matter_density"]
        eb = float(np.std(f)) * 2.0
        pts = pk_ratio_sweep(
            SZCompressor(), f, nyx_small.box_size, "error_bound", [eb], "abs"
        )
        assert not pts[0].acceptable

    def test_derive_hook(self, nyx_small):
        f = nyx_small.fields["velocity_z"]
        pts = pk_ratio_sweep(
            ZFPCompressor(), f, nyx_small.box_size, "rate", [16], "fixed_rate",
            derive=lambda a: np.abs(np.asarray(a, dtype=np.float64)),
        )
        assert np.all(np.isfinite(pts[0].ratio))

    def test_composite_ratio(self, nyx_small):
        originals = {k: v for k, v in nyx_small.fields.items()}
        k, ratio, ok = composite_pk_ratio(
            originals,
            originals,
            lambda fields: fields["baryon_density"].astype(np.float64)
            + fields["dark_matter_density"].astype(np.float64),
            nyx_small.box_size,
        )
        assert ok and np.allclose(ratio, 1.0)


class TestHaloRatioSweep:
    def test_tight_bound_preserves_halos(self, hacc_small):
        pts = halo_ratio_sweep(
            SZCompressor(), hacc_small, "error_bound", [0.005], "abs", nbins=6
        )
        assert pts[0].max_ratio_deviation < 0.15

    def test_loose_bound_degrades(self, hacc_small):
        tight, loose = halo_ratio_sweep(
            SZCompressor(), hacc_small, "error_bound", [0.005, 2.0], "abs", nbins=6
        )
        assert loose.max_ratio_deviation > tight.max_ratio_deviation

    def test_bitrate_and_ratio_reported(self, hacc_small):
        pt = halo_ratio_sweep(
            SZCompressor(), hacc_small, "error_bound", [0.01], "abs", nbins=6
        )[0]
        assert pt.bitrate > 0 and pt.compression_ratio > 1


class TestOptimizer:
    def test_paper_guideline_picks_highest_acceptable_ratio(self):
        cands = [
            ConfigCandidate("f", "sz", "abs", 0.1, 20.0, False),  # too lossy
            ConfigCandidate("f", "sz", "abs", 0.01, 10.0, True),
            ConfigCandidate("f", "sz", "abs", 0.001, 5.0, True),
        ]
        best = select_best_fit(cands)
        assert best.per_field["f"].parameter == 0.01
        assert best.overall_compression_ratio == 10.0

    def test_overall_ratio_harmonic(self):
        cands = [
            ConfigCandidate("a", "sz", "abs", 1, 10.0, True),
            ConfigCandidate("b", "sz", "abs", 1, 5.0, True),
        ]
        best = select_best_fit(cands)
        # 2 fields of equal size: total = 2 / (1/10 + 1/5)
        assert best.overall_compression_ratio == pytest.approx(2 / 0.3)

    def test_no_acceptable_raises(self):
        with pytest.raises(AnalysisError):
            select_best_fit([ConfigCandidate("f", "sz", "abs", 1, 2.0, False)])

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            select_best_fit([])

    def test_parameters_view(self):
        cands = [
            ConfigCandidate("x", "zfp", "fixed_rate", 4.0, 8.0, True),
            ConfigCandidate("y", "zfp", "fixed_rate", 2.0, 16.0, True),
        ]
        assert select_best_fit(cands).parameters() == {"x": 4.0, "y": 2.0}


class TestThroughputStudies:
    N = 64**3

    def test_breakdown_rows_complete(self):
        rows = breakdown_study(self.N, [1, 4])
        assert len(rows) == 4  # 2 directions x 2 rates
        for r in rows:
            assert {"init_ms", "kernel_ms", "memcpy_ms", "free_ms"} <= set(r)
            assert r["total_ms"] == pytest.approx(
                r["init_ms"] + r["kernel_ms"] + r["memcpy_ms"] + r["free_ms"]
            )

    def test_gpu_comparison_covers_catalog(self):
        rows = gpu_comparison_study(self.N, 4)
        assert len(rows) == 7
        by_name = {r["gpu"]: r for r in rows}
        assert (
            by_name["Nvidia Tesla V100"]["compress_kernel_gbps"]
            > by_name["Nvidia Tesla K80"]["compress_kernel_gbps"]
        )

    def test_throughput_vs_rate_monotone(self):
        rows = throughput_vs_rate_study(self.N, [1, 2, 4, 8])
        kernel = [r["compress_kernel_gbps"] for r in rows]
        overall = [r["compress_overall_gbps"] for r in rows]
        assert kernel == sorted(kernel, reverse=True)
        assert overall == sorted(overall, reverse=True)

    def test_cpu_gpu_comparison_na_cell(self):
        rows = cpu_gpu_comparison(self.N, 3.0)
        zfp20 = next(r for r in rows if r["platform"] == "ZFP CPU 20-core")
        assert zfp20["decompress_gbps"] is None
        gpu = next(r for r in rows if "kernel" in r["platform"])
        cpu = next(r for r in rows if r["platform"] == "SZ CPU 20-core")
        assert gpu["compress_gbps"] > 10 * cpu["compress_gbps"]
