"""Integration-level tests for the ZFP fixed-rate compressor."""

import numpy as np
import pytest

from repro.compressors import CompressorMode, CuZFP, ZFPCompressor
from repro.errors import CorruptStreamError, DataError, UnsupportedModeError
from repro.metrics.error import psnr


@pytest.fixture(scope="module")
def zfp():
    return ZFPCompressor()


class TestFixedRate:
    @pytest.mark.parametrize("rate", [1, 2, 4, 8, 16])
    def test_exact_compression_ratio(self, zfp, smooth_field3d, rate):
        buf = zfp.compress(smooth_field3d, rate=rate)
        # Fixed-rate: payload = header + exactly rate bits/value (shape is a
        # multiple of 4, so no padding inflation).
        expected = smooth_field3d.size * rate / 8
        assert abs(buf.compressed_nbytes - expected) < 200  # header slack

    def test_rate_distortion_monotone(self, zfp, smooth_field3d):
        psnrs = []
        for rate in (1, 2, 4, 8, 16):
            recon = zfp.decompress(zfp.compress(smooth_field3d, rate=rate))
            psnrs.append(psnr(smooth_field3d, recon))
        assert all(a < b for a, b in zip(psnrs, psnrs[1:]))

    def test_high_rate_near_lossless_fp32(self, zfp, smooth_field3d):
        recon = zfp.decompress(zfp.compress(smooth_field3d, rate=28))
        assert psnr(smooth_field3d, recon) > 120

    def test_float64_support(self, zfp, smooth_field3d):
        data = smooth_field3d.astype(np.float64)
        recon = zfp.decompress(zfp.compress(data, rate=40))
        assert recon.dtype == np.float64
        assert np.abs(recon - data).max() < 1e-9 * np.abs(data).max() + 1e-12

    @pytest.mark.parametrize("shape", [(33,), (17, 9), (9, 10, 11)])
    def test_non_multiple_of_4_shapes(self, zfp, shape):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(shape).astype(np.float32)
        buf = zfp.compress(data, rate=16)
        recon = zfp.decompress(buf)
        assert recon.shape == shape

    def test_zero_field_reconstructed_exactly(self, zfp):
        data = np.zeros((8, 8, 8), dtype=np.float32)
        buf = zfp.compress(data, rate=4)
        assert np.array_equal(zfp.decompress(buf), data)
        assert buf.meta["zero_blocks"] == 8

    def test_mixed_zero_and_data_blocks(self, zfp):
        data = np.zeros((8, 8, 8), dtype=np.float32)
        data[:4, :4, :4] = 7.5
        recon = zfp.decompress(zfp.compress(data, rate=16))
        assert np.abs(recon - data).max() < 1e-3

    def test_extreme_dynamic_range_per_block(self, zfp):
        # One block at 1e-30, another at 1e+30: per-block exponents matter.
        data = np.zeros((8, 4, 4), dtype=np.float32)
        data[:4] = 1e-30
        data[4:] = 1e30
        recon = zfp.decompress(zfp.compress(data, rate=24))
        assert np.allclose(recon[:4], 1e-30, rtol=1e-4)
        assert np.allclose(recon[4:], 1e30, rtol=1e-4)

    def test_gaussianlike_error_distribution(self, zfp, smooth_field3d):
        # ZFP errors are roughly symmetric around zero (the paper calls
        # them Gaussian-like) — check mean error is far below max error.
        recon = zfp.decompress(zfp.compress(smooth_field3d, rate=8))
        err = recon.astype(np.float64) - smooth_field3d.astype(np.float64)
        assert abs(err.mean()) < 0.1 * np.abs(err).max()

    def test_buffer_metadata(self, zfp, smooth_field3d):
        buf = zfp.compress(smooth_field3d, rate=4)
        assert buf.mode is CompressorMode.FIXED_RATE
        assert buf.parameter == 4.0
        assert buf.original_shape == smooth_field3d.shape


class TestValidation:
    def test_rate_too_small_raises(self, zfp, smooth_field3d):
        with pytest.raises(DataError, match="rate"):
            zfp.compress(smooth_field3d, rate=0.1)

    def test_missing_rate_raises(self, zfp, smooth_field3d):
        with pytest.raises(DataError):
            zfp.compress(smooth_field3d)

    def test_abs_mode_unsupported(self, zfp, smooth_field3d):
        with pytest.raises(UnsupportedModeError):
            zfp.compress(smooth_field3d, rate=4, mode="abs")

    def test_nan_rejected(self, zfp):
        data = np.full((4, 4, 4), np.nan, dtype=np.float32)
        with pytest.raises(DataError):
            zfp.compress(data, rate=8)

    def test_bad_stream_raises(self, zfp):
        with pytest.raises(CorruptStreamError):
            zfp.decompress(b"NOTZFP" * 10)

    def test_truncated_stream_raises(self, zfp, smooth_field3d):
        buf = zfp.compress(smooth_field3d, rate=4)
        with pytest.raises(CorruptStreamError):
            zfp.decompress(buf.payload[: len(buf.payload) // 2])


class TestCuZFP:
    def test_same_streams_as_zfp(self, smooth_field3d):
        # The CUDA port codes identical streams; CuZFP must interoperate.
        a = CuZFP().compress(smooth_field3d, rate=4)
        b = ZFPCompressor().compress(smooth_field3d, rate=4)
        assert a.payload == b.payload
        assert np.array_equal(ZFPCompressor().decompress(a), CuZFP().decompress(b))

    def test_name(self):
        assert CuZFP().name == "cuzfp"
