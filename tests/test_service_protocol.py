"""MSG1 wire protocol: round-trips, limits, and hostile-input rejection."""

import socket

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.service import protocol


class TestFrameRoundTrip:
    def test_header_only(self):
        frame = protocol.encode_frame({"op": "health", "id": 7})
        header, payload = protocol.decode_frame(frame)
        assert header == {"op": "health", "id": 7}
        assert payload == b""

    def test_header_and_payload(self):
        body = bytes(range(256)) * 17
        frame = protocol.encode_frame({"op": "compress", "x": [1, 2]}, body)
        header, payload = protocol.decode_frame(frame)
        assert header["x"] == [1, 2]
        assert payload == body

    def test_header_encoding_is_canonical(self):
        a = protocol.encode_header({"b": 1, "a": 2})
        b = protocol.encode_header({"a": 2, "b": 1})
        assert a == b  # sort_keys: equal dicts → equal bytes

    def test_prefix_layout(self):
        frame = protocol.encode_frame({"k": 1}, b"xyz")
        magic, hlen, plen = protocol.PREFIX.unpack(frame[: protocol.PREFIX.size])
        assert magic == b"MSG1"
        assert hlen == len(protocol.encode_header({"k": 1}))
        assert plen == 3


class TestRejection:
    def test_bad_magic(self):
        frame = bytearray(protocol.encode_frame({"op": "x"}))
        frame[:4] = b"MSG9"
        with pytest.raises(ProtocolError, match="magic"):
            protocol.decode_frame(bytes(frame))

    def test_truncated_prefix(self):
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.parse_prefix(b"MSG1\x00")

    def test_zero_header_length(self):
        prefix = protocol.PREFIX.pack(b"MSG1", 0, 0)
        with pytest.raises(ProtocolError, match="header length"):
            protocol.parse_prefix(prefix)

    def test_oversized_header_length(self):
        prefix = protocol.PREFIX.pack(b"MSG1", protocol.MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="header length"):
            protocol.parse_prefix(prefix)

    def test_oversized_payload_length(self):
        prefix = protocol.PREFIX.pack(b"MSG1", 2, 1 << 40)
        with pytest.raises(ProtocolError, match="payload length"):
            protocol.parse_prefix(prefix)

    def test_payload_cap_is_configurable(self):
        prefix = protocol.PREFIX.pack(b"MSG1", 2, 100)
        with pytest.raises(ProtocolError):
            protocol.parse_prefix(prefix, max_payload_bytes=99)
        assert protocol.parse_prefix(prefix, max_payload_bytes=100) == (2, 100)

    def test_header_must_be_json(self):
        raw = b"\xff\xfe not json"
        frame = protocol.PREFIX.pack(b"MSG1", len(raw), 0) + raw
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.decode_frame(frame)

    def test_header_must_be_an_object(self):
        raw = b"[1,2,3]"
        frame = protocol.PREFIX.pack(b"MSG1", len(raw), 0) + raw
        with pytest.raises(ProtocolError, match="object"):
            protocol.decode_frame(frame)

    def test_length_mismatch(self):
        frame = protocol.encode_frame({"op": "x"}, b"abc")
        with pytest.raises(ProtocolError, match="expected"):
            protocol.decode_frame(frame + b"extra")
        with pytest.raises(ProtocolError):
            protocol.decode_frame(frame[:-1])

    def test_fuzzed_prefixes_never_crash(self):
        """Random bytes must only ever raise ProtocolError."""
        rng = np.random.default_rng(1234)
        for size in (0, 1, 15, 16, 17, 64, 300):
            for _ in range(200):
                blob = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
                try:
                    protocol.decode_frame(blob)
                except ProtocolError:
                    pass

    def test_fuzzed_headers_never_crash(self):
        """Valid framing around garbage headers must raise ProtocolError."""
        rng = np.random.default_rng(99)
        for _ in range(200):
            raw = rng.integers(0, 256, size=rng.integers(1, 80),
                               dtype=np.uint8).tobytes()
            frame = protocol.PREFIX.pack(b"MSG1", len(raw), 0) + raw
            try:
                protocol.decode_frame(frame)
            except ProtocolError:
                pass


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", ["<f4", "<f8", "<i4"])
    def test_round_trip(self, dtype):
        rng = np.random.default_rng(5)
        arr = (rng.standard_normal((3, 4, 5)) * 100).astype(np.dtype(dtype))
        fields = protocol.array_fields(arr)
        back = protocol.unpack_array(fields, protocol.pack_array(arr))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert np.array_equal(back, arr)

    def test_non_contiguous_input(self):
        arr = np.arange(24, dtype=np.float32).reshape(4, 6)[:, ::2]
        back = protocol.unpack_array(
            protocol.array_fields(arr), protocol.pack_array(arr)
        )
        assert np.array_equal(back, arr)

    def test_size_mismatch_rejected(self):
        arr = np.zeros(8, dtype=np.float32)
        fields = protocol.array_fields(arr)
        with pytest.raises(ProtocolError, match="payload"):
            protocol.unpack_array(fields, protocol.pack_array(arr)[:-4])

    def test_bad_dtype_rejected(self):
        with pytest.raises(ProtocolError, match="array header"):
            protocol.unpack_array({"dtype": "not-a-dtype", "shape": [2]}, b"??")

    def test_missing_fields_rejected(self):
        with pytest.raises(ProtocolError, match="array header"):
            protocol.unpack_array({"shape": [2]}, b"1234")


class TestSocketIO:
    def test_blocking_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = b"stream-bytes" * 100
            protocol.write_frame_sock(a, {"op": "compress", "id": 1}, payload)
            header, body = protocol.read_frame_sock(b)
            assert header["op"] == "compress"
            assert body == payload
        finally:
            a.close()
            b.close()

    def test_peer_hangup_mid_frame(self):
        a, b = socket.socketpair()
        try:
            frame = protocol.encode_frame({"op": "x"}, b"data")
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(ProtocolError, match="closed"):
                protocol.read_frame_sock(b)
        finally:
            b.close()
