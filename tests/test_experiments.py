"""Tests for the per-figure experiment modules (shape claims of the paper).

These assert the *qualitative* findings each figure supports, at the
"small" profile — who wins, what is monotone, what degrades first.
"""

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    PROFILES,
    fig1,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    run_all,
    table1,
    table2,
)
from repro.errors import ConfigError
from repro.experiments.base import get_profile


class TestInfrastructure:
    def test_profiles_defined(self):
        assert {"small", "default", "paper"} <= set(PROFILES)

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigError):
            get_profile("huge")

    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "fig1", "fig2_fig3", "fig4", "fig5",
            "fig6", "fig7", "fig8", "fig9", "fig10", "guideline",
        }

    def test_run_all_selected(self):
        res = run_all("small", only=["table1"])
        assert list(res) == ["table1"]

    def test_render_produces_table(self):
        text = table1.run().render()
        assert "Tesla V100" in text and "table1" in text


class TestTable1:
    def test_seven_rows_with_paper_values(self):
        rows = table1.run().rows
        assert len(rows) == 7
        v100 = next(r for r in rows if "V100" in r["gpu"])
        assert v100["shaders"] == "5120"
        assert v100["mem_bw_gbps"] == 900.0


class TestTable2:
    def test_synthetic_ranges_within_paper_ranges(self):
        rows = table2.run("small").rows
        assert len(rows) == 12
        assert all(r["in_range"] for r in rows)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run("small")

    def test_visually_identical(self, result):
        assert all(r["ssim_visual_proxy"] > 0.99 for r in result.rows)

    def test_pk_deviation_ordering(self, result):
        dev = {r["pw_rel"]: r["max_pk_deviation"] for r in result.rows}
        assert dev[0.01] < dev[0.1] < dev[0.25]

    def test_looser_bound_higher_ratio(self, result):
        cr = {r["pw_rel"]: r["compression_ratio"] for r in result.rows}
        assert cr[0.25] > cr[0.01]


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig4.run("small").rows

    def _curve(self, rows, dataset, field, compressor):
        pts = [r for r in rows
               if r["dataset"] == dataset and r["field"] == field
               and r["compressor"] == compressor]
        return sorted(pts, key=lambda r: r["bitrate"])

    def test_psnr_increases_with_bitrate_everywhere(self, rows):
        keys = {(r["dataset"], r["field"], r["compressor"]) for r in rows}
        for d, f, c in keys:
            curve = self._curve(rows, d, f, c)
            psnrs = [p["psnr"] for p in curve]
            # allow one local wiggle but require overall increase
            assert psnrs[-1] > psnrs[0], (d, f, c)

    def test_sz_beats_zfp_on_nyx_densities(self, rows):
        # Paper: GPU-SZ generally above cuZFP at matched bitrate on Nyx.
        for field in ("baryon_density", "dark_matter_density"):
            sz = self._curve(rows, "nyx", field, "gpu-sz")
            zfp = self._curve(rows, "nyx", field, "cuzfp")
            # Compare PSNR at the closest bitrates around 4 bits/value.
            sz_near = min(sz, key=lambda p: abs(p["bitrate"] - 4))
            zfp_near = min(zfp, key=lambda p: abs(p["bitrate"] - 4))
            psnr_per_bit_sz = sz_near["psnr"] / max(sz_near["bitrate"], 1e-9)
            psnr_per_bit_zfp = zfp_near["psnr"] / max(zfp_near["bitrate"], 1e-9)
            assert psnr_per_bit_sz > psnr_per_bit_zfp, field

    def test_velocity_curves_nearly_identical(self, rows):
        # Paper: the three Nyx velocity components behave alike.
        curves = [
            self._curve(rows, "nyx", f"velocity_{ax}", "cuzfp") for ax in "xyz"
        ]
        psnr_matrix = np.array([[p["psnr"] for p in c] for c in curves])
        spread = psnr_matrix.max(axis=0) - psnr_matrix.min(axis=0)
        assert np.median(spread) < 3.0  # dB

    def test_hacc_velocity_uses_pwrel(self, rows):
        assert any(
            r["compressor"] == "gpu-sz(pw_rel)" and r["dataset"] == "hacc"
            for r in rows
        )


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run("small")

    def test_six_panels_per_configuration(self, result):
        panels = {r["panel"] for r in result.rows}
        assert panels == {
            "baryon_density", "dark_matter_density", "overall_density",
            "temperature", "velocity_magnitude", "velocity_z",
        }

    def test_lower_rate_worse_pk(self, result):
        rows = [r for r in result.rows
                if r["compressor"] == "cuzfp" and r["panel"] == "baryon_density"]
        by_rate = {r["parameter"]: r["max_pk_deviation"] for r in rows}
        assert by_rate[1.0] > by_rate[8.0]

    def test_sz_best_fit_beats_zfp(self, result):
        # Paper: GPU-SZ's acceptable best fit compresses more than cuZFP's.
        note = next(n for n in result.notes if "paper finding" in n)
        assert "exceeds" in note

    def test_acceptance_flags_consistent(self, result):
        for r in result.rows:
            assert r["acceptable"] == (r["max_pk_deviation"] <= 0.01 + 1e-12)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run("small")

    def test_tightest_bound_preserves_halos(self, result):
        sz = [r for r in result.rows if r["compressor"] == "gpu-sz"]
        best = min(sz, key=lambda r: r["parameter"])
        assert best["max_ratio_deviation"] < 0.2

    def test_degradation_grows_with_bound(self, result):
        sz = sorted(
            (r for r in result.rows if r["compressor"] == "gpu-sz"),
            key=lambda r: r["parameter"],
        )
        assert sz[-1]["max_ratio_deviation"] >= sz[0]["max_ratio_deviation"]

    def test_cuzfp_needs_high_rate(self, result):
        zfp = {r["parameter"]: r for r in result.rows if r["compressor"] == "cuzfp"}
        assert zfp[16.0]["max_ratio_deviation"] <= zfp[4.0]["max_ratio_deviation"]

    def test_notes_quote_overall_ratios(self, result):
        assert any("4.25x" in n for n in result.notes)


class TestFig7:
    def test_breakdown_claims(self):
        rows = fig7.run("small").rows
        comp = [r for r in rows if r["direction"] == "compress"]
        totals = [r["total_ms"] for r in sorted(comp, key=lambda r: r["bitrate"])]
        assert totals == sorted(totals)  # time grows with bitrate
        for r in comp:
            assert r["total_ms"] < r["baseline_ms"]  # beats raw transfer


class TestFig8:
    def test_na_cell_and_gpu_dominance(self):
        rows = fig8.run("small").rows
        zfp20 = next(r for r in rows if r["platform"] == "ZFP CPU 20-core")
        assert zfp20["decompress_gbps"] is None
        gpu = next(r for r in rows if "incl. transfer" in r["platform"])
        cpus = [r for r in rows if "CPU" in r["platform"]]
        assert all(
            gpu["compress_gbps"] > (r["compress_gbps"] or 0) for r in cpus
        )


class TestFig9:
    def test_hardware_ordering(self):
        rows = {r["gpu"]: r for r in fig9.run("small").rows}
        assert (
            rows["Nvidia Tesla V100"]["compress_kernel_gbps"]
            > rows["Nvidia Tesla P100"]["compress_kernel_gbps"]
            > rows["Nvidia Tesla K80"]["compress_kernel_gbps"]
        )


class TestFig2Fig3:
    def test_dag_topology(self):
        from repro.experiments import fig2_fig3

        result = fig2_fig3.run("small")
        by_job = {r["job"]: r for r in result.rows}
        assert by_job["cbench"]["topological_position"] == 0
        assert by_job["cinema"]["topological_position"] == 4
        assert by_job["plots"]["topological_position"] > by_job["halo_finder"]["topological_position"]

    def test_components_note_names_all_three(self):
        from repro.experiments import fig2_fig3

        result = fig2_fig3.run("small")
        note = result.notes[0]
        for comp in ("CBench", "PAT", "Cinema"):
            assert comp in note


class TestGuideline:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import guideline
        return guideline.run("small")

    def test_best_fits_found_for_both_datasets(self, result):
        notes = " | ".join(result.notes)
        assert "Nyx best fit" in notes and "HACC best fit" in notes

    def test_premise_holds(self, result):
        premise = next(n for n in result.notes if "premise" in n)
        assert "holds" in premise

    def test_acceptability_monotone_in_bound(self, result):
        # Among HACC rows, once a bound is acceptable every tighter one is.
        hacc_rows = sorted(
            (r for r in result.rows if r["dataset"] == "hacc"),
            key=lambda r: r["error_bound"],
        )
        seen_acceptable = False
        for r in reversed(hacc_rows):  # loosest -> tightest
            if r["acceptable"]:
                seen_acceptable = True
            # no tightening should flip back to unacceptable after that
        assert seen_acceptable
        tight_ok = [r["acceptable"] for r in hacc_rows[:2]]
        assert all(tight_ok)


class TestFig10:
    def test_monotone_throughput(self):
        result = fig10.run("small")
        assert "monotonically decreasing: True" in result.notes[0]
        rows = result.rows
        # Overall (with transfer) is always below kernel-only.
        for r in rows:
            assert r["compress_overall_gbps"] < r["compress_kernel_gbps"]
