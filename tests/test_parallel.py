"""Tests for the simulated distributed substrate (decomposition, ghost
exchange, distributed FoF, per-rank compression)."""

import collections

import numpy as np
import pytest

from repro.compressors import SZCompressor
from repro.cosmo.fof import friends_of_friends
from repro.errors import DataError
from repro.parallel import (
    CartesianDecomposition,
    compress_distributed,
    distributed_fof,
)
from repro.parallel.compression import decompress_distributed


def _partition_signature(labels: np.ndarray):
    groups = collections.defaultdict(list)
    for i, l in enumerate(labels):
        groups[int(l)].append(i)
    return sorted(tuple(v) for v in groups.values())


class TestDecomposition:
    def test_rank_count(self):
        d = CartesianDecomposition(100.0, (2, 3, 4))
        assert d.n_ranks == 24

    def test_every_particle_owned_once(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        owned = d.scatter(hacc_small.positions)
        all_ids = np.concatenate(owned)
        assert np.array_equal(np.sort(all_ids), np.arange(hacc_small.n_particles))

    def test_rank_of_respects_bounds(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        pos = np.mod(hacc_small.positions, hacc_small.box_size)
        ranks = d.rank_of(pos)
        for r in range(d.n_ranks):
            lo, hi = d.rank_bounds(r)
            mine = pos[ranks == r]
            assert np.all(mine >= lo - 1e-9) and np.all(mine <= hi + 1e-9)

    def test_rank_bounds_validation(self):
        d = CartesianDecomposition(10.0, (2, 2, 2))
        with pytest.raises(DataError):
            d.rank_bounds(8)

    def test_invalid_dims(self):
        with pytest.raises(DataError):
            CartesianDecomposition(10.0, (0, 2, 2))


class TestGhostExchange:
    def test_ghosts_are_within_cutoff(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        cutoff = 2.0
        ranks, _ = d.exchange_ghosts(hacc_small.positions, cutoff)
        for rp in ranks:
            if rp.n_ghost == 0:
                continue
            # Stored ghost positions are already in the local frame.
            dist = d._distance_to_box(rp.positions[rp.n_owned :], rp.rank)
            assert dist.max() <= cutoff + 1e-9

    def test_ghost_positions_shifted_near_box(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        ranks, _ = d.exchange_ghosts(hacc_small.positions, 2.0)
        for rp in ranks:
            lo, hi = d.rank_bounds(rp.rank)
            ghosts = rp.positions[rp.n_owned:]
            if ghosts.size == 0:
                continue
            assert np.all(ghosts >= lo - 2.0 - 1e-9)
            assert np.all(ghosts <= hi + 2.0 + 1e-9)

    def test_communication_volume_recorded(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        _, ex = d.exchange_ghosts(hacc_small.positions, 2.0, bytes_per_particle=24)
        assert ex.total_bytes > 0
        assert ex.total_bytes % 24 == 0

    def test_larger_cutoff_more_ghosts(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        _, ex1 = d.exchange_ghosts(hacc_small.positions, 1.0)
        _, ex2 = d.exchange_ghosts(hacc_small.positions, 4.0)
        assert ex2.total_bytes > ex1.total_bytes

    def test_oversized_cutoff_rejected(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (4, 4, 4))
        with pytest.raises(DataError):
            d.exchange_ghosts(hacc_small.positions, hacc_small.box_size / 4)


class TestDistributedFOF:
    @pytest.mark.parametrize("dims", [(2, 2, 2), (1, 2, 4), (3, 1, 1)])
    def test_matches_serial_partition(self, hacc_small, dims):
        ll = 0.2 * hacc_small.box_size / 24
        serial = friends_of_friends(hacc_small.positions, hacc_small.box_size, ll)
        dist, stats = distributed_fof(
            hacc_small.positions, hacc_small.box_size, ll, dims=dims
        )
        assert dist.n_groups == serial.n_groups
        assert _partition_signature(dist.labels) == _partition_signature(serial.labels)
        assert stats["n_ranks"] == int(np.prod(dims))

    def test_cross_boundary_group(self):
        # A clump straddling the rank boundary at x = 50.
        rng = np.random.default_rng(0)
        clump = np.array([50.0, 25.0, 25.0]) + rng.normal(0, 0.3, (60, 3))
        spread = rng.uniform(0, 100, (200, 3))
        pos = np.mod(np.vstack([clump, spread]), 100.0)
        serial = friends_of_friends(pos, 100.0, 1.5)
        dist, _ = distributed_fof(pos, 100.0, 1.5, dims=(2, 2, 2))
        assert _partition_signature(dist.labels) == _partition_signature(serial.labels)

    def test_periodic_boundary_group(self):
        rng = np.random.default_rng(1)
        clump = np.mod(np.array([0.0, 25.0, 25.0]) + rng.normal(0, 0.3, (40, 3)), 100.0)
        pos = np.vstack([clump, rng.uniform(10, 90, (100, 3))])
        serial = friends_of_friends(pos, 100.0, 1.5)
        dist, _ = distributed_fof(pos, 100.0, 1.5, dims=(2, 1, 1))
        assert _partition_signature(dist.labels) == _partition_signature(serial.labels)

    def test_stats_accounting(self, hacc_small):
        ll = 0.2 * hacc_small.box_size / 24
        _, stats = distributed_fof(hacc_small.positions, hacc_small.box_size, ll)
        assert sum(stats["owned_per_rank"]) == hacc_small.n_particles
        assert stats["ghost_bytes"] > 0


class TestDistributedCompression:
    def test_global_bound_holds(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        sz = SZCompressor()
        res = compress_distributed(
            sz, hacc_small.fields["x"], hacc_small.positions, d,
            error_bound=0.01, mode="abs",
        )
        recon = decompress_distributed(sz, res)
        err = np.abs(recon - hacc_small.fields["x"]).max()
        assert err <= 0.01 + np.spacing(np.float32(hacc_small.box_size))

    def test_ratio_close_to_serial(self, hacc_small):
        sz = SZCompressor()
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        res = compress_distributed(
            sz, hacc_small.fields["x"], hacc_small.positions, d,
            error_bound=0.01, mode="abs",
        )
        serial = sz.compress(hacc_small.fields["x"], error_bound=0.01)
        assert res.compression_ratio > 0.5 * serial.compression_ratio

    def test_per_rank_ratios_reported(self, hacc_small):
        sz = SZCompressor()
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        res = compress_distributed(
            sz, hacc_small.fields["x"], hacc_small.positions, d,
            error_bound=0.01, mode="abs",
        )
        assert len(res.per_rank_ratios()) == len(res.buffers) <= 8

    def test_value_shape_validated(self, hacc_small):
        d = CartesianDecomposition(hacc_small.box_size, (2, 2, 2))
        with pytest.raises(DataError):
            compress_distributed(
                SZCompressor(), hacc_small.fields["x"][:10], hacc_small.positions,
                d, error_bound=0.01,
            )
