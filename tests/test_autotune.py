"""Tests for the knob autotuning helpers."""

import numpy as np
import pytest

from repro.analysis.autotune import (
    search_error_bound_for_ratio,
    search_max_acceptable_bound,
)
from repro.compressors import SZCompressor
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def field(nyx_small):
    return nyx_small.fields["dark_matter_density"]


class TestRatioSearch:
    def test_converges_to_target(self, field):
        sz = SZCompressor()
        for target in (4.0, 8.0):
            eb = search_error_bound_for_ratio(sz, field, target, rel_tol=0.15)
            achieved = sz.compress(field, error_bound=eb).compression_ratio
            assert abs(achieved - target) / target < 0.35

    def test_monotone_in_target(self, field):
        sz = SZCompressor()
        eb_lo = search_error_bound_for_ratio(sz, field, 3.0)
        eb_hi = search_error_bound_for_ratio(sz, field, 10.0)
        assert eb_hi > eb_lo

    def test_zero_field_rejected(self):
        with pytest.raises(AnalysisError):
            search_error_bound_for_ratio(SZCompressor(), np.zeros(100, np.float32), 4.0)


class TestAcceptableBoundSearch:
    def test_finds_boundary(self, field):
        sz = SZCompressor()
        threshold = float(field.std()) * 0.05

        def acceptable(orig, recon):
            return bool(np.abs(orig.astype(np.float64) - recon).max() < threshold)

        bound = search_max_acceptable_bound(sz, field, acceptable, 1e-6, 100.0)
        assert bound is not None
        # The found bound passes; 4x looser fails.
        recon = sz.decompress(sz.compress(field, error_bound=bound, mode="abs"))
        assert acceptable(field, recon)
        recon_bad = sz.decompress(
            sz.compress(field, error_bound=bound * 8, mode="abs")
        )
        assert not acceptable(field, recon_bad)

    def test_returns_none_when_nothing_acceptable(self, field):
        sz = SZCompressor()
        out = search_max_acceptable_bound(
            sz, field, lambda o, r: False, 1e-6, 1.0, iters=2
        )
        assert out is None

    def test_returns_hi_when_everything_acceptable(self, field):
        sz = SZCompressor()
        out = search_max_acceptable_bound(
            sz, field, lambda o, r: True, 1e-6, 1.0, iters=2
        )
        assert out == 1.0

    def test_bad_interval_rejected(self, field):
        with pytest.raises(AnalysisError):
            search_max_acceptable_bound(SZCompressor(), field, lambda o, r: True, 1.0, 0.5)
