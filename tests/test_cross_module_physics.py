"""Cross-module physics checks tying analyses to codec behaviour."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.rate_distortion import rate_distortion_curve
from repro.analysis.rd_model import fit_rd_line
from repro.compressors import SZCompressor
from repro.cosmo.cic import cic_deposit, cic_gather
from repro.cosmo.power_spectrum import power_spectrum

_slow = settings(max_examples=15, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestBlockingArtifact:
    """Fig. 4a's low-bitrate drop comes from GPU-SZ's independent-block
    decorrelation; smaller blocks must show a worse low-rate regime."""

    def test_small_blocks_cost_bits_at_low_rate(self, smooth_field3d):
        eb = float(smooth_field3d.std()) * 0.2  # loose bound = low bitrate
        small = SZCompressor(block_side=4).compress(smooth_field3d, error_bound=eb)
        large = SZCompressor(block_side=16).compress(smooth_field3d, error_bound=eb)
        assert large.bitrate < small.bitrate

    def test_rd_curves_converge_at_high_rate(self, smooth_field3d):
        # At tight bounds the residual entropy dominates and the block
        # border overhead washes out.
        eb = float(smooth_field3d.std()) * 1e-4
        small = SZCompressor(block_side=4).compress(smooth_field3d, error_bound=eb)
        large = SZCompressor(block_side=16).compress(smooth_field3d, error_bound=eb)
        assert small.bitrate < 1.3 * large.bitrate

    def test_sz_high_rate_regime_is_linear(self, smooth_field3d):
        sigma = float(smooth_field3d.std())
        pts = rate_distortion_curve(
            SZCompressor(), smooth_field3d, "error_bound",
            [sigma * f for f in (1e-2, 3e-3, 1e-3, 3e-4)], "abs",
        )
        fit = fit_rd_line(pts)
        # The paper's "similar slopes": close to the 6.02 dB/bit law.
        assert 4.0 < fit.slope_db_per_bit < 9.0
        assert fit.r_squared > 0.95


class TestParsevalConsistency:
    def test_total_power_equals_variance_for_bandlimited_field(self):
        """Integral of the measured P(k) over modes reproduces the field
        variance (Parseval) — validates the estimator normalization.
        The estimator bins only up to the axis Nyquist, so the check uses
        a band-limited field whose power all lies inside that sphere."""
        from repro.cosmo.grf import gaussian_random_field

        box = 10.0
        n = 24
        k_nyq = np.pi * n / box
        rng = np.random.default_rng(0)

        def band_limited(k):
            return np.where((k > 0) & (k < 0.5 * k_nyq), 1.0, 0.0)

        field = gaussian_random_field(n, box, band_limited, rng)
        spec = power_spectrum(field, box, nbins=200)
        total = float(np.nansum(spec.pk * spec.counts)) / box**3
        assert total == pytest.approx(field.var(), rel=0.02)


class TestCICProperties:
    @given(st.integers(0, 40), st.integers(10, 300))
    @_slow
    def test_mass_conservation(self, seed, n):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 3)) * 25.0
        grid = cic_deposit(pos, 8, 25.0)
        assert grid.sum() == pytest.approx(float(n), rel=1e-12)
        assert grid.min() >= 0

    @given(st.integers(0, 40))
    @_slow
    def test_gather_deposit_adjoint(self, seed):
        """<gather(g, p), 1> == <g, deposit(p)> for any field and points."""
        rng = np.random.default_rng(seed)
        grid = rng.standard_normal((6, 6, 6))
        pos = rng.random((50, 3)) * 12.0
        lhs = cic_gather(grid, pos, 12.0).sum()
        rhs = (grid * cic_deposit(pos, 6, 12.0)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-12)

    @given(st.integers(0, 40))
    @_slow
    def test_gather_bounded_by_grid_extremes(self, seed):
        rng = np.random.default_rng(seed)
        grid = rng.standard_normal((6, 6, 6))
        pos = rng.random((50, 3)) * 12.0
        vals = cic_gather(grid, pos, 12.0)
        assert vals.max() <= grid.max() + 1e-12
        assert vals.min() >= grid.min() - 1e-12
