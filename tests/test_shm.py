"""Tests for the zero-copy shared-memory field transport."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.parallel.shm import (
    NO_SHM_ENV,
    SharedArray,
    ShmDescriptor,
    attach_cached,
    detach_all,
    shm_enabled,
)


@pytest.fixture(autouse=True)
def _clean_attachments():
    yield
    detach_all()


class TestSharedArray:
    def test_publish_attach_round_trip(self):
        data = np.arange(1000, dtype=np.float32).reshape(10, 100)
        with SharedArray.publish(data) as pub:
            desc = pub.descriptor()
            assert desc.shape == (10, 100)
            assert desc.nbytes == data.nbytes
            remote = SharedArray.attach(desc)
            try:
                assert np.array_equal(remote.array, data)
                assert not remote.array.flags.writeable
            finally:
                remote.close()

    def test_attach_sees_published_bytes_not_a_copy(self):
        data = np.zeros(64, dtype=np.float64)
        pub = SharedArray.publish(data)
        try:
            remote = SharedArray.attach(pub.descriptor())
            try:
                # Same physical pages: the publisher's view and the
                # attachment alias one buffer.
                assert remote.array[0] == 0.0
                assert np.shares_memory(pub.array, pub.array)
            finally:
                remote.close()
        finally:
            pub.unlink()

    def test_empty_array_rejected(self):
        with pytest.raises(DataError):
            SharedArray.publish(np.empty(0, dtype=np.float32))

    def test_closed_handle_rejects_access(self):
        pub = SharedArray.publish(np.ones(8))
        pub.close()
        with pytest.raises(DataError):
            pub.array

    def test_refcounting_closes_at_zero(self):
        pub = SharedArray.publish(np.ones(16))
        pub.addref()
        pub.release()
        pub.array  # still open: one reference left
        pub.release()
        with pytest.raises(DataError):
            pub.array

    def test_unlink_removes_segment(self):
        pub = SharedArray.publish(np.ones(32))
        desc = pub.descriptor()
        pub.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(desc)

    def test_size_mismatch_detected(self):
        pub = SharedArray.publish(np.ones(16, dtype=np.float32))
        try:
            bad = ShmDescriptor(
                name=pub.name, shape=(1 << 20,), dtype="<f8"
            )
            with pytest.raises(DataError, match="bytes"):
                SharedArray.attach(bad)
        finally:
            pub.unlink()

    def test_attach_cached_memoizes(self):
        pub = SharedArray.publish(np.arange(10.0))
        try:
            desc = pub.descriptor()
            first = attach_cached(desc)
            second = attach_cached(desc)
            assert first is second
            assert detach_all() == 1
        finally:
            pub.unlink()


class TestShmEnabled:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(NO_SHM_ENV, raising=False)
        assert shm_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on"])
    def test_opt_out_values(self, monkeypatch, value):
        monkeypatch.setenv(NO_SHM_ENV, value)
        assert not shm_enabled()

    @pytest.mark.parametrize("value", ["", "0", "off"])
    def test_non_opt_out_values(self, monkeypatch, value):
        monkeypatch.setenv(NO_SHM_ENV, value)
        assert shm_enabled()
