"""Tests for CIC deposition and power-spectrum estimation."""

import numpy as np
import pytest

from repro.cosmo.cic import cic_deposit, density_contrast
from repro.cosmo.power_spectrum import (
    particle_power_spectrum,
    power_spectrum,
    power_spectrum_ratio,
    ratio_within_band,
)
from repro.errors import AnalysisError, DataError


class TestCIC:
    def test_mass_conserved(self):
        rng = np.random.default_rng(0)
        pos = rng.random((1000, 3)) * 50.0
        grid = cic_deposit(pos, 16, 50.0)
        assert grid.sum() == pytest.approx(1000.0)

    def test_weights(self):
        pos = np.array([[25.0, 25.0, 25.0]])
        grid = cic_deposit(pos, 10, 50.0, weights=np.array([3.0]))
        assert grid.sum() == pytest.approx(3.0)

    def test_particle_at_cell_center_deposits_into_one_cell(self):
        # Cell centers are at (i + 0) * dx in this CIC convention when
        # frac == 0; such a particle touches a single cell.
        pos = np.array([[10.0, 20.0, 30.0]])  # dx = 5 -> exact cell corners
        grid = cic_deposit(pos, 10, 50.0)
        assert np.count_nonzero(grid) == 1

    def test_offset_particle_spreads_over_8_cells(self):
        pos = np.array([[12.5, 22.5, 32.5]])
        grid = cic_deposit(pos, 10, 50.0)
        assert np.count_nonzero(grid) == 8

    def test_periodic_wrapping(self):
        pos = np.array([[49.9, 0.05, 25.0]])
        grid = cic_deposit(pos, 10, 50.0)
        assert grid.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(DataError):
            cic_deposit(np.ones((3, 2)), 8, 10.0)
        with pytest.raises(DataError):
            cic_deposit(np.ones((3, 3)), 1, 10.0)
        with pytest.raises(DataError):
            cic_deposit(np.ones((3, 3)), 8, 10.0, weights=np.ones(4))

    def test_density_contrast_zero_mean(self):
        rng = np.random.default_rng(1)
        grid = cic_deposit(rng.random((500, 3)) * 10, 8, 10.0)
        delta = density_contrast(grid)
        assert delta.mean() == pytest.approx(0.0, abs=1e-12)

    def test_density_contrast_rejects_empty(self):
        with pytest.raises(DataError):
            density_contrast(np.zeros((4, 4, 4)))


class TestPowerSpectrum:
    def test_identical_fields_ratio_one(self):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((16, 16, 16))
        p = power_spectrum(f, 10.0)
        ratio = power_spectrum_ratio(p, p)
        assert np.allclose(ratio, 1.0)
        assert ratio_within_band(ratio, 1e-9)

    def test_white_noise_flat_spectrum(self):
        rng = np.random.default_rng(1)
        pks = []
        for _ in range(6):
            f = rng.standard_normal((24, 24, 24))
            p = power_spectrum(f, 10.0, nbins=6)
            pks.append(p.pk)
        mean = np.mean(pks, axis=0)
        assert mean.max() / mean.min() < 1.6  # flat within variance

    def test_amplitude_scaling(self):
        rng = np.random.default_rng(2)
        f = rng.standard_normal((16, 16, 16))
        p1 = power_spectrum(f, 10.0)
        p2 = power_spectrum(2.0 * f, 10.0)
        assert np.allclose(p2.pk, 4.0 * p1.pk)

    def test_mean_subtraction_kills_dc_sensitivity(self):
        rng = np.random.default_rng(3)
        f = rng.standard_normal((16, 16, 16))
        p1 = power_spectrum(f, 10.0)
        p2 = power_spectrum(f + 100.0, 10.0)
        assert np.allclose(p1.pk, p2.pk)

    def test_non_cubic_rejected(self):
        with pytest.raises(DataError):
            power_spectrum(np.zeros((4, 8, 8)), 10.0)

    def test_mismatched_binning_rejected(self):
        rng = np.random.default_rng(4)
        f = rng.standard_normal((16, 16, 16))
        a = power_spectrum(f, 10.0, nbins=8)
        b = power_spectrum(f, 10.0, nbins=4)
        with pytest.raises(AnalysisError):
            power_spectrum_ratio(a, b)

    def test_band_check_flags_deviation(self):
        ratio = np.array([1.0, 1.005, 0.995])
        assert ratio_within_band(ratio, 0.01)
        assert not ratio_within_band(np.array([1.0, 1.02]), 0.01)

    def test_band_check_rejects_all_nan(self):
        with pytest.raises(AnalysisError):
            ratio_within_band(np.array([np.nan, np.nan]))


class TestParticlePowerSpectrum:
    def test_uniform_lattice_has_tiny_power(self):
        n = 16
        g = (np.arange(n) + 0.5) * (50.0 / n)
        pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)
        p = particle_power_spectrum(pos, 50.0, grid_size=16, nbins=6)
        assert np.nanmax(p.pk) < 1e-10

    def test_clustered_exceeds_random(self, hacc_small):
        rng = np.random.default_rng(0)
        random_pos = rng.random(hacc_small.positions.shape) * hacc_small.box_size
        p_clustered = particle_power_spectrum(hacc_small.positions, hacc_small.box_size, grid_size=32, nbins=6)
        p_random = particle_power_spectrum(random_pos, hacc_small.box_size, grid_size=32, nbins=6)
        assert np.nanmean(p_clustered.pk[:3]) > 5 * np.nanmean(p_random.pk[:3])
