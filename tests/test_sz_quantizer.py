"""Unit tests for SZ quantization and escape coding."""

import numpy as np
import pytest

from repro.compressors.sz.quantizer import (
    ESCAPE,
    OutlierSection,
    _unzigzag,
    _zigzag,
    dequantize,
    prequantize,
    residuals_to_symbols,
    symbols_to_residuals,
)
from repro.errors import CorruptStreamError, DataError


class TestPrequantize:
    def test_error_bound_honored(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(10000) * 50
        for eb in (1.0, 0.1, 1e-3):
            q = prequantize(data, eb)
            recon = dequantize(q, eb, np.dtype(np.float64))
            assert np.abs(recon - data).max() <= eb * (1 + 1e-12)

    def test_invalid_bound_raises(self):
        with pytest.raises(DataError):
            prequantize(np.ones(4), 0.0)
        with pytest.raises(DataError):
            prequantize(np.ones(4), float("nan"))

    def test_overflow_guard(self):
        with pytest.raises(DataError):
            prequantize(np.array([1e30]), 1e-8)

    def test_ties_round_to_even(self):
        # rint semantics: 0.5/2eb lattice ties are deterministic.
        q = prequantize(np.array([1.0, 3.0]), 1.0)  # values/2 = 0.5, 1.5
        assert q.tolist() == [0, 2]


class TestSymbols:
    def test_round_trip_in_range(self):
        res = np.array([-5, 0, 5, 100, -100], dtype=np.int64)
        sym, out = residuals_to_symbols(res, radius=128)
        assert out.size == 0
        assert np.array_equal(symbols_to_residuals(sym, out, 128), res)

    def test_escape_handling(self):
        res = np.array([0, 5000, -1, -7000], dtype=np.int64)
        sym, out = residuals_to_symbols(res, radius=1024)
        assert (sym == ESCAPE).sum() == 2
        assert out.tolist() == [5000, -7000]
        assert np.array_equal(symbols_to_residuals(sym, out, 1024), res)

    def test_boundary_residuals(self):
        radius = 16
        res = np.array([-16, -15, 15, 16], dtype=np.int64)
        sym, out = residuals_to_symbols(res, radius)
        # |res| < radius is in range: -15..15 in, +-16 escape.
        assert out.tolist() == [-16, 16]
        assert np.array_equal(symbols_to_residuals(sym, out, radius), res)

    def test_outlier_count_mismatch_raises(self):
        sym = np.array([ESCAPE, ESCAPE])
        with pytest.raises(CorruptStreamError):
            symbols_to_residuals(sym, np.array([1], dtype=np.int64), 16)

    def test_small_radius_rejected(self):
        with pytest.raises(DataError):
            residuals_to_symbols(np.zeros(1, np.int64), 1)


class TestOutlierSection:
    def test_empty(self):
        sec = OutlierSection.encode(np.zeros(0, np.int64))
        assert sec.count == 0 and sec.decode().size == 0

    def test_round_trip(self):
        vals = np.array([0, 1, -1, 10**12, -(10**12)], dtype=np.int64)
        sec = OutlierSection.encode(vals)
        assert np.array_equal(sec.decode(), vals)

    def test_width_is_minimal(self):
        sec = OutlierSection.encode(np.array([3], dtype=np.int64))
        assert sec.width == 3  # zigzag(3) = 6 -> 3 bits


class TestZigzag:
    def test_known_values(self):
        v = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert _zigzag(v).tolist() == [0, 1, 2, 3, 4]

    def test_round_trip_random(self):
        rng = np.random.default_rng(0)
        v = rng.integers(-(10**9), 10**9, 1000)
        assert np.array_equal(_unzigzag(_zigzag(v)), v)
