"""Tests for the ZFP fixed-precision / fixed-accuracy extension modes."""

import numpy as np
import pytest

from repro.compressors import CompressorMode, CuZFP, ZFPCompressor
from repro.errors import DataError, UnsupportedModeError


@pytest.fixture(scope="module")
def zfp():
    return ZFPCompressor()


class TestFixedPrecision:
    def test_round_trip(self, zfp, smooth_field3d):
        buf = zfp.compress(smooth_field3d, precision=16)
        recon = zfp.decompress(buf)
        assert recon.shape == smooth_field3d.shape
        assert buf.mode is CompressorMode.FIXED_PRECISION

    def test_more_precision_less_error(self, zfp, smooth_field3d):
        errs = []
        for p in (6, 12, 20, 28):
            recon = zfp.decompress(zfp.compress(smooth_field3d, precision=p))
            errs.append(np.abs(recon.astype(np.float64) - smooth_field3d).max())
        assert errs == sorted(errs, reverse=True)

    def test_variable_rate_adapts_to_content(self, zfp):
        # A smooth field needs fewer bits than noise at equal precision.
        rng = np.random.default_rng(0)
        smooth = np.linspace(0, 1, 4096).reshape(16, 16, 16).astype(np.float32)
        noise = rng.standard_normal((16, 16, 16)).astype(np.float32)
        b_smooth = zfp.compress(smooth, precision=16)
        b_noise = zfp.compress(noise, precision=16)
        assert b_smooth.compressed_nbytes < b_noise.compressed_nbytes

    def test_precision_bounds_validated(self, zfp, smooth_field3d):
        with pytest.raises(DataError):
            zfp.compress(smooth_field3d, precision=0)
        with pytest.raises(DataError):
            zfp.compress(smooth_field3d, precision=99)


class TestFixedAccuracy:
    @pytest.mark.parametrize("tol", [1e-1, 1e-2, 1e-3])
    def test_tolerance_honored(self, zfp, smooth_field3d, tol):
        recon = zfp.decompress(zfp.compress(smooth_field3d, tolerance=tol))
        err = np.abs(recon.astype(np.float64) - smooth_field3d.astype(np.float64)).max()
        assert err <= tol

    def test_tolerance_honored_on_wild_dynamic_range(self, zfp):
        data = np.zeros((8, 4, 4), dtype=np.float32)
        data[:4] = 1e-3
        data[4:] = 1e5
        recon = zfp.decompress(zfp.compress(data, tolerance=1.0))
        assert np.abs(recon - data).max() <= 1.0

    def test_looser_tolerance_higher_ratio(self, zfp, smooth_field3d):
        ratios = [
            zfp.compress(smooth_field3d, tolerance=t).compression_ratio
            for t in (1e-4, 1e-2, 1e-1)
        ]
        assert ratios == sorted(ratios)

    def test_invalid_tolerance_rejected(self, zfp, smooth_field3d):
        with pytest.raises(DataError):
            zfp.compress(smooth_field3d, tolerance=0.0)
        with pytest.raises(DataError):
            zfp.compress(smooth_field3d, tolerance=float("nan"))

    def test_2d_and_1d_accuracy(self, zfp, smooth_field3d):
        for data in (smooth_field3d[0], np.ascontiguousarray(smooth_field3d[0, 0])):
            recon = zfp.decompress(zfp.compress(data, tolerance=1e-2))
            assert np.abs(recon.astype(np.float64) - data).max() <= 1e-2


class TestModeResolution:
    def test_knob_implies_mode(self, zfp, smooth_field3d):
        assert zfp.compress(smooth_field3d, rate=4).mode is CompressorMode.FIXED_RATE
        assert (
            zfp.compress(smooth_field3d, precision=12).mode
            is CompressorMode.FIXED_PRECISION
        )
        assert (
            zfp.compress(smooth_field3d, tolerance=0.1).mode
            is CompressorMode.FIXED_ACCURACY
        )

    def test_multiple_knobs_rejected(self, zfp, smooth_field3d):
        with pytest.raises(DataError):
            zfp.compress(smooth_field3d, rate=4, precision=12)

    def test_explicit_mode_requires_its_knob(self, zfp, smooth_field3d):
        with pytest.raises(DataError):
            zfp.compress(smooth_field3d, rate=4, mode="fixed_accuracy")

    def test_cuzfp_remains_fixed_rate_only(self, smooth_field3d):
        cu = CuZFP()
        with pytest.raises(UnsupportedModeError):
            cu.compress(smooth_field3d, tolerance=0.1)
        with pytest.raises(UnsupportedModeError):
            cu.compress(smooth_field3d, precision=12)
        assert cu.compress(smooth_field3d, rate=4).compression_ratio > 1


class TestSZPredictorOption:
    def test_forced_predictors_honor_bound(self, smooth_field3d):
        from repro.compressors import SZCompressor

        tol = float(np.spacing(np.abs(smooth_field3d).max()))
        for predictor in ("lorenzo", "regression", "adaptive"):
            sz = SZCompressor(predictor=predictor)
            recon = sz.decompress(sz.compress(smooth_field3d, error_bound=1e-2))
            err = np.abs(recon.astype(np.float64) - smooth_field3d).max()
            assert err <= 1e-2 + tol, predictor

    def test_forced_fractions(self, smooth_field3d):
        from repro.compressors import SZCompressor

        lor = SZCompressor(predictor="lorenzo").compress(smooth_field3d, error_bound=1e-2)
        reg = SZCompressor(predictor="regression").compress(smooth_field3d, error_bound=1e-2)
        assert lor.meta["predictor_regression_fraction"] == 0.0
        assert reg.meta["predictor_regression_fraction"] == 1.0

    def test_unknown_predictor_rejected(self):
        from repro.compressors import SZCompressor
        from repro.errors import DataError

        with pytest.raises(DataError):
            SZCompressor(predictor="spline")
