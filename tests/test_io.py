"""Tests for the GenericIO-like and HDF5-like containers."""

import numpy as np
import pytest

from repro.errors import CorruptStreamError, DataError
from repro.io import (
    GenericIOReader,
    H5LikeFile,
    H5LikeReader,
    RecordStore,
    read_genericio,
    write_genericio,
)


class TestGenericIO:
    def test_round_trip(self, tmp_path, hacc_small):
        path = tmp_path / "snap.gio"
        write_genericio(path, hacc_small.fields)
        back = read_genericio(path)
        assert set(back.variables) == set(hacc_small.fields)
        for k in hacc_small.fields:
            assert np.array_equal(back.variables[k], hacc_small.fields[k])

    def test_partial_read(self, tmp_path, hacc_small):
        path = tmp_path / "snap.gio"
        write_genericio(path, hacc_small.fields)
        back = read_genericio(path, variables=["x", "vx"])
        assert set(back.variables) == {"x", "vx"}

    def test_missing_variable_raises(self, tmp_path, hacc_small):
        path = tmp_path / "snap.gio"
        write_genericio(path, hacc_small.fields)
        with pytest.raises(DataError):
            read_genericio(path, variables=["mass"])

    def test_crc_detects_corruption(self, tmp_path):
        path = tmp_path / "c.gio"
        write_genericio(path, {"a": np.arange(100, dtype=np.float32)})
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0xFF  # flip a data byte
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptStreamError, match="CRC"):
            read_genericio(path)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "x.gio"
        path.write_bytes(b"NOPE" + b"\x00" * 100)
        with pytest.raises(CorruptStreamError):
            read_genericio(path)

    def test_rejects_nd_variables(self, tmp_path):
        with pytest.raises(DataError):
            write_genericio(tmp_path / "x.gio", {"a": np.zeros((2, 2))})

    def test_dtype_preserved(self, tmp_path):
        path = tmp_path / "d.gio"
        write_genericio(path, {"a": np.arange(10, dtype=np.int64)})
        assert read_genericio(path).variables["a"].dtype == np.int64


class TestH5Like:
    def test_round_trip_with_groups(self, tmp_path, nyx_small):
        f = H5LikeFile()
        for name, data in nyx_small.fields.items():
            f.create_dataset(f"native_fields/{name}", data)
        f.attrs["format"] = "nyx-lyaf"
        f.attrs["size"] = 32
        path = tmp_path / "nyx.h5l"
        f.save(path)
        back = H5LikeFile.load(path)
        assert back.attrs["format"] == "nyx-lyaf"
        assert "native_fields" in back.groups()
        for name, data in nyx_small.fields.items():
            assert np.array_equal(back[f"native_fields/{name}"], data)

    def test_duplicate_dataset_raises(self):
        f = H5LikeFile()
        f.create_dataset("a/b", np.zeros(3))
        with pytest.raises(DataError):
            f.create_dataset("a/b", np.zeros(3))

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            H5LikeFile()["nothing"]

    def test_contains_and_keys(self):
        f = H5LikeFile()
        f.create_dataset("g/x", np.ones(2))
        assert "g/x" in f and f.keys() == ["g/x"]

    def test_bad_magic_raises(self, tmp_path):
        p = tmp_path / "bad.h5l"
        p.write_bytes(b"XXXX" + b"\x00" * 50)
        with pytest.raises(CorruptStreamError):
            H5LikeFile.load(p)

    def test_shapes_and_dtypes_preserved(self, tmp_path):
        f = H5LikeFile()
        f.create_dataset("a", np.arange(24, dtype=np.float64).reshape(2, 3, 4))
        p = tmp_path / "s.h5l"
        f.save(p)
        back = H5LikeFile.load(p)["a"]
        assert back.shape == (2, 3, 4) and back.dtype == np.float64


class TestGenericIOReader:
    def test_view_matches_eager_read(self, tmp_path, hacc_small):
        path = tmp_path / "snap.gio"
        write_genericio(path, hacc_small.fields)
        with GenericIOReader(path) as rd:
            assert set(rd.variables()) == set(hacc_small.fields)
            for name, data in hacc_small.fields.items():
                view = rd.view(name)
                assert not view.flags.writeable  # zero-copy, read-only
                assert np.array_equal(view, data)
                assert rd.dtype(name) == data.dtype
                assert rd.count(name) == data.size

    def test_iter_chunks_concatenates_to_field(self, tmp_path, hacc_small):
        path = tmp_path / "snap.gio"
        write_genericio(path, hacc_small.fields)
        with GenericIOReader(path) as rd:
            chunks = list(rd.iter_chunks("vx", 1000, drop_pages=True))
            assert all(c.size == 1000 for c in chunks[:-1])
            assert np.array_equal(
                np.concatenate(chunks), hacc_small.fields["vx"]
            )

    def test_streaming_crc_detects_corruption(self, tmp_path):
        path = tmp_path / "c.gio"
        write_genericio(path, {"a": np.arange(4096, dtype=np.float32)})
        raw = bytearray(path.read_bytes())
        raw[-7] ^= 0xFF
        path.write_bytes(bytes(raw))
        with GenericIOReader(path) as rd:
            with pytest.raises(CorruptStreamError, match="CRC"):
                rd.view("a")
        with GenericIOReader(path, verify=False) as rd:
            rd.view("a")  # opt-out skips the check

    def test_missing_variable_raises(self, tmp_path, hacc_small):
        path = tmp_path / "snap.gio"
        write_genericio(path, hacc_small.fields)
        with GenericIOReader(path) as rd:
            with pytest.raises(DataError):
                rd.view("mass")

    def test_closed_reader_rejects_views(self, tmp_path):
        path = tmp_path / "x.gio"
        write_genericio(path, {"a": np.arange(16, dtype=np.float64)})
        rd = GenericIOReader(path)
        rd.close()
        with pytest.raises(DataError, match="closed"):
            rd.view("a")

    def test_bad_magic_raises(self, tmp_path):
        p = tmp_path / "bad.gio"
        p.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(CorruptStreamError):
            GenericIOReader(p)


class TestH5LikeReader:
    def test_views_match_loaded_file(self, tmp_path, nyx_small):
        f = H5LikeFile()
        for name, data in nyx_small.fields.items():
            f.create_dataset(f"native_fields/{name}", data)
        f.attrs["format"] = "nyx-lyaf"
        path = tmp_path / "nyx.h5l"
        f.save(path)
        with H5LikeReader(path) as rd:
            assert rd.attrs["format"] == "nyx-lyaf"
            for name, data in nyx_small.fields.items():
                key = f"native_fields/{name}"
                assert key in rd
                assert rd.shape(key) == data.shape
                view = rd[key]
                assert not view.flags.writeable
                assert np.array_equal(view, data)

    def test_iter_chunks_flat_order(self, tmp_path):
        f = H5LikeFile()
        data = np.arange(4096, dtype=np.float32).reshape(16, 16, 16)
        f.create_dataset("a", data)
        path = tmp_path / "g.h5l"
        f.save(path)
        with H5LikeReader(path) as rd:
            chunks = list(rd.iter_chunks("a", 300))
            assert np.array_equal(np.concatenate(chunks), data.reshape(-1))

    def test_missing_key_raises(self, tmp_path):
        f = H5LikeFile()
        f.create_dataset("a", np.zeros(4))
        path = tmp_path / "m.h5l"
        f.save(path)
        with H5LikeReader(path) as rd:
            with pytest.raises(KeyError):
                rd["nothing"]


class TestRecordStore:
    def test_append_and_load(self, tmp_path):
        store = RecordStore(tmp_path / "r.jsonl")
        store.append({"a": 1, "b": "x"})
        store.extend([{"a": 2}, {"a": 3}])
        records = store.load()
        assert [r["a"] for r in records] == [1, 2, 3]

    def test_numpy_values_serialized(self, tmp_path):
        store = RecordStore(tmp_path / "np.jsonl")
        store.append({"f": np.float32(1.5), "i": np.int64(2), "arr": np.arange(3)})
        rec = store.load()[0]
        assert rec["f"] == 1.5 and rec["i"] == 2 and rec["arr"] == [0, 1, 2]

    def test_missing_file_loads_empty(self, tmp_path):
        assert RecordStore(tmp_path / "none.jsonl").load() == []

    def test_non_dict_rejected(self, tmp_path):
        with pytest.raises(DataError):
            RecordStore(tmp_path / "x.jsonl").append([1, 2])
