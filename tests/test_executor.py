"""Process executor: worker resolution, chunking, ordering, error
propagation, and CBench parallel-vs-serial record equivalence."""

import os

import numpy as np
import pytest

from repro.errors import DataError, ConfigError
from repro.foresight.cbench import CBench
from repro.foresight.config import CompressorSweep
from repro.parallel.executor import (
    WORKERS_ENV,
    chunked,
    process_map,
    resolve_workers,
)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise DataError("boom on 3")
    return x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers(None) == 1

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ConfigError):
            resolve_workers(None)

    def test_zero_means_one_per_cpu(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(2) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_workers(-1)


class TestChunked:
    def test_exact_and_ragged(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert chunked([], 3) == []

    def test_chunk_size_validated(self):
        with pytest.raises(ConfigError):
            chunked([1], 0)


class TestProcessMap:
    def test_serial_matches_comprehension(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert process_map(_square, range(10)) == [x * x for x in range(10)]

    def test_parallel_preserves_order(self):
        tasks = list(range(23))
        out = process_map(_square, tasks, workers=2, chunk_size=3)
        assert out == [x * x for x in tasks]

    def test_single_task_runs_inline(self):
        assert process_map(_square, [4], workers=8) == [16]

    def test_worker_exception_propagates(self):
        with pytest.raises(DataError, match="boom on 3"):
            process_map(_fail_on_three, range(6), workers=2, chunk_size=1)

    def test_serial_exception_propagates(self):
        with pytest.raises(DataError, match="boom on 3"):
            process_map(_fail_on_three, range(6), workers=1)


class TestCBenchParallel:
    def test_parallel_records_equal_serial_modulo_timings(self):
        rng = np.random.default_rng(5)
        field = (rng.standard_normal((10, 11, 12)) * 20).astype(np.float32)
        sweeps = [
            CompressorSweep(
                name="sz", mode="abs", sweep={"error_bound": [0.5, 0.1]}
            ),
            CompressorSweep(
                name="zfp", mode="fixed_rate", sweep={"rate": [4.0, 8.0]}
            ),
        ]
        bench = CBench({"rho": field}, keep_reconstructions=True)
        serial = bench.run_all(sweeps, workers=1)
        parallel = bench.run_all(sweeps, workers=2)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert p.compressor == s.compressor
            assert p.field == s.field
            assert p.mode == s.mode
            assert p.parameter == s.parameter
            assert p.compression_ratio == s.compression_ratio
            assert p.bitrate == s.bitrate
            assert p.metrics == s.metrics
            assert np.array_equal(p.reconstruction, s.reconstruction)
            # Timings are the only legitimately nondeterministic part.
            assert p.compress_seconds > 0 and p.decompress_seconds > 0
