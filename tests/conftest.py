"""Shared fixtures: small deterministic datasets, reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosmo.hacc import make_hacc_dataset
from repro.cosmo.nyx import make_nyx_dataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def smooth_field3d() -> np.ndarray:
    """A 32^3 smooth-plus-noise float32 field (compresses well)."""
    x, y, z = np.meshgrid(*[np.linspace(0, 4, 32)] * 3, indexing="ij")
    r = np.random.default_rng(0)
    return (np.sin(x) * np.cos(y) + 0.1 * z**2 + 0.01 * r.standard_normal(x.shape)).astype(
        np.float32
    )


@pytest.fixture(scope="session")
def rough_field3d() -> np.ndarray:
    """A 16^3 white-noise float32 field (compresses poorly)."""
    return np.random.default_rng(1).standard_normal((16, 16, 16)).astype(np.float32)


@pytest.fixture(scope="session")
def nyx_small():
    return make_nyx_dataset(grid_size=32, seed=42)


@pytest.fixture(scope="session")
def hacc_small():
    return make_hacc_dataset(particles_per_side=24, seed=7)


def ulp_tolerance(data: np.ndarray) -> float:
    """One float32 ulp at the data's magnitude — the documented slack on
    error bounds introduced by casting reconstructions to float32."""
    return float(np.spacing(np.abs(np.asarray(data, dtype=np.float32)).max()))
