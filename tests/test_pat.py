"""Tests for PAT: Job, Workflow, and the SLURM simulator."""

import time

import pytest

from repro.errors import ScheduleError
from repro.foresight.pat import Job, JobState, SlurmSimulator, Workflow


def _noop():
    return "done"


class TestJob:
    def test_requires_action_or_command(self):
        with pytest.raises(ScheduleError):
            Job(name="empty")

    def test_invalid_names_rejected(self):
        with pytest.raises(ScheduleError):
            Job(name="has space", action=_noop)
        with pytest.raises(ScheduleError):
            Job(name="", action=_noop)

    def test_invalid_resources_rejected(self):
        with pytest.raises(ScheduleError):
            Job(name="j", action=_noop, nodes=0)

    def test_sbatch_lines(self):
        job = Job(name="pk", command="python pk.py", nodes=2,
                  walltime_minutes=30, depends_on=["cbench"])
        lines = job.sbatch_lines({"cbench": "1234"})
        text = "\n".join(lines)
        assert "--job-name=pk" in text
        assert "--nodes=2" in text
        assert "--dependency=afterok:1234" in text
        assert "python pk.py" in text


class TestWorkflow:
    def test_duplicate_job_rejected(self):
        wf = Workflow("w")
        wf.add_job(Job(name="a", action=_noop))
        with pytest.raises(ScheduleError):
            wf.add_job(Job(name="a", action=_noop))

    def test_unknown_dependency_rejected(self):
        wf = Workflow("w")
        wf.add_job(Job(name="a", action=_noop, depends_on=["ghost"]))
        with pytest.raises(ScheduleError, match="unknown"):
            wf.validate()

    def test_cycle_detected(self):
        wf = Workflow("w")
        wf.add_job(Job(name="a", action=_noop, depends_on=["b"]))
        wf.add_job(Job(name="b", action=_noop, depends_on=["a"]))
        with pytest.raises(ScheduleError, match="cycle"):
            wf.topological_order()

    def test_topological_order_respects_deps(self):
        wf = Workflow("w")
        wf.add_job(Job(name="plot", action=_noop, depends_on=["pk", "halo"]))
        wf.add_job(Job(name="pk", action=_noop, depends_on=["cbench"]))
        wf.add_job(Job(name="halo", action=_noop, depends_on=["cbench"]))
        wf.add_job(Job(name="cbench", action=_noop))
        order = [j.name for j in wf.topological_order()]
        assert order.index("cbench") < order.index("pk") < order.index("plot")
        assert order.index("halo") < order.index("plot")

    def test_submission_script_chains_sbatch(self, tmp_path):
        wf = Workflow("study")
        wf.add_job(Job(name="a", command="run_a"))
        wf.add_job(Job(name="b", command="run_b", depends_on=["a"]))
        text = wf.write_submission_script(tmp_path / "submit.sh")
        assert text.count("sbatch --parsable") == 2
        assert "afterok" in text
        assert (tmp_path / "submit.sh").read_text() == text


class TestSimulator:
    def test_runs_dag_and_collects_results(self):
        wf = Workflow("w")
        results = []
        wf.add_job(Job(name="first", action=lambda: results.append(1) or "r1"))
        wf.add_job(Job(name="second", action=lambda: results.append(2) or "r2",
                       depends_on=["first"]))
        records = SlurmSimulator().run(wf)
        assert results == [1, 2]
        assert records["second"].result == "r2"
        assert all(r.state is JobState.COMPLETED for r in records.values())

    def test_failure_cascades_to_dependents(self):
        wf = Workflow("w")
        wf.add_job(Job(name="boom", action=lambda: 1 / 0))
        wf.add_job(Job(name="after", action=_noop, depends_on=["boom"]))
        wf.add_job(Job(name="independent", action=_noop))
        records = SlurmSimulator().run(wf)
        assert records["boom"].state is JobState.FAILED
        assert "ZeroDivisionError" in records["boom"].error
        assert records["after"].state is JobState.CANCELLED
        assert records["independent"].state is JobState.COMPLETED

    def test_raise_on_failure(self):
        wf = Workflow("w")
        wf.add_job(Job(name="boom", action=lambda: 1 / 0))
        with pytest.raises(ScheduleError):
            SlurmSimulator().run(wf, raise_on_failure=True)

    def test_oversized_job_fails(self):
        wf = Workflow("w")
        wf.add_job(Job(name="big", action=_noop, nodes=100))
        records = SlurmSimulator(nodes=4).run(wf)
        assert records["big"].state is JobState.FAILED

    def test_command_jobs_charged_walltime(self):
        wf = Workflow("w")
        wf.add_job(Job(name="shell", command="sleep 1", walltime_minutes=5))
        records = SlurmSimulator().run(wf)
        rec = records["shell"]
        assert rec.state is JobState.COMPLETED
        assert rec.end_time - rec.start_time == pytest.approx(300.0)

    def test_job_ids_unique_and_increasing(self):
        sim = SlurmSimulator()
        wf1 = Workflow("a")
        wf1.add_job(Job(name="x", action=_noop))
        wf2 = Workflow("b")
        wf2.add_job(Job(name="y", action=_noop))
        id1 = sim.run(wf1)["x"].job_id
        id2 = sim.run(wf2)["y"].job_id
        assert id2 > id1

    def test_args_kwargs_passed(self):
        wf = Workflow("w")
        wf.add_job(Job(name="add", action=lambda a, b=0: a + b, args=(2,), kwargs={"b": 3}))
        assert SlurmSimulator().run(wf)["add"].result == 5

    def test_invalid_cluster_size(self):
        with pytest.raises(ScheduleError):
            SlurmSimulator(nodes=0)


class TestTimeoutsAndRetries:
    def test_bad_timeout_and_retry_values_rejected(self):
        with pytest.raises(ScheduleError):
            Job(name="j", action=_noop, timeout_s=0)
        with pytest.raises(ScheduleError):
            Job(name="j", action=_noop, timeout_s=-1.0)
        with pytest.raises(ScheduleError):
            Job(name="j", action=_noop, retries=-1)
        with pytest.raises(ScheduleError):
            Job(name="j", action=_noop, retry_backoff_s=-0.1)

    def test_timeout_fails_job_and_cascades(self):
        wf = Workflow("w")
        wf.add_job(Job(name="stuck", action=lambda: time.sleep(30),
                       timeout_s=0.1))
        wf.add_job(Job(name="after", action=_noop, depends_on=["stuck"]))
        t0 = time.perf_counter()
        records = SlurmSimulator().run(wf)
        assert time.perf_counter() - t0 < 10  # abandoned, not awaited
        assert records["stuck"].state is JobState.FAILED
        assert "TimeoutError" in records["stuck"].error
        assert records["stuck"].attempts == 1
        assert records["after"].state is JobState.CANCELLED

    def test_fast_job_unaffected_by_timeout(self):
        wf = Workflow("w")
        wf.add_job(Job(name="quick", action=_noop, timeout_s=30.0))
        rec = SlurmSimulator().run(wf)["quick"]
        assert rec.state is JobState.COMPLETED
        assert rec.result == "done"
        assert rec.attempts == 1

    def test_retry_succeeds_on_second_attempt(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise RuntimeError("transient")
            return "recovered"

        wf = Workflow("w")
        wf.add_job(Job(name="flaky", action=flaky, retries=2))
        rec = SlurmSimulator().run(wf)["flaky"]
        assert rec.state is JobState.COMPLETED
        assert rec.result == "recovered"
        assert rec.attempts == 2
        assert rec.error is None

    def test_retries_exhausted_records_failed(self):
        calls = []

        def always_bad():
            calls.append(1)
            raise ValueError("permanent")

        wf = Workflow("w")
        wf.add_job(Job(name="bad", action=always_bad, retries=2))
        wf.add_job(Job(name="after", action=_noop, depends_on=["bad"]))
        records = SlurmSimulator().run(wf)
        assert len(calls) == 3  # first attempt + 2 retries
        assert records["bad"].state is JobState.FAILED
        assert records["bad"].attempts == 3
        assert "ValueError: permanent" in records["bad"].error
        assert records["after"].state is JobState.CANCELLED

    def test_retry_backoff_is_exponential(self):
        calls = []

        def always_bad():
            calls.append(time.perf_counter())
            raise RuntimeError("nope")

        wf = Workflow("w")
        wf.add_job(Job(name="bad", action=always_bad, retries=2,
                       retry_backoff_s=0.05))
        SlurmSimulator().run(wf)
        assert len(calls) == 3
        gap1 = calls[1] - calls[0]
        gap2 = calls[2] - calls[1]
        assert gap1 >= 0.05
        assert gap2 >= 0.1  # doubled

    def test_timeout_attempts_can_retry_and_recover(self):
        calls = []

        def slow_then_fast():
            calls.append(1)
            if len(calls) < 2:
                time.sleep(30)
            return "made it"

        wf = Workflow("w")
        wf.add_job(Job(name="j", action=slow_then_fast,
                       timeout_s=0.1, retries=1))
        rec = SlurmSimulator().run(wf)["j"]
        assert rec.state is JobState.COMPLETED
        assert rec.result == "made it"
        assert rec.attempts == 2
