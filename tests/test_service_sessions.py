"""Stateful SESSION ops: daemon, cache identity, cluster stickiness."""

import time

import numpy as np
import pytest

from repro.compressors import TemporalCompressor
from repro.cosmo.timeseries import make_nyx_series
from repro.errors import ServiceError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterThread, routing_key
from repro.service.server import ServiceThread
from repro.telemetry.top import render_frame

BOUND = 1e-2


def _snaps(n=6, grid=12, seed=3):
    series = make_nyx_series(grid_size=grid, n_snapshots=n, seed=seed)
    return [s.fields["baryon_density"] for s in series.snapshots]


def _decode(streams, keyframe_every=4):
    codec = TemporalCompressor(inner="sz", keyframe_every=keyframe_every)
    return codec.decode_series(streams)


def _wait_until(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestSessionLifecycle:
    def test_open_step_close_bytes_identical_to_library(self):
        snaps = _snaps()
        library = TemporalCompressor(inner="sz", keyframe_every=4)
        with ServiceThread() as service, \
                ServiceClient(port=service.port) as client:
            with client.session_open(
                "sz", mode="abs", value=BOUND, keyframe_every=4
            ) as session:
                streams = []
                for i, snap in enumerate(snaps):
                    reply, stream = session.step(snap)
                    assert reply["step"] == i
                    assert reply["keyframe"] == (i % 4 == 0)
                    expected = library.compress(
                        snap, mode="abs", error_bound=BOUND
                    )
                    assert stream == expected.payload
                    # The reply echoes the post-step reference digest.
                    assert reply["ref"] == expected.meta["ref_after"]
                    streams.append(stream)
            closing = session.close()  # idempotent client-side
            assert closing["status"] == "ok"
            for snap, out in zip(snaps, _decode(streams)):
                assert np.max(np.abs(
                    out.astype(np.float64) - snap.astype(np.float64)
                )) <= BOUND * (1 + 1e-4)

    def test_close_reports_accounting(self):
        snaps = _snaps(3)
        with ServiceThread() as service, \
                ServiceClient(port=service.port) as client:
            session = client.session_open("sz", mode="abs", value=BOUND)
            for snap in snaps:
                session.step(snap)
            reply = client.session_close(session.session_id)
            assert reply["steps"] == 3
            assert reply["bytes_in"] == sum(s.nbytes for s in snaps)
            assert reply["bytes_out"] > 0

    def test_step_after_close_is_no_session(self):
        with ServiceThread() as service, \
                ServiceClient(port=service.port) as client:
            session = client.session_open("sz", mode="abs", value=BOUND)
            session.close()
            with pytest.raises(ServiceError) as err:
                client.session_step(session.session_id, _snaps(2)[0])
            assert getattr(err.value, "code", None) == "no_session"

    def test_unknown_session_is_no_session(self):
        with ServiceThread() as service, \
                ServiceClient(port=service.port) as client:
            with pytest.raises(ServiceError) as err:
                client.session_step("not-a-session", _snaps(2)[0])
            assert getattr(err.value, "code", None) == "no_session"

    def test_duplicate_session_id_rejected(self):
        with ServiceThread() as service, \
                ServiceClient(port=service.port) as client:
            client.session_open("sz", mode="abs", value=BOUND,
                                session_id="dup")
            with pytest.raises(ServiceError):
                client.session_open("sz", mode="abs", value=BOUND,
                                    session_id="dup")

    def test_session_table_capacity_bounded(self):
        with ServiceThread(max_sessions=2) as service, \
                ServiceClient(port=service.port) as client:
            client.session_open("sz", mode="abs", value=BOUND)
            client.session_open("sz", mode="abs", value=BOUND)
            with pytest.raises(ServiceError):
                client.session_open("sz", mode="abs", value=BOUND)

    def test_desync_fails_fast(self):
        snaps = _snaps(3)
        with ServiceThread() as service, \
                ServiceClient(port=service.port) as client:
            session = client.session_open("sz", mode="abs", value=BOUND)
            session.step(snaps[0])
            with pytest.raises(ServiceError) as err:
                client.session_step(
                    session.session_id, snaps[1],
                    expect_ref="0" * 32,
                )
            assert getattr(err.value, "code", None) == "session_desync"
            # The failed step did not advance the stream: the wrapper's
            # tracked digest still matches and the session continues.
            reply, _ = session.step(snaps[1])
            assert reply["step"] == 1

    def test_idle_sessions_evicted(self):
        with ServiceThread(session_idle_s=0.05) as service, \
                ServiceClient(port=service.port) as client:
            session = client.session_open("sz", mode="abs", value=BOUND)
            time.sleep(0.3)
            with pytest.raises(ServiceError) as err:
                client.session_step(session.session_id, _snaps(2)[0])
            assert getattr(err.value, "code", None) == "no_session"
            stats = client.stats()
            assert stats["sessions"]["evictions"] >= 1


class TestObservability:
    def test_stats_and_top_show_session_pressure(self):
        snaps = _snaps(3)
        with ServiceThread() as service, \
                ServiceClient(port=service.port) as client:
            session = client.session_open(
                "sz", mode="abs", value=BOUND, keyframe_every=4
            )
            for snap in snaps:
                session.step(snap)
            stats = client.stats()
            body = stats["sessions"]
            assert body["open"] == 1
            assert body["max"] == 64
            row = body["sessions"][0]
            assert row["id"] == session.session_id
            assert row["steps"] == 3
            assert row["bytes_in"] == sum(s.nbytes for s in snaps)
            assert row["ref"] == session.ref
            metrics = stats["metrics"]
            assert metrics["service.sessions_open"]["value"] == 1.0
            assert metrics["service.session_steps"]["value"] == 3.0
            assert metrics["service.session_bytes_in"]["value"] == float(
                sum(s.nbytes for s in snaps)
            )
            frame = render_frame(stats)
            assert "sessions    1 /  64 open" in frame
            session.close()
            assert client.stats()["sessions"]["open"] == 0


class TestCacheIdentity:
    """Satellite: stateful codecs must fold reference state into keys."""

    def test_interleaved_sessions_never_collide_on_cached_bytes(
        self, tmp_path
    ):
        snaps = _snaps(4, seed=3)
        other = _snaps(4, seed=17)
        with ServiceThread(cache=str(tmp_path)) as service, \
                ServiceClient(port=service.port) as client:
            a = client.session_open("sz", mode="abs", value=BOUND,
                                    keyframe_every=4)
            b = client.session_open("sz", mode="abs", value=BOUND,
                                    keyframe_every=4)
            # Interleave: the sessions diverge at step 0 (different
            # keyframes), then both step the *same* snapshot at the same
            # bound — identical (compressor, options, mode, value, data)
            # but different reference state.  A reference-blind cache
            # key would hand session B session A's delta bytes.
            a_streams = [a.step(snaps[0])[1], a.step(snaps[1])[1]]
            b_streams = [b.step(other[0])[1], b.step(snaps[1])[1]]
            assert a_streams[1] != b_streams[1]
            for snap, out in zip(
                [snaps[0], snaps[1]], _decode(a_streams)
            ):
                assert np.max(np.abs(
                    out.astype(np.float64) - snap.astype(np.float64)
                )) <= BOUND * (1 + 1e-4)
            for snap, out in zip(
                [other[0], snaps[1]], _decode(b_streams)
            ):
                assert np.max(np.abs(
                    out.astype(np.float64) - snap.astype(np.float64)
                )) <= BOUND * (1 + 1e-4)
            a.close()
            b.close()

    def test_identical_histories_hit_warm(self, tmp_path):
        snaps = _snaps(3)
        with ServiceThread(cache=str(tmp_path)) as service, \
                ServiceClient(port=service.port) as client:
            first = client.session_open("sz", mode="abs", value=BOUND,
                                        keyframe_every=4)
            cold = [first.step(s)[1] for s in snaps]
            first.close()
            again = client.session_open("sz", mode="abs", value=BOUND,
                                        keyframe_every=4)
            warm = []
            for snap in snaps:
                reply, stream = again.step(snap)
                assert reply["cache"] == "hit"
                warm.append(stream)
            again.close()
            assert warm == cold

    def test_make_key_reference_changes_key(self):
        from repro.cache.store import make_key

        base = make_key("temporal:sz", {}, "abs", "error_bound", 1e-2,
                        "d" * 64)
        with_ref = make_key("temporal:sz", {}, "abs", "error_bound", 1e-2,
                            "d" * 64, reference="1:abc:8")
        other_ref = make_key("temporal:sz", {}, "abs", "error_bound", 1e-2,
                             "d" * 64, reference="1:def:8")
        assert len({base, with_ref, other_ref}) == 3
        # reference=None keeps every pre-existing (stateless) key stable.
        assert base == make_key("temporal:sz", {}, "abs", "error_bound",
                                1e-2, "d" * 64, reference=None)


class TestRoutingKey:
    def test_session_ops_hash_only_the_session_id(self):
        a = routing_key(
            {"op": "session_step", protocol.SESSION_FIELD: "s1"},
            b"payload-one",
        )
        b = routing_key(
            {"op": "session_step", protocol.SESSION_FIELD: "s1",
             "expect_ref": "something"},
            b"payload-two",
        )
        assert a is not None and a == b
        assert routing_key(
            {"op": "session_open", protocol.SESSION_FIELD: "s1"}, b""
        ) == a
        assert routing_key(
            {"op": "session_step", protocol.SESSION_FIELD: "s2"}, b""
        ) != a
        assert routing_key({"op": "session_step"}, b"") is None


class TestClusterSessions:
    def test_session_is_shard_sticky_across_steps(self):
        snaps = _snaps(6)
        sa, sb = ServiceThread().start(), ServiceThread().start()
        try:
            shards = [f"127.0.0.1:{sa.port}", f"127.0.0.1:{sb.port}"]
            with ClusterThread(shards=shards) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                session = client.session_open(
                    "sz", mode="abs", value=BOUND, keyframe_every=4
                )
                served_by = set()
                streams = []
                for snap in snaps:
                    reply, stream = session.step(snap)
                    served_by.add(reply[protocol.SHARD_FIELD])
                    streams.append(stream)
                assert len(served_by) == 1
                assert served_by <= set(shards)
                for snap, out in zip(snaps, _decode(streams)):
                    assert np.max(np.abs(
                        out.astype(np.float64) - snap.astype(np.float64)
                    )) <= BOUND * (1 + 1e-4)
                session.close()
        finally:
            for t in (sa, sb):
                try:
                    t.stop()
                except ServiceError:
                    pass

    def test_killed_shard_surfaces_clean_session_lost(self):
        snaps = _snaps(4)
        sa, sb = ServiceThread().start(), ServiceThread().start()
        stopped = []
        try:
            shards = [f"127.0.0.1:{sa.port}", f"127.0.0.1:{sb.port}"]
            with ClusterThread(
                shards=shards, probe_interval_s=0.05,
                fail_after=2, recover_after=1,
            ) as cluster, ServiceClient(port=cluster.port) as client:
                session = client.session_open(
                    "sz", mode="abs", value=BOUND
                )
                reply, _ = session.step(snaps[0])
                owner = reply[protocol.SHARD_FIELD]
                victim = sa if owner == shards[0] else sb
                victim.stop()
                stopped.append(victim)
                # Wait until the router's membership has noticed.
                def drained():
                    health = client.health()
                    return owner not in health.get("serving", [owner])
                _wait_until(drained)
                # The daemon-side state is gone: the client gets a clean
                # machine-readable error — session_lost from the router
                # (owner still ringed but unreachable) or no_session
                # from the shard the ring moved the id to.  Never bytes.
                with pytest.raises(ServiceError) as err:
                    client.session_step(session.session_id, snaps[1])
                assert getattr(err.value, "code", None) in (
                    "session_lost", "no_session"
                )
        finally:
            for t in (sa, sb):
                if t not in stopped:
                    try:
                        t.stop()
                    except ServiceError:
                        pass
