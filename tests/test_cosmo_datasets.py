"""Tests for the synthetic HACC/Nyx generators and dataset containers."""

import numpy as np
import pytest

from repro.cosmo.datasets import (
    GridDataset,
    HACC_TABLE_II,
    NYX_TABLE_II,
    ParticleDataset,
    table_ii_rows,
)
from repro.cosmo.hacc import make_hacc_dataset
from repro.cosmo.halos import find_halos
from repro.cosmo.nyx import make_nyx_dataset
from repro.errors import DataError


class TestNyxGenerator:
    def test_six_fields_float32(self, nyx_small):
        assert set(nyx_small.fields) == {s.name for s in NYX_TABLE_II}
        for f in nyx_small.fields.values():
            assert f.dtype == np.float32
            assert f.shape == (32, 32, 32)

    def test_value_ranges_match_table_ii(self, nyx_small):
        for spec in NYX_TABLE_II:
            assert spec.contains(nyx_small.fields[spec.name], slack=0.0), spec.name

    def test_densities_positive(self, nyx_small):
        assert nyx_small.fields["baryon_density"].min() > 0
        assert nyx_small.fields["dark_matter_density"].min() > 0

    def test_temperature_floor_and_cap(self, nyx_small):
        t = nyx_small.fields["temperature"]
        assert t.min() >= 1e2 and t.max() <= 1e7

    def test_density_is_skewed(self, nyx_small):
        # Lognormal: mean far above median.
        rho = nyx_small.fields["dark_matter_density"].astype(np.float64)
        assert rho.mean() > 2 * np.median(rho)

    def test_seed_reproducibility(self):
        a = make_nyx_dataset(grid_size=16, seed=5)
        b = make_nyx_dataset(grid_size=16, seed=5)
        for k in a.fields:
            assert np.array_equal(a.fields[k], b.fields[k])

    def test_different_seeds_differ(self):
        a = make_nyx_dataset(grid_size=16, seed=5)
        b = make_nyx_dataset(grid_size=16, seed=6)
        assert not np.array_equal(a.fields["temperature"], b.fields["temperature"])

    def test_tiny_grid_rejected(self):
        with pytest.raises(DataError):
            make_nyx_dataset(grid_size=4)


class TestHaccGenerator:
    def test_six_fields_float32_1d(self, hacc_small):
        assert set(hacc_small.fields) == {s.name for s in HACC_TABLE_II}
        for f in hacc_small.fields.values():
            assert f.dtype == np.float32 and f.ndim == 1

    def test_value_ranges_match_table_ii(self, hacc_small):
        for spec in HACC_TABLE_II:
            assert spec.contains(hacc_small.fields[spec.name]), spec.name

    def test_particle_count(self, hacc_small):
        assert hacc_small.n_particles == 24**3

    def test_positions_in_box(self, hacc_small):
        pos = hacc_small.positions
        assert pos.min() >= 0 and pos.max() < hacc_small.box_size

    def test_has_halo_population(self, hacc_small):
        ll = 0.2 * hacc_small.box_size / 24
        cat = find_halos(hacc_small.positions, hacc_small.box_size, ll, min_members=10)
        assert cat.n_halos > 10
        assert cat.sizes.max() >= 50

    def test_halo_fraction_zero_gives_smooth_flow(self):
        ds = make_hacc_dataset(particles_per_side=16, halo_fraction=0.0, seed=1)
        ll = 0.2 * ds.box_size / 16
        cat = find_halos(ds.positions, ds.box_size, ll, min_members=10)
        assert cat.n_halos < 5  # Zel'dovich alone barely percolates

    def test_seed_reproducibility(self):
        a = make_hacc_dataset(particles_per_side=12, seed=3)
        b = make_hacc_dataset(particles_per_side=12, seed=3)
        assert np.array_equal(a.fields["x"], b.fields["x"])

    def test_validation(self):
        with pytest.raises(DataError):
            make_hacc_dataset(particles_per_side=2)
        with pytest.raises(DataError):
            make_hacc_dataset(particles_per_side=16, halo_fraction=0.95)


class TestContainers:
    def test_particle_dataset_validates_lengths(self):
        with pytest.raises(DataError):
            ParticleDataset(
                fields={"x": np.zeros(5), "y": np.zeros(4)}, box_size=10.0
            )

    def test_grid_dataset_validates_shapes(self):
        with pytest.raises(DataError):
            GridDataset(
                fields={"a": np.zeros((4, 4, 4)), "b": np.zeros((4, 4, 5))},
                box_size=10.0,
            )

    def test_with_fields_replaces(self, hacc_small):
        new_x = np.zeros_like(hacc_small.fields["x"])
        ds2 = hacc_small.with_fields({"x": new_x})
        assert np.array_equal(ds2.fields["x"], new_x)
        assert np.array_equal(ds2.fields["y"], hacc_small.fields["y"])
        assert hacc_small.fields["x"].max() > 0  # original untouched

    def test_velocity_magnitude(self, nyx_small):
        vmag = nyx_small.velocity_magnitude()
        assert vmag.min() >= 0
        assert vmag.shape == (32, 32, 32)

    def test_overall_density(self, nyx_small):
        total = nyx_small.overall_density()
        assert np.all(
            total
            >= nyx_small.fields["baryon_density"].astype(np.float64) - 1e-6
        )

    def test_total_bytes(self, nyx_small):
        assert nyx_small.total_bytes() == 6 * 32**3 * 4

    def test_table_ii_rows_complete(self):
        rows = table_ii_rows()
        assert len(rows) == 12
        assert {r["dataset"] for r in rows} == {"HACC", "Nyx"}
