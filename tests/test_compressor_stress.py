"""Stress and pathological-input tests for both codecs.

Extreme magnitudes, denormals, plateaus, sign patterns — the inputs that
break fixed-point and prediction logic if any scale assumption is wrong.
"""

import numpy as np
import pytest

from conftest import ulp_tolerance
from repro.compressors import SZCompressor, ZFPCompressor
from repro.errors import DataError


@pytest.fixture(scope="module")
def sz():
    return SZCompressor()


@pytest.fixture(scope="module")
def zfp():
    return ZFPCompressor()


class TestSZStress:
    def test_near_float32_max(self, sz):
        data = (np.linspace(-3e38, 3e38, 4096).reshape(16, 16, 16)).astype(np.float32)
        eb = 1e33
        recon = sz.decompress(sz.compress(data, error_bound=eb))
        assert np.abs(recon.astype(np.float64) - data).max() <= eb + ulp_tolerance(data)

    def test_denormal_values(self, sz):
        rng = np.random.default_rng(0)
        data = (rng.random(2000) * 1e-38).astype(np.float32)
        eb = 1e-40
        recon = sz.decompress(sz.compress(data, error_bound=eb))
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= eb * 1.01 + 1e-45

    def test_plateau_then_jump(self, sz):
        data = np.zeros(5000, dtype=np.float32)
        data[2500:] = 1e6
        recon = sz.decompress(sz.compress(data, error_bound=0.5))
        assert np.abs(recon - data).max() <= 0.5 + ulp_tolerance(data)

    def test_alternating_signs(self, sz):
        data = (np.resize([1.0, -1.0], 4096) * np.linspace(1, 100, 4096)).astype(np.float32)
        recon = sz.decompress(sz.compress(data, error_bound=1e-3))
        assert np.abs(recon - data).max() <= 1e-3 + ulp_tolerance(data)

    def test_single_element(self, sz):
        data = np.array([42.5], dtype=np.float32)
        recon = sz.decompress(sz.compress(data, error_bound=1e-4))
        assert abs(float(recon[0]) - 42.5) <= 1e-4 + 1e-5

    def test_monotonic_staircase(self, sz):
        data = np.repeat(np.arange(100, dtype=np.float32), 50)
        buf = sz.compress(data, error_bound=1e-3)
        assert buf.compression_ratio > 4  # steps predict perfectly
        assert np.abs(sz.decompress(buf) - data).max() <= 1e-3 + ulp_tolerance(data)

    def test_pwrel_with_huge_dynamic_range(self, sz):
        data = np.geomspace(1e-20, 1e20, 3000).astype(np.float32)
        recon = sz.decompress(sz.compress(data, pwrel=0.01, mode="pw_rel"))
        rel = np.abs((recon.astype(np.float64) - data) / data)
        assert rel.max() <= 0.01 * (1 + 1e-4)

    def test_pwrel_all_negative(self, sz):
        data = (-np.geomspace(1, 1e4, 1000)).astype(np.float32)
        recon = sz.decompress(sz.compress(data, pwrel=0.05, mode="pw_rel"))
        assert np.all(recon < 0)
        rel = np.abs((recon.astype(np.float64) - data) / data)
        assert rel.max() <= 0.05 * (1 + 1e-4)

    def test_error_bound_larger_than_range(self, sz):
        data = np.sin(np.linspace(0, 6, 1000)).astype(np.float32)
        buf = sz.compress(data, error_bound=10.0)
        # Everything quantizes to zero: ~1 bit/value + headers; the LZSS
        # stage collapses the constant symbol stream much further.
        assert buf.compression_ratio > 12
        assert np.abs(sz.decompress(buf) - data).max() <= 10.0
        with_dict = SZCompressor(lossless=["lzss"]).compress(data, error_bound=10.0)
        assert with_dict.compression_ratio > 25

    def test_tiny_2d_array(self, sz):
        data = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        recon = sz.decompress(sz.compress(data, error_bound=1e-4))
        assert recon.shape == (2, 2)


class TestZFPStress:
    def test_near_float32_max(self, zfp):
        data = (np.linspace(-3e38, 3e38, 4096).reshape(16, 16, 16)).astype(np.float32)
        recon = zfp.decompress(zfp.compress(data, rate=16))
        rel = np.abs(recon.astype(np.float64) - data) / 3e38
        assert rel.max() < 1e-3

    def test_denormal_block(self, zfp):
        data = np.full((4, 4, 4), 1e-40, dtype=np.float32)
        recon = zfp.decompress(zfp.compress(data, rate=16))
        assert np.allclose(recon, 1e-40, rtol=1e-2)

    def test_single_value_array(self, zfp):
        data = np.array([3.75], dtype=np.float32)
        recon = zfp.decompress(zfp.compress(data, rate=32))
        assert abs(float(recon[0]) - 3.75) < 1e-5

    def test_negative_zero_and_zero(self, zfp):
        data = np.array([0.0, -0.0, 0.0, -0.0] * 16, dtype=np.float32)
        recon = zfp.decompress(zfp.compress(data, rate=8))
        assert np.all(recon == 0.0)

    def test_checkerboard_high_frequency(self, zfp):
        i, j, k = np.meshgrid(*[np.arange(8)] * 3, indexing="ij")
        data = ((-1.0) ** (i + j + k)).astype(np.float32)
        # Pure Nyquist content: fixed rate still reconstructs something
        # bounded; accuracy mode must meet its tolerance.
        recon = zfp.decompress(zfp.compress(data, tolerance=0.01))
        assert np.abs(recon - data).max() <= 0.01

    def test_float64_extreme_exponents(self, zfp):
        data = np.array([1e-300, 1e300, -1e300, 1e-300] * 16).reshape(8, 8)
        recon = zfp.decompress(zfp.compress(data, tolerance=1e290))
        assert np.abs(recon - data).max() <= 1e290

    def test_rate_below_header_rejected_1d(self, zfp):
        with pytest.raises(DataError):
            zfp.compress(np.zeros(64, dtype=np.float32), rate=2.0)

    def test_huge_rate_clamps_to_lossless_planes(self, zfp):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((8, 8, 8)).astype(np.float32)
        recon = zfp.decompress(zfp.compress(data, rate=64))
        assert np.abs(recon - data).max() < 1e-6 * np.abs(data).max()


class TestCrossCodecConsistency:
    def test_same_field_same_bitrate_comparable_quality(self, sz, zfp, smooth_field3d):
        """At matched bitrate both codecs should land within ~20 dB of
        each other on smooth data (sanity against gross regressions)."""
        from repro.metrics.error import psnr

        zbuf = zfp.compress(smooth_field3d, rate=8)
        zpsnr = psnr(smooth_field3d, zfp.decompress(zbuf))
        # Find an SZ bound with a similar measured bitrate.
        from repro.analysis.autotune import search_error_bound_for_ratio

        eb = search_error_bound_for_ratio(sz, smooth_field3d, 4.0)
        sbuf = sz.compress(smooth_field3d, error_bound=eb)
        spsnr = psnr(smooth_field3d, sz.decompress(sbuf))
        assert abs(zpsnr - spsnr) < 25
