"""Unit tests for the canonical length-limited Huffman codec."""

import numpy as np
import pytest

from repro.errors import CorruptStreamError, DataError
from repro.lossless.huffman import (
    HuffmanCodec,
    canonical_codes,
    huffman_lengths,
    package_merge_lengths,
)


class TestLengths:
    def test_two_symbols_get_one_bit(self):
        lengths = huffman_lengths(np.array([5, 3]))
        assert lengths.tolist() == [1, 1]

    def test_single_symbol_gets_one_bit(self):
        lengths = huffman_lengths(np.array([0, 9, 0]))
        assert lengths.tolist() == [0, 1, 0]

    def test_skewed_distribution_shorter_codes_for_frequent(self):
        lengths = huffman_lengths(np.array([100, 10, 10, 1]))
        assert lengths[0] < lengths[3]

    def test_kraft_inequality_holds(self):
        rng = np.random.default_rng(3)
        freqs = rng.integers(0, 1000, 200)
        lengths = huffman_lengths(freqs, max_len=16)
        used = lengths[lengths > 0]
        assert np.sum(2.0 ** (-used.astype(float))) <= 1.0 + 1e-12

    def test_length_limit_respected(self):
        # Fibonacci-like frequencies force deep unconstrained trees.
        freqs = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377,
                          610, 987, 1597, 2584, 4181, 6765])
        lengths = huffman_lengths(freqs, max_len=8)
        assert lengths.max() <= 8
        used = lengths[lengths > 0]
        assert np.sum(2.0 ** (-used.astype(float))) <= 1.0 + 1e-12

    def test_package_merge_optimality_on_uniform(self):
        # 8 equal frequencies at limit 3 must give exactly 3 bits each.
        lengths = package_merge_lengths(np.ones(8, dtype=np.int64), 3)
        assert lengths.tolist() == [3] * 8

    def test_alphabet_too_large_for_limit_raises(self):
        with pytest.raises(DataError):
            package_merge_lengths(np.ones(9, dtype=np.int64), 3)


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = np.array([2, 2, 2, 3, 3], dtype=np.uint8)
        codes = canonical_codes(lengths)
        rendered = [
            format(int(c), f"0{l}b") for c, l in zip(codes, lengths) if l > 0
        ]
        for i, a in enumerate(rendered):
            for j, b in enumerate(rendered):
                if i != j:
                    assert not b.startswith(a)

    def test_invalid_kraft_raises(self):
        with pytest.raises(DataError):
            canonical_codes(np.array([1, 1, 1], dtype=np.uint8))


class TestCodecRoundTrip:
    @pytest.mark.parametrize("n", [0, 1, 2, 100, 5000])
    def test_sizes(self, n):
        rng = np.random.default_rng(n)
        sym = rng.integers(0, 17, n)
        codec = HuffmanCodec()
        out = codec.decode(codec.encode(sym, 17))
        assert np.array_equal(out, sym)

    def test_single_symbol_stream(self):
        codec = HuffmanCodec()
        sym = np.full(1000, 7)
        out = codec.decode(codec.encode(sym, 8))
        assert np.array_equal(out, sym)

    def test_skewed_stream_compresses(self):
        rng = np.random.default_rng(0)
        sym = rng.choice([0, 1, 2], size=20000, p=[0.9, 0.09, 0.01])
        enc = HuffmanCodec().encode(sym, 3)
        assert len(enc.payload) < 20000 * 4 / 4  # < 8 bits/symbol easily

    def test_chunk_boundaries(self):
        # Sizes around the chunk size exercise offset bookkeeping.
        codec = HuffmanCodec(chunk_size=64)
        rng = np.random.default_rng(5)
        for n in (63, 64, 65, 128, 129):
            sym = rng.integers(0, 50, n)
            assert np.array_equal(codec.decode(codec.encode(sym, 50)), sym)

    def test_alphabet_larger_than_observed(self):
        codec = HuffmanCodec()
        sym = np.array([0, 2, 4])
        out = codec.decode(codec.encode(sym, 1000))
        assert np.array_equal(out, sym)

    def test_negative_symbol_raises(self):
        with pytest.raises(DataError):
            HuffmanCodec().encode(np.array([-1, 0]), 4)

    def test_symbol_exceeding_alphabet_raises(self):
        with pytest.raises(DataError):
            HuffmanCodec().encode(np.array([5]), 5)

    def test_bad_magic_raises(self):
        with pytest.raises(CorruptStreamError):
            HuffmanCodec().decode(b"XXXX" + b"\x00" * 64)

    def test_truncated_stream_raises(self):
        codec = HuffmanCodec()
        enc = codec.encode(np.arange(100) % 7, 7)
        with pytest.raises(CorruptStreamError):
            codec.decode(enc.payload[: len(enc.payload) // 2])

    def test_constructor_validation(self):
        with pytest.raises(DataError):
            HuffmanCodec(max_len=0)
        with pytest.raises(DataError):
            HuffmanCodec(max_len=25)
        with pytest.raises(DataError):
            HuffmanCodec(chunk_size=0)
