"""Unit tests for the LZSS dictionary coder."""

import numpy as np
import pytest

from repro.errors import CorruptStreamError
from repro.lossless.lzss import MIN_MATCH, lzss_compress, lzss_decompress


class TestLZSS:
    def test_empty(self):
        assert lzss_decompress(lzss_compress(b"")) == b""

    def test_short_literal_only(self):
        data = b"ab"
        assert lzss_decompress(lzss_compress(data)) == data

    def test_repetitive_compresses(self):
        data = b"cosmology" * 500
        comp = lzss_compress(data)
        assert len(comp) < len(data) / 5
        assert lzss_decompress(comp) == data

    def test_incompressible_falls_back_to_stored(self):
        rng = np.random.default_rng(0)
        data = bytes(rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
        comp = lzss_compress(data)
        assert len(comp) <= len(data) + 16
        assert lzss_decompress(comp) == data

    def test_overlapping_match(self):
        # 'aaaa...' forces matches overlapping their own output.
        data = b"a" * 1000
        assert lzss_decompress(lzss_compress(data)) == data

    def test_round_trip_structured(self):
        rng = np.random.default_rng(1)
        data = bytes(rng.choice([65, 66, 67], 5000).astype(np.uint8).tobytes()) * 2
        assert lzss_decompress(lzss_compress(data)) == data

    def test_bad_magic_raises(self):
        with pytest.raises(CorruptStreamError):
            lzss_decompress(b"BAD!" + b"\x00" * 32)

    def test_min_match_constant(self):
        assert MIN_MATCH == 3

    def test_small_window_parameters(self):
        data = b"abcabcabc" * 100
        comp = lzss_compress(data, offset_bits=8, length_bits=4)
        assert lzss_decompress(comp) == data
