"""Tests for the sparse Huffman length table and SZ auto-radius."""

import numpy as np
import pytest

from conftest import ulp_tolerance
from repro.compressors import SZCompressor
from repro.errors import CorruptStreamError, DataError
from repro.lossless.huffman import HuffmanCodec


class TestSparseLengthTable:
    def test_sparse_selected_for_tiny_used_set(self):
        # Alphabet 10,000 but only 3 symbols used -> sparse table.
        sym = np.resize([17, 4242, 9999], 5000)
        codec = HuffmanCodec()
        enc = codec.encode(sym, 10_000)
        assert np.array_equal(codec.decode(enc), sym)
        # Dense would need ceil(5*10000/8) = 6250 bytes of table alone.
        assert len(enc.payload) < 3000

    def test_dense_selected_for_saturated_alphabet(self):
        rng = np.random.default_rng(0)
        sym = rng.integers(0, 256, 20000)
        codec = HuffmanCodec()
        enc = codec.encode(sym, 256)
        assert np.array_equal(codec.decode(enc), sym)

    def test_both_formats_decode_identically(self):
        # Same logical stream through both table encodings must agree.
        sym = np.resize([0, 1], 1000)
        codec = HuffmanCodec()
        small = codec.encode(sym, 2)       # dense (tiny alphabet)
        large = codec.encode(sym, 50_000)  # sparse (huge alphabet)
        assert np.array_equal(codec.decode(small), codec.decode(large))

    def test_corrupt_table_kind_rejected(self):
        sym = np.resize([0, 1], 100)
        codec = HuffmanCodec()
        enc = bytearray(codec.encode(sym, 2).payload)
        # Header is 32 bytes, then u32 table length, then the kind byte.
        enc[36] = 7
        with pytest.raises(CorruptStreamError):
            codec.decode(bytes(enc))

    def test_sparse_symbol_out_of_range_rejected(self):
        sym = np.resize([40_000], 100)
        codec = HuffmanCodec()
        payload = bytearray(codec.encode(sym, 50_000).payload)
        # Tamper: declared alphabet smaller than the sparse entry.
        import struct
        alphabet_pos = 4  # after magic
        payload[alphabet_pos : alphabet_pos + 4] = struct.pack("<I", 10)
        with pytest.raises(CorruptStreamError):
            codec.decode(bytes(payload))


class TestAutoRadius:
    def test_bound_still_honored(self, smooth_field3d):
        sz = SZCompressor(radius="auto")
        for eb in (1e-1, 1e-3):
            recon = sz.decompress(sz.compress(smooth_field3d, error_bound=eb))
            err = np.abs(recon.astype(np.float64) - smooth_field3d).max()
            assert err <= eb + ulp_tolerance(smooth_field3d)

    def test_auto_ratio_at_least_close_to_fixed(self, smooth_field3d):
        fixed = SZCompressor().compress(smooth_field3d, error_bound=1e-2)
        auto = SZCompressor(radius="auto").compress(smooth_field3d, error_bound=1e-2)
        assert auto.compression_ratio >= 0.9 * fixed.compression_ratio

    def test_stream_self_describing_across_radius_settings(self, smooth_field3d):
        # A default-configured decoder reads an auto-radius stream.
        buf = SZCompressor(radius="auto").compress(smooth_field3d, error_bound=1e-2)
        recon = SZCompressor(radius=512).decompress(buf)
        assert np.abs(recon - smooth_field3d).max() <= 1e-2 + ulp_tolerance(smooth_field3d)

    def test_invalid_radius_rejected(self):
        with pytest.raises(DataError):
            SZCompressor(radius="automatic")
        with pytest.raises(DataError):
            SZCompressor(radius=1.5)

    def test_auto_radius_power_of_two(self):
        r = SZCompressor._auto_radius(np.array([0, 1, -1, 100], dtype=np.int64))
        assert r & (r - 1) == 0  # power of two
        assert r >= 100

    def test_auto_radius_clamped(self):
        r = SZCompressor._auto_radius(np.array([10**9], dtype=np.int64))
        assert r == 32768
