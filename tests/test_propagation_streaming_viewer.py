"""Tests for error propagation, chunked compression, and the HTML viewer."""

import numpy as np
import pytest

from repro.analysis.error_propagation import (
    magnitude_bound,
    product_bound,
    required_field_bounds_for_magnitude,
    required_field_bounds_for_sum,
    sum_bound,
    verify_composite_bound,
)
from repro.compressors import SZCompressor, ZFPCompressor
from repro.compressors.streaming import ChunkedCompressor
from repro.errors import CorruptStreamError, DataError
from repro.foresight.cinema import CinemaDatabase
from repro.foresight.cinema_viewer import write_viewer


class TestPropagationRules:
    def test_sum_bound(self):
        assert sum_bound(0.1, 0.2, 0.3) == pytest.approx(0.6)

    def test_magnitude_bound(self):
        assert magnitude_bound(3.0, 4.0) == pytest.approx(5.0)

    def test_product_bound_dominates_first_order(self):
        assert product_bound(10.0, 5.0, 0.1, 0.2) == pytest.approx(
            10 * 0.2 + 5 * 0.1 + 0.02
        )

    def test_inverse_rules(self):
        assert required_field_bounds_for_sum(0.6, 3) == pytest.approx(0.2)
        assert required_field_bounds_for_magnitude(0.3, 9) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(DataError):
            sum_bound()
        with pytest.raises(DataError):
            required_field_bounds_for_sum(1.0, 0)


class TestPropagationEmpirical:
    def test_overall_density_bound_holds(self, nyx_small):
        """Compress baryon+DM density separately; the sum respects the
        propagated bound (Fig. 5's overall-density panel situation)."""
        sz = SZCompressor()
        eb = 0.05
        fields = [
            nyx_small.fields["baryon_density"],
            nyx_small.fields["dark_matter_density"],
        ]
        recon = [sz.decompress(sz.compress(f, error_bound=eb)) for f in fields]
        holds, measured = verify_composite_bound(
            fields, recon, lambda a, b: a + b,
            sum_bound(eb, eb) + 2 * float(np.spacing(np.float32(1e4))),
        )
        assert holds
        assert measured > 0  # lossy: the bound is not vacuous

    def test_velocity_magnitude_bound_holds(self, nyx_small):
        sz = SZCompressor()
        eb = 1e5
        fields = [nyx_small.fields[f"velocity_{ax}"] for ax in "xyz"]
        recon = [sz.decompress(sz.compress(f, error_bound=eb)) for f in fields]
        bound = magnitude_bound(eb, eb, eb) + 3 * float(np.spacing(np.float32(1e8)))
        holds, measured = verify_composite_bound(
            fields, recon,
            lambda x, y, z: np.sqrt(x**2 + y**2 + z**2),
            bound,
        )
        assert holds
        assert measured <= bound

    def test_magnitude_tighter_than_sum(self):
        # The sqrt(n) factor matters: magnitude bound < sum bound.
        assert magnitude_bound(0.1, 0.1, 0.1) < sum_bound(0.1, 0.1, 0.1)


class TestChunkedCompressor:
    def test_round_trip_and_bound(self, hacc_small):
        chunked = ChunkedCompressor(SZCompressor(), chunk_size=2048)
        data = hacc_small.fields["x"]
        buf = chunked.compress(data, error_bound=0.01, mode="abs")
        recon = chunked.decompress(buf)
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= 0.01 + np.spacing(np.float32(256.0))
        assert buf.meta["n_chunks"] == -(-data.size // 2048)

    def test_random_access_chunk(self, hacc_small):
        chunked = ChunkedCompressor(SZCompressor(), chunk_size=4096)
        data = hacc_small.fields["vx"]
        buf = chunked.compress(data, error_bound=1.0, mode="abs")
        third = chunked.decompress_chunk(buf, 2)
        assert np.array_equal(third, chunked.decompress(buf)[2 * 4096 : 3 * 4096])

    def test_chunk_index_out_of_range(self, hacc_small):
        chunked = ChunkedCompressor(SZCompressor(), chunk_size=8192)
        buf = chunked.compress(hacc_small.fields["x"], error_bound=0.1, mode="abs")
        with pytest.raises(DataError):
            chunked.decompress_chunk(buf, 10**6)

    def test_ratio_close_to_monolithic(self, hacc_small):
        data = hacc_small.fields["x"]
        mono = SZCompressor().compress(data, error_bound=0.01)
        chunked = ChunkedCompressor(SZCompressor(), chunk_size=2048).compress(
            data, error_bound=0.01, mode="abs"
        )
        assert chunked.compression_ratio > 0.6 * mono.compression_ratio

    def test_works_with_zfp_via_adapter_modes(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(10000).astype(np.float32)
        chunked = ChunkedCompressor(ZFPCompressor(), chunk_size=1024)
        buf = chunked.compress(data, rate=16.0, mode="fixed_rate")
        assert chunked.decompress(buf).shape == data.shape

    def test_nd_contiguous_round_trip(self):
        # N-D C-contiguous input streams its flat view; decompress
        # restores the shape (Nyx's 3-D fields need no caller reshape).
        rng = np.random.default_rng(3)
        data = rng.standard_normal((16, 8, 8)).astype(np.float32)
        chunked = ChunkedCompressor(SZCompressor(), chunk_size=256)
        buf = chunked.compress(data, error_bound=1e-3, mode="abs")
        recon = chunked.decompress(buf)
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= 1e-3 + np.spacing(np.float32(4.0))
        # The stream equals the 1-D stream of the flat view.
        flat = chunked.compress(data.reshape(-1), error_bound=1e-3, mode="abs")
        assert buf.payload == flat.payload

    def test_non_contiguous_rejected(self):
        chunked = ChunkedCompressor(SZCompressor())
        data = np.zeros((8, 8), dtype=np.float32)[:, ::2]
        with pytest.raises(DataError, match="contiguous"):
            chunked.compress(data, error_bound=0.1)

    def test_empty_input_round_trips_params(self):
        # Regression: the zero-chunk stream used to silently default to
        # mode=ABS / parameter=0.0 regardless of the requested knobs.
        chunked = ChunkedCompressor(SZCompressor())
        buf = chunked.compress(
            np.empty(0, dtype=np.float32), pwrel=0.02, mode="pw_rel"
        )
        assert buf.mode.value == "pw_rel"
        assert buf.parameter == 0.02
        assert buf.meta["n_chunks"] == 0
        recon = chunked.decompress(buf)
        assert recon.size == 0
        assert recon.dtype == np.float32

    def test_compress_chunks_matches_in_memory(self, hacc_small):
        # Out-of-core entry point: an iterator of chunk views produces a
        # byte-identical stream to the materialized-array path.
        data = hacc_small.fields["vy"]
        chunked = ChunkedCompressor(SZCompressor(), chunk_size=4096)
        whole = chunked.compress(data, error_bound=0.5, mode="abs")
        streamed = chunked.compress_chunks(
            chunked.iter_input_chunks(data), data.shape, data.dtype,
            error_bound=0.5, mode="abs",
        )
        assert streamed.payload == whole.payload
        assert streamed.original_shape == whole.original_shape

    def test_parallel_chunk_compression_matches_serial(self, hacc_small):
        data = hacc_small.fields["z"]
        chunked = ChunkedCompressor(SZCompressor(), chunk_size=4096)
        serial = chunked.compress(data, error_bound=0.25, mode="abs")
        fanned = chunked.compress(data, workers=2, error_bound=0.25, mode="abs")
        assert fanned.payload == serial.payload

    def test_bad_magic_raises(self):
        chunked = ChunkedCompressor(SZCompressor())
        with pytest.raises(CorruptStreamError):
            chunked.decompress(b"XXXX" + b"\x00" * 32)


class TestCinemaViewer:
    def test_html_written_with_links(self, tmp_path):
        db = CinemaDatabase(tmp_path / "study")

        def artifact(rec, artifact_dir):
            p = artifact_dir / f"a{rec['id']}.txt"
            p.write_text("artifact")
            return f"artifacts/{p.name}"

        db.write([{"id": 1, "psnr": 88.25}, {"id": 2, "psnr": 64.0}],
                 artifact_writer=artifact)
        out = write_viewer(db, title="My study")
        text = out.read_text()
        assert "My study" in text
        assert "88.25" in text
        assert "href='artifacts/a1.txt'" in text

    def test_empty_db_raises(self, tmp_path):
        db = CinemaDatabase(tmp_path / "empty")
        with pytest.raises(Exception):
            write_viewer(db)

    def test_html_escaping(self, tmp_path):
        db = CinemaDatabase(tmp_path / "esc")
        db.write([{"name": "<script>alert(1)</script>"}])
        text = write_viewer(db).read_text()
        assert "<script>alert" not in text
