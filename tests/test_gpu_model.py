"""Tests for the analytic GPU performance model."""

import pytest

from repro.errors import ConfigError, DataError
from repro.gpu import (
    CPU_XEON_6148,
    GPU_CATALOG,
    NVLINK2,
    PCIE3_X16,
    V100,
    cpu_throughput,
    get_gpu,
    kernel_time,
    simulate_compression,
    simulate_decompression,
    transfer_time,
)

N = 512**3


class TestDeviceCatalog:
    def test_table1_has_seven_gpus(self):
        assert len(GPU_CATALOG) == 7

    def test_paper_specs_v100(self):
        assert V100.shaders == 5120
        assert V100.peak_tflops_fp32 == 14.0
        assert V100.mem_bandwidth_gbps == 900.0
        assert V100.architecture == "Volta"

    def test_k80_is_dual_chip(self):
        assert get_gpu("K80").dual_chip

    def test_lookup_by_substring(self):
        assert get_gpu("titan").name == "Nvidia Titan V"

    def test_unknown_gpu_raises(self):
        with pytest.raises(ConfigError):
            get_gpu("A100")

    def test_ambiguous_lookup_raises(self):
        with pytest.raises(ConfigError):
            get_gpu("Tesla")  # V100, P100, K80 all match

    def test_cpu_reference(self):
        assert CPU_XEON_6148.cores == 20


class TestPCIe:
    def test_transfer_time_linear_in_size(self):
        t1 = transfer_time(1e9)
        t2 = transfer_time(2e9)
        assert t2 > t1
        assert t2 - t1 == pytest.approx(1e9 / PCIE3_X16.effective_bandwidth)

    def test_latency_floor(self):
        assert transfer_time(1) >= PCIE3_X16.latency_s

    def test_zero_bytes_costs_nothing(self):
        assert transfer_time(0) == 0.0

    def test_nvlink_faster(self):
        assert transfer_time(1e9, NVLINK2) < transfer_time(1e9, PCIE3_X16)


class TestKernelModel:
    def test_time_increases_with_rate(self):
        times = [kernel_time(V100, "cuzfp", "compress", N, r) for r in (1, 4, 16)]
        assert times == sorted(times)

    def test_better_gpu_is_faster(self):
        k80 = get_gpu("K80")
        assert kernel_time(V100, "cuzfp", "compress", N, 4) < kernel_time(
            k80, "cuzfp", "compress", N, 4
        )

    def test_decompress_cheaper_than_compress(self):
        assert kernel_time(V100, "cuzfp", "decompress", N, 4) <= kernel_time(
            V100, "cuzfp", "compress", N, 4
        )

    def test_unknown_codec_raises(self):
        with pytest.raises(ConfigError):
            kernel_time(V100, "mgard", "compress", N, 4)

    def test_invalid_sizes_raise(self):
        with pytest.raises(DataError):
            kernel_time(V100, "cuzfp", "compress", 0, 4)


class TestCPUThroughput:
    def test_single_core_baselines(self):
        assert cpu_throughput("sz", "compress") == pytest.approx(180e6)
        assert cpu_throughput("zfp", "decompress") == pytest.approx(800e6)

    def test_openmp_scaling_below_linear(self):
        one = cpu_throughput("sz", "compress", 1)
        twenty = cpu_throughput("sz", "compress", 20)
        assert one * 10 < twenty < one * 20

    def test_zfp_omp_decompression_na(self):
        # The paper's Fig. 8 "N/A" cell.
        assert cpu_throughput("zfp", "decompress", 20) is None

    def test_threads_capped_at_cores(self):
        assert cpu_throughput("sz", "compress", 100) == cpu_throughput(
            "sz", "compress", 20
        )

    def test_unknown_codec_raises(self):
        with pytest.raises(ConfigError):
            cpu_throughput("fpzip", "compress")


class TestRuntime:
    def test_compression_stage_order(self):
        run = simulate_compression(N, 4)
        assert [s.name for s in run.stages] == ["init", "kernel", "memcpy", "free"]

    def test_decompression_stage_order(self):
        run = simulate_decompression(N, 4)
        assert [s.name for s in run.stages] == ["init", "memcpy", "kernel", "free"]

    def test_memcpy_scales_with_rate(self):
        lo = simulate_compression(N, 1).breakdown()["memcpy"]
        hi = simulate_compression(N, 16).breakdown()["memcpy"]
        assert hi > lo * 10

    def test_all_rates_beat_uncompressed_baseline(self):
        # Fig. 7's headline: compression always beats raw transfer.
        for rate in (1, 2, 4, 8, 16):
            run = simulate_compression(N, rate)
            assert run.total_seconds < run.baseline_seconds

    def test_memcpy_dominates_kernel_at_high_rate(self):
        # Paper: "the main performance bottleneck is the data transfer".
        run = simulate_compression(N, 8)
        assert run.breakdown()["memcpy"] > run.kernel_seconds

    def test_overall_throughput_below_kernel_throughput(self):
        run = simulate_compression(N, 4)
        assert run.overall_throughput < run.kernel_throughput

    def test_kernel_throughput_decreases_with_rate(self):
        # Fig. 10.
        ks = [simulate_compression(N, r).kernel_throughput for r in (1, 2, 4, 8, 16)]
        assert ks == sorted(ks, reverse=True)

    def test_compressed_bytes_accounting(self):
        run = simulate_compression(1000, 8, value_bytes=4)
        assert run.original_bytes == 4000
        assert run.compressed_bytes == 1000

    def test_invalid_inputs_raise(self):
        with pytest.raises(DataError):
            simulate_compression(0, 4)
        with pytest.raises(DataError):
            simulate_compression(100, -1)
