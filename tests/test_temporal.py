"""Temporal (delta/keyframe) codec: bounds, framing, state discipline."""

import numpy as np
import pytest

from repro.compressors import (
    TemporalCompressor,
    available_compressors,
    get_compressor,
    reference_digest,
)
from repro.compressors.base import CompressorMode
from repro.compressors.temporal import TMP_MAGIC
from repro.cosmo.timeseries import make_nyx_series
from repro.errors import ConfigError, CorruptStreamError, DataError


def _walk_series(n_steps, grid=10, scale=0.05, seed=5):
    """A random-walk field series — every step drifts, no keyframe rescue."""
    rng = np.random.default_rng(seed)
    snap = rng.normal(size=(grid, grid, grid)).astype(np.float32)
    out = [snap]
    for _ in range(n_steps - 1):
        snap = snap + rng.normal(scale=scale, size=snap.shape).astype(
            np.float32
        )
        out.append(snap.astype(np.float32))
    return out


class TestErrorBound:
    def test_abs_bound_holds_at_every_step_through_step_50(self):
        """The tentpole guarantee: per-step ABS error never compounds.

        51 random-walk steps with keyframes only every 16 — at step 50
        the codec has delta-coded dozens of frames in a row, and the
        pointwise error must still be within the single-step bound.
        """
        bound = 1e-2
        enc = TemporalCompressor(inner="sz", keyframe_every=16)
        dec = TemporalCompressor(inner="sz", keyframe_every=16)
        worst = []
        for snap in _walk_series(51):
            buf = enc.compress(snap, mode="abs", error_bound=bound)
            recon = dec.decompress(buf)
            worst.append(
                float(np.max(np.abs(
                    recon.astype(np.float64) - snap.astype(np.float64)
                )))
            )
        assert len(worst) == 51
        # Tiny slack for float32 reference round-trips (« the bound).
        assert max(worst) <= bound * (1 + 1e-4)
        assert worst[50] <= bound * (1 + 1e-4)

    def test_correlated_series_bound_and_gain(self):
        series = make_nyx_series(grid_size=16, n_snapshots=10, seed=3)
        snaps = [s.fields["baryon_density"] for s in series.snapshots]
        bound = 1e-2
        enc = TemporalCompressor(inner="sz", keyframe_every=8)
        indep = get_compressor("sz")
        temporal = independent = 0
        for snap in snaps:
            buf = enc.compress(snap, mode="abs", error_bound=bound)
            temporal += len(buf.payload)
            independent += len(
                indep.compress(snap, mode="abs", error_bound=bound).payload
            )
        outs = enc.decode_series([])  # no-op on empty input
        assert outs == []
        # Residual coding must not *lose* to independent coding here.
        assert temporal < independent


class TestKeyframePolicy:
    def test_keyframe_every_k(self):
        enc = TemporalCompressor(inner="sz", keyframe_every=4)
        flags = [
            enc.compress(s, mode="abs", error_bound=1e-2).meta["keyframe"]
            for s in _walk_series(10)
        ]
        assert flags == [
            True, False, False, False,
            True, False, False, False,
            True, False,
        ]

    def test_keyframe_every_one_means_all_independent(self):
        enc = TemporalCompressor(inner="sz", keyframe_every=1)
        for snap in _walk_series(3):
            buf = enc.compress(snap, mode="abs", error_bound=1e-2)
            assert buf.meta["keyframe"] is True

    def test_shape_change_forces_keyframe(self):
        enc = TemporalCompressor(inner="sz", keyframe_every=8)
        a = np.zeros((8, 8, 8), dtype=np.float32)
        b = np.zeros((6, 6, 6), dtype=np.float32)
        assert enc.compress(a, mode="abs", error_bound=1e-3).meta["keyframe"]
        buf = enc.compress(b, mode="abs", error_bound=1e-3)
        assert buf.meta["keyframe"] is True

    def test_bad_keyframe_every_rejected(self):
        with pytest.raises(DataError):
            TemporalCompressor(inner="sz", keyframe_every=0)


class TestFraming:
    def test_tmp1_stream_is_self_describing(self):
        enc = TemporalCompressor(inner="sz", keyframe_every=4)
        snaps = _walk_series(3)
        bufs = [
            enc.compress(s, mode="abs", error_bound=1e-2) for s in snaps
        ]
        for i, buf in enumerate(bufs):
            assert buf.payload[:4] == TMP_MAGIC
            head, keyframe, _ = TemporalCompressor.parse_frame(buf.payload)
            assert head["step"] == i
            assert head["inner"] == "sz"
            assert head["keyframe_every"] == 4
            assert head["mode"] == "abs"
            assert keyframe == (i == 0)
            assert tuple(head["shape"]) == snaps[i].shape
            if keyframe:
                assert head["ref"] is None
            else:
                assert isinstance(head["ref"], str)

    def test_delta_frame_records_previous_reconstruction_digest(self):
        enc = TemporalCompressor(inner="sz", keyframe_every=8)
        snaps = _walk_series(2)
        first = enc.compress(snaps[0], mode="abs", error_bound=1e-2)
        second = enc.compress(snaps[1], mode="abs", error_bound=1e-2)
        head, _, _ = TemporalCompressor.parse_frame(second.payload)
        assert head["ref"] == first.meta["ref_after"]

    def test_truncated_and_bad_magic_rejected(self):
        enc = TemporalCompressor(inner="sz")
        buf = enc.compress(
            _walk_series(1)[0], mode="abs", error_bound=1e-2
        )
        with pytest.raises(CorruptStreamError):
            TemporalCompressor.parse_frame(buf.payload[:5])
        with pytest.raises(CorruptStreamError):
            TemporalCompressor.parse_frame(b"NOPE" + buf.payload[4:])

    def test_inner_codec_mismatch_rejected(self):
        enc = TemporalCompressor(inner="sz")
        buf = enc.compress(
            np.zeros((8, 8, 8), dtype=np.float32), mode="abs",
            error_bound=1e-3,
        )
        wrong = TemporalCompressor(inner="zfp")
        with pytest.raises(CorruptStreamError):
            wrong.decompress(buf)


class TestStateDiscipline:
    def test_desync_detected_not_garbage(self):
        enc = TemporalCompressor(inner="sz", keyframe_every=8)
        bufs = [
            enc.compress(s, mode="abs", error_bound=1e-2)
            for s in _walk_series(4)
        ]
        fresh = TemporalCompressor(inner="sz", keyframe_every=8)
        with pytest.raises(CorruptStreamError):
            fresh.decompress(bufs[1])  # delta with no reference
        dec = TemporalCompressor(inner="sz", keyframe_every=8)
        dec.decompress(bufs[0])
        with pytest.raises(CorruptStreamError):
            dec.decompress(bufs[2])  # skipped a frame

    def test_reset_restarts_with_keyframe(self):
        enc = TemporalCompressor(inner="sz", keyframe_every=8)
        snaps = _walk_series(3)
        for snap in snaps:
            enc.compress(snap, mode="abs", error_bound=1e-2)
        assert enc.step == 3
        enc.reset()
        assert enc.step == 0
        assert enc.encode_reference_digest is None
        buf = enc.compress(snaps[0], mode="abs", error_bound=1e-2)
        assert buf.meta["keyframe"] is True

    def test_decode_series_is_stateless_wrt_live_decoder(self):
        enc = TemporalCompressor(inner="sz", keyframe_every=8)
        dec = TemporalCompressor(inner="sz", keyframe_every=8)
        snaps = _walk_series(5)
        bufs = [
            enc.compress(s, mode="abs", error_bound=1e-2) for s in snaps
        ]
        dec.decompress(bufs[0])
        dec.decompress(bufs[1])
        live_ref = dec.decode_reference_digest
        outs = dec.decode_series(bufs)
        assert dec.decode_reference_digest == live_ref  # untouched
        for snap, out in zip(snaps, outs):
            assert np.max(np.abs(
                out.astype(np.float64) - snap.astype(np.float64)
            )) <= 1e-2 * (1 + 1e-4)
        # ...and the live decoder continues where it was.
        dec.decompress(bufs[2])

    def test_advance_with_matches_compress(self):
        """Cache-hit path: advancing through stored bytes must land the
        encoder on the same reference as compressing would have."""
        snaps = _walk_series(4)
        a = TemporalCompressor(inner="sz", keyframe_every=8)
        b = TemporalCompressor(inner="sz", keyframe_every=8)
        for snap in snaps:
            buf = a.compress(snap, mode="abs", error_bound=1e-2)
            b.advance_with(buf)
            assert b.encode_reference_digest == a.encode_reference_digest
            assert b.step == a.step

    def test_encoder_and_decoder_round_trip_on_one_instance(self):
        codec = TemporalCompressor(inner="sz", keyframe_every=4)
        for snap in _walk_series(6):
            buf = codec.compress(snap, mode="abs", error_bound=1e-2)
            out = codec.decompress(buf)
            assert np.max(np.abs(
                out.astype(np.float64) - snap.astype(np.float64)
            )) <= 1e-2 * (1 + 1e-4)


class TestConstruction:
    def test_registered_in_registry(self):
        assert "temporal" in available_compressors()
        codec = get_compressor("temporal", inner="sz", keyframe_every=3)
        assert isinstance(codec, TemporalCompressor)
        assert codec.keyframe_every == 3

    def test_wraps_compressor_instance(self):
        inner = get_compressor("sz")
        codec = TemporalCompressor(inner=inner)
        assert codec.inner is inner
        with pytest.raises(DataError):
            TemporalCompressor(inner=inner, inner_options={"radius": 512})

    def test_cannot_nest_temporal(self):
        with pytest.raises(DataError):
            TemporalCompressor(inner=TemporalCompressor(inner="sz"))
        with pytest.raises((DataError, ConfigError)):
            TemporalCompressor(inner="temporal")

    def test_supported_modes_follow_inner(self):
        codec = TemporalCompressor(inner="sz")
        assert codec.supported_modes == get_compressor("sz").supported_modes
        assert CompressorMode.ABS in codec.supported_modes

    def test_reference_digest_content_addressed(self):
        a = np.arange(27, dtype=np.float32).reshape(3, 3, 3)
        assert reference_digest(a) == reference_digest(a.copy())
        assert reference_digest(a) != reference_digest(a + 1)
        assert reference_digest(a) != reference_digest(
            a.astype(np.float64)
        )
