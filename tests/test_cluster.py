"""The cluster router: placement, health-gated membership, hedging,
failover, fleet observability, and the stitched router trace.

Shards here are in-process :class:`ServiceThread` daemons addressed by
``host:port`` (fast, no subprocess spawn); the spawned-fleet path is
exercised separately by ``benchmarks/bench_service.py``.  Two stub
"shards" — one that never answers data ops, one that is a dead socket —
stand in for the slow and crashed fleet members the router must route
around.
"""

import re
import socket
import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.compressors.registry import get_compressor
from repro.errors import ServiceError
from repro.service import ServiceClient, ServiceThread, protocol, routing_key
from repro.service.cluster import ClusterThread
from repro.service.membership import MembershipTable
from repro.service.ring import HashRing


def _field(n=512, seed=0):
    return np.random.default_rng(seed).normal(size=n).astype(np.float32)


def _compress_header(data, value=1e-3):
    return {
        "op": "compress", "compressor": "sz", "mode": "abs",
        "value": value, "options": {}, **protocol.array_fields(data),
    }


def _primary_of(data, shard_ids, value=1e-3):
    """Which shard the router will pick first for compressing ``data``."""
    ring = HashRing(shard_ids)
    key = routing_key(_compress_header(data, value), protocol.pack_array(data))
    return ring.lookup(key)


def _field_with_primary(shard_ids, target, n=512, value=1e-3):
    """A field whose compress request routes to ``target`` first."""
    for seed in range(200):
        data = _field(n, seed)
        if _primary_of(data, shard_ids, value) == target:
            return data
    raise AssertionError(f"no seed routed to {target} in 200 tries")


def _counter(stats, name):
    inst = stats.get("metrics", {}).get(name)
    return float(inst["value"]) if inst else 0.0


def _wait_until(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached in time")


class _StubShard:
    """A fake shard: answers HEALTH promptly, stalls every data op.

    The hedging tests need a shard that is *alive* (so membership keeps
    it in the ring) but uselessly slow — exactly the straggler the hedge
    budget exists for.
    """

    def __init__(self, stall_s=30.0):
        self.stall_s = stall_s
        self._server = socket.create_server(("127.0.0.1", 0))
        self.port = self._server.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def endpoint(self):
        return f"127.0.0.1:{self.port}"

    def _serve(self):
        self._server.settimeout(0.2)
        conns = []
        while not self._stop.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            t = threading.Thread(target=self._peer, args=(conn,), daemon=True)
            t.start()
            conns.append(conn)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def _peer(self, conn):
        try:
            with conn:
                while not self._stop.is_set():
                    header, _ = protocol.read_frame_sock(conn)
                    if str(header.get("op", "")).lower() == "health":
                        reply = {"status": "ok", "draining": False}
                        if header.get("id") is not None:
                            reply["id"] = header["id"]
                        protocol.write_frame_sock(conn, reply)
                        continue
                    # Data op: stall.  The router's hedge fires long
                    # before this returns; its cancel closes our socket.
                    self._stop.wait(self.stall_s)
                    return
        except Exception:
            pass  # router hung up (cancelled hedge loser) — expected

    def close(self):
        self._stop.set()
        self._server.close()
        self._thread.join(timeout=5)


def _dead_endpoint():
    """A host:port that refuses connections (bound once, then closed)."""
    probe = socket.create_server(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


# -- the routing key ---------------------------------------------------------


class TestRoutingKey:
    def test_deterministic_and_metadata_blind(self):
        data = _field()
        header = _compress_header(data)
        key = routing_key(header, protocol.pack_array(data))
        assert key == routing_key(dict(header), protocol.pack_array(data))
        # Request ids, deadlines, and trace context never move a key —
        # otherwise retries of the same work would miss the warm shard.
        noisy = {**header, "id": 99, "timeout_ms": 5.0,
                 protocol.TRACE_FIELD: "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"}
        assert routing_key(noisy, protocol.pack_array(data)) == key

    def test_work_identity_perturbs_the_key(self):
        data = _field()
        payload = protocol.pack_array(data)
        base = routing_key(_compress_header(data), payload)
        assert routing_key(_compress_header(data, value=1e-2), payload) != base
        other = {**_compress_header(data), "compressor": "zfp"}
        assert routing_key(other, payload) != base
        assert routing_key(_compress_header(data),
                           protocol.pack_array(_field(seed=1))) != base

    def test_control_ops_are_keyless(self):
        for op in ("health", "stats", "metrics", "list", "cluster", "nope"):
            assert routing_key({"op": op}, b"") is None

    def test_sweep_keys_on_field_and_spec(self):
        data = _field()
        payload = protocol.pack_array(data)
        sweeps = [{"name": "sz", "mode": "abs",
                   "sweep": {"error_bound": [1e-3]}}]
        h = {"op": "sweep", "field": "rho", "sweeps": sweeps,
             **protocol.array_fields(data)}
        key = routing_key(h, payload)
        assert key == routing_key(dict(h), payload)
        assert routing_key({**h, "field": "vx"}, payload) != key


# -- the membership state machine -------------------------------------------


class TestMembershipTable:
    def test_suspect_does_not_drain(self):
        table = MembershipTable(fail_after=3, recover_after=2)
        table.add("s0")
        assert table.record_failure("s0") is None
        assert table.record_failure("s0") is None
        assert table.state("s0") == "suspect"
        assert table.serving() == ["s0"]  # still eligible while suspect
        assert table.record_failure("s0") == "drain"
        assert table.serving() == []

    def test_recovery_needs_consecutive_successes(self):
        table = MembershipTable(fail_after=1, recover_after=2)
        table.add("s0")
        assert table.record_failure("s0") == "drain"
        assert table.record_success("s0") is None  # 1 of 2
        assert table.record_failure("s0") is None  # streak broken
        assert table.record_success("s0") is None
        assert table.record_success("s0") == "admit"
        assert table.state("s0") == "up"

    def test_success_clears_a_suspect_streak(self):
        table = MembershipTable(fail_after=3, recover_after=1)
        table.add("s0")
        for _ in range(10):  # flapping below the threshold never drains
            table.record_failure("s0")
            assert table.record_success("s0") is None
        assert table.state("s0") == "up"

    def test_probe_delay_backs_off_only_when_down(self):
        table = MembershipTable(fail_after=1, recover_after=1,
                                probe_interval_s=0.1, reprobe_cap_s=2.0,
                                seed=3)
        table.add("s0")
        assert table.probe_delay("s0") == 0.1
        table.record_failure("s0")
        for _ in range(10):
            table.record_failure("s0")
        assert table.probe_delay("s0") <= 2.0 * 1.2  # cap * max jitter
        assert table.probe_delay("s0") > 0.1  # but well past base

    def test_validation(self):
        with pytest.raises(ValueError):
            MembershipTable(fail_after=0)


# -- routed data path --------------------------------------------------------


class TestRoutedRequests:
    def test_reply_matches_direct_library_call(self):
        field = _field(4096)
        with ServiceThread(shard_id="a") as sa, \
                ServiceThread(shard_id="b") as sb:
            shards = [f"127.0.0.1:{sa.port}", f"127.0.0.1:{sb.port}"]
            with ClusterThread(shards=shards) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                buf = client.compress(field, "sz", mode="abs", value=0.1)
                local = get_compressor("sz").compress(
                    field, mode="abs", error_bound=0.1
                )
                assert buf.payload == local.payload
                assert buf.compression_ratio == local.compression_ratio
                recon = client.decompress(buf)
                assert np.array_equal(
                    recon, get_compressor("sz").decompress(local)
                )

    def test_same_key_lands_on_the_same_shard(self):
        data = _field(1024)
        with ServiceThread() as sa, ServiceThread() as sb:
            shards = [f"127.0.0.1:{sa.port}", f"127.0.0.1:{sb.port}"]
            with ClusterThread(shards=shards) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                served_by = set()
                for _ in range(5):
                    reply, _ = client._request(
                        _compress_header(data), protocol.pack_array(data)
                    )
                    served_by.add(reply[protocol.SHARD_FIELD])
                assert len(served_by) == 1
                assert served_by == {_primary_of(data, shards)}

    def test_repeat_sweep_hits_the_warm_shard_cache(self, tmp_path):
        data = _field(2048)
        sweeps = [{"name": "sz", "mode": "abs",
                   "sweep": {"error_bound": [1e-3, 1e-2]}}]
        from repro.cache import ResultCache
        with ServiceThread(cache=ResultCache(tmp_path / "a")) as sa, \
                ServiceThread(cache=ResultCache(tmp_path / "b")) as sb:
            shards = [f"127.0.0.1:{sa.port}", f"127.0.0.1:{sb.port}"]
            with ClusterThread(shards=shards) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                first = client.sweep(data, sweeps, field="rho")
                second = client.sweep(data, sweeps, field="rho")
        assert all(row["cache"] == "miss" for row in first)
        # Placement, not luck: the repeat went to the shard that just
        # filled its cache.
        assert all(row["cache"] == "hit" for row in second)

    def test_keyless_ops_work_through_the_router(self):
        with ServiceThread() as sa:
            shards = [f"127.0.0.1:{sa.port}"]
            with ClusterThread(shards=shards) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                names = client.list_compressors()
                assert "sz" in names

    def test_cluster_op_against_plain_daemon_is_an_error(self):
        with ServiceThread() as svc, \
                ServiceClient(port=svc.port) as client:
            with pytest.raises(ServiceError, match="bad_op|unknown op"):
                client.cluster()


# -- failover and hedging ----------------------------------------------------


class TestFailoverAndHedging:
    def test_dead_primary_fails_over_without_an_error(self):
        dead = _dead_endpoint()
        with ServiceThread() as sa:
            live = f"127.0.0.1:{sa.port}"
            # fail_after is huge so the probe loop cannot rescue the
            # request by draining the dead shard first: the *forward*
            # must fail over on its own.
            with ClusterThread(shards=[dead, live],
                               fail_after=10_000) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                data = _field_with_primary([dead, live], dead)
                buf = client.compress(data, "sz", mode="abs", value=1e-3)
                assert buf.compressed_nbytes > 0
                stats = client.stats()
                assert _counter(stats, "router.failovers") >= 1
                assert _counter(stats, "router.forward_errors") >= 1

    def test_slow_primary_is_hedged_and_the_hedge_wins(self):
        stub = _StubShard()
        try:
            with ServiceThread() as sa:
                live = f"127.0.0.1:{sa.port}"
                shards = [stub.endpoint, live]
                with ClusterThread(shards=shards, hedge_after_s=0.15,
                                   fail_after=10_000) as cluster, \
                        ServiceClient(port=cluster.port) as client:
                    data = _field_with_primary(shards, stub.endpoint)
                    t0 = time.monotonic()
                    reply, body = client._request(
                        _compress_header(data), protocol.pack_array(data)
                    )
                    elapsed = time.monotonic() - t0
                    assert reply["status"] == "ok" and len(body) > 0
                    # Served by the hedge target, long before the stub's
                    # stall would have expired.
                    assert reply[protocol.SHARD_FIELD] == live
                    assert elapsed < 10.0
                    stats = client.stats()
                    assert _counter(stats, "router.hedges") >= 1
                    assert _counter(stats, "router.hedge_wins") >= 1
        finally:
            stub.close()

    def test_all_shards_down_is_a_routing_error(self):
        dead_a, dead_b = _dead_endpoint(), _dead_endpoint()
        with ClusterThread(shards=[dead_a, dead_b],
                           fail_after=10_000) as cluster, \
                ServiceClient(port=cluster.port) as client:
            with pytest.raises(ServiceError, match="failed|shard"):
                client.compress(_field(), "sz", mode="abs", value=1e-3)
            # Control plane still answers while the data plane is dark.
            assert client.health()["status"] == "ok"


# -- health-gated membership, end to end -------------------------------------


class TestDrainAndReadmit:
    def test_killed_shard_is_drained_then_readmitted(self):
        with ServiceThread() as s_keep:
            victim = ServiceThread().start()
            victim_port = victim.port
            keep_ep = f"127.0.0.1:{s_keep.port}"
            victim_ep = f"127.0.0.1:{victim_port}"
            with ClusterThread(shards=[keep_ep, victim_ep],
                               probe_interval_s=0.05, fail_after=2,
                               recover_after=1) as cluster, \
                    ServiceClient(port=cluster.port) as client:

                def serving():
                    return client.health()["serving"]

                _wait_until(lambda: len(serving()) == 2)
                victim.stop()  # graceful: probes see draining, then EOF
                _wait_until(lambda: serving() == [keep_ep])
                states = {s["shard"]: s["state"]
                          for s in client.cluster()["shards"]}
                assert states[victim_ep] == "down"
                # The survivor carries everything — including keys whose
                # primary was the drained shard.
                data = _field_with_primary([keep_ep, victim_ep], victim_ep)
                reply, _ = client._request(
                    _compress_header(data), protocol.pack_array(data)
                )
                assert reply["status"] == "ok"
                assert reply[protocol.SHARD_FIELD] == keep_ep

                # Recovery: a new daemon on the same port re-admits the
                # shard under its old identity, warm keys and all.
                with ServiceThread(port=victim_port):
                    _wait_until(
                        lambda: sorted(serving()) == sorted([keep_ep,
                                                             victim_ep])
                    )
                    reply, _ = client._request(
                        _compress_header(data), protocol.pack_array(data)
                    )
                    assert reply["status"] == "ok"
                    assert reply[protocol.SHARD_FIELD] == victim_ep


# -- fleet observability -----------------------------------------------------


class TestFleetObservability:
    def test_stats_and_metrics_aggregate_with_shard_labels(self):
        with ServiceThread(shard_id="a") as sa, \
                ServiceThread(shard_id="b") as sb:
            ep_a, ep_b = (f"127.0.0.1:{sa.port}", f"127.0.0.1:{sb.port}")
            with ClusterThread(shards=[ep_a, ep_b]) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                # One field aimed at each shard: placement depends on the
                # ephemeral ports, so fixed seeds could all land on one
                # shard and leave the other with nothing to label.
                for target in (ep_a, ep_b, ep_a, ep_b):
                    data = _field_with_primary([ep_a, ep_b], target)
                    client.compress(data, "sz", mode="abs", value=1e-3)
                stats = client.stats()
                assert stats["role"] == "router"
                fleet = stats["fleet"]
                assert fleet["shards_serving"] == 2
                assert set(fleet["shards"]) == {ep_a, ep_b}
                per_shard = sum(
                    int(s.get("requests_total", 0))
                    for s in fleet["shards"].values()
                )
                assert fleet["requests_total"] == per_shard >= 4

                text = client.metrics_text()
                labels = set(re.findall(r'shard="([^"]+)"', text))
                assert {"router", ep_a, ep_b} <= labels
                type_lines = [l for l in text.splitlines()
                              if l.startswith("# TYPE ")]
                assert len(type_lines) == len(set(type_lines))

    def test_cluster_op_reports_topology_membership_and_shares(self):
        with ServiceThread() as sa, ServiceThread() as sb:
            eps = [f"127.0.0.1:{sa.port}", f"127.0.0.1:{sb.port}"]
            with ClusterThread(shards=eps) as cluster, \
                    ServiceClient(port=cluster.port) as client:
                view = client.cluster()
        assert view["role"] == "router"
        assert [s["shard"] for s in view["shards"]] == sorted(eps)
        assert all(s["state"] == "up" for s in view["shards"])
        assert view["membership"]["fail_after"] == 3
        shares = view["ring"]["shares"]
        assert set(shares) == set(eps)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(0.2 < share < 0.8 for share in shares.values())

    def test_routed_request_is_one_stitched_trace(self):
        with telemetry.enabled_telemetry("client") as tm:
            with ServiceThread() as sa:
                with ClusterThread(
                    shards=[f"127.0.0.1:{sa.port}"]
                ) as cluster, ServiceClient(port=cluster.port) as client:
                    client.compress(_field(1024), "sz", mode="abs",
                                    value=1e-3)
        spans = tm.tracer.finished_spans()
        root = next(s for s in spans if s.name == "client.compress")
        tree = [s for s in spans if s.trace_id == root.trace_id]
        names = {s.name for s in tree}
        # Client -> router -> shard, one trace id end to end.
        assert {"client.compress", "router.request", "router.forward",
                "service.request", "service.dispatch"} <= names
        # Connected: every non-root span's ctx parent is in the tree.
        ids = {s.ctx_id for s in tree}
        roots = [s for s in tree
                 if s.ctx_parent_id is None or s.ctx_parent_id not in ids]
        assert [s.name for s in roots] == ["client.compress"]
        forward = next(s for s in tree if s.name == "router.forward")
        request = next(s for s in tree if s.name == "service.request")
        assert request.ctx_parent_id == forward.ctx_id
