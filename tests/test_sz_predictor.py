"""Unit tests for the SZ block predictors."""

import numpy as np
import pytest

from repro.compressors.sz.predictor import (
    estimate_code_bits,
    lorenzo_reconstruct,
    lorenzo_residual,
    regression_fit,
    regression_predict,
)


class TestLorenzo:
    @pytest.mark.parametrize("shape", [(5, 6), (3, 6, 6), (2, 6, 6, 6)])
    def test_round_trip_exact_on_integers(self, shape):
        rng = np.random.default_rng(0)
        q = rng.integers(-10**6, 10**6, shape).astype(np.int64)
        res = lorenzo_residual(q)
        assert np.array_equal(lorenzo_reconstruct(res), q)

    def test_constant_block_residual_is_sparse(self):
        q = np.full((1, 4, 4, 4), 9, dtype=np.int64)
        res = lorenzo_residual(q)
        # Only the corner element carries the DC value.
        assert res[0, 0, 0, 0] == 9
        assert np.count_nonzero(res) == 1

    def test_linear_ramp_residual_small(self):
        i = np.arange(8)
        q = (i[None, :, None, None] + i[None, None, :, None] + i[None, None, None, :]).astype(np.int64)
        res = lorenzo_residual(q)
        # Trilinear data is perfectly predicted except at boundaries.
        interior = res[0, 1:, 1:, 1:]
        assert np.all(interior == 0)

    def test_blocks_are_independent(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 100, (2, 4, 4)).astype(np.int64)
        res_both = lorenzo_residual(a)
        res_first = lorenzo_residual(a[:1])
        assert np.array_equal(res_both[0], res_first[0])


class TestRegression:
    def test_exact_on_affine_data(self):
        i, j, k = np.meshgrid(*[np.arange(6.0)] * 3, indexing="ij")
        block = (1.5 + 2.0 * i - 0.5 * j + 0.25 * k)[None]
        coefs = regression_fit(block)
        pred = regression_predict(coefs, (6, 6, 6))
        assert np.abs(pred - block).max() < 1e-3  # float32 coefficient storage

    def test_coefficients_shape_and_dtype(self):
        blocks = np.zeros((7, 6, 6, 6))
        coefs = regression_fit(blocks)
        assert coefs.shape == (7, 4) and coefs.dtype == np.float32

    def test_constant_block_intercept_only(self):
        coefs = regression_fit(np.full((1, 4, 4), 3.5))
        assert abs(coefs[0, 0] - 3.5) < 1e-6
        assert np.abs(coefs[0, 1:]).max() < 1e-6

    def test_prediction_uses_stored_float32(self):
        # Compressor and decompressor must agree: prediction from the
        # float32-truncated coefficients, not the float64 fit.
        rng = np.random.default_rng(0)
        blocks = rng.standard_normal((3, 6, 6, 6)) * 1e7
        coefs = regression_fit(blocks)
        p1 = regression_predict(coefs, (6, 6, 6))
        p2 = regression_predict(coefs.copy(), (6, 6, 6))
        assert np.array_equal(p1, p2)

    def test_1d_blocks(self):
        blocks = np.linspace(0, 1, 12).reshape(2, 6)
        coefs = regression_fit(blocks)
        assert coefs.shape == (2, 2)
        pred = regression_predict(coefs, (6,))
        assert np.abs(pred - blocks).max() < 1e-5


class TestCostEstimate:
    def test_zero_residual_costs_one_bit_per_sample(self):
        res = np.zeros((2, 4, 4), dtype=np.int64)
        cost = estimate_code_bits(res, (1, 2))
        assert np.allclose(cost, 16.0)

    def test_larger_residuals_cost_more(self):
        small = np.ones((1, 8), dtype=np.int64)
        big = np.full((1, 8), 1000, dtype=np.int64)
        assert estimate_code_bits(big, (1,))[0] > estimate_code_bits(small, (1,))[0]
