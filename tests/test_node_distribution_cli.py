"""Tests for the node overhead model, error-distribution metrics, and the
Foresight CLI."""

import json

import numpy as np
import pytest

from repro.compressors import SZCompressor, ZFPCompressor
from repro.errors import DataError
from repro.foresight.cli import main as cli_main
from repro.gpu import SUMMIT_NODE, NodeSpec, V100, node_insitu_overhead
from repro.metrics.distribution import error_distribution


class TestNodeOverhead:
    def test_paper_summit_claim(self):
        """CPU > several %, 6-GPU node < 0.3% — Section V-C's numbers."""
        rows = node_insitu_overhead(2.5e12 / 1024, 10.0, bits_per_value=3.0)
        cpu, gpu = rows
        assert cpu.overhead_fraction > 0.05
        assert gpu.overhead_fraction < 0.003
        assert cpu.overhead_fraction / gpu.overhead_fraction > 40

    def test_more_gpus_less_overhead(self):
        one = NodeSpec("1gpu", gpu=V100, n_gpus=1, cpu_threads=40)
        rows1 = node_insitu_overhead(2e9, 10.0, 4.0, node=one)
        rows6 = node_insitu_overhead(2e9, 10.0, 4.0, node=SUMMIT_NODE)
        assert rows6[1].overhead_fraction < rows1[1].overhead_fraction

    def test_validation(self):
        with pytest.raises(DataError):
            node_insitu_overhead(0, 10.0, 4.0)
        bad = NodeSpec("none", gpu=V100, n_gpus=0, cpu_threads=4)
        with pytest.raises(DataError):
            node_insitu_overhead(1e9, 10.0, 4.0, node=bad)


class TestErrorDistribution:
    def test_sz_abs_errors_are_uniform_like(self, smooth_field3d):
        """CBench's observation: SZ ABS-mode error fills the bound range
        evenly (uniform kurtosis is -1.2)."""
        sz = SZCompressor()
        recon = sz.decompress(sz.compress(smooth_field3d, error_bound=1e-2))
        dist = error_distribution(smooth_field3d, recon, bound=1e-2)
        assert dist.uniform_like
        assert dist.excess_kurtosis == pytest.approx(-1.2, abs=0.25)

    def test_zfp_errors_are_gaussian_like(self, smooth_field3d):
        """The paper: "lossy compression — such as ZFP — provides a
        Gaussian-like error distribution"."""
        zfp = ZFPCompressor()
        recon = zfp.decompress(zfp.compress(smooth_field3d, rate=8))
        dist = error_distribution(smooth_field3d, recon)
        assert dist.gaussian_like
        assert not dist.uniform_like

    def test_error_mean_near_zero(self, smooth_field3d):
        sz = SZCompressor()
        recon = sz.decompress(sz.compress(smooth_field3d, error_bound=1e-2))
        dist = error_distribution(smooth_field3d, recon, bound=1e-2)
        assert abs(dist.mean) < 1e-3

    def test_histogram_sums_to_inrange_samples(self, smooth_field3d):
        sz = SZCompressor()
        recon = sz.decompress(sz.compress(smooth_field3d, error_bound=1e-2))
        dist = error_distribution(smooth_field3d, recon, bound=2e-2)
        assert dist.histogram.sum() == smooth_field3d.size

    def test_exact_reconstruction_degenerate(self):
        a = np.linspace(0, 1, 64).reshape(4, 4, 4)
        dist = error_distribution(a, a)
        assert dist.std == 0.0 and dist.skewness == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            error_distribution(np.zeros(4), np.zeros(5))
        with pytest.raises(DataError):
            error_distribution(np.zeros(4), np.zeros(4))


class TestForesightCLI:
    def _write_config(self, tmp_path, outdir):
        cfg = {
            "input": {
                "dataset": "nyx",
                "generator": {"grid_size": 16, "seed": 3},
                "fields": ["temperature"],
            },
            "compressors": [
                {"name": "cuzfp", "mode": "fixed_rate", "sweep": {"rate": [4, 8]}},
            ],
            "analyses": ["distortion", "power_spectrum"],
            "output": {"directory": str(outdir)},
        }
        path = tmp_path / "config.json"
        path.write_text(json.dumps(cfg))
        return path

    def test_end_to_end(self, tmp_path, capsys):
        outdir = tmp_path / "out"
        cfg = self._write_config(tmp_path, outdir)
        assert cli_main([str(cfg)]) == 0
        assert (outdir / "records.jsonl").exists()
        assert (outdir / "study.cdb" / "data.csv").exists()
        records = [
            json.loads(line)
            for line in (outdir / "records.jsonl").read_text().splitlines()
        ]
        assert len(records) == 2
        assert all("power_spectrum.within_band" in r for r in records)
        out = capsys.readouterr().out
        assert "cuzfp" in out

    def test_quiet_flag(self, tmp_path, capsys):
        outdir = tmp_path / "out2"
        cfg = self._write_config(tmp_path, outdir)
        assert cli_main([str(cfg), "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_missing_config_errors(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_file_input_gio(self, tmp_path, hacc_small):
        import json

        from repro.io.genericio import write_genericio

        snap = tmp_path / "snap.gio"
        write_genericio(snap, hacc_small.fields)
        cfg = {
            "input": {"dataset": "hacc", "file": str(snap),
                       "fields": ["x"], "box_size": hacc_small.box_size},
            "compressors": [
                {"name": "sz", "mode": "abs", "sweep": {"error_bound": [0.05]}}
            ],
            "analyses": ["distortion"],
            "output": {"directory": str(tmp_path / "o")},
        }
        path = tmp_path / "file.json"
        path.write_text(json.dumps(cfg))
        assert cli_main([str(path), "--quiet"]) == 0
        records = (tmp_path / "o" / "records.jsonl").read_text().splitlines()
        assert len(records) == 1

    def test_file_input_h5l(self, tmp_path, nyx_small):
        import json

        from repro.io.hdf5like import H5LikeFile

        h5 = H5LikeFile()
        for name, data in nyx_small.fields.items():
            h5.create_dataset(f"native_fields/{name}", data)
        snap = tmp_path / "nyx.h5l"
        h5.save(snap)
        cfg = {
            "input": {"dataset": "nyx", "file": str(snap),
                       "fields": ["temperature"], "box_size": nyx_small.box_size},
            "compressors": [
                {"name": "cuzfp", "mode": "fixed_rate", "sweep": {"rate": [8]}}
            ],
            "analyses": ["distortion", "power_spectrum"],
            "output": {"directory": str(tmp_path / "o2")},
        }
        path = tmp_path / "h5.json"
        path.write_text(json.dumps(cfg))
        assert cli_main([str(path), "--quiet"]) == 0

    def test_file_and_generator_mutually_exclusive(self, tmp_path):
        import json

        from repro.errors import ConfigError
        from repro.foresight.config import load_config

        cfg = {
            "input": {"dataset": "nyx", "file": "x.h5l", "generator": {}},
            "compressors": [
                {"name": "cuzfp", "mode": "fixed_rate", "sweep": {"rate": [8]}}
            ],
        }
        with pytest.raises(ConfigError):
            load_config(cfg)

    def test_bad_field_errors(self, tmp_path):
        cfg = {
            "input": {"dataset": "nyx", "generator": {"grid_size": 16},
                       "fields": ["no_such_field"]},
            "compressors": [
                {"name": "cuzfp", "mode": "fixed_rate", "sweep": {"rate": [4]}}
            ],
            "output": {"directory": str(tmp_path / "o")},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(cfg))
        assert cli_main([str(path)]) == 2
