"""Second round of property-based tests: cross-module invariants.

These pin down structural guarantees the first property suite doesn't:
FoF's refinement ordering in the linking length, SZ's idempotence on the
quantization lattice, fixed-rate seekability, and permutation covariance
of the group finder.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compressors import SZCompressor, ZFPCompressor
from repro.cosmo.fof import friends_of_friends
from repro.lossless.fpc import fpc_compress, fpc_decompress

_slow = settings(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _positions(seed: int, n: int, box: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Mix of clumps and background so groups actually exist.
    n_clump = n // 2
    centers = rng.uniform(0, box, (max(1, n // 40), 3))
    which = rng.integers(0, centers.shape[0], n_clump)
    clump = centers[which] + rng.normal(0, box / 60, (n_clump, 3))
    spread = rng.uniform(0, box, (n - n_clump, 3))
    return np.mod(np.vstack([clump, spread]), box)


class TestFOFProperties:
    @given(st.integers(0, 50))
    @_slow
    def test_smaller_linking_length_refines_partition(self, seed):
        """Groups at ll1 < ll2 are subsets of groups at ll2."""
        pos = _positions(seed, 300, 100.0)
        fine = friends_of_friends(pos, 100.0, 1.0)
        coarse = friends_of_friends(pos, 100.0, 2.5)
        # Every fine group must live inside exactly one coarse group.
        for g in range(fine.n_groups):
            members = np.flatnonzero(fine.labels == g)
            assert np.unique(coarse.labels[members]).size == 1

    @given(st.integers(0, 50))
    @_slow
    def test_permutation_covariance(self, seed):
        """Relabeling particles permutes labels consistently."""
        pos = _positions(seed, 200, 100.0)
        rng = np.random.default_rng(seed + 1)
        perm = rng.permutation(pos.shape[0])
        a = friends_of_friends(pos, 100.0, 1.5)
        b = friends_of_friends(pos[perm], 100.0, 1.5)
        assert b.n_groups == a.n_groups
        # Same-group relation must be preserved under the permutation.
        la = a.labels[perm]
        lb = b.labels
        # Build canonical forms: map first occurrence order to ids.
        def canonical(labels):
            seen: dict[int, int] = {}
            out = np.empty_like(labels)
            for i, l in enumerate(labels):
                out[i] = seen.setdefault(int(l), len(seen))
            return out
        assert np.array_equal(canonical(la), canonical(lb))

    @given(st.integers(0, 30))
    @_slow
    def test_translation_invariance(self, seed):
        """Periodic translation must not change the partition."""
        pos = _positions(seed, 200, 100.0)
        shift = np.array([37.0, 91.5, 3.25])
        a = friends_of_friends(pos, 100.0, 1.5)
        b = friends_of_friends(np.mod(pos + shift, 100.0), 100.0, 1.5)
        assert a.n_groups == b.n_groups
        assert np.array_equal(np.sort(a.group_sizes()), np.sort(b.group_sizes()))


class TestCompressorInvariants:
    @given(st.integers(0, 20), st.sampled_from([1e-1, 1e-2]))
    @_slow
    def test_sz_lorenzo_idempotent_on_reconstruction(self, seed, eb):
        """Recompressing a Lorenzo-path reconstruction at the same bound
        is lossless: reconstructed values already sit on the quantization
        lattice, so dual quantization reproduces them exactly.  (This is
        a Lorenzo/dual-quantization property; regression reconstructions
        are not lattice points.)"""
        rng = np.random.default_rng(seed)
        data = (rng.standard_normal((12, 12)) * 10).astype(np.float64)
        sz = SZCompressor(predictor="lorenzo")
        once = sz.decompress(sz.compress(data, error_bound=eb))
        twice = sz.decompress(sz.compress(once, error_bound=eb))
        assert np.array_equal(once, twice)

    @given(st.integers(0, 20))
    @_slow
    def test_zfp_streams_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((8, 8, 8)).astype(np.float32)
        zfp = ZFPCompressor()
        a = zfp.compress(data, rate=6)
        b = zfp.compress(data.copy(), rate=6)
        assert a.payload == b.payload

    @given(st.integers(0, 20))
    @_slow
    def test_zfp_fixed_rate_block_seekability(self, seed):
        """Decoding a stream whose later blocks are zeroed must leave the
        earlier blocks' reconstruction untouched (per-block independence —
        what GPU parallel decode relies on)."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((8, 4, 4)).astype(np.float32)  # 2 blocks
        zfp = ZFPCompressor()
        buf = zfp.compress(data, rate=16)
        full = zfp.decompress(buf)
        maxbits = buf.meta["maxbits_per_block"]
        # Zero out the second block's bits.
        payload = bytearray(buf.payload)
        body_start = len(payload) - (2 * maxbits + 7) // 8
        first_block_bytes = maxbits // 8
        for i in range(body_start + first_block_bytes + 1, len(payload)):
            payload[i] = 0
        damaged = zfp.decompress(bytes(payload))
        # First block decodes identically.
        assert np.array_equal(damaged[:4], full[:4])

    @given(st.integers(0, 30))
    @_slow
    def test_fpc_bijective(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(257).astype(np.float64)
        back = fpc_decompress(fpc_compress(data))
        assert np.array_equal(back.view(np.uint64), data.view(np.uint64))
