"""End-to-end integration tests: the full Foresight study pipeline.

Mirrors the paper's workflow (Fig. 2/3): generate data -> CBench sweeps
(via a PAT workflow on the SLURM simulator) -> domain analyses -> the
Section V-D optimizer -> a Cinema database on disk.
"""

import numpy as np
import pytest

from repro.analysis.optimizer import ConfigCandidate, select_best_fit
from repro.cosmo.power_spectrum import (
    power_spectrum,
    power_spectrum_ratio,
    ratio_within_band,
)
from repro.foresight import CBench, CinemaDatabase, load_config
from repro.foresight.pat import Job, JobState, SlurmSimulator, Workflow
from repro.foresight.visualization import save_series_csv
from repro.io import RecordStore


@pytest.fixture(scope="module")
def study_config():
    return load_config(
        {
            "input": {
                "dataset": "nyx",
                "generator": {"grid_size": 32, "seed": 42},
                "fields": ["dark_matter_density", "temperature"],
            },
            "compressors": [
                {"name": "cuzfp", "mode": "fixed_rate", "sweep": {"rate": [2, 4, 8]}},
                {
                    "name": "gpu-sz",
                    "mode": "abs",
                    "sweep": {
                        "error_bound": {
                            "dark_matter_density": [0.5, 0.05, 0.005],
                            "temperature": [500.0, 50.0],
                        }
                    },
                },
            ],
            "analyses": ["distortion", "power_spectrum"],
            "output": {"directory": "study-out"},
        }
    )


def test_full_study_pipeline(tmp_path, nyx_small, study_config):
    fields = {name: nyx_small.fields[name] for name in study_config.fields}
    bench = CBench(fields)

    # Stage 1+2 as a PAT workflow on the simulated cluster.
    state = {}

    def run_cbench():
        state["records"] = bench.run_all(study_config.compressors, study_config.fields)
        return len(state["records"])

    def run_pk_analysis():
        out = []
        for rec in state["records"]:
            ref = power_spectrum(
                fields[rec.field].astype(np.float64), nyx_small.box_size, nbins=10
            )
            spec = power_spectrum(
                rec.reconstruction.astype(np.float64), nyx_small.box_size, nbins=10
            )
            ratio = power_spectrum_ratio(ref, spec)
            out.append(
                ConfigCandidate(
                    field_name=rec.field,
                    compressor=rec.compressor,
                    mode=rec.mode,
                    parameter=rec.parameter,
                    compression_ratio=rec.compression_ratio,
                    acceptable=ratio_within_band(ratio, 0.01),
                    diagnostics={"max_dev": float(np.nanmax(np.abs(ratio - 1)))},
                )
            )
        state["candidates"] = out
        return len(out)

    wf = Workflow("nyx-study")
    wf.add_job(Job(name="cbench", action=run_cbench))
    wf.add_job(Job(name="pk", action=run_pk_analysis, depends_on=["cbench"]))
    records = SlurmSimulator(nodes=2).run(wf, raise_on_failure=True)
    assert all(r.state is JobState.COMPLETED for r in records.values())

    # Stage 3: the optimization guideline per compressor.
    per_compressor = {}
    for comp in ("cuzfp", "gpu-sz"):
        subset = [c for c in state["candidates"] if c.compressor == comp]
        try:
            per_compressor[comp] = select_best_fit(subset)
        except Exception:
            pass
    assert per_compressor, "at least one compressor must have an acceptable config"
    for best in per_compressor.values():
        assert best.overall_compression_ratio > 1.0

    # Stage 4: persist records + Cinema database with artifacts.
    store = RecordStore(tmp_path / "records.jsonl")
    store.extend([r.to_row() for r in state["records"]])
    assert len(store.load()) == len(state["records"])

    def artifact(rec_row, artifact_dir):
        name = f"{rec_row['compressor']}_{rec_row['field']}_{rec_row['parameter']}.csv"
        save_series_csv(artifact_dir / name, [0, 1], {"psnr": [rec_row["psnr"]] * 2})
        return f"artifacts/{name}"

    db = CinemaDatabase(tmp_path / "study")
    db.write([r.to_row() for r in state["records"]], artifact_writer=artifact)
    rows = db.read()
    assert len(rows) == len(state["records"])
    assert all((db.path / r["FILE"]).exists() for r in rows)


def test_hacc_end_to_end_halo_preservation(hacc_small):
    """Compress HACC positions at the paper's chosen bound and verify the
    halo catalog survives (the Fig. 6 conclusion, end to end)."""
    from repro.compressors import SZCompressor
    from repro.cosmo.halos import find_halos, halo_count_ratio, halo_mass_function

    sz = SZCompressor()
    recon = {}
    for name in ("x", "y", "z"):
        buf = sz.compress(hacc_small.fields[name], error_bound=0.005, mode="abs")
        recon[name] = sz.decompress(buf)
    ds2 = hacc_small.with_fields(recon)

    ll = 0.2 * hacc_small.box_size / 24
    cat_o = find_halos(hacc_small.positions, hacc_small.box_size, ll, min_members=10)
    cat_r = find_halos(
        np.mod(ds2.positions, hacc_small.box_size), hacc_small.box_size, ll,
        min_members=10,
    )
    mf_o = halo_mass_function(cat_o, nbins=6)
    mf_r = halo_mass_function(cat_r, bin_edges=mf_o.bin_edges)
    ratio = halo_count_ratio(mf_o, mf_r)
    finite = np.isfinite(ratio)
    assert np.abs(ratio[finite] - 1.0).max() < 0.1


def test_genericio_roundtrip_through_compression(tmp_path, hacc_small):
    """Write a GenericIO snapshot, read it back, compress, verify bounds —
    the storage-path integration the paper's pipeline implies."""
    from repro.compressors import SZCompressor
    from repro.io import read_genericio, write_genericio

    path = tmp_path / "snap.gio"
    write_genericio(path, hacc_small.fields)
    loaded = read_genericio(path, variables=["x"])
    sz = SZCompressor()
    buf = sz.compress(loaded.variables["x"], error_bound=0.01)
    recon = sz.decompress(buf)
    assert np.abs(recon - hacc_small.fields["x"]).max() <= 0.01 + np.spacing(
        np.float32(256.0)
    )
