"""Tests for halo matching, RD-line modeling, checkpoints, and the
experiments CLI."""

import numpy as np
import pytest

from repro.analysis.halo_matching import match_halo_catalogs
from repro.analysis.rate_distortion import RDPoint, rate_distortion_curve
from repro.analysis.rd_model import (
    DB_PER_BIT_THEORY,
    departure_bitrate,
    fit_rd_line,
)
from repro.compressors import SZCompressor, ZFPCompressor
from repro.cosmo.checkpoint import read_checkpoint, write_checkpoint
from repro.cosmo.halos import find_halos
from repro.cosmo.pm import zeldovich_initial_conditions
from repro.errors import AnalysisError, CorruptStreamError, DataError
from repro.experiments.__main__ import main as experiments_main


@pytest.fixture(scope="module")
def hacc_catalogs(hacc_small):
    ll = 0.2 * hacc_small.box_size / 24
    cat = find_halos(hacc_small.positions, hacc_small.box_size, ll, min_members=10)
    return hacc_small, ll, cat


class TestHaloMatching:
    def test_self_match_is_perfect(self, hacc_catalogs):
        hacc, ll, cat = hacc_catalogs
        m = match_halo_catalogs(cat, cat, hacc.box_size)
        assert m.match_fraction == 1.0
        assert m.spurious_fraction == 0.0
        assert np.allclose(m.center_offsets, 0.0)
        assert np.allclose(m.mass_ratios, 1.0)

    def test_tight_compression_preserves_identity(self, hacc_catalogs):
        hacc, ll, cat = hacc_catalogs
        sz = SZCompressor()
        pos = np.stack(
            [sz.decompress(sz.compress(hacc.fields[k], error_bound=0.005))
             for k in "xyz"], axis=1,
        ).astype(np.float64)
        cat_r = find_halos(np.mod(pos, hacc.box_size), hacc.box_size, ll, min_members=10)
        m = match_halo_catalogs(cat, cat_r, hacc.box_size)
        assert m.match_fraction > 0.9
        assert float(np.median(m.center_offsets)) < ll
        assert abs(float(np.median(m.mass_ratios)) - 1.0) < 0.1

    def test_heavy_compression_loses_matches(self, hacc_catalogs):
        hacc, ll, cat = hacc_catalogs
        sz = SZCompressor()
        pos = np.stack(
            [sz.decompress(sz.compress(hacc.fields[k], error_bound=2.0))
             for k in "xyz"], axis=1,
        ).astype(np.float64)
        cat_r = find_halos(np.mod(pos, hacc.box_size), hacc.box_size, ll, min_members=10)
        m_tight = match_halo_catalogs(cat, cat_r, hacc.box_size)
        assert m_tight.match_fraction < 1.0 or m_tight.summary()["median_center_offset"] > 0.01

    def test_empty_reconstructed_catalog(self, hacc_catalogs):
        hacc, ll, cat = hacc_catalogs
        rng = np.random.default_rng(0)
        scattered = rng.uniform(0, hacc.box_size, (500, 3))
        cat_r = find_halos(scattered, hacc.box_size, ll, min_members=10)
        m = match_halo_catalogs(cat, cat_r, hacc.box_size)
        assert m.match_fraction == 0.0 or m.n_reconstructed == 0

    def test_empty_original_raises(self, hacc_catalogs):
        hacc, ll, cat = hacc_catalogs
        rng = np.random.default_rng(1)
        scattered = rng.uniform(0, hacc.box_size, (300, 3))
        empty = find_halos(scattered, hacc.box_size, ll, min_members=10)
        if empty.n_halos == 0:
            with pytest.raises(AnalysisError):
                match_halo_catalogs(empty, cat, hacc.box_size)


class TestRDModel:
    def test_zfp_slope_matches_theory(self, nyx_small):
        pts = rate_distortion_curve(
            ZFPCompressor(), nyx_small.fields["velocity_x"],
            "rate", [4, 6, 8, 12, 16], "fixed_rate",
        )
        fit = fit_rd_line(pts)
        assert fit.slope_db_per_bit == pytest.approx(DB_PER_BIT_THEORY, abs=0.5)
        assert fit.r_squared > 0.99

    def test_departure_detection_on_synthetic_curve(self):
        # Linear above 2 bits, collapsed below (the Fig. 4a shape).
        pts = [
            RDPoint(parameter=0, bitrate=b,
                    compression_ratio=32 / b,
                    psnr=6.02 * b + 30 if b >= 2 else 6.02 * b + 10)
            for b in (0.5, 1.0, 2.0, 4.0, 8.0)
        ]
        fit = fit_rd_line(pts, min_bitrate=2.0)
        dep = departure_bitrate(pts, fit, tolerance_db=6.0)
        assert dep == 1.0

    def test_no_departure_on_clean_line(self):
        pts = [
            RDPoint(parameter=0, bitrate=b, compression_ratio=32 / b,
                    psnr=6.0 * b + 30)
            for b in (1.0, 2.0, 4.0)
        ]
        fit = fit_rd_line(pts)
        assert departure_bitrate(pts, fit) is None

    def test_too_few_points_raises(self):
        with pytest.raises(AnalysisError):
            fit_rd_line([RDPoint(0, 1.0, 32.0, 40.0)])


class TestCheckpoint:
    @pytest.fixture(scope="class")
    def state(self):
        s = zeldovich_initial_conditions(16, 32.0, seed=3)
        s.velocities *= 50.0
        return s

    def test_round_trip_bounds(self, tmp_path, state):
        path = tmp_path / "ckpt.gio"
        stats = write_checkpoint(path, state, position_bound=1e-3,
                                 velocity_pwrel=1e-3)
        assert stats["compression_ratio"] > 1.0
        back = read_checkpoint(path)
        assert np.abs(back.positions - state.positions).max() <= 1e-3 + 1e-5
        nz = state.velocities != 0
        rel = np.abs(
            (back.velocities[nz] - state.velocities[nz]) / state.velocities[nz]
        )
        assert rel.max() <= 1e-3 * (1 + 1e-3)
        assert back.time == state.time

    def test_restart_trajectory_stays_close(self, tmp_path, state):
        from repro.cosmo.pm import ParticleMeshSolver

        solver = ParticleMeshSolver(32.0, 16)
        path = tmp_path / "restart.gio"
        write_checkpoint(path, state, position_bound=1e-4, velocity_pwrel=1e-4)
        restored = read_checkpoint(path)
        a = solver.evolve(state, dt=0.05, n_steps=3)
        b = solver.evolve(restored, dt=0.05, n_steps=3)
        drift = np.abs(a.positions - b.positions)
        drift = np.minimum(drift, 32.0 - drift)
        assert drift.max() < 0.05  # bounded divergence over a short horizon

    def test_corrupt_checkpoint_detected(self, tmp_path, state):
        path = tmp_path / "bad.gio"
        write_checkpoint(path, state)
        from repro.io.genericio import write_genericio

        write_genericio(path, {"x": np.zeros(4, dtype=np.uint8)})
        with pytest.raises(CorruptStreamError):
            read_checkpoint(path)

    def test_invalid_bounds_rejected(self, tmp_path, state):
        with pytest.raises(DataError):
            write_checkpoint(tmp_path / "x.gio", state, position_bound=0.0)


class TestExperimentsCLI:
    def test_runs_selected(self, capsys):
        assert experiments_main(["--profile", "small", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Tesla V100" in out

    def test_bad_choice_exits(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])
