"""Internal documentation link checker.

Walks every markdown file in the repository root and ``docs/`` and
verifies that

* every relative markdown link (``[text](path)``) points at a file or
  directory that exists,
* every in-page anchor link (``#section``) with a path component points
  at an existing file,
* the documentation set is mutually connected: the docs pages the
  README promises actually exist and link back into the set.

External links (``http://``, ``https://``, ``mailto:``) are not
fetched — the suite must pass offline.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excluding images handled identically and code spans
# stripped beforehand.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE_RE = re.compile(r"`[^`]*`")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _markdown_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )
    assert files, "no markdown files found — wrong repo root?"
    return files


def _links(md_file: Path) -> list[str]:
    text = md_file.read_text(encoding="utf-8")
    text = _CODE_FENCE_RE.sub("", text)
    text = _INLINE_CODE_RE.sub("", text)
    return _LINK_RE.findall(text)


@pytest.mark.parametrize(
    "md_file",
    _markdown_files(),
    ids=lambda p: str(p.relative_to(REPO_ROOT)),
)
def test_relative_links_resolve(md_file: Path) -> None:
    broken = []
    for target in _links(md_file):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # pure in-page anchor
            continue
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{md_file.relative_to(REPO_ROOT)} has broken relative links: "
        f"{broken}"
    )


def test_readme_links_the_docs_set() -> None:
    """The README must reference every page under docs/."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in sorted((REPO_ROOT / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README.md does not link docs/{page.name}"
        )


def test_docs_pages_cross_link() -> None:
    """Architecture and performance pages link each other and the
    experiment catalog, so no page is an orphan."""
    arch = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    for sibling in ("ALGORITHMS.md", "EXPERIMENTS.md", "PERFORMANCE.md"):
        assert sibling in arch, f"ARCHITECTURE.md does not link {sibling}"
    root_exp = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "docs/EXPERIMENTS.md" in root_exp


def test_cluster_handbook_is_cross_linked() -> None:
    """The cluster operator's handbook is reachable from the service,
    architecture, and observability pages, and links back into the set
    — an operator landing on any of them finds the fleet docs."""
    docs = REPO_ROOT / "docs"
    for page in ("SERVICE.md", "ARCHITECTURE.md", "OBSERVABILITY.md"):
        text = (docs / page).read_text(encoding="utf-8")
        assert "CLUSTER.md" in text, f"docs/{page} does not link CLUSTER.md"
    cluster = (docs / "CLUSTER.md").read_text(encoding="utf-8")
    for sibling in ("SERVICE.md", "OBSERVABILITY.md", "ARCHITECTURE.md"):
        assert sibling in cluster, f"CLUSTER.md does not link {sibling}"


def test_experiment_catalog_covers_every_module() -> None:
    """Every figure/table module in src/repro/experiments/ appears in
    the docs/EXPERIMENTS.md mapping table."""
    catalog = (REPO_ROOT / "docs" / "EXPERIMENTS.md").read_text(
        encoding="utf-8"
    )
    exp_dir = REPO_ROOT / "src" / "repro" / "experiments"
    infrastructure = {"__init__", "__main__", "base", "runner"}
    modules = sorted(
        p.stem
        for p in exp_dir.glob("*.py")
        if p.stem not in infrastructure
    )
    assert modules, "no experiment modules found"
    missing = [
        m for m in modules if f"repro.experiments.{m}" not in catalog
    ]
    assert not missing, (
        f"docs/EXPERIMENTS.md mapping table is missing modules: {missing}"
    )


def test_experiment_catalog_scripts_exist() -> None:
    """Every bench_*.py named in docs/EXPERIMENTS.md exists."""
    catalog = (REPO_ROOT / "docs" / "EXPERIMENTS.md").read_text(
        encoding="utf-8"
    )
    scripts = set(re.findall(r"bench_\w+\.py", catalog))
    assert scripts, "no benchmark scripts referenced"
    missing = [
        s for s in sorted(scripts)
        if not (REPO_ROOT / "benchmarks" / s).exists()
    ]
    assert not missing, f"docs reference nonexistent scripts: {missing}"
