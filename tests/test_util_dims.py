"""Unit tests for the HACC 1-D <-> 3-D conversion (paper Section IV-B-4)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.util.dims import (
    HACC_PARTITION_ELEMS,
    SHAPE_CUBE,
    SHAPE_SLAB,
    convert_1d_to_3d,
    convert_3d_to_1d,
)


class TestConstants:
    def test_partition_is_2_to_27(self):
        assert HACC_PARTITION_ELEMS == 2**27 == 512**3

    def test_paper_shapes_match_partition(self):
        assert np.prod(SHAPE_CUBE) == HACC_PARTITION_ELEMS
        assert np.prod(SHAPE_SLAB) == HACC_PARTITION_ELEMS


class TestConversion:
    def test_exact_multiple_round_trip(self):
        data = np.arange(2 * 4 * 4 * 4, dtype=np.float32)
        parts, n = convert_1d_to_3d(data, (4, 4, 4))
        assert parts.shape == (2, 4, 4, 4) and n == data.size
        assert np.array_equal(convert_3d_to_1d(parts, n), data)

    def test_padding_with_zeros(self):
        data = np.ones(10, dtype=np.float32)
        parts, n = convert_1d_to_3d(data, (2, 2, 2))
        assert parts.shape == (2, 2, 2, 2)
        flat = parts.reshape(-1)
        assert flat[10:].sum() == 0
        assert np.array_equal(convert_3d_to_1d(parts, n), data)

    def test_paperlike_odd_length(self):
        # The real dataset is 1,073,726,359 = 8 * 2^27 - padding's worth.
        data = np.arange(1000, dtype=np.float32)
        parts, n = convert_1d_to_3d(data, (8, 8, 8))
        assert parts.shape[0] == 2  # ceil(1000/512)
        assert np.array_equal(convert_3d_to_1d(parts, n), data)

    def test_shape_product_mismatch_raises(self):
        with pytest.raises(DataError):
            convert_1d_to_3d(np.ones(8), (2, 2, 2), partition_elems=16)

    def test_non_1d_input_raises(self):
        with pytest.raises(DataError):
            convert_1d_to_3d(np.ones((2, 2)), (2, 2, 1))

    def test_back_conversion_validates(self):
        with pytest.raises(DataError):
            convert_3d_to_1d(np.ones((2, 2, 2)), 4)  # ndim != 4
        with pytest.raises(DataError):
            convert_3d_to_1d(np.ones((1, 2, 2, 2)), 100)  # too long
