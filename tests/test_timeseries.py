"""Properties of the correlated snapshot-series generator.

These are the properties the temporal-compression subsystem leans on:
every snapshot is one realization evolved by a growth factor, so
consecutive outputs are correlated (delta residuals are small), the
correlation decays with step gap, and velocities are exact dD/dt
scalings of one seed field.
"""

import numpy as np
import pytest

from repro.cosmo.timeseries import SnapshotSeries, make_nyx_series
from repro.errors import DataError

GROWTH_RATE = 0.25


def _series(seed, n=8, grid=16):
    return make_nyx_series(
        grid_size=grid, n_snapshots=n, seed=seed,
        growth_rate=GROWTH_RATE,
    )


def _growth(series):
    t = series.times
    return np.exp(GROWTH_RATE * (t - t[-1]))


class TestSharedRealization:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_log_density_is_one_realization_rescaled(self, seed):
        """log(rho) is affine in the single delta_0 realization, so any
        two snapshots' log-density fields correlate at exactly 1."""
        series = _series(seed)
        logs = [
            np.log(s.fields["baryon_density"].astype(np.float64)).ravel()
            for s in series.snapshots
        ]
        for other in logs[1:]:
            r = np.corrcoef(logs[0], other)[0, 1]
            assert r == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_different_seeds_are_different_realizations(self, seed):
        a = _series(seed).snapshots[-1].fields["baryon_density"]
        b = _series(seed + 1).snapshots[-1].fields["baryon_density"]
        r = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert abs(r) < 0.5


class TestCorrelationDecay:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    @pytest.mark.parametrize(
        "field", ["baryon_density", "dark_matter_density"]
    )
    def test_density_correlation_decays_monotonically_with_gap(
        self, seed, field
    ):
        series = _series(seed)
        last = series.snapshots[-1].fields[field].ravel().astype(np.float64)
        cors = []
        for gap in range(1, series.n_snapshots):
            other = (
                series.snapshots[-1 - gap].fields[field]
                .ravel().astype(np.float64)
            )
            cors.append(float(np.corrcoef(last, other)[0, 1]))
        assert all(0.0 < c < 1.0 for c in cors)
        assert all(a > b for a, b in zip(cors, cors[1:])), cors


class TestVelocityScaling:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("axis", ["x", "y", "z"])
    def test_velocities_scale_with_growth_factor_derivative(
        self, seed, axis
    ):
        """v(t) = seed_field * sigma_v * dD/dt with dD/dt ∝ D(t), so
        snapshots' velocity fields are exact scalar multiples:
        v_i * D_j == v_j * D_i elementwise."""
        series = _series(seed)
        growth = _growth(series)
        name = f"velocity_{axis}"
        v = [
            s.fields[name].astype(np.float64) for s in series.snapshots
        ]
        for j in range(1, len(v)):
            np.testing.assert_allclose(
                v[0] * growth[j], v[j] * growth[0], rtol=1e-5
            )

    def test_velocity_magnitude_grows_with_time(self):
        series = _series(7)
        name = "velocity_x"
        stds = [float(s.fields[name].std()) for s in series.snapshots]
        assert all(a < b for a, b in zip(stds, stds[1:]))


class TestSeriesShape:
    def test_times_strictly_increasing_and_fields_complete(self):
        series = _series(3, n=5)
        assert series.n_snapshots == 5
        assert np.all(np.diff(series.times) > 0)
        for snap in series.snapshots:
            assert set(snap.fields) == {
                "baryon_density", "dark_matter_density", "temperature",
                "velocity_x", "velocity_y", "velocity_z",
            }
            for arr in snap.fields.values():
                assert arr.dtype == np.float32
                assert np.all(np.isfinite(arr))

    def test_rejects_degenerate_series(self):
        with pytest.raises(DataError):
            make_nyx_series(grid_size=8, n_snapshots=1)
        with pytest.raises(DataError):
            SnapshotSeries(
                times=np.array([0.0, 0.0]),
                snapshots=_series(3, n=2).snapshots,
            )
