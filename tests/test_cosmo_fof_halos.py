"""Tests for Friends-of-Friends and halo catalogs."""

import numpy as np
import pytest

from repro.cosmo.fof import friends_of_friends
from repro.cosmo.halos import (
    build_halo_catalog,
    find_halos,
    halo_count_ratio,
    halo_mass_function,
)
from repro.errors import AnalysisError, DataError


def _clump(center, n, radius, rng):
    return center + rng.standard_normal((n, 3)) * radius


class TestFOF:
    def test_two_separate_clumps(self):
        rng = np.random.default_rng(0)
        a = _clump(np.array([20.0, 20, 20]), 50, 0.1, rng)
        b = _clump(np.array([80.0, 80, 80]), 30, 0.1, rng)
        pos = np.vstack([a, b])
        res = friends_of_friends(pos, 100.0, 1.0)
        sizes = np.sort(res.group_sizes())[::-1]
        assert sizes[0] == 50 and sizes[1] == 30

    def test_chain_percolates(self):
        # Particles in a line closer than ll form one group (FoF is
        # transitive even when endpoints are far apart).
        pos = np.zeros((20, 3))
        pos[:, 0] = np.arange(20) * 0.9 + 10
        res = friends_of_friends(pos, 100.0, 1.0)
        assert res.group_sizes().max() == 20

    def test_linking_across_periodic_boundary(self):
        pos = np.array([[0.2, 50.0, 50.0], [99.9, 50.0, 50.0]])
        res = friends_of_friends(pos, 100.0, 1.0)
        assert res.n_groups == 1

    def test_no_periodic_when_disabled(self):
        pos = np.array([[0.2, 50.0, 50.0], [99.9, 50.0, 50.0]])
        res = friends_of_friends(pos, 100.0, 1.0, periodic=False)
        assert res.n_groups == 2

    def test_isolated_particles_are_singletons(self):
        rng = np.random.default_rng(1)
        pos = rng.random((100, 3)) * 1000.0  # extremely sparse
        res = friends_of_friends(pos, 1000.0, 0.5)
        assert res.n_groups == 100

    def test_pair_at_exactly_linking_length(self):
        pos = np.array([[10.0, 10, 10], [11.0, 10, 10]])
        res = friends_of_friends(pos, 100.0, 1.0)
        assert res.n_groups == 1  # distance == ll counts as friends

    def test_degrees_count_friends(self):
        pos = np.array([[0.0, 0, 0], [0.5, 0, 0], [1.0, 0, 0], [50.0, 0, 0]])
        res = friends_of_friends(pos + 10.0, 100.0, 0.6)
        deg = res.degrees()
        assert deg.tolist()[:3] == [1, 2, 1] and deg[3] == 0

    def test_validation(self):
        with pytest.raises(DataError):
            friends_of_friends(np.zeros((5, 2)), 10.0, 1.0)
        with pytest.raises(DataError):
            friends_of_friends(np.zeros((5, 3)), 10.0, 5.0)  # ll too big

    def test_labels_partition_all_particles(self):
        rng = np.random.default_rng(2)
        pos = rng.random((500, 3)) * 20
        res = friends_of_friends(pos, 20.0, 0.8)
        assert res.labels.size == 500
        assert res.labels.min() >= 0 and res.labels.max() == res.n_groups - 1


class TestHaloCatalog:
    def test_min_members_filter(self):
        rng = np.random.default_rng(0)
        big = _clump(np.array([20.0, 20, 20]), 50, 0.1, rng)
        small = _clump(np.array([80.0, 80, 80]), 5, 0.1, rng)
        pos = np.vstack([big, small])
        fof = friends_of_friends(pos, 100.0, 1.0)
        cat = build_halo_catalog(pos, fof, 100.0, min_members=10)
        assert cat.n_halos == 1
        assert cat.sizes[0] == 50

    def test_center_near_clump_center(self):
        rng = np.random.default_rng(1)
        pos = _clump(np.array([30.0, 40, 50]), 100, 0.2, rng)
        cat = find_halos(pos, 100.0, 1.5, min_members=10)
        assert cat.n_halos == 1
        assert np.allclose(cat.centers[0], [30, 40, 50], atol=0.5)

    def test_center_wraps_periodic_clump(self):
        rng = np.random.default_rng(2)
        pos = np.mod(_clump(np.array([0.0, 50, 50]), 80, 0.3, rng), 100.0)
        cat = find_halos(pos, 100.0, 2.0, min_members=10)
        assert cat.n_halos == 1
        cx = cat.centers[0][0]
        assert cx < 2.0 or cx > 98.0

    def test_mcp_is_central(self):
        # An isothermal clump's most connected particle sits near center.
        rng = np.random.default_rng(3)
        r = rng.random(200) * 2.0
        d = rng.standard_normal((200, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        pos = 50.0 + r[:, None] * d
        cat = find_halos(pos, 100.0, 1.0, min_members=10)
        mcp_pos = pos[cat.mcp[0]]
        assert np.linalg.norm(mcp_pos - 50.0) < 1.2

    def test_mbp_is_central(self):
        rng = np.random.default_rng(4)
        r = rng.random(200) * 2.0
        d = rng.standard_normal((200, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        pos = 50.0 + r[:, None] * d
        cat = find_halos(pos, 100.0, 1.0, min_members=10)
        mbp_pos = pos[cat.mbp[0]]
        assert np.linalg.norm(mbp_pos - 50.0) < 1.2

    def test_particle_mass_scales_masses(self):
        rng = np.random.default_rng(5)
        pos = _clump(np.array([50.0, 50, 50]), 40, 0.1, rng)
        cat = find_halos(pos, 100.0, 1.0, particle_mass=2.5, min_members=10)
        assert cat.masses[0] == pytest.approx(100.0)

    def test_min_members_validation(self):
        with pytest.raises(DataError):
            build_halo_catalog(
                np.zeros((4, 3)),
                friends_of_friends(np.zeros((4, 3)) + 5, 10.0, 1.0),
                10.0,
                min_members=1,
            )


class TestMassFunction:
    def test_counts_sum_to_halos(self, hacc_small):
        ll = 0.2 * hacc_small.box_size / 24
        cat = find_halos(hacc_small.positions, hacc_small.box_size, ll, min_members=10)
        mf = halo_mass_function(cat, nbins=8)
        assert mf.counts.sum() == cat.n_halos

    def test_ratio_of_identical_catalogs_is_one(self, hacc_small):
        ll = 0.2 * hacc_small.box_size / 24
        cat = find_halos(hacc_small.positions, hacc_small.box_size, ll, min_members=10)
        mf = halo_mass_function(cat, nbins=8)
        ratio = halo_count_ratio(mf, mf)
        finite = np.isfinite(ratio)
        assert np.allclose(ratio[finite], 1.0)

    def test_empty_catalog_without_bins_raises(self):
        rng = np.random.default_rng(0)
        pos = rng.random((100, 3)) * 1000
        cat = find_halos(pos, 1000.0, 0.5, min_members=10)
        assert cat.n_halos == 0
        with pytest.raises(AnalysisError):
            halo_mass_function(cat)

    def test_empty_catalog_with_bins_returns_zeros(self, hacc_small):
        rng = np.random.default_rng(0)
        ll = 0.2 * hacc_small.box_size / 24
        cat = find_halos(hacc_small.positions, hacc_small.box_size, ll, min_members=10)
        mf = halo_mass_function(cat, nbins=6)
        scattered = find_halos(
            rng.random((500, 3)) * hacc_small.box_size, hacc_small.box_size, ll,
            min_members=10,
        )
        mf_empty = halo_mass_function(scattered, bin_edges=mf.bin_edges)
        assert mf_empty.counts.sum() == 0

    def test_mismatched_bins_raise(self, hacc_small):
        ll = 0.2 * hacc_small.box_size / 24
        cat = find_halos(hacc_small.positions, hacc_small.box_size, ll, min_members=10)
        a = halo_mass_function(cat, nbins=6)
        b = halo_mass_function(cat, nbins=8)
        with pytest.raises(AnalysisError):
            halo_count_ratio(a, b)
