"""Byte-identity of the streaming metric accumulators vs the full-array path.

The out-of-core pipeline's contract is that metric values do not depend
on how the data was chunked — ``StreamingDistortion`` re-blocks
internally and merges partial sums with ``fsum``, so any chunking
(including one whole-array call) produces bit-identical floats.
"""

import numpy as np
import pytest

from repro.errors import DataError
from repro.metrics import StreamingDistortion, StreamingHistogram, evaluate_distortion
from repro.metrics.streaming import BLOCK_ELEMENTS


def _pair(n, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal(n) * np.exp(rng.uniform(-3, 3, n))).astype(dtype)
    b = a + rng.uniform(-1e-3, 1e-3, n).astype(dtype)
    return a, b


def _chunked_result(a, b, sizes):
    acc = StreamingDistortion()
    pos = 0
    for size in sizes:
        acc.update(a[pos : pos + size], b[pos : pos + size])
        pos += size
    assert pos == a.size
    return acc.result()


class TestStreamingDistortion:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_any_chunking_bit_identical(self, seed):
        a, b = _pair(100_000, seed)
        reference = evaluate_distortion(a, b)
        rng = np.random.default_rng(seed + 100)
        for _ in range(3):
            cuts = np.sort(rng.choice(a.size - 1, size=7, replace=False) + 1)
            sizes = np.diff(np.concatenate([[0], cuts, [a.size]]))
            assert _chunked_result(a, b, sizes) == reference

    def test_crossing_internal_block_boundary(self):
        # More elements than one internal block: the fixed re-blocking
        # (not the caller's chunking) decides the partial-sum tree.
        n = BLOCK_ELEMENTS + 12_345
        a, b = _pair(n, seed=5)
        reference = evaluate_distortion(a, b)
        assert _chunked_result(a, b, [999_983, n - 999_983]) == reference
        assert _chunked_result(a, b, [1, n - 1]) == reference

    def test_single_update_matches_full_array(self):
        a, b = _pair(10_000, seed=9)
        acc = StreamingDistortion().update(a, b)
        assert acc.result() == evaluate_distortion(a, b)

    def test_exact_reconstruction_psnr_inf(self):
        a, _ = _pair(1000)
        result = StreamingDistortion().update(a, a.copy()).result()
        assert result["psnr"] == float("inf")
        assert result["mse"] == 0.0

    def test_constant_field_degenerate_range(self):
        a = np.full(100, 3.5)
        b = a + 0.25
        result = StreamingDistortion().update(a, b).result()
        assert result == evaluate_distortion(a, b)
        assert result["psnr"] == float("-inf")
        assert result["mre"] == 0.0 and result["nrmse"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(DataError, match="empty"):
            StreamingDistortion().result()

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataError, match="shape mismatch"):
            StreamingDistortion().update(np.zeros(3), np.zeros(4))

    def test_count_tracks_samples(self):
        acc = StreamingDistortion()
        acc.update(np.zeros(7), np.zeros(7))
        acc.update(np.zeros(5), np.zeros(5))
        assert acc.count == 12

    def test_max_pw_rel_skips_zero_originals(self):
        a = np.array([0.0, 2.0, 0.0, -4.0])
        b = np.array([1.0, 2.2, 5.0, -4.4])
        result = StreamingDistortion().update(a, b).result()
        assert result["max_pw_rel_error"] == pytest.approx(0.1)


class TestStreamingHistogram:
    def test_counts_match_numpy_for_any_chunking(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(50_000)
        edges = np.linspace(-4, 4, 33)
        hist = StreamingHistogram(edges)
        for lo in range(0, values.size, 7919):
            hist.update(values[lo : lo + 7919])
        expected, _ = np.histogram(values, bins=edges)
        assert np.array_equal(hist.counts, expected)
        assert hist.count == values.size

    def test_bad_edges_rejected(self):
        with pytest.raises(DataError):
            StreamingHistogram([1.0])
        with pytest.raises(DataError):
            StreamingHistogram([0.0, 0.0, 1.0])
