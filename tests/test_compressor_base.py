"""Tests for the compressor framework: base API, registry, adapters."""

import numpy as np
import pytest

from conftest import ulp_tolerance
from repro.compressors import (
    CompressedBuffer,
    CompressorMode,
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compressors.adapters import Reshaped3D
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.errors import ConfigError, CorruptStreamError, DataError


class TestCompressedBuffer:
    def test_derived_quantities(self):
        buf = CompressedBuffer(
            payload=b"x" * 100,
            original_shape=(10, 10),
            original_dtype=np.dtype(np.float32),
            mode=CompressorMode.ABS,
            parameter=0.1,
        )
        assert buf.original_nbytes == 400
        assert buf.compressed_nbytes == 100
        assert buf.compression_ratio == 4.0
        assert buf.bitrate == 8.0

    def test_paper_bitrate_ratio_identity(self):
        # "a bitrate of 4.0 is equivalent to the compression ratio of 8x"
        buf = CompressedBuffer(
            payload=b"x" * 500,
            original_shape=(1000,),
            original_dtype=np.dtype(np.float32),
            mode=CompressorMode.FIXED_RATE,
            parameter=4.0,
        )
        assert buf.bitrate == 4.0
        assert buf.compression_ratio == 8.0


class TestRegistry:
    def test_builtins_present(self):
        names = available_compressors()
        for expected in ("sz", "gpu-sz", "zfp", "cuzfp"):
            assert expected in names

    def test_get_by_name_case_insensitive(self):
        assert get_compressor("CuZFP").name == "cuzfp"

    def test_get_with_options(self):
        sz = get_compressor("sz", block_side=8)
        assert sz.block_side == 8

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown compressor"):
            get_compressor("mgard")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigError):
            register_compressor("sz", SZCompressor)


class TestReshaped3D:
    def test_zfp_1d_through_adapter(self):
        rng = np.random.default_rng(0)
        data = (rng.random(5000) * 256).astype(np.float32)
        adapter = Reshaped3D(ZFPCompressor(), tail_shape=(8, 8))
        buf = adapter.compress(data, rate=8)
        recon = adapter.decompress(buf)
        assert recon.shape == data.shape
        assert buf.original_shape == (5000,)

    def test_padding_stripped(self):
        data = np.arange(100, dtype=np.float32)
        adapter = Reshaped3D(SZCompressor(), tail_shape=(4, 4))
        buf = adapter.compress(data, error_bound=0.01, mode="abs")
        recon = adapter.decompress(buf)
        assert recon.shape == (100,)
        assert np.abs(recon - data).max() <= 0.01 + ulp_tolerance(data)

    def test_rejects_nd_input(self):
        adapter = Reshaped3D(ZFPCompressor())
        with pytest.raises(DataError):
            adapter.compress(np.ones((4, 4), dtype=np.float32), rate=8)

    def test_bad_magic_raises(self):
        adapter = Reshaped3D(ZFPCompressor())
        with pytest.raises(CorruptStreamError):
            adapter.decompress(b"XXXX" + b"\x00" * 16)

    def test_low_rate_possible_through_3d_view(self):
        # The motivating case: rate 1 is impossible on raw 1-D blocks but
        # fine on the 3-D slab view (paper Section IV-B-4).
        data = np.random.default_rng(1).random(4096).astype(np.float32)
        with pytest.raises(DataError):
            ZFPCompressor().compress(data, rate=1.0)
        buf = Reshaped3D(ZFPCompressor()).compress(data, rate=1.0)
        assert buf.bitrate < 1.5
