"""Tests for the text-mode visualization helpers."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.foresight.visualization import (
    format_table,
    render_ascii_plot,
    save_series_csv,
)


class TestAsciiPlot:
    def test_contains_all_series_glyphs(self):
        x = np.linspace(1, 10, 20)
        text = render_ascii_plot(x, {"a": x, "b": x**2}, title="T")
        assert "T" in text
        assert "o a" in text and "x b" in text

    def test_log_x_axis(self):
        x = np.geomspace(1, 1e4, 10)
        text = render_ascii_plot(x, {"s": np.ones(10)}, logx=True)
        assert "(log x)" in text

    def test_nan_values_skipped(self):
        x = np.arange(5.0) + 1
        y = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        text = render_ascii_plot(x, {"s": y})
        assert "s" in text

    def test_constant_series_does_not_crash(self):
        x = np.arange(3.0)
        assert render_ascii_plot(x, {"c": np.ones(3)})

    def test_validation(self):
        with pytest.raises(DataError):
            render_ascii_plot([], {"s": []})
        with pytest.raises(DataError):
            render_ascii_plot([1, 2], {"s": [1]})
        with pytest.raises(DataError):
            render_ascii_plot([1, 2], {"s": [np.nan, np.nan]})


class TestSeriesCSV:
    def test_written_columns(self, tmp_path):
        p = save_series_csv(
            tmp_path / "s.csv", [1, 2], {"a": [3, 4], "b": [5, 6]}, x_name="k"
        )
        lines = p.read_text().strip().splitlines()
        assert lines[0] == "k,a,b"
        assert lines[1] == "1,3,5"

    def test_length_mismatch_raises(self, tmp_path):
        with pytest.raises(DataError):
            save_series_csv(tmp_path / "x.csv", [1, 2], {"a": [1]})


class TestFormatTable:
    def test_alignment_and_headers(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 2.0}]
        text = format_table(rows)
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len(lines) == 4  # header, sep, 2 rows

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_raises(self):
        with pytest.raises(DataError):
            format_table([])
