"""Unit tests for the PW_REL logarithmic transform."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.util.logtransform import LogTransform, pwrel_to_abs_bound


class TestBoundConversion:
    def test_bound_guarantees_pwrel_both_sides(self):
        # Perturbing log-magnitude by +-bound must stay within pwrel.
        for pwrel in (0.001, 0.01, 0.1, 0.5):
            bound = pwrel_to_abs_bound(pwrel)
            assert np.exp(bound) - 1.0 <= pwrel + 1e-12
            assert 1.0 - np.exp(-bound) <= pwrel + 1e-12

    def test_monotone_in_pwrel(self):
        bounds = [pwrel_to_abs_bound(p) for p in (0.001, 0.01, 0.1, 0.5)]
        assert bounds == sorted(bounds)

    def test_invalid_bounds_raise(self):
        with pytest.raises(DataError):
            pwrel_to_abs_bound(0.0)
        with pytest.raises(DataError):
            pwrel_to_abs_bound(1.0)
        with pytest.raises(DataError):
            pwrel_to_abs_bound(-0.5)


class TestLogTransform:
    def test_round_trip_exact_for_exact_logs(self):
        data = np.array([1.0, -2.5, 3e4, -1e-5, 0.0, 7.0])
        logmag, xform = LogTransform.forward(data)
        out = xform.backward(logmag)
        assert np.allclose(out, data, rtol=1e-12)
        assert out[4] == 0.0  # zero restored exactly

    def test_signs_recorded(self):
        data = np.array([3.0, -4.0, 0.0])
        _, xform = LogTransform.forward(data)
        assert xform.signs.tolist() == [1, -1, 0]

    def test_perturbed_log_stays_within_pwrel(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(1000) * 100
        pwrel = 0.05
        bound = pwrel_to_abs_bound(pwrel)
        logmag, xform = LogTransform.forward(data)
        noisy = logmag + rng.uniform(-bound, bound, logmag.shape)
        noisy[xform.signs == 0] = 0.0
        out = xform.backward(noisy)
        nz = data != 0
        rel = np.abs((out[nz] - data[nz]) / data[nz])
        assert rel.max() <= pwrel + 1e-12

    def test_shape_mismatch_raises(self):
        _, xform = LogTransform.forward(np.ones(4))
        with pytest.raises(DataError):
            xform.backward(np.ones(5))

    def test_2d_shape_preserved(self):
        data = np.ones((3, 4))
        logmag, xform = LogTransform.forward(data)
        assert logmag.shape == (3, 4)
        assert xform.backward(logmag).shape == (3, 4)
