"""Unit tests for the ZFP lifting transform and coefficient ordering."""

import numpy as np
import pytest

from repro.compressors.zfp.transform import (
    forward_transform,
    inverse_sequency_order,
    inverse_transform,
    sequency_order,
)
from repro.errors import DataError


class TestLifting:
    @pytest.mark.parametrize("ndim,slack", [(1, 2), (2, 8), (3, 24)])
    def test_round_trip_within_lifting_rounding(self, ndim, slack):
        # zfp's integer lifting discards low bits (x >>= 1), so the
        # inverse recovers the input only up to a few ULPs of the integer
        # lattice — that rounding is part of ZFP's loss budget and is
        # negligible against the 2^(P-2) fixed-point scale.
        rng = np.random.default_rng(0)
        shape = (100,) + (4,) * ndim
        blocks = rng.integers(-(2**40), 2**40, shape).astype(np.int64)
        out = inverse_transform(forward_transform(blocks))
        assert np.abs(out - blocks).max() <= slack

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_round_trip_relative_error_tiny(self, ndim):
        rng = np.random.default_rng(3)
        shape = (50,) + (4,) * ndim
        blocks = rng.integers(2**38, 2**40, shape).astype(np.int64)
        out = inverse_transform(forward_transform(blocks))
        rel = np.abs((out - blocks) / blocks.astype(np.float64)).max()
        assert rel < 1e-10

    def test_constant_block_energy_compacts_to_dc(self):
        blocks = np.full((1, 4, 4, 4), 1 << 20, dtype=np.int64)
        coeffs = forward_transform(blocks)
        flat = coeffs.reshape(-1)
        dc = flat[0]
        assert abs(dc) > 0
        assert np.count_nonzero(flat) == 1  # everything else exactly zero

    def test_linear_ramp_mostly_low_frequency(self):
        i = np.arange(4, dtype=np.int64) << 16
        blocks = (i[None, :, None, None] + i[None, None, :, None] + i[None, None, None, :]).copy()
        coeffs = forward_transform(blocks).reshape(-1)
        order = sequency_order(3)
        energy = np.abs(coeffs[order]).astype(np.float64)
        # Over 99% of L1 energy in the first sequency octant.
        assert energy[:8].sum() / max(energy.sum(), 1) > 0.99

    def test_l1_gain_bounded(self):
        # Forward rows have L1 norm <= 1 => max|coef| never grows.
        rng = np.random.default_rng(1)
        blocks = rng.integers(-(2**30), 2**30, (50, 4, 4, 4)).astype(np.int64)
        coeffs = forward_transform(blocks)
        assert np.abs(coeffs).max() <= np.abs(blocks).max() + 4  # rounding slack

    def test_input_validation(self):
        with pytest.raises(DataError):
            forward_transform(np.zeros((2, 4, 4), dtype=np.int32))
        with pytest.raises(DataError):
            inverse_transform(np.zeros((2, 5, 4), dtype=np.int64))


class TestSequencyOrder:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_is_permutation(self, ndim):
        perm = sequency_order(ndim)
        assert sorted(perm.tolist()) == list(range(4**ndim))

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_inverse_undoes(self, ndim):
        perm = sequency_order(ndim)
        inv = inverse_sequency_order(ndim)
        assert np.array_equal(perm[inv], np.arange(4**ndim))

    def test_dc_first(self):
        assert sequency_order(3)[0] == 0

    def test_total_sequency_nondecreasing(self):
        perm = sequency_order(3)
        coords = np.stack(np.unravel_index(perm, (4, 4, 4)), axis=1)
        sums = coords.sum(axis=1)
        assert np.all(np.diff(sums) >= 0)

    def test_invalid_rank_raises(self):
        with pytest.raises(DataError):
            sequency_order(4)
