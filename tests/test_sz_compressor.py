"""Integration-level tests for the SZ compressor."""

import numpy as np
import pytest

from conftest import ulp_tolerance
from repro.compressors import CompressorMode, SZCompressor
from repro.errors import CorruptStreamError, DataError, UnsupportedModeError


@pytest.fixture(scope="module")
def sz():
    return SZCompressor()


class TestABSMode:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3])
    def test_error_bound_honored_3d(self, sz, smooth_field3d, eb):
        buf = sz.compress(smooth_field3d, error_bound=eb)
        recon = sz.decompress(buf)
        err = np.abs(recon.astype(np.float64) - smooth_field3d.astype(np.float64)).max()
        assert err <= eb + ulp_tolerance(smooth_field3d)

    def test_error_bound_honored_1d(self, sz):
        rng = np.random.default_rng(0)
        data = (rng.standard_normal(5000) * 100).astype(np.float32)
        buf = sz.compress(data, error_bound=0.5)
        recon = sz.decompress(buf)
        assert np.abs(recon - data).max() <= 0.5 + ulp_tolerance(data)

    def test_error_bound_honored_2d(self, sz, smooth_field3d):
        data = smooth_field3d[0]
        buf = sz.compress(data, error_bound=1e-2)
        recon = sz.decompress(buf)
        assert np.abs(recon - data).max() <= 1e-2 + ulp_tolerance(data)

    def test_float64_input(self, sz, smooth_field3d):
        data = smooth_field3d.astype(np.float64)
        buf = sz.compress(data, error_bound=1e-6)
        recon = sz.decompress(buf)
        assert recon.dtype == np.float64
        assert np.abs(recon - data).max() <= 1e-6 * (1 + 1e-9)

    def test_smooth_compresses_better_than_noise(self, sz, smooth_field3d, rough_field3d):
        b1 = sz.compress(smooth_field3d, error_bound=1e-2)
        b2 = sz.compress(rough_field3d, error_bound=1e-2)
        assert b1.compression_ratio > b2.compression_ratio

    def test_looser_bound_higher_ratio(self, sz, smooth_field3d):
        ratios = [
            sz.compress(smooth_field3d, error_bound=eb).compression_ratio
            for eb in (1e-3, 1e-2, 1e-1)
        ]
        assert ratios == sorted(ratios)

    def test_constant_field_compresses_hugely(self, sz):
        data = np.full((24, 24, 24), 3.25, dtype=np.float32)
        buf = sz.compress(data, error_bound=1e-4)
        # ~1-2 bits/value from Huffman alone (the per-block DC corners are
        # escape-coded outliers); the LZSS stage pushes far beyond.
        assert buf.compression_ratio > 15
        assert np.abs(sz.decompress(buf) - data).max() <= 1e-4 + ulp_tolerance(data)
        with_dict = SZCompressor(lossless=["lzss"]).compress(data, error_bound=1e-4)
        assert with_dict.compression_ratio > 100

    def test_shape_not_multiple_of_block(self, sz):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((13, 17, 11)).astype(np.float32)
        buf = sz.compress(data, error_bound=1e-2)
        recon = sz.decompress(buf)
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= 1e-2 + ulp_tolerance(data)

    def test_extreme_magnitudes(self, sz):
        data = (np.linspace(-1e8, 1e8, 4096).reshape(16, 16, 16)).astype(np.float32)
        buf = sz.compress(data, error_bound=10.0)
        assert np.abs(sz.decompress(buf).astype(np.float64) - data).max() <= 10.0 + ulp_tolerance(data)

    def test_buffer_metadata(self, sz, smooth_field3d):
        buf = sz.compress(smooth_field3d, error_bound=1e-2)
        assert buf.original_shape == smooth_field3d.shape
        assert buf.original_dtype == np.float32
        assert buf.mode is CompressorMode.ABS
        assert buf.parameter == 1e-2
        assert 0.0 <= buf.meta["predictor_regression_fraction"] <= 1.0
        assert buf.bitrate == pytest.approx(
            8 * buf.compressed_nbytes / smooth_field3d.size
        )


class TestPWRELMode:
    def test_pointwise_relative_bound(self, sz):
        rng = np.random.default_rng(0)
        data = (rng.standard_normal(20000) * 3000).astype(np.float32)
        buf = sz.compress(data, pwrel=0.01, mode="pw_rel")
        recon = sz.decompress(buf)
        nz = data != 0
        rel = np.abs((recon[nz].astype(np.float64) - data[nz]) / data[nz])
        assert rel.max() <= 0.01 * (1 + 1e-5)

    def test_zeros_preserved_exactly(self, sz):
        data = np.array([0.0, 1.0, -2.0, 0.0, 5.0] * 100, dtype=np.float32)
        buf = sz.compress(data, pwrel=0.1, mode="pw_rel")
        recon = sz.decompress(buf)
        assert np.all(recon[data == 0] == 0)

    def test_signs_preserved(self, sz):
        rng = np.random.default_rng(1)
        data = (rng.standard_normal(5000) * 100).astype(np.float32)
        recon = sz.decompress(sz.compress(data, pwrel=0.05, mode="pw_rel"))
        assert np.array_equal(np.sign(recon), np.sign(data))

    def test_missing_pwrel_raises(self, sz, smooth_field3d):
        with pytest.raises(DataError):
            sz.compress(smooth_field3d, mode="pw_rel")


class TestValidation:
    def test_nan_rejected(self, sz):
        data = np.array([1.0, np.nan, 2.0], dtype=np.float32)
        with pytest.raises(DataError):
            sz.compress(data, error_bound=0.1)

    def test_inf_rejected(self, sz):
        data = np.array([1.0, np.inf], dtype=np.float32)
        with pytest.raises(DataError):
            sz.compress(data, error_bound=0.1)

    def test_integer_dtype_rejected(self, sz):
        with pytest.raises(DataError):
            sz.compress(np.arange(100), error_bound=0.1)

    def test_missing_bound_raises(self, sz, smooth_field3d):
        with pytest.raises(DataError):
            sz.compress(smooth_field3d)

    def test_unknown_mode_raises(self, sz, smooth_field3d):
        with pytest.raises(DataError):
            sz.compress(smooth_field3d, error_bound=1.0, mode="nonsense")

    def test_fixed_rate_unsupported(self, sz, smooth_field3d):
        with pytest.raises(UnsupportedModeError):
            sz.compress(smooth_field3d, error_bound=1.0, mode="fixed_rate")

    def test_bad_magic_raises(self, sz):
        with pytest.raises(CorruptStreamError):
            sz.decompress(b"JUNKJUNKJUNK" * 10)

    def test_constructor_validation(self):
        with pytest.raises(DataError):
            SZCompressor(block_side=1)
        with pytest.raises(DataError):
            SZCompressor(radius=1)
        with pytest.raises(DataError):
            SZCompressor(radius=10**6)


class TestOptions:
    def test_lossless_pipeline_round_trip(self, smooth_field3d):
        sz = SZCompressor(lossless=["lzss"])
        buf = sz.compress(smooth_field3d, error_bound=1e-2)
        recon = sz.decompress(buf)
        assert np.abs(recon - smooth_field3d).max() <= 1e-2 + ulp_tolerance(smooth_field3d)

    def test_plain_decoder_reads_pipelined_stream(self, smooth_field3d):
        # Stream self-description: decoder configuration doesn't matter.
        buf = SZCompressor(lossless=["lzss"]).compress(smooth_field3d, error_bound=1e-2)
        recon = SZCompressor().decompress(buf)
        assert np.abs(recon - smooth_field3d).max() <= 1e-2 + ulp_tolerance(smooth_field3d)

    def test_custom_block_side(self, smooth_field3d):
        sz = SZCompressor(block_side=8)
        buf = sz.compress(smooth_field3d, error_bound=1e-2)
        assert np.abs(sz.decompress(buf) - smooth_field3d).max() <= 1e-2 + ulp_tolerance(smooth_field3d)

    def test_small_radius_forces_outliers(self, smooth_field3d):
        sz = SZCompressor(radius=4)
        buf = sz.compress(smooth_field3d, error_bound=1e-4)
        assert buf.meta["outlier_count"] > 0
        recon = sz.decompress(buf)
        assert np.abs(recon - smooth_field3d).max() <= 1e-4 + ulp_tolerance(smooth_field3d)

    def test_roundtrip_helper(self, sz, smooth_field3d):
        recon, buf = sz.roundtrip(smooth_field3d, error_bound=1e-2)
        assert recon.shape == smooth_field3d.shape
        assert buf.compression_ratio > 1
