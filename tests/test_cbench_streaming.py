"""Tests for the CBench streaming cell and the shm sweep transport."""

import hashlib

import numpy as np
import pytest

from repro import telemetry
from repro.compressors import SZCompressor
from repro.compressors.streaming import ChunkedCompressor
from repro.errors import ConfigError
from repro.foresight.cbench import (
    CBench,
    CHUNK_BUDGET_ENV,
    parse_bytes,
    resolve_chunk_budget,
)
from repro.foresight.config import CompressorSweep
from repro.metrics import evaluate_distortion


@pytest.fixture()
def fields(hacc_small):
    return {"x": hacc_small.fields["x"], "vx": hacc_small.fields["vx"]}


SWEEP = CompressorSweep(name="sz", mode="abs", sweep={"error_bound": [0.05]})


def _rows(records):
    return [
        (r.compressor, r.field, r.parameter, r.compression_ratio, r.bitrate,
         tuple(sorted(r.metrics.items())))
        for r in records
    ]


class TestParseBytes:
    def test_suffixes(self):
        assert parse_bytes("64K") == 64 << 10
        assert parse_bytes("2m") == 2 << 20
        assert parse_bytes("1G") == 1 << 30
        assert parse_bytes(4096) == 4096

    def test_invalid(self):
        with pytest.raises(ConfigError):
            parse_bytes("lots")
        with pytest.raises(ConfigError):
            parse_bytes("0")

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv(CHUNK_BUDGET_ENV, raising=False)
        assert resolve_chunk_budget(None) is None
        monkeypatch.setenv(CHUNK_BUDGET_ENV, "128K")
        assert resolve_chunk_budget(None) == 128 << 10
        assert resolve_chunk_budget("1M") == 1 << 20  # explicit wins


class TestStreamingCell:
    def test_matches_chunked_compressor_exactly(self, fields):
        budget = 64 << 10
        bench = CBench(fields, keep_reconstructions=True, chunk_budget=budget)
        record = bench.run_one(SWEEP, "x", 0.05)
        chunked = ChunkedCompressor(
            SZCompressor(), budget // fields["x"].dtype.itemsize
        )
        buf = chunked.compress(fields["x"], error_bound=0.05, mode="abs")
        assert record.compression_ratio == buf.compression_ratio
        assert record.bitrate == buf.bitrate
        assert record.metrics == evaluate_distortion(
            fields["x"], chunked.decompress(buf)
        )
        assert np.array_equal(record.reconstruction, chunked.decompress(buf))
        assert record.meta["streaming"]["n_chunks"] == buf.meta["n_chunks"]

    def test_no_reconstruction_when_disabled(self, fields):
        bench = CBench(fields, keep_reconstructions=False, chunk_budget="64K")
        record = bench.run_one(SWEEP, "x", 0.05)
        assert record.reconstruction is None
        assert record.metrics["max_abs_error"] <= 0.05 * (1 + 1e-6) + 1e-4

    def test_cache_round_trip(self, fields, tmp_path):
        bench = CBench(
            fields, keep_reconstructions=True, cache=tmp_path, chunk_budget="64K"
        )
        first = bench.run_one(SWEEP, "x", 0.05)
        second = bench.run_one(SWEEP, "x", 0.05)
        assert second.meta.get("cache") == "hit"
        assert second.metrics == first.metrics
        assert np.array_equal(second.reconstruction, first.reconstruction)

    def test_cache_key_distinguishes_chunk_budget(self, fields, tmp_path):
        streaming = CBench(fields, cache=tmp_path, chunk_budget="64K")
        whole = CBench(fields, cache=tmp_path)
        assert streaming._cell_key(SWEEP, "x", 0.05) != whole._cell_key(
            SWEEP, "x", 0.05
        )

    def test_telemetry_emits_chunk_spans_and_rss_gauge(self, fields):
        with telemetry.enabled_telemetry() as tm:
            bench = CBench(fields, keep_reconstructions=False, chunk_budget="64K")
            record = bench.run_one(SWEEP, "x", 0.05)
            names = [s.name for s in tm.tracer.finished_spans()]
        assert "cbench.chunk" in names
        span_names = [s["name"] for s in record.meta["telemetry"]["spans"]]
        assert span_names.count("cbench.chunk") == record.meta["streaming"]["n_chunks"]
        snapshot = tm.metrics.snapshot()
        assert snapshot["process.peak_rss_bytes"]["value"] > 0


class TestShmSweepEquivalence:
    def _run(self, fields, monkeypatch, workers=None, no_shm=False, budget=None):
        if no_shm:
            monkeypatch.setenv("REPRO_NO_SHM", "1")
        else:
            monkeypatch.delenv("REPRO_NO_SHM", raising=False)
        bench = CBench(fields, keep_reconstructions=False, chunk_budget=budget)
        return _rows(bench.run_all([SWEEP], workers=workers))

    def test_parallel_shm_matches_serial(self, fields, monkeypatch):
        serial = self._run(fields, monkeypatch)
        shm = self._run(fields, monkeypatch, workers=2)
        noshm = self._run(fields, monkeypatch, workers=2, no_shm=True)
        assert serial == shm == noshm

    def test_streaming_parallel_matches_serial(self, fields, monkeypatch):
        serial = self._run(fields, monkeypatch, budget="64K")
        shm = self._run(fields, monkeypatch, workers=2, budget="64K")
        noshm = self._run(fields, monkeypatch, workers=2, no_shm=True, budget="64K")
        assert serial == shm == noshm

    def test_shm_counters_visible(self, fields, monkeypatch):
        monkeypatch.delenv("REPRO_NO_SHM", raising=False)
        with telemetry.enabled_telemetry() as tm:
            bench = CBench(fields, keep_reconstructions=False)
            bench.run_all([SWEEP], workers=2)
            snapshot = tm.metrics.snapshot()
        assert snapshot["shm.segments_published"]["value"] == 2
        assert snapshot["shm.bytes_published"]["value"] == sum(
            f.nbytes for f in fields.values()
        )

    def test_payloads_byte_identical_shm_vs_fallback(self, fields, monkeypatch, tmp_path):
        # Caches store the CompressedBuffer; compare its sha256 across
        # transports (the strongest equality the record API exposes).
        def digests(no_shm, subdir):
            if no_shm:
                monkeypatch.setenv("REPRO_NO_SHM", "1")
            else:
                monkeypatch.delenv("REPRO_NO_SHM", raising=False)
            bench = CBench(
                fields, keep_reconstructions=False,
                cache=tmp_path / subdir, chunk_budget="64K",
            )
            bench.run_all([SWEEP], workers=2)
            out = {}
            for name in fields:
                _, buf = bench.cache.get(bench._cell_key(SWEEP, name, 0.05))
                out[name] = hashlib.sha256(buf.payload).hexdigest()
            return out

        assert digests(False, "shm") == digests(True, "noshm")
