"""Tests for Gaussian random fields, spectra, and displacement fields."""

import numpy as np
import pytest

from repro.cosmo.grf import displacement_field, gaussian_random_field, wavenumber_grid
from repro.cosmo.power_spectrum import power_spectrum
from repro.cosmo.spectra import CosmoPowerSpectrum, power_law_spectrum
from repro.errors import DataError


class TestSpectra:
    def test_transfer_function_limits(self):
        spec = CosmoPowerSpectrum()
        assert spec.transfer(np.array([0.0]))[0] == pytest.approx(1.0)
        assert spec.transfer(np.array([100.0]))[0] < 1e-3

    def test_pk_zero_at_dc(self):
        spec = CosmoPowerSpectrum()
        assert spec(np.array([0.0]))[0] == 0.0

    def test_pk_positive_and_finite(self):
        spec = CosmoPowerSpectrum()
        k = np.geomspace(1e-3, 1e2, 50)
        pk = spec(k)
        assert np.all(pk > 0) and np.all(np.isfinite(pk))

    def test_pk_turnover_shape(self):
        # Rises on large scales, falls on small scales.
        spec = CosmoPowerSpectrum()
        pk = spec(np.array([1e-3, 2e-2, 10.0]))
        assert pk[1] > pk[0] and pk[1] > pk[2]

    def test_velocity_spectrum_suppresses_small_scales(self):
        spec = CosmoPowerSpectrum()
        k = np.array([0.1, 1.0])
        ratio = spec.velocity_spectrum(k) / spec(k)
        assert ratio[0] > ratio[1]

    def test_power_law_exact(self):
        spec = power_law_spectrum(5.0, -1.0)
        k = np.array([0.5, 2.0])
        assert np.allclose(spec(k), 5.0 / k)


class TestGRF:
    def test_field_is_real_and_correct_shape(self):
        rng = np.random.default_rng(0)
        f = gaussian_random_field(16, 100.0, CosmoPowerSpectrum(), rng)
        assert f.shape == (16, 16, 16)
        assert f.dtype == np.float64

    def test_measured_spectrum_matches_input(self):
        # The generation/measurement conventions must agree: a power-law
        # input spectrum should be recovered within cosmic variance.
        rng = np.random.default_rng(1)
        spec = power_law_spectrum(100.0, -1.5)
        box = 100.0
        ratios = []
        for _ in range(4):
            f = gaussian_random_field(32, box, spec, rng)
            meas = power_spectrum(f, box, nbins=8)
            ratios.append(meas.pk / spec(meas.k))
        mean_ratio = np.mean(ratios, axis=0)
        assert np.all(np.abs(mean_ratio[1:-1] - 1.0) < 0.5)

    def test_seeded_reproducibility(self):
        spec = CosmoPowerSpectrum()
        f1 = gaussian_random_field(8, 50.0, spec, np.random.default_rng(7))
        f2 = gaussian_random_field(8, 50.0, spec, np.random.default_rng(7))
        assert np.array_equal(f1, f2)

    def test_negative_spectrum_rejected(self):
        with pytest.raises(DataError):
            gaussian_random_field(8, 50.0, lambda k: -np.ones_like(k), np.random.default_rng(0))

    def test_tiny_grid_rejected(self):
        with pytest.raises(DataError):
            gaussian_random_field(1, 50.0, CosmoPowerSpectrum(), np.random.default_rng(0))

    def test_wavenumber_grid_nyquist(self):
        k = wavenumber_grid(8, 8.0)
        assert k[0, 0, 0] == 0.0
        assert k.max() == pytest.approx(np.sqrt(3) * np.pi, rel=1e-6)


class TestDisplacement:
    def test_zero_density_zero_displacement(self):
        psi = displacement_field(np.zeros((8, 8, 8)), 100.0)
        for p in psi:
            assert np.allclose(p, 0.0)

    def test_plane_wave_displacement_is_longitudinal(self):
        # delta = cos(k x) => psi_x = -sin(k x)/k (toward overdensities),
        # psi_y = psi_z = 0.
        n, box = 32, 100.0
        x = np.arange(n) * box / n
        kx = 2 * np.pi / box * 2  # mode 2
        delta = np.cos(kx * x)[:, None, None] * np.ones((1, n, n))
        px, py, pz = displacement_field(delta, box)
        assert np.allclose(py, 0, atol=1e-12)
        assert np.allclose(pz, 0, atol=1e-12)
        expected = -np.sin(kx * x) / kx
        assert np.allclose(px[:, 0, 0], expected, atol=1e-10)

    def test_non_cubic_rejected(self):
        with pytest.raises(DataError):
            displacement_field(np.zeros((4, 8, 8)), 10.0)
