"""Properties of the consistent-hash ring (repro.service.ring).

The cluster's cache-locality story rests on exactly three promises —
determinism, rough balance, and minimal key movement on membership
change — so each is pinned as a property over generated fleets and
keys, plus the exact arc-transfer law: adding a node moves keys only
*onto* it, removing a node moves only *its* keys.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.ring import DEFAULT_REPLICAS, HashRing

_slow = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

_node_ids = st.lists(
    st.text(st.characters(min_codepoint=48, max_codepoint=122), min_size=1,
            max_size=12),
    min_size=1, max_size=8, unique=True,
)

_keys = st.lists(st.binary(min_size=0, max_size=64), min_size=1,
                 max_size=50, unique=True)


def _ownership(ring: HashRing, keys: list[bytes]) -> dict[bytes, str]:
    return {k: ring.lookup(k) for k in keys}


class TestDeterminism:
    @given(nodes=_node_ids, keys=_keys)
    @_slow
    def test_two_rings_agree(self, nodes, keys):
        # A restarted router must reach the same warm shards as its
        # predecessor: placement depends only on membership, not on
        # construction order or process identity.
        a = HashRing(nodes)
        b = HashRing(reversed(nodes))
        assert _ownership(a, keys) == _ownership(b, keys)

    @given(nodes=_node_ids, key=st.binary(max_size=64))
    @_slow
    def test_str_and_bytes_keys_agree(self, nodes, key):
        ring = HashRing(nodes)
        try:
            text = key.decode("utf-8")
        except UnicodeDecodeError:
            return
        assert ring.lookup(key) == ring.lookup(text)

    @given(nodes=_node_ids, key=st.binary(max_size=64), n=st.integers(1, 8))
    @_slow
    def test_preference_is_distinct_and_led_by_owner(self, nodes, key, n):
        ring = HashRing(nodes)
        prefs = ring.preference(key, n)
        assert prefs[0] == ring.lookup(key)
        assert len(prefs) == len(set(prefs)) == min(n, len(nodes))


class TestBalance:
    def test_three_shards_share_1k_keys_fairly(self):
        ring = HashRing(["s0", "s1", "s2"])
        counts = {"s0": 0, "s1": 0, "s2": 0}
        for i in range(1000):
            counts[ring.lookup(f"key-{i}".encode())] += 1
        # 128 vnodes keeps every share within ~2x of fair (1/3); the
        # bound is loose on purpose — it guards against degenerate
        # placement (one shard owning ~everything), not perfection.
        for shard, count in counts.items():
            assert 1000 / 6 <= count <= 1000 / 1.5, (shard, counts)

    @given(n_nodes=st.integers(2, 6))
    @_slow
    def test_every_node_owns_something(self, n_nodes):
        ring = HashRing([f"s{i}" for i in range(n_nodes)])
        shares = ring.shares(1024)
        assert set(shares) == set(ring.nodes)
        assert all(share > 0 for share in shares.values())
        assert sum(shares.values()) == pytest.approx(1.0)


class TestMinimalMovement:
    @given(nodes=_node_ids, keys=_keys)
    @_slow
    def test_join_moves_keys_only_onto_the_joiner(self, nodes, keys):
        ring = HashRing(nodes)
        before = _ownership(ring, keys)
        joiner = "joining-node"
        ring.add(joiner)
        after = _ownership(ring, keys)
        moved = {k for k in keys if before[k] != after[k]}
        assert all(after[k] == joiner for k in moved)

    @given(nodes=_node_ids, keys=_keys)
    @_slow
    def test_leave_moves_only_the_leavers_keys(self, nodes, keys):
        leaver = "leaving-node"
        ring = HashRing([*nodes, leaver])
        before = _ownership(ring, keys)
        ring.remove(leaver)
        after = _ownership(ring, keys)
        moved = {k for k in keys if before[k] != after[k]}
        assert all(before[k] == leaver for k in moved)
        assert all(after[k] != leaver for k in keys)

    def test_join_leave_round_trips_exactly(self):
        # Drain then re-admit (the health-gate cycle) must restore the
        # original placement bit-for-bit — that is why a recovered
        # shard's cache is still warm.
        ring = HashRing(["s0", "s1", "s2"])
        keys = [f"key-{i}".encode() for i in range(500)]
        before = _ownership(ring, keys)
        ring.remove("s1")
        ring.add("s1")
        assert _ownership(ring, keys) == before

    def test_about_one_nth_moves(self):
        keys = [f"key-{i}".encode() for i in range(2000)]
        ring = HashRing([f"s{i}" for i in range(4)])
        before = _ownership(ring, keys)
        ring.add("s4")
        after = _ownership(ring, keys)
        moved = sum(before[k] != after[k] for k in keys)
        # Expect ~1/5 of keys to land on the joiner; allow wide slack.
        assert 0.05 * len(keys) <= moved <= 0.40 * len(keys)


class TestEdges:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.lookup(b"anything")
        ring.add("s0")
        ring.remove("s0")
        with pytest.raises(LookupError):
            ring.lookup(b"anything")

    def test_add_remove_idempotent(self):
        ring = HashRing(replicas=DEFAULT_REPLICAS)
        ring.add("s0")
        ring.add("s0")
        assert len(ring) == 1
        ring.remove("s0")
        ring.remove("s0")
        assert len(ring) == 0 and "s0" not in ring

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(
            ring.lookup(f"k{i}".encode()) == "only" for i in range(64)
        )

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
