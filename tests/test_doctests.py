"""Run the docstring examples of modules that carry them."""

import doctest

import pytest

import repro.lossless.pipeline
import repro.parallel.daemons
import repro.service.client
import repro.service.cluster
import repro.service.membership
import repro.service.ring
import repro.util.backoff


@pytest.mark.parametrize(
    "module",
    [
        repro.lossless.pipeline,
        repro.parallel.daemons,
        repro.service.client,
        repro.service.cluster,
        repro.service.membership,
        repro.service.ring,
        repro.util.backoff,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
