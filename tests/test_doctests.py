"""Run the docstring examples of modules that carry them."""

import doctest

import pytest

import repro.lossless.pipeline


@pytest.mark.parametrize("module", [repro.lossless.pipeline])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
