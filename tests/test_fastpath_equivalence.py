"""Byte-identity of the fast-path (vectorized) codecs vs the seed scalar
paths.

The fast-path engine swaps every per-block / per-symbol python loop for a
batched numpy kernel, but the *stream format is the contract*: for any
input and any configuration the fast encoder must produce bit-identical
payloads, and the fast decoder must accept (and identically decode)
streams from either encoder.  ``REPRO_SCALAR_CODECS=1`` forces the seed
implementations, which is also exactly what ``bench_fastpath.py`` times
against.
"""

import numpy as np
import pytest

from repro.compressors.sz.szcompressor import SZCompressor
from repro.compressors.zfp.zfpcompressor import ZFPCompressor
from repro.foresight.cbench import CBench
from repro.foresight.config import CompressorSweep
from repro.lossless.huffman import HuffmanCodec
from repro.util.bits import pack_varlen_codes


@pytest.fixture()
def scalar_mode(monkeypatch):
    """Run the wrapped code under the seed scalar implementations."""

    def enable():
        monkeypatch.setenv("REPRO_SCALAR_CODECS", "1")

    def disable():
        monkeypatch.delenv("REPRO_SCALAR_CODECS", raising=False)

    disable()
    return enable, disable


def _field(shape, dtype, seed=0):
    rng = np.random.default_rng(seed)
    scale = np.exp(rng.uniform(-6.0, 6.0, shape))
    return (rng.standard_normal(shape) * scale).astype(dtype)


class TestZFPEquivalence:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize(
        "mode,kwargs",
        [
            ("fixed_rate", {"rate": 7.0}),
            ("fixed_precision", {"precision": 14}),
            ("fixed_accuracy", {"tolerance": 1e-3}),
        ],
    )
    def test_streams_byte_identical(self, scalar_mode, ndim, dtype, mode, kwargs):
        enable, disable = scalar_mode
        shape = {1: (131,), 2: (21, 18), 3: (9, 10, 11)}[ndim]
        data = _field(shape, dtype, seed=ndim)

        disable()
        fast_buf = ZFPCompressor().compress(data, mode=mode, **kwargs)
        fast_rec = ZFPCompressor().decompress(fast_buf)

        enable()
        seed_buf = ZFPCompressor().compress(data, mode=mode, **kwargs)
        seed_rec = ZFPCompressor().decompress(seed_buf)

        assert fast_buf.payload == seed_buf.payload
        assert np.array_equal(fast_rec, seed_rec)

        # Cross-decode: the scalar decoder accepts the fast stream and
        # vice versa (it is the same stream, but exercise both decoders).
        disable()
        assert np.array_equal(ZFPCompressor().decompress(seed_buf), fast_rec)

    def test_explicit_batched_flag_overrides_env(self, scalar_mode):
        enable, _ = scalar_mode
        enable()
        assert ZFPCompressor(batched=True).batched is True
        assert ZFPCompressor().batched is False


class TestSZEquivalence:
    @pytest.mark.parametrize("rel", [1e-2, 1e-3, 7e-4])
    def test_streams_byte_identical(self, scalar_mode, rel):
        enable, disable = scalar_mode
        data = _field((17, 23, 19), np.float32, seed=3)
        eb = float(np.std(data)) * rel

        disable()
        fast_buf = SZCompressor().compress(data, mode="abs", error_bound=eb)
        fast_rec = SZCompressor().decompress(fast_buf)

        enable()
        seed_buf = SZCompressor().compress(data, mode="abs", error_bound=eb)
        seed_rec = SZCompressor().decompress(seed_buf)

        assert fast_buf.payload == seed_buf.payload
        assert np.array_equal(fast_rec, seed_rec)
        assert np.abs(fast_rec - data).max() <= eb * (1 + 1e-6)


class TestHuffmanEquivalence:
    @pytest.mark.parametrize(
        "n,alphabet",
        [(1, 1), (255, 3), (4096, 7), (4097, 300), (50000, 2000)],
    )
    def test_payload_and_decode_identical(self, scalar_mode, n, alphabet):
        enable, disable = scalar_mode
        rng = np.random.default_rng(n)
        # Zipf-ish skew so codeword lengths actually vary.
        symbols = np.minimum(
            rng.geometric(0.05, size=n) - 1, alphabet - 1
        ).astype(np.int64)

        disable()
        fast_enc = HuffmanCodec().encode(symbols, alphabet)
        fast_out = HuffmanCodec().decode(fast_enc)

        enable()
        seed_enc = HuffmanCodec().encode(symbols, alphabet)
        seed_out = HuffmanCodec().decode(seed_enc)

        assert fast_enc.payload == seed_enc.payload
        assert np.array_equal(fast_out, symbols)
        assert np.array_equal(seed_out, symbols)

        # Scalar decoder on the fast stream (same bytes, seed loop).
        assert np.array_equal(HuffmanCodec().decode(fast_enc), symbols)


class TestSweepEquivalence:
    """Engine knobs must not change sweep results — only their speed.

    The full matrix of transports (shm vs ``REPRO_NO_SHM=1`` pickling)
    and codec implementations (vectorized vs ``REPRO_SCALAR_CODECS=1``
    seed paths) produces identical records for the same sweep.
    """

    def _rows(self, fields, monkeypatch, *, workers=None, no_shm=False,
              scalar=False, budget=None):
        if no_shm:
            monkeypatch.setenv("REPRO_NO_SHM", "1")
        else:
            monkeypatch.delenv("REPRO_NO_SHM", raising=False)
        if scalar:
            monkeypatch.setenv("REPRO_SCALAR_CODECS", "1")
        else:
            monkeypatch.delenv("REPRO_SCALAR_CODECS", raising=False)
        sweep = CompressorSweep(
            name="sz", mode="abs", sweep={"error_bound": [0.05, 0.01]}
        )
        bench = CBench(fields, keep_reconstructions=False, chunk_budget=budget)
        return [
            (r.compressor, r.field, r.parameter, r.compression_ratio,
             r.bitrate, tuple(sorted(r.metrics.items())))
            for r in bench.run_all([sweep], workers=workers)
        ]

    def test_transport_and_codec_matrix_identical(self, hacc_small, monkeypatch):
        fields = {"x": hacc_small.fields["x"]}
        reference = self._rows(fields, monkeypatch)
        for kwargs in (
            dict(workers=2),
            dict(workers=2, no_shm=True),
            dict(scalar=True),
            dict(workers=2, no_shm=True, scalar=True),
        ):
            assert self._rows(fields, monkeypatch, **kwargs) == reference

    def test_streaming_engine_matrix_identical(self, hacc_small, monkeypatch):
        fields = {"x": hacc_small.fields["x"]}
        reference = self._rows(fields, monkeypatch, budget="64K")
        for kwargs in (
            dict(workers=2, budget="64K"),
            dict(workers=2, no_shm=True, budget="64K"),
            dict(scalar=True, budget="64K"),
        ):
            assert self._rows(fields, monkeypatch, **kwargs) == reference


class TestPackEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_grouped_pack_matches_ragged(self, scalar_mode, seed):
        enable, disable = scalar_mode
        rng = np.random.default_rng(seed)
        n = 4096
        lengths = rng.integers(0, 17, size=n).astype(np.int64)
        codes = rng.integers(0, 1 << 16, size=n, dtype=np.uint64) & (
            (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)
        )

        disable()
        fast = pack_varlen_codes(codes, lengths)
        enable()
        ragged = pack_varlen_codes(codes, lengths)
        assert fast == ragged

    def test_long_and_zero_length_codes(self, scalar_mode):
        _, disable = scalar_mode
        disable()
        codes = np.array([(1 << 57) - 1, 5, 0], dtype=np.uint64)
        lengths = np.array([57, 3, 0], dtype=np.int64)
        payload, nbits = pack_varlen_codes(codes, lengths)
        assert nbits == 60
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[:60]
        assert bits[:57].all()          # 57 one-bits
        assert list(bits[57:]) == [1, 0, 1]
