"""Byte-identity of every kernel backend vs the seed scalar paths.

The kernel registry (:mod:`repro.kernels`) swaps per-block / per-symbol
python loops for batched numpy kernels or compiled native code, but the
*stream format is the contract*: for any input, any configuration and
any backend tier the encoder must produce bit-identical payloads, and
every decoder must accept (and identically decode) streams from any
encoder.  ``REPRO_SCALAR_CODECS=1`` (the deprecated alias for
``REPRO_BACKEND=scalar``) forces the seed implementations, which is also
exactly what ``bench_fastpath.py`` times against; the
``TestBackendParityMatrix`` class drives the same contract through the
registry for the full backend x kernel matrix.
"""

import hashlib

import numpy as np
import pytest

from repro import kernels
from repro.compressors.sz.szcompressor import SZCompressor
from repro.compressors.zfp.zfpcompressor import ZFPCompressor
from repro.foresight.cbench import CBench
from repro.foresight.config import CompressorSweep
from repro.lossless.huffman import HuffmanCodec
from repro.util.bits import pack_varlen_codes


def backend_params():
    """All three tiers; ``native`` marked skip when it cannot run here.

    The skip is *visible* (reported by pytest), never silent — CI's
    native job fails collection of a silently-green matrix.
    """
    params = [pytest.param("scalar"), pytest.param("numpy")]
    from repro.kernels import native

    try:
        native.probe()
    except Exception as exc:
        params.append(pytest.param(
            "native",
            marks=pytest.mark.skip(reason=f"native tier unavailable: {exc}"),
        ))
    else:
        params.append(pytest.param("native"))
    return params


BACKENDS = backend_params()


@pytest.fixture()
def scalar_mode(monkeypatch):
    """Run the wrapped code under the seed scalar implementations.

    Pins ``REPRO_BACKEND`` itself (not just the deprecated alias) so
    the toggle also works when the whole suite runs under an ambient
    tier pin, as the CI backend matrix does.
    """

    def enable():
        monkeypatch.setenv(kernels.BACKEND_ENV, "scalar")
        monkeypatch.setenv(kernels.LEGACY_SCALAR_ENV, "1")

    def disable():
        monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
        monkeypatch.delenv(kernels.LEGACY_SCALAR_ENV, raising=False)

    disable()
    return enable, disable


def _field(shape, dtype, seed=0):
    rng = np.random.default_rng(seed)
    scale = np.exp(rng.uniform(-6.0, 6.0, shape))
    return (rng.standard_normal(shape) * scale).astype(dtype)


class TestZFPEquivalence:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize(
        "mode,kwargs",
        [
            ("fixed_rate", {"rate": 7.0}),
            ("fixed_precision", {"precision": 14}),
            ("fixed_accuracy", {"tolerance": 1e-3}),
        ],
    )
    def test_streams_byte_identical(self, scalar_mode, ndim, dtype, mode, kwargs):
        enable, disable = scalar_mode
        shape = {1: (131,), 2: (21, 18), 3: (9, 10, 11)}[ndim]
        data = _field(shape, dtype, seed=ndim)

        disable()
        fast_buf = ZFPCompressor().compress(data, mode=mode, **kwargs)
        fast_rec = ZFPCompressor().decompress(fast_buf)

        enable()
        seed_buf = ZFPCompressor().compress(data, mode=mode, **kwargs)
        seed_rec = ZFPCompressor().decompress(seed_buf)

        assert fast_buf.payload == seed_buf.payload
        assert np.array_equal(fast_rec, seed_rec)

        # Cross-decode: the scalar decoder accepts the fast stream and
        # vice versa (it is the same stream, but exercise both decoders).
        disable()
        assert np.array_equal(ZFPCompressor().decompress(seed_buf), fast_rec)

    def test_explicit_batched_flag_overrides_env(self, scalar_mode):
        enable, _ = scalar_mode
        enable()
        assert ZFPCompressor(batched=True).batched is True
        assert ZFPCompressor().batched is False


class TestSZEquivalence:
    @pytest.mark.parametrize("rel", [1e-2, 1e-3, 7e-4])
    def test_streams_byte_identical(self, scalar_mode, rel):
        enable, disable = scalar_mode
        data = _field((17, 23, 19), np.float32, seed=3)
        eb = float(np.std(data)) * rel

        disable()
        fast_buf = SZCompressor().compress(data, mode="abs", error_bound=eb)
        fast_rec = SZCompressor().decompress(fast_buf)

        enable()
        seed_buf = SZCompressor().compress(data, mode="abs", error_bound=eb)
        seed_rec = SZCompressor().decompress(seed_buf)

        assert fast_buf.payload == seed_buf.payload
        assert np.array_equal(fast_rec, seed_rec)
        assert np.abs(fast_rec - data).max() <= eb * (1 + 1e-6)


class TestHuffmanEquivalence:
    @pytest.mark.parametrize(
        "n,alphabet",
        [(1, 1), (255, 3), (4096, 7), (4097, 300), (50000, 2000)],
    )
    def test_payload_and_decode_identical(self, scalar_mode, n, alphabet):
        enable, disable = scalar_mode
        rng = np.random.default_rng(n)
        # Zipf-ish skew so codeword lengths actually vary.
        symbols = np.minimum(
            rng.geometric(0.05, size=n) - 1, alphabet - 1
        ).astype(np.int64)

        disable()
        fast_enc = HuffmanCodec().encode(symbols, alphabet)
        fast_out = HuffmanCodec().decode(fast_enc)

        enable()
        seed_enc = HuffmanCodec().encode(symbols, alphabet)
        seed_out = HuffmanCodec().decode(seed_enc)

        assert fast_enc.payload == seed_enc.payload
        assert np.array_equal(fast_out, symbols)
        assert np.array_equal(seed_out, symbols)

        # Scalar decoder on the fast stream (same bytes, seed loop).
        assert np.array_equal(HuffmanCodec().decode(fast_enc), symbols)


class TestSweepEquivalence:
    """Engine knobs must not change sweep results — only their speed.

    The full matrix of transports (shm vs ``REPRO_NO_SHM=1`` pickling)
    and codec implementations (vectorized vs ``REPRO_SCALAR_CODECS=1``
    seed paths) produces identical records for the same sweep.
    """

    def _rows(self, fields, monkeypatch, *, workers=None, no_shm=False,
              scalar=False, budget=None):
        if no_shm:
            monkeypatch.setenv("REPRO_NO_SHM", "1")
        else:
            monkeypatch.delenv("REPRO_NO_SHM", raising=False)
        if scalar:
            monkeypatch.setenv(kernels.BACKEND_ENV, "scalar")
            monkeypatch.setenv(kernels.LEGACY_SCALAR_ENV, "1")
        else:
            monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
            monkeypatch.delenv(kernels.LEGACY_SCALAR_ENV, raising=False)
        sweep = CompressorSweep(
            name="sz", mode="abs", sweep={"error_bound": [0.05, 0.01]}
        )
        bench = CBench(fields, keep_reconstructions=False, chunk_budget=budget)
        return [
            (r.compressor, r.field, r.parameter, r.compression_ratio,
             r.bitrate, tuple(sorted(r.metrics.items())))
            for r in bench.run_all([sweep], workers=workers)
        ]

    def test_transport_and_codec_matrix_identical(self, hacc_small, monkeypatch):
        fields = {"x": hacc_small.fields["x"]}
        reference = self._rows(fields, monkeypatch)
        for kwargs in (
            dict(workers=2),
            dict(workers=2, no_shm=True),
            dict(scalar=True),
            dict(workers=2, no_shm=True, scalar=True),
        ):
            assert self._rows(fields, monkeypatch, **kwargs) == reference

    def test_streaming_engine_matrix_identical(self, hacc_small, monkeypatch):
        fields = {"x": hacc_small.fields["x"]}
        reference = self._rows(fields, monkeypatch, budget="64K")
        for kwargs in (
            dict(workers=2, budget="64K"),
            dict(workers=2, no_shm=True, budget="64K"),
            dict(scalar=True, budget="64K"),
        ):
            assert self._rows(fields, monkeypatch, **kwargs) == reference


class TestBackendParityMatrix:
    """Backend x kernel bit-exactness, driven through the registry.

    Every kernel is called directly on every available tier and compared
    against the ``scalar`` reference output; the codec-level tests then
    prove whole streams stay byte-identical per tier.
    """

    # -- primitive kernels --------------------------------------------------

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("eb", [1e-1, 1e-4])
    def test_sz_lorenzo_roundtrip(self, backend, ndim, dtype, eb):
        rng = np.random.default_rng(ndim * 7 + 1)
        shape = (9,) + (6,) * ndim
        blocks = (rng.standard_normal(shape) * 40.0).astype(dtype)
        ref = kernels.call("sz.lorenzo", blocks, eb, backend="scalar")
        out = kernels.call("sz.lorenzo", blocks, eb, backend=backend)
        assert out.dtype == np.int64 and np.array_equal(out, ref)
        back = kernels.call("sz.lorenzo_inverse", out, backend=backend)
        assert np.array_equal(
            back, kernels.call("sz.lorenzo_inverse", ref, backend="scalar")
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 5])
    def test_pack_varlen(self, backend, seed):
        rng = np.random.default_rng(seed)
        n = 3001
        lengths = rng.integers(0, 58, size=n).astype(np.int64)
        shift = np.minimum(lengths, 57).astype(np.uint64)
        codes = rng.integers(0, 1 << 57, size=n, dtype=np.uint64) & (
            (np.uint64(1) << shift) - np.uint64(1)
        )
        ref = kernels.call("pack.varlen", codes, lengths, backend="scalar")
        assert kernels.call("pack.varlen", codes, lengths, backend=backend) == ref

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n,alphabet", [(1, 1), (4096, 300), (30000, 1500)])
    def test_huffman_codec(self, backend, n, alphabet):
        rng = np.random.default_rng(n)
        symbols = np.minimum(
            rng.geometric(0.03, size=n) - 1, alphabet - 1
        ).astype(np.int64)
        with kernels.use("scalar"):
            ref_enc = HuffmanCodec().encode(symbols, alphabet)
        with kernels.use(backend):
            enc = HuffmanCodec().encode(symbols, alphabet)
            out = HuffmanCodec().decode(enc)
        assert enc.payload == ref_enc.payload
        assert np.array_equal(out, symbols)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("planes,size", [(32, 16), (52, 64), (52, 4)])
    def test_zfp_transpose_roundtrip(self, backend, planes, size):
        rng = np.random.default_rng(planes + size)
        u = rng.integers(0, 1 << 62, size=(13, size), dtype=np.uint64) & (
            (np.uint64(1) << np.uint64(planes)) - np.uint64(1)
        )
        ref = kernels.call("zfp.transpose", u, planes, backend="scalar")
        words = kernels.call("zfp.transpose", u, planes, backend=backend)
        assert np.array_equal(words, ref)
        back = kernels.call("zfp.transpose_inverse", words, size, backend=backend)
        assert np.array_equal(
            back, kernels.call("zfp.transpose_inverse", ref, size, backend="scalar")
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("maxbits", [0, 210])
    @pytest.mark.parametrize("size,planes", [(4, 32), (16, 32), (64, 52)])
    def test_zfp_coder(self, backend, maxbits, size, planes):
        rng = np.random.default_rng(size * planes + maxbits)
        nblocks = 11
        u = rng.integers(0, 1 << 62, size=(nblocks, size), dtype=np.uint64) & (
            (np.uint64(1) << np.uint64(planes)) - np.uint64(1)
        )
        u[3] = 0  # a zero block in the middle
        words = kernels.call("zfp.transpose", u, planes, backend="scalar")
        nonzero = np.array([u[b].any() for b in range(nblocks)])
        e = rng.integers(-60, 60, size=nblocks).astype(np.int64)
        header = 13  # 1 flag bit + EBITS
        if maxbits:
            budgets = np.full(nblocks, maxbits - header, dtype=np.int64)
        else:
            budgets = np.full(nblocks, 1 << 20, dtype=np.int64)
        kmins = rng.integers(0, planes // 2, size=nblocks).astype(np.int64)
        ref = kernels.call(
            "zfp.encode", words, nonzero, e, size, planes, budgets, kmins,
            maxbits=maxbits, backend="scalar",
        )
        got = kernels.call(
            "zfp.encode", words, nonzero, e, size, planes, budgets, kmins,
            maxbits=maxbits, backend=backend,
        )
        assert got[0] == ref[0] and got[1] == ref[1]
        assert np.array_equal(got[2], ref[2])
        assert np.array_equal(got[3], ref[3])

        body, nbits, offsets, _ = ref
        bits = np.unpackbits(
            np.frombuffer(body, dtype=np.uint8), count=nbits, bitorder="big"
        )
        padded = np.concatenate([bits, np.zeros(128, dtype=np.uint8)])
        dec_ref = kernels.call(
            "zfp.decode", padded, offsets.astype(np.int64), nonzero, planes,
            size, budgets, kmins, backend="scalar",
        )
        dec = kernels.call(
            "zfp.decode", padded, offsets.astype(np.int64), nonzero, planes,
            size, budgets, kmins, backend=backend,
        )
        assert np.array_equal(dec, dec_ref)

    # -- whole codecs -------------------------------------------------------

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sz_streams_identical(self, backend, dtype):
        data = _field((17, 23, 19), dtype, seed=11)
        with kernels.use("scalar"):
            ref = SZCompressor().compress(data, mode="abs", error_bound=1e-3)
        with kernels.use(backend):
            buf = SZCompressor().compress(data, mode="abs", error_bound=1e-3)
            rec = SZCompressor().decompress(ref)
        assert buf.payload == ref.payload
        from conftest import ulp_tolerance

        assert np.abs(rec - data).max() <= 1e-3 + ulp_tolerance(data)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "mode,kwargs",
        [
            ("fixed_rate", {"rate": 7.0}),
            ("fixed_precision", {"precision": 14}),
            ("fixed_accuracy", {"tolerance": 1e-3}),
        ],
    )
    def test_zfp_streams_identical(self, backend, mode, kwargs):
        data = _field((9, 10, 11), np.float64, seed=5)
        ref = ZFPCompressor(backend="scalar").compress(data, mode=mode, **kwargs)
        buf = ZFPCompressor(backend=backend).compress(data, mode=mode, **kwargs)
        assert buf.payload == ref.payload
        assert np.array_equal(
            ZFPCompressor(backend=backend).decompress(ref),
            ZFPCompressor(backend="scalar").decompress(ref),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_adversarial_zfp_block(self, backend):
        """A pinned worst-case field: one 4^3 block whose values span the
        full float64 exponent range with mixed signs — maximal negabinary
        carry activity, group tests on every plane, and the 64-coefficient
        shift-guard path.  The scalar stream for this input is pinned by
        digest so *every* tier (today's and future ones) must match the
        frozen seed bytes, not merely each other."""
        block = np.zeros((4, 4, 4), dtype=np.float64)
        flat = block.reshape(-1)
        flat[:] = [
            (-1.0) ** i * 2.0 ** ((i * 5) % 120 - 60) for i in range(64)
        ]
        flat[7] = 0.0
        flat[21] = -0.0
        flat[63] = 2.0**60
        for mode, kwargs, digest in [
            ("fixed_rate", {"rate": 9.0}, None),
            ("fixed_precision", {"precision": 24}, None),
            ("fixed_accuracy", {"tolerance": 1e-6}, None),
        ]:
            ref = ZFPCompressor(backend="scalar").compress(block, mode=mode, **kwargs)
            buf = ZFPCompressor(backend=backend).compress(block, mode=mode, **kwargs)
            assert buf.payload == ref.payload, mode
            rec = ZFPCompressor(backend=backend).decompress(buf)
            assert np.array_equal(
                rec, ZFPCompressor(backend="scalar").decompress(ref)
            ), mode
        pinned = ZFPCompressor(backend=backend).compress(block, precision=24)
        assert hashlib.sha256(pinned.payload).hexdigest() == (
            "844e1789d8e773854d6ec5d2c1e08058352bc35234688f7d1df546c3d5b50b1a"
        )


class TestPackEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_grouped_pack_matches_ragged(self, scalar_mode, seed):
        enable, disable = scalar_mode
        rng = np.random.default_rng(seed)
        n = 4096
        lengths = rng.integers(0, 17, size=n).astype(np.int64)
        codes = rng.integers(0, 1 << 16, size=n, dtype=np.uint64) & (
            (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)
        )

        disable()
        fast = pack_varlen_codes(codes, lengths)
        enable()
        ragged = pack_varlen_codes(codes, lengths)
        assert fast == ragged

    def test_long_and_zero_length_codes(self, scalar_mode):
        _, disable = scalar_mode
        disable()
        codes = np.array([(1 << 57) - 1, 5, 0], dtype=np.uint64)
        lengths = np.array([57, 3, 0], dtype=np.int64)
        payload, nbits = pack_varlen_codes(codes, lengths)
        assert nbits == 60
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[:60]
        assert bits[:57].all()          # 57 one-bits
        assert list(bits[57:]) == [1, 0, 1]
