"""Result cache: key scheme, hit/miss/invalidation, CBench integration."""

import os
import pickle

import numpy as np
import pytest

from repro.cache import (
    SCHEMA_VERSION,
    ResultCache,
    data_digest,
    make_key,
)
from repro.foresight.cbench import CBench
from repro.foresight.config import CompressorSweep


def _field():
    rng = np.random.default_rng(11)
    return (rng.standard_normal((12, 13, 14)) * 50).astype(np.float32)


def _racing_put(root: str, key: str, barrier, worker: int) -> None:
    """Spawn-target for the concurrent-writer race (module level: picklable)."""
    cache = ResultCache(root)
    barrier.wait(timeout=30)
    for _ in range(25):
        cache.put(key, {"writer": worker, "n": 4096})


class TestKeyScheme:
    def test_digest_depends_on_bytes_shape_dtype(self):
        a = np.arange(12, dtype=np.float32)
        assert data_digest(a) == data_digest(a.copy())
        assert data_digest(a) != data_digest(a.reshape(3, 4))
        assert data_digest(a) != data_digest(a.astype(np.float64))
        b = a.copy()
        b[0] += 1
        assert data_digest(a) != data_digest(b)

    def test_digest_handles_non_contiguous(self):
        a = np.arange(24, dtype=np.float64).reshape(4, 6)
        assert data_digest(a[:, ::2]) == data_digest(a[:, ::2].copy())

    def test_key_changes_with_every_component(self):
        base = dict(
            compressor="sz",
            options={},
            mode="abs",
            knob="error_bound",
            value=0.1,
            digest="d" * 64,
        )
        key = make_key(**base)
        for name, value in [
            ("compressor", "zfp"),
            ("options", {"huffman_chunk": 512}),
            ("mode", "rel"),
            ("knob", "rate"),
            ("value", 0.2),
            ("digest", "e" * 64),
        ]:
            assert make_key(**{**base, name: value}) != key
        assert make_key(**base) == key  # deterministic


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "a" * 64
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert key in cache
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert cache.stats.puts == 1 and cache.stats.put_bytes > 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "b" * 64
        cache.put(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"\x80not a pickle")
        assert cache.get(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for i in range(5):
            cache.put(f"{i:064x}", i)
        assert len(cache) == 5
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ResultCache.from_env()
        assert cache is not None and cache.root == tmp_path / "envcache"

    def test_atomic_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "ab" + "0" * 62
        cache.put(key, "v")
        path = cache.path_for(key)
        assert path.parent.name == "ab"
        assert path.suffix == ".pkl"
        assert not list(path.parent.glob("*.tmp"))
        with open(path, "rb") as fh:
            assert pickle.load(fh) == "v"

    def test_concurrent_writers_same_key(self, tmp_path):
        """Two processes racing ``put()`` on one key must leave a valid
        entry (one writer's value, atomically via tempfile+rename) and
        no temp-file litter — the property workers rely on when a
        parallel sweep computes the same cell twice."""
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        barrier = ctx.Barrier(2)
        key = "cc" + "1" * 62
        procs = [
            ctx.Process(
                target=_racing_put,
                args=(str(tmp_path / "c"), key, barrier, worker),
            )
            for worker in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        cache = ResultCache(tmp_path / "c")
        value = cache.get(key)
        assert value in ({"writer": 0, "n": 4096}, {"writer": 1, "n": 4096})
        assert not list(cache.path_for(key).parent.glob("*.tmp"))


class TestBoundedCache:
    """LRU eviction when the store has a ``max_bytes`` cap."""

    def _fill(self, cache, n, payload_floats=256):
        keys = [f"{i:02x}" + "e" * 62 for i in range(n)]
        for i, key in enumerate(keys):
            cache.put(key, np.full(payload_floats, float(i)))
            # Spread access times far apart so LRU order is unambiguous
            # regardless of filesystem timestamp granularity.
            os.utime(cache.path_for(key), ns=(i * 10**9, i * 10**9))
        return keys

    def _entry_size(self, tmp_path):
        probe = ResultCache(tmp_path / "probe")
        key = "aa" + "0" * 62
        probe.put(key, np.full(256, 1.0))
        return probe.path_for(key).stat().st_size

    def test_put_evicts_least_recently_used(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = ResultCache(tmp_path / "c", max_bytes=3 * size + size // 2)
        keys = self._fill(cache, 4)
        # Cap fits 3 entries: the oldest-accessed must be gone.
        assert cache.get(keys[0]) is None
        assert all(cache.get(k) is not None for k in keys[1:])
        assert cache.stats.evictions == 1
        assert len(cache) == 3

    def test_get_refreshes_recency(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = ResultCache(tmp_path / "c", max_bytes=3 * size + size // 2)
        keys = self._fill(cache, 3)
        assert cache.get(keys[0]) is not None  # utime bumps keys[0] to newest
        extra = "ff" + "f" * 62
        cache.put(extra, np.full(256, 9.0))
        # keys[1] is now the least recently used, not keys[0].
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None
        assert cache.get(extra) is not None

    def test_just_put_entry_survives_even_tiny_cap(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_bytes=1)
        key = "ab" + "1" * 62
        cache.put(key, np.arange(1024, dtype=np.float64))
        # The entry alone exceeds the cap but its own put must not evict it.
        assert cache.get(key) is not None

    def test_unbounded_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        self._fill(cache, 6)
        assert len(cache) == 6
        assert cache.stats.evictions == 0

    def test_max_bytes_accepts_suffixes_and_env(self, tmp_path, monkeypatch):
        assert ResultCache(tmp_path / "a", max_bytes="4K").max_bytes == 4096
        assert ResultCache(tmp_path / "b", max_bytes="2M").max_bytes == 2 << 20
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1K")
        assert ResultCache(tmp_path / "d").max_bytes == 1024
        # Explicit argument wins over the environment.
        assert ResultCache(tmp_path / "e", max_bytes=77).max_bytes == 77
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "")
        assert ResultCache(tmp_path / "f").max_bytes is None

    def test_bad_max_bytes_rejected(self, tmp_path):
        from repro.errors import ConfigError

        for bad in ("nope", "-1", "0"):
            with pytest.raises(ConfigError):
                ResultCache(tmp_path / "c", max_bytes=bad)

    def test_eviction_counts_in_stats_dict(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = ResultCache(tmp_path / "c", max_bytes=2 * size + size // 2)
        self._fill(cache, 5)
        assert cache.stats.to_dict()["evictions"] == 3


class TestCBenchIntegration:
    def _sweep(self):
        return CompressorSweep(
            name="sz", mode="abs", sweep={"error_bound": [0.5, 0.25]}
        )

    def test_second_run_hits_and_matches(self, tmp_path):
        field = _field()
        kwargs = dict(fields={"rho": field}, keep_reconstructions=False)
        cold = CBench(cache=tmp_path / "c", **kwargs).run(self._sweep())
        warm = CBench(cache=tmp_path / "c", **kwargs).run(self._sweep())
        assert not any(r.meta.get("cache") == "hit" for r in cold)
        assert all(r.meta.get("cache") == "hit" for r in warm)
        for c, w in zip(cold, warm):
            assert w.compression_ratio == c.compression_ratio
            assert w.metrics == c.metrics
            assert w.parameter == c.parameter

    def test_data_change_invalidates(self, tmp_path):
        field = _field()
        CBench(
            {"rho": field}, keep_reconstructions=False, cache=tmp_path / "c"
        ).run(self._sweep())
        changed = field.copy()
        changed[0, 0, 0] += 1.0
        recs = CBench(
            {"rho": changed}, keep_reconstructions=False, cache=tmp_path / "c"
        ).run(self._sweep())
        assert not any(r.meta.get("cache") == "hit" for r in recs)

    def test_superset_sweep_computes_only_delta(self, tmp_path):
        field = _field()
        CBench(
            {"rho": field}, keep_reconstructions=False, cache=tmp_path / "c"
        ).run(self._sweep())
        wider = CompressorSweep(
            name="sz", mode="abs", sweep={"error_bound": [0.5, 0.25, 0.125]}
        )
        recs = CBench(
            {"rho": field}, keep_reconstructions=False, cache=tmp_path / "c"
        ).run(wider)
        hits = [r.parameter for r in recs if r.meta.get("cache") == "hit"]
        assert sorted(hits) == [0.25, 0.5]

    def test_hit_can_rebuild_reconstruction(self, tmp_path):
        field = _field()
        CBench(
            {"rho": field}, keep_reconstructions=False, cache=tmp_path / "c"
        ).run(self._sweep())
        recs = CBench(
            {"rho": field}, keep_reconstructions=True, cache=tmp_path / "c"
        ).run(self._sweep())
        for r in recs:
            assert r.meta.get("cache") == "hit"
            assert r.reconstruction is not None
            assert np.abs(r.reconstruction - field).max() <= r.parameter * (
                1 + 1e-6
            )

    def test_schema_version_participates_in_key(self):
        digest = "f" * 64
        key = make_key("sz", {}, "abs", "error_bound", 0.1, digest)
        # Recompute with the documented recipe to pin the layout.
        import hashlib
        import json

        doc = {
            "schema": SCHEMA_VERSION,
            "compressor": "sz",
            "options": {},
            "mode": "abs",
            "knob": "error_bound",
            "value": 0.1,
            "data": digest,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"), default=repr)
        assert key == hashlib.sha256(blob.encode()).hexdigest()
