"""Tests for the §V-C mitigation models plus assorted coverage fills."""

import numpy as np
import pytest

from repro.analysis.throughput import mitigation_study
from repro.errors import (
    AnalysisError,
    CompressionError,
    ConfigError,
    CorruptStreamError,
    DataError,
    ReproError,
    ScheduleError,
    UnsupportedModeError,
)
from repro.experiments.runner import render_all, run_all
from repro.gpu import NVLINK2, simulate_compression


class TestMitigations:
    def test_overlap_bounded_by_components(self):
        run = simulate_compression(512**3, 4.0)
        by = run.breakdown()
        assert run.overlapped_total_seconds <= run.total_seconds
        assert run.overlapped_total_seconds >= max(by["kernel"], by["memcpy"])

    def test_overlap_helps_most_when_balanced(self):
        # When memcpy ~ kernel the overlap saving approaches 2x on the
        # variable part.
        run = simulate_compression(512**3, 2.0)
        saving = run.total_seconds / run.overlapped_total_seconds
        assert saving > 1.2

    def test_nvlink_reduces_memcpy(self):
        pcie = simulate_compression(512**3, 8.0)
        nvl = simulate_compression(512**3, 8.0, link=NVLINK2)
        assert nvl.breakdown()["memcpy"] < pcie.breakdown()["memcpy"] / 3

    def test_study_rows_consistent(self):
        rows = mitigation_study(64**3, [2.0, 8.0])
        assert len(rows) == 2
        for r in rows:
            assert r["nvlink_async_gbps"] >= r["pcie_gbps"]

    def test_kernel_throughput_unchanged_by_link(self):
        pcie = simulate_compression(512**3, 4.0)
        nvl = simulate_compression(512**3, 4.0, link=NVLINK2)
        assert pcie.kernel_throughput == nvl.kernel_throughput


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigError, CompressionError, DataError, ScheduleError,
                    AnalysisError):
            assert issubclass(exc, ReproError)
        assert issubclass(CorruptStreamError, CompressionError)
        assert issubclass(UnsupportedModeError, CompressionError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise CorruptStreamError("x")


class TestRunnerRendering:
    def test_render_all_concatenates(self):
        results = run_all("small", only=["table1", "fig9"])
        text = render_all(results)
        assert "table1" in text and "fig9" in text
        assert text.count("==") >= 4  # two headers


class TestCLIHaccPath:
    def test_cli_runs_hacc_dataset(self, tmp_path, capsys):
        import json

        from repro.foresight.cli import main as cli_main

        cfg = {
            "input": {
                "dataset": "hacc",
                "generator": {"particles_per_side": 12, "seed": 1},
                "fields": ["x", "vx"],
            },
            "compressors": [
                {"name": "sz", "mode": "abs",
                 "sweep": {"error_bound": {"x": [0.05], "vx": [5.0]}}},
            ],
            "analyses": ["distortion"],
            "output": {"directory": str(tmp_path / "out")},
        }
        path = tmp_path / "hacc.json"
        path.write_text(json.dumps(cfg))
        assert cli_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "sz" in out


class TestProfileScaling:
    def test_model_experiments_profile_independent(self):
        """Figs. 7-10 are model-driven: identical at every profile."""
        from repro.experiments import fig9

        small = fig9.run("small")
        paper = fig9.run("paper")
        assert small.rows == paper.rows

    def test_profiles_monotone_in_size(self):
        from repro.experiments.base import PROFILES

        sizes = [PROFILES[p].nyx_grid for p in ("small", "default", "paper")]
        assert sizes == sorted(sizes)
