"""Unit tests for repro.util.bits."""

import numpy as np
import pytest

from repro.errors import CorruptStreamError, DataError
from repro.util.bits import (
    BitReader,
    BitWriter,
    pack_fixed_width,
    pack_varlen_codes,
    unpack_fixed_width,
)


class TestPackVarlenCodes:
    def test_empty(self):
        payload, nbits = pack_varlen_codes(np.zeros(0, np.uint64), np.zeros(0, np.int64))
        assert payload == b"" and nbits == 0

    def test_single_bit(self):
        payload, nbits = pack_varlen_codes(np.array([1], np.uint64), np.array([1]))
        assert nbits == 1
        assert payload[0] & 0x80  # MSB-first

    def test_zero_length_codes_emit_nothing(self):
        payload, nbits = pack_varlen_codes(
            np.array([7, 0, 3], np.uint64), np.array([3, 0, 2])
        )
        assert nbits == 5
        # 111 then 11 -> 11111xxx
        assert payload[0] >> 3 == 0b11111

    def test_round_trip_fixed_width(self):
        rng = np.random.default_rng(0)
        for width in (1, 5, 8, 13, 32, 57):
            values = rng.integers(0, 2**min(width, 62), 100).astype(np.uint64)
            values &= (np.uint64(1) << np.uint64(width)) - np.uint64(1)
            payload = pack_fixed_width(values, width)
            out = unpack_fixed_width(payload, width, 100)
            assert np.array_equal(out, values), width

    def test_mixed_lengths_concatenate_msb_first(self):
        payload, nbits = pack_varlen_codes(
            np.array([0b1, 0b01, 0b111], np.uint64), np.array([1, 2, 3])
        )
        assert nbits == 6
        assert payload[0] >> 2 == 0b101111

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataError):
            pack_varlen_codes(np.zeros(3, np.uint64), np.zeros(2, np.int64))

    def test_length_out_of_range_raises(self):
        with pytest.raises(DataError):
            pack_varlen_codes(np.zeros(1, np.uint64), np.array([58]))
        with pytest.raises(DataError):
            pack_varlen_codes(np.zeros(1, np.uint64), np.array([-1]))


class TestUnpackFixedWidth:
    def test_too_short_payload_raises(self):
        with pytest.raises(CorruptStreamError):
            unpack_fixed_width(b"\x00", 8, 10)

    def test_width_zero_returns_zeros(self):
        assert np.array_equal(unpack_fixed_width(b"", 0, 5), np.zeros(5))

    def test_invalid_width_raises(self):
        with pytest.raises(DataError):
            unpack_fixed_width(b"\x00" * 100, 60, 1)


class TestBitWriterReader:
    def test_sequential_round_trip(self):
        w = BitWriter()
        values = [(5, 3), (0, 1), (1023, 10), (1, 1), (2**40 - 1, 41)]
        for v, n in values:
            w.write(v, n)
        r = BitReader(w.getvalue(), w.bit_length)
        for v, n in values:
            assert r.read(n) == v
        assert r.remaining == 0

    def test_value_too_large_raises(self):
        w = BitWriter()
        with pytest.raises(DataError):
            w.write(8, 3)

    def test_negative_value_raises(self):
        with pytest.raises(DataError):
            BitWriter().write(-1, 4)

    def test_underflow_raises(self):
        w = BitWriter()
        w.write(3, 2)
        r = BitReader(w.getvalue(), 2)
        r.read(2)
        with pytest.raises(CorruptStreamError):
            r.read(1)

    def test_read_array_matches_scalar_reads(self):
        w = BitWriter()
        vals = [13, 7, 0, 31, 16]
        for v in vals:
            w.write(v, 5)
        r1 = BitReader(w.getvalue(), w.bit_length)
        arr = r1.read_array(5, 5)
        assert arr.tolist() == vals

    def test_seek(self):
        w = BitWriter()
        w.write(0b1010, 4)
        r = BitReader(w.getvalue(), 4)
        r.read(4)
        r.seek(0)
        assert r.read(4) == 0b1010
        with pytest.raises(CorruptStreamError):
            r.seek(5)

    def test_declared_length_exceeding_payload_raises(self):
        with pytest.raises(CorruptStreamError):
            BitReader(b"\x00", 9)

    def test_write_array(self):
        w = BitWriter()
        w.write_array(np.array([1, 2, 3]), 4)
        r = BitReader(w.getvalue(), w.bit_length)
        assert [r.read(4) for _ in range(3)] == [1, 2, 3]
