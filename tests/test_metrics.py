"""Tests for the general metrics (Section III, Metrics 1-2)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.metrics import (
    bitrate,
    compression_ratio,
    evaluate_distortion,
    max_abs_error,
    max_pointwise_relative_error,
    mean_relative_error,
    mse,
    nrmse,
    psnr,
    ssim3d,
)


class TestErrorMetrics:
    def test_identical_arrays(self):
        a = np.linspace(0, 1, 100)
        assert mse(a, a) == 0.0
        assert psnr(a, a) == float("inf")
        assert max_abs_error(a, a) == 0.0
        assert nrmse(a, a) == 0.0

    def test_known_mse(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert mse(a, b) == 1.0

    def test_psnr_formula(self):
        a = np.array([0.0, 10.0])  # range 10
        b = a + 0.1
        expected = 10 * np.log10(10**2 / 0.01)
        assert psnr(a, b) == pytest.approx(expected)

    def test_psnr_6db_per_bit_scaling(self):
        # Halving the error adds ~6.02 dB.
        a = np.linspace(0, 1, 1000)
        rng = np.random.default_rng(0)
        noise = rng.uniform(-1, 1, 1000)
        p1 = psnr(a, a + 0.01 * noise)
        p2 = psnr(a, a + 0.005 * noise)
        assert p2 - p1 == pytest.approx(6.02, abs=0.1)

    def test_max_pw_rel_ignores_zeros(self):
        a = np.array([0.0, 2.0])
        b = np.array([5.0, 2.2])
        assert max_pointwise_relative_error(a, b) == pytest.approx(0.1)

    def test_mre_normalized_by_range(self):
        a = np.array([0.0, 100.0])
        b = a + 1.0
        assert mean_relative_error(a, b) == pytest.approx(0.01)

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataError):
            mse(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(DataError):
            psnr(np.zeros(0), np.zeros(0))

    def test_evaluate_distortion_keys(self):
        a = np.linspace(0, 1, 50)
        d = evaluate_distortion(a, a + 1e-3)
        assert set(d) == {"mse", "psnr", "mre", "nrmse", "max_abs_error", "max_pw_rel_error"}
        assert all(np.isfinite(v) for v in d.values())


class TestRatioMetrics:
    def test_paper_identity(self):
        # bitrate 4 on fp32 == ratio 8 (paper Section V-A).
        assert bitrate(500, 1000) == 4.0
        assert compression_ratio(4000, 500) == 8.0

    def test_validation(self):
        with pytest.raises(DataError):
            compression_ratio(0, 10)
        with pytest.raises(DataError):
            bitrate(10, 0)


class TestSSIM:
    def test_identical_is_one(self, smooth_field3d):
        assert ssim3d(smooth_field3d, smooth_field3d) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self, smooth_field3d):
        rng = np.random.default_rng(0)
        noisy = smooth_field3d + rng.standard_normal(smooth_field3d.shape).astype(np.float32)
        s = ssim3d(smooth_field3d, noisy)
        assert 0.0 < s < 0.9

    def test_monotone_in_noise(self, smooth_field3d):
        rng = np.random.default_rng(1)
        noise = rng.standard_normal(smooth_field3d.shape).astype(np.float32)
        s1 = ssim3d(smooth_field3d, smooth_field3d + 0.01 * noise)
        s2 = ssim3d(smooth_field3d, smooth_field3d + 0.1 * noise)
        assert s1 > s2

    def test_validation(self, smooth_field3d):
        with pytest.raises(DataError):
            ssim3d(smooth_field3d, smooth_field3d[:16])
        with pytest.raises(DataError):
            ssim3d(smooth_field3d[0], smooth_field3d[0])
        with pytest.raises(DataError):
            ssim3d(smooth_field3d, smooth_field3d, window=4)

    def test_constant_fields(self):
        a = np.full((8, 8, 8), 5.0)
        assert ssim3d(a, a) == 1.0
