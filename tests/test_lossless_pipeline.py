"""Unit tests for composable lossless pipelines."""

import pytest

from repro.errors import ConfigError, CorruptStreamError
from repro.lossless.pipeline import LosslessPipeline, register_stage


class TestPipeline:
    def test_identity_round_trip(self):
        pipe = LosslessPipeline([])
        assert pipe.decompress(pipe.compress(b"data")) == b"data"

    def test_lzss_round_trip(self):
        pipe = LosslessPipeline(["lzss"])
        data = b"xyz" * 1000
        assert pipe.decompress(pipe.compress(data)) == data

    def test_stream_is_self_describing(self):
        # A pipeline-agnostic decoder can unwind any stream.
        data = b"hello world " * 50
        stream = LosslessPipeline(["lzss"]).compress(data)
        assert LosslessPipeline([]).decompress(stream) == data

    def test_unknown_stage_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            LosslessPipeline(["zstd"])

    def test_bad_magic_raises(self):
        with pytest.raises(CorruptStreamError):
            LosslessPipeline().decompress(b"NOPE....")

    def test_custom_stage_registration(self):
        register_stage("xor42-test", lambda b: bytes(x ^ 42 for x in b),
                       lambda b: bytes(x ^ 42 for x in b))
        pipe = LosslessPipeline(["xor42-test", "lzss"])
        data = b"custom stage" * 20
        assert pipe.decompress(pipe.compress(data)) == data

    def test_duplicate_registration_raises(self):
        register_stage("dup-test", lambda b: b, lambda b: b)
        with pytest.raises(ConfigError):
            register_stage("dup-test", lambda b: b, lambda b: b)
