"""The shared jittered-backoff policy (repro.util.backoff).

One helper serves three retry paths — client connect, client busy-wait,
and the router's membership re-probe — so these tests pin the contract
they all rely on: exponential growth, the cap, the server hint floor,
and jitter staying inside its band.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.backoff import backoff_delay


class _FixedRng:
    """rng stub returning a constant from uniform() — jitter pinned."""

    def __init__(self, value: float) -> None:
        self.value = value

    def uniform(self, lo: float, hi: float) -> float:
        assert lo <= self.value <= hi
        return self.value


class TestExponentialShape:
    def test_doubles_per_attempt_until_cap(self):
        rng = _FixedRng(1.0)
        delays = [
            backoff_delay(a, base_s=0.1, cap_s=100.0, jitter=(1.0, 1.0),
                          rng=rng)
            for a in range(5)
        ]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.6])

    def test_cap_bounds_the_exponent(self):
        rng = _FixedRng(1.0)
        capped = backoff_delay(50, base_s=0.1, cap_s=2.0, jitter=(1.0, 1.0),
                               rng=rng)
        assert capped == pytest.approx(2.0)

    def test_huge_attempt_does_not_overflow(self):
        # 2**10_000 is a bignum; the cap must short-circuit before the
        # float conversion, not after.
        delay = backoff_delay(10_000, base_s=0.5, cap_s=3.0)
        assert 0.0 < delay <= 4.5  # cap * max default jitter

    def test_hint_is_a_floor_not_a_ceiling(self):
        rng = _FixedRng(1.0)
        # Early attempt: the server's retry_after_ms hint dominates.
        early = backoff_delay(0, base_s=0.01, cap_s=10.0, hint_s=0.5,
                              jitter=(1.0, 1.0), rng=rng)
        assert early == pytest.approx(0.5)
        # Late attempt: the exponential term has outgrown the hint.
        late = backoff_delay(8, base_s=0.01, cap_s=10.0, hint_s=0.5,
                             jitter=(1.0, 1.0), rng=rng)
        assert late == pytest.approx(2.56)


class TestJitter:
    @given(
        attempt=st.integers(0, 20),
        base=st.floats(1e-3, 1.0),
        cap=st.floats(1e-3, 60.0),
        hint=st.floats(0.0, 5.0),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_delay_stays_in_the_jitter_band(self, attempt, base, cap, hint, seed):
        rng = random.Random(seed)
        lo, hi = 0.5, 1.5
        deterministic = max(hint, min(cap, base * 2**attempt))
        delay = backoff_delay(attempt, base_s=base, cap_s=cap, hint_s=hint,
                              jitter=(lo, hi), rng=rng)
        assert deterministic * lo <= delay <= deterministic * hi

    def test_seeded_rng_reproduces(self):
        a = [backoff_delay(i, base_s=0.1, cap_s=2.0, rng=random.Random(7))
             for i in range(5)]
        b = [backoff_delay(i, base_s=0.1, cap_s=2.0, rng=random.Random(7))
             for i in range(5)]
        assert a == b

    def test_decorrelates_two_clients(self):
        # The whole point of jitter: two fleets with different rngs do
        # not sleep in lockstep.
        a = [backoff_delay(i, base_s=0.1, cap_s=2.0, rng=random.Random(1))
             for i in range(8)]
        b = [backoff_delay(i, base_s=0.1, cap_s=2.0, rng=random.Random(2))
             for i in range(8)]
        assert a != b
