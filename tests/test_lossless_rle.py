"""Unit tests for run-length coding."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.lossless.rle import rle_decode, rle_encode


class TestRLE:
    def test_empty(self):
        v, l = rle_encode(np.array([], dtype=np.int64))
        assert v.size == 0 and l.size == 0
        assert rle_decode(v, l).size == 0

    def test_single_run(self):
        v, l = rle_encode(np.full(100, 7))
        assert v.tolist() == [7] and l.tolist() == [100]

    def test_alternating_worst_case(self):
        data = np.array([0, 1] * 50)
        v, l = rle_encode(data)
        assert v.size == 100 and np.all(l == 1)
        assert np.array_equal(rle_decode(v, l), data)

    def test_round_trip_random(self):
        rng = np.random.default_rng(0)
        data = rng.choice([0, 0, 0, 1, 5], size=10000)
        v, l = rle_encode(data)
        assert np.array_equal(rle_decode(v, l), data)
        assert l.sum() == data.size

    def test_float_values_supported(self):
        data = np.array([1.5, 1.5, 2.5])
        v, l = rle_encode(data)
        assert np.array_equal(rle_decode(v, l), data)

    def test_decode_validation(self):
        with pytest.raises(DataError):
            rle_decode(np.array([1]), np.array([1, 2]))
        with pytest.raises(DataError):
            rle_decode(np.array([1]), np.array([0]))
