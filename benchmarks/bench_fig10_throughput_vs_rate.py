"""Fig. 10: throughput vs bitrate (kernel / overall / baseline)."""

from conftest import RESULTS_DIR, write_result
from repro.analysis.throughput import throughput_vs_rate_study
from repro.experiments import fig10
from repro.foresight.visualization import render_ascii_plot, save_series_csv


def test_fig10_rows(benchmark, profile):
    result = benchmark.pedantic(fig10.run, args=(profile,), rounds=1, iterations=1)
    write_result("fig10", result.render())
    rates = [r["bitrate"] for r in result.rows]
    series = {
        name: [r[name] for r in result.rows]
        for name in (
            "compress_kernel_gbps",
            "compress_overall_gbps",
            "decompress_kernel_gbps",
            "decompress_overall_gbps",
            "baseline_gbps",
        )
    }
    save_series_csv(RESULTS_DIR / "fig10_throughput.csv", rates, series, x_name="bitrate")
    plot = render_ascii_plot(rates, series, title="Fig 10: throughput vs bitrate (GB/s)")
    (RESULTS_DIR / "fig10_plot.txt").write_text(plot + "\n")
    overall = series["compress_overall_gbps"]
    assert overall == sorted(overall, reverse=True)


def test_fig10_study_kernel(benchmark):
    rows = benchmark(throughput_vs_rate_study, 512**3, [1, 2, 4, 8, 16])
    assert len(rows) == 5
