"""Fig. 5: Nyx pk-ratio panels; benchmarks the P(k) estimator."""

import numpy as np

from conftest import write_result
from repro.cosmo.power_spectrum import power_spectrum
from repro.experiments import fig5
from repro.foresight.visualization import save_series_csv


def test_fig5_panels(benchmark, profile):
    result = benchmark.pedantic(fig5.run, args=(profile,), rounds=1, iterations=1)
    write_result("fig5", result.render(
        ["compressor", "parameter", "panel", "max_pk_deviation", "acceptable"]
    ))
    ratio_series = {
        k: v for k, v in result.series.items() if k != "k"
    }
    save_series_csv(
        "benchmarks/results/fig5_pk_ratios.csv",
        result.series["k"],
        ratio_series,
        x_name="k",
    )
    assert any("best-fit" in n for n in result.notes)


def test_fig5_power_spectrum_kernel(benchmark, nyx):
    field = nyx.fields["dark_matter_density"].astype(np.float64)
    spec = benchmark(power_spectrum, field, nyx.box_size, 12)
    assert np.all(np.isfinite(spec.pk))
