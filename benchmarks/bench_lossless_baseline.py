"""Lossless baseline (Section II-A): FPC on cosmology fields.

"Lossless compressors such as FPZIP and FPC can provide only compression
ratios typically lower than 2:1 for dense scientific data because of the
significant randomness of the ending mantissa bits."
"""

import numpy as np

from conftest import write_result
from repro.compressors import SZCompressor
from repro.foresight.visualization import format_table
from repro.lossless.fpc import fpc_compress


def test_lossless_vs_lossy(benchmark, nyx, hacc):
    fields = {
        "nyx.dark_matter_density": nyx.fields["dark_matter_density"],
        "nyx.temperature": nyx.fields["temperature"],
        "hacc.vx": hacc.fields["vx"],
    }

    def study():
        sz = SZCompressor()
        rows = []
        for name, field in fields.items():
            lossless = field.nbytes / len(fpc_compress(field))
            eb = float(np.std(field)) * 1e-2
            lossy = sz.compress(field, error_bound=eb).compression_ratio
            rows.append(
                {
                    "field": name,
                    "fpc_lossless_CR": lossless,
                    "sz_lossy_CR_at_1pct_sigma": lossy,
                    "lossy_advantage": lossy / lossless,
                }
            )
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    write_result(
        "lossless_baseline",
        "== lossless (FPC) vs lossy (SZ) compression ratios ==\n"
        + format_table(rows)
        + "\npaper Section II-A: lossless 'typically lower than 2:1'",
    )
    assert all(r["fpc_lossless_CR"] < 2.0 for r in rows)
    assert all(r["lossy_advantage"] > 2.0 for r in rows)


def test_fpc_compression_kernel(benchmark, nyx):
    field = nyx.fields["velocity_x"].ravel()[:16384]
    payload = benchmark(fpc_compress, field)
    assert len(payload) > 0
