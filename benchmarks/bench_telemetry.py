"""Telemetry overhead guard: instrumentation must be free when off.

The observability layer promises that with the default
:class:`~repro.telemetry.NullTelemetry` active, every instrumentation
site costs one method call and nothing else.  This benchmark turns that
promise into a regression gate:

* **site cost** — microbenchmark the null paths (``span`` enter/exit,
  ``count``, ``observe``): nanoseconds per site;
* **site count** — run one SZ compress+decompress under a counting
  ``NullTelemetry`` subclass and count how many sites the hot path
  actually hits (spans, counters, histograms — everything);
* **request time** — time the same compress+decompress in normal
  NullTelemetry mode.

Acceptance: ``sites x site_cost`` — the *total* cost the disabled
instrumentation can possibly add — must stay under **5%** of the
measured request time.  The guard fails if someone fattens the null
path (e.g. builds attr dicts before the enabled check) or sprays sites
into a per-element loop; both are how "zero-cost when off" erodes.

Also reported (not asserted): the service client's fast-path gate —
the ``get_telemetry()`` + ``trace_context.current()`` check every
untraced request pays — in nanoseconds.

CI smoke: ``python benchmarks/bench_telemetry.py --quick``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:  # standalone `python benchmarks/bench_telemetry.py`
    sys.path.insert(0, SRC)

from repro.compressors.registry import get_compressor
from repro.telemetry import NullTelemetry, get_telemetry, set_telemetry
from repro.telemetry import context as trace_context

GRID = 32
COMPRESSOR = "sz"
ERROR_BOUND = 1e-3
OVERHEAD_CEILING = 0.05


def _field() -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.normal(size=(GRID, GRID, GRID)).astype(np.float32)


class _CountingNull(NullTelemetry):
    """NullTelemetry that tallies how many sites the hot path hits."""

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def span(self, name, **attrs):
        self.calls += 1
        return super().span(name, **attrs)

    def trace(self, name=None, **attrs):
        self.calls += 1
        return super().trace(name, **attrs)

    def count(self, name, amount=1.0):
        self.calls += 1

    def set_gauge(self, name, value):
        self.calls += 1

    def observe(self, name, value, bounds=()):
        self.calls += 1

    def observe_many(self, name, values, bounds=()):
        self.calls += 1


def _null_site_cost_s(iters: int) -> tuple[float, float]:
    """(span enter/exit, counter update) seconds per site, telemetry off."""
    tm = NullTelemetry()
    t0 = time.perf_counter()
    for _ in range(iters):
        with tm.span("bench.site", bytes=4096):
            pass
    span_s = (time.perf_counter() - t0) / iters
    t0 = time.perf_counter()
    for _ in range(iters):
        tm.count("bench.counter", 1)
    count_s = (time.perf_counter() - t0) / iters
    return span_s, count_s


def _client_gate_cost_s(iters: int) -> float:
    """The untraced service client's per-request fast-path check."""
    t0 = time.perf_counter()
    for _ in range(iters):
        if get_telemetry().enabled or trace_context.current() is not None:
            raise AssertionError("benchmark requires disabled telemetry")
    return (time.perf_counter() - t0) / iters


def _count_sites(field: np.ndarray) -> int:
    """Instrumentation sites one compress+decompress actually executes."""
    shim = _CountingNull()
    previous = set_telemetry(shim)
    try:
        compressor = get_compressor(COMPRESSOR)
        buf = compressor.compress(field, mode="abs", error_bound=ERROR_BOUND)
        compressor.decompress(buf)
    finally:
        set_telemetry(previous)
    return shim.calls


def _request_time_s(field: np.ndarray, reps: int) -> float:
    """Median compress+decompress seconds in normal NullTelemetry mode."""
    compressor = get_compressor(COMPRESSOR)
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        buf = compressor.compress(field, mode="abs", error_bound=ERROR_BOUND)
        compressor.decompress(buf)
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


def _report(reps: int, micro_iters: int) -> tuple[list[str], float]:
    assert not get_telemetry().enabled, "run with telemetry disabled"
    field = _field()
    span_s, count_s = _null_site_cost_s(micro_iters)
    site_s = max(span_s, count_s)  # charge every site the dearer kind
    gate_s = _client_gate_cost_s(micro_iters)
    sites = _count_sites(field)
    request_s = _request_time_s(field, reps)
    worst_case_s = sites * site_s
    overhead = worst_case_s / request_s
    lines = [
        f"telemetry overhead guard: {COMPRESSOR.upper()} "
        f"compress+decompress of a {GRID}^3 f4 field, telemetry OFF",
        f"null site cost: span {span_s * 1e9:7.1f} ns   "
        f"counter {count_s * 1e9:7.1f} ns   (charging {site_s * 1e9:.1f} ns/site)",
        f"client fast-path gate: {gate_s * 1e9:7.1f} ns/request",
        f"sites hit per request: {sites}",
        f"request time: {request_s * 1e3:8.2f} ms (median of {reps})",
        f"worst-case disabled-instrumentation cost: "
        f"{worst_case_s * 1e6:8.1f} us = {overhead * 100:.3f}% of the request",
        f"ceiling: {OVERHEAD_CEILING * 100:.0f}%",
    ]
    return lines, overhead


def test_null_telemetry_overhead():
    lines, overhead = _report(reps=9, micro_iters=200_000)
    write_result("telemetry", "\n".join(lines))
    assert overhead <= OVERHEAD_CEILING, (
        f"disabled telemetry could cost {overhead * 100:.2f}% of a request "
        f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)"
    )


try:  # pytest collection (conftest lives beside this file)
    from conftest import write_result
except ImportError:  # standalone --quick
    def write_result(experiment_id: str, text: str) -> None:
        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / f"{experiment_id}.txt").write_text(text + "\n")


def _quick() -> None:
    lines, overhead = _report(reps=3, micro_iters=50_000)
    print("\n".join(lines))
    assert overhead <= OVERHEAD_CEILING, (
        f"disabled telemetry could cost {overhead * 100:.2f}% of a request"
    )


def main(argv: list[str]) -> None:
    if argv[:1] == ["--quick"]:
        _quick()
    else:
        raise SystemExit("usage: bench_telemetry.py --quick")


if __name__ == "__main__":
    main(sys.argv[1:])
