"""Ablation: SZ predictor choice (Lorenzo vs regression vs adaptive).

The paper credits GPU-SZ's Nyx advantage to "the adaptive predictor
(Lorenzo or regression-based predictor)".  This ablation forces each
predictor and verifies the adaptive choice dominates both."""

import numpy as np

from conftest import write_result
from repro.compressors.sz import SZCompressor
from repro.foresight.visualization import format_table

PREDICTORS = ("lorenzo", "regression", "adaptive")


def test_ablation_predictor(benchmark, nyx):
    rows = []

    def sweep():
        out = []
        for field_name in ("dark_matter_density", "temperature", "velocity_x"):
            field = nyx.fields[field_name]
            eb = float(field.std()) * 1e-2
            for predictor in PREDICTORS:
                sz = SZCompressor(predictor=predictor)
                buf = sz.compress(field, error_bound=eb)
                out.append(
                    {
                        "field": field_name,
                        "predictor": predictor,
                        "compression_ratio": buf.compression_ratio,
                        "bitrate": buf.bitrate,
                    }
                )
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "ablation_predictor",
        "== ablation: SZ predictor (fixed eb = 0.01 sigma per field) ==\n"
        + format_table(rows, ["field", "predictor", "compression_ratio", "bitrate"]),
    )
    # Adaptive must never lose badly to either pure strategy.
    for field_name in ("dark_matter_density", "temperature", "velocity_x"):
        by = {
            r["predictor"]: r["compression_ratio"]
            for r in rows
            if r["field"] == field_name
        }
        assert by["adaptive"] >= 0.95 * max(by["lorenzo"], by["regression"])


def test_ablation_predictor_roundtrip_all(benchmark, nyx):
    """Forced predictors still honor the error bound."""
    field = nyx.fields["temperature"]
    eb = float(field.std()) * 1e-2

    def roundtrip_both():
        errs = []
        for predictor in ("lorenzo", "regression"):
            sz = SZCompressor(predictor=predictor)
            recon = sz.decompress(sz.compress(field, error_bound=eb))
            errs.append(np.abs(recon.astype(np.float64) - field).max())
        return errs

    errs = benchmark.pedantic(roundtrip_both, rounds=1, iterations=1)
    tol = float(np.spacing(np.abs(field).max()))
    assert all(e <= eb + tol for e in errs)
