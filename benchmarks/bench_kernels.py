"""Per-kernel backend throughput: scalar vs numpy vs native.

Times the three native-tier target kernels (Lorenzo dual-quant, the
canonical Huffman codec, the ZFP bit-plane coder) plus variable-length
bit packing on every available backend tier and records MB/s per
(kernel, backend) into the ``BENCH_fastpath.json`` trajectory at the
repository root — one entry per run, stamped with commit and date, so
perf history is trackable across PRs.

Run as a script for ad-hoc measurements::

    python benchmarks/bench_kernels.py --backend native --quick
    python benchmarks/bench_kernels.py            # all available tiers

or under pytest (``pytest benchmarks/bench_kernels.py``), where the
acceptance bar applies: with the numba flavor available the native tier
must be >= 1.5x the numpy tier single-core on at least two of the three
target kernels.  Without numba (cc flavor, or no native tier at all)
the bench still runs via fallback and records the degradation instead
of failing — hosts without a toolchain must not go red.
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro.lossless.huffman import HuffmanCodec
from repro.util.blocks import block_partition

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_fastpath.json"

#: Kernels the native tier was built for (the acceptance set).
TARGET_KERNELS = ("sz.lorenzo", "huffman.codec", "zfp.coder")

REPEATS = 3


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or None if out.returncode == 0 else None
    except OSError:
        return None


def append_trajectory(entry: dict) -> None:
    """Append one run record to the ``BENCH_fastpath.json`` trajectory."""
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    entry = {
        "commit": _git_commit(),
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        **entry,
    }
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def _field(quick: bool) -> np.ndarray:
    side = 32 if quick else 64
    rng = np.random.default_rng(9)
    x, y, z = np.meshgrid(*[np.linspace(0, 4, side)] * 3, indexing="ij")
    return (
        np.sin(x) * np.cos(y) + 0.1 * z**2
        + 0.05 * rng.standard_normal(x.shape)
    ).astype(np.float32)


def _best_mbps(nbytes: int, fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return nbytes / best / 1e6


def measure(backend: str, quick: bool = False) -> dict[str, float]:
    """MB/s for every timed kernel on one backend tier.

    The tier is pinned with an explicit ``backend=`` / ``use`` request;
    if the tier is unavailable the registry degrades, so the resolved
    tier (``kernels.active()``) — not the requested one — is what the
    caller must record.
    """
    field = _field(quick)
    out: dict[str, float] = {}

    blocks, _, _ = block_partition(field, (6, 6, 6), mode="edge")
    eb = float(field.std()) * 1e-3
    out["sz.lorenzo"] = _best_mbps(
        blocks.nbytes, lambda: kernels.call("sz.lorenzo", blocks, eb, backend=backend)
    )

    residual = kernels.call("sz.lorenzo", blocks, eb, backend="numpy")
    out["sz.lorenzo_inverse"] = _best_mbps(
        residual.nbytes,
        lambda: kernels.call("sz.lorenzo_inverse", residual, backend=backend),
    )

    rng = np.random.default_rng(4)
    n = 200_000 if quick else 2_000_000
    symbols = np.minimum(rng.geometric(0.04, size=n) - 1, 1023).astype(np.int64)
    codec = HuffmanCodec()
    with kernels.use(backend):
        codec.decode(codec.encode(symbols, 1024))  # warm the tier
        out["huffman.codec"] = _best_mbps(
            symbols.nbytes,
            lambda: codec.decode(codec.encode(symbols, 1024)),
        )

    size, planes = 64, 52
    nblocks = blocks.shape[0] // 4
    u = rng.integers(0, 1 << 52, size=(nblocks, size), dtype=np.uint64)
    words = kernels.call("zfp.transpose", u, planes, backend="numpy")
    nonzero = np.ones(nblocks, dtype=bool)
    e = rng.integers(-30, 30, size=nblocks).astype(np.int64)
    budgets = np.full(nblocks, 1 << 20, dtype=np.int64)
    kmins = np.full(nblocks, 20, dtype=np.int64)

    def _zfp_roundtrip():
        body, nbits, offsets, _ = kernels.call(
            "zfp.encode", words, nonzero, e, size, planes, budgets, kmins,
            maxbits=0, backend=backend,
        )
        bits = np.unpackbits(
            np.frombuffer(body, dtype=np.uint8), count=nbits, bitorder="big"
        )
        padded = np.concatenate([bits, np.zeros(128, dtype=np.uint8)])
        kernels.call(
            "zfp.decode", padded, offsets.astype(np.int64), nonzero, planes,
            size, budgets, kmins, backend=backend,
        )

    out["zfp.coder"] = _best_mbps(u.nbytes, _zfp_roundtrip)

    lengths = rng.integers(1, 24, size=n // 4).astype(np.int64)
    codes = rng.integers(0, 1 << 24, size=n // 4, dtype=np.uint64) & (
        (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)
    )
    out["pack.varlen"] = _best_mbps(
        codes.nbytes,
        lambda: kernels.call("pack.varlen", codes, lengths, backend=backend),
    )
    return out


def _native_state() -> tuple[bool, str | None, str | None]:
    """(available, flavor, unavailable_reason) for the native tier."""
    from repro.kernels import native

    try:
        native.probe()
    except Exception as exc:
        return False, None, f"{type(exc).__name__}: {exc}"
    return True, native.flavor(), None


def run(backends: list[str] | None = None, quick: bool = False) -> dict:
    available, flavor, reason = _native_state()
    if backends is None:
        backends = ["scalar", "numpy"] + (["native"] if available else [])
    results = {b: measure(b, quick=quick) for b in backends}
    entry: dict = {
        "source": "bench_kernels",
        "quick": quick,
        "native_flavor": flavor,
        "degraded": not available,
        "mbps": results,
    }
    if reason:
        entry["native_unavailable"] = reason
    if "numpy" in results and "native" in results and available:
        entry["speedup_native_vs_numpy"] = {
            k: round(results["native"][k] / results["numpy"][k], 3)
            for k in results["numpy"]
            if results["numpy"][k] > 0
        }
    append_trajectory(entry)
    return entry


def test_native_tier_speedup():
    """Acceptance: numba-native >= 1.5x numpy on >= 2 of 3 target kernels.

    On hosts without numba the run is recorded (flavor, degradation) but
    never fails — the fallback path *working* is the tested property.
    """
    entry = run(quick=True)
    if entry["degraded"]:
        assert "native_unavailable" in entry  # degradation is recorded
        return
    speedups = entry.get("speedup_native_vs_numpy", {})
    fast = [k for k in TARGET_KERNELS if speedups.get(k, 0.0) >= 1.5]
    if entry["native_flavor"] != "numba":
        # cc flavor: record, don't gate — the acceptance bar is numba's.
        return
    assert len(fast) >= 2, (
        f"native tier too slow: >=1.5x on {fast} only (need 2 of "
        f"{TARGET_KERNELS}); speedups={speedups}"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend", action="append", default=None, metavar="TIER",
        choices=("scalar", "numpy", "native"),
        help="tier(s) to time (repeatable; default: every available tier)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller inputs (32^3 field, 200k symbols)")
    args = parser.parse_args()
    entry = run(args.backend, quick=args.quick)
    print(json.dumps(entry, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
