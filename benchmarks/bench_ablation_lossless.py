"""Ablation: SZ lossless backend stage and Huffman decode chunking.

SZ's final dictionary-coder stage (zstd in the original; LZSS here)
mostly matters on highly redundant symbol streams; the Huffman chunk
size trades decode parallelism (smaller chunks -> more independent
decode units, as in cuSZ's GPU decoder) against offset-table overhead.
"""

import numpy as np

from conftest import write_result
from repro.compressors.sz import SZCompressor
from repro.foresight.visualization import format_table
from repro.lossless.huffman import HuffmanCodec


def test_ablation_lossless_stage(benchmark, nyx):
    field = nyx.fields["dark_matter_density"]
    eb = float(field.std()) * 1e-1  # loose bound -> redundant symbols

    def sweep():
        rows = []
        for stages, label in ((None, "huffman only"), (["lzss"], "huffman + lzss")):
            sz = SZCompressor(lossless=stages)
            buf = sz.compress(field, error_bound=eb)
            rows.append({"backend": label, "compression_ratio": buf.compression_ratio})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "ablation_lossless",
        "== ablation: SZ lossless backend ==\n" + format_table(rows),
    )
    assert rows[1]["compression_ratio"] >= 0.9 * rows[0]["compression_ratio"]


def test_ablation_huffman_chunk_overhead(benchmark):
    rng = np.random.default_rng(0)
    symbols = rng.poisson(2.0, 100_000).clip(0, 1023)

    def sweep():
        rows = []
        for chunk in (256, 1024, 4096, 16384):
            codec = HuffmanCodec(chunk_size=chunk)
            enc = codec.encode(symbols, 1024)
            rows.append({"chunk_size": chunk, "bytes": len(enc.payload)})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "ablation_huffman_chunk",
        "== ablation: Huffman decode-chunk size (offset-table overhead) ==\n"
        + format_table(rows),
    )
    sizes = [r["bytes"] for r in rows]
    assert sizes == sorted(sizes, reverse=True)  # bigger chunks, less overhead


def test_ablation_huffman_decode_chunked(benchmark):
    rng = np.random.default_rng(1)
    symbols = rng.poisson(2.0, 200_000).clip(0, 1023)
    codec = HuffmanCodec(chunk_size=2048)
    enc = codec.encode(symbols, 1024)
    out = benchmark(codec.decode, enc)
    assert np.array_equal(out, symbols)
