"""Fig. 6: halo-finder comparison; benchmarks the FoF kernel."""

from conftest import write_result
from repro.cosmo.fof import friends_of_friends
from repro.cosmo.halos import build_halo_catalog
from repro.experiments import fig6


def test_fig6_rows(benchmark, profile):
    result = benchmark.pedantic(fig6.run, args=(profile,), rounds=1, iterations=1)
    write_result("fig6", result.render(
        ["compressor", "parameter", "bitrate", "compression_ratio",
         "max_ratio_deviation", "halos_original", "halos_reconstructed"]
    ))
    assert any("4.25x" in n for n in result.notes)


def test_fig6_fof_kernel(benchmark, hacc):
    n_side = round(hacc.n_particles ** (1 / 3))
    ll = 0.2 * hacc.box_size / n_side
    res = benchmark(friends_of_friends, hacc.positions, hacc.box_size, ll)
    assert res.n_groups > 0


def test_fig6_catalog_reduction(benchmark, hacc):
    n_side = round(hacc.n_particles ** (1 / 3))
    ll = 0.2 * hacc.box_size / n_side
    fof = friends_of_friends(hacc.positions, hacc.box_size, ll)
    cat = benchmark(
        build_halo_catalog, hacc.positions, fof, hacc.box_size, 1.0, 10
    )
    assert cat.n_halos > 0
