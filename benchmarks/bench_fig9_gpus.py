"""Fig. 9: cuZFP kernel throughput across Table I GPUs."""

from conftest import write_result
from repro.analysis.throughput import gpu_comparison_study
from repro.experiments import fig9


def test_fig9_rows(benchmark, profile):
    result = benchmark.pedantic(fig9.run, args=(profile,), rounds=1, iterations=1)
    write_result("fig9", result.render(
        ["gpu", "architecture", "compress_kernel_gbps", "decompress_kernel_gbps"]
    ))
    rows = {r["gpu"]: r for r in result.rows}
    assert (
        rows["Nvidia Tesla V100"]["compress_kernel_gbps"]
        > rows["Nvidia Tesla K80"]["compress_kernel_gbps"]
    )


def test_fig9_study_kernel(benchmark):
    rows = benchmark(gpu_comparison_study, 512**3, 4.0)
    assert len(rows) == 7
