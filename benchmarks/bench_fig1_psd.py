"""Fig. 1: PSD of original vs PW_REL-reconstructed Nyx baryon density.

Benchmarks the GPU-SZ PW_REL path (log transform + ABS compression) on
the showcase field; writes the deviation table and PSD series.
"""

import numpy as np

from conftest import write_result
from repro.compressors.sz import GPUSZ
from repro.experiments import fig1
from repro.foresight.visualization import save_series_csv


def test_fig1_rows(benchmark, profile):
    result = benchmark.pedantic(fig1.run, args=(profile,), rounds=1, iterations=1)
    write_result("fig1", result.render())
    save_series_csv(
        "benchmarks/results/fig1_psd.csv",
        result.series["k"],
        {k: v for k, v in result.series.items() if k != "k"},
        x_name="k",
    )
    dev = {r["pw_rel"]: r["max_pk_deviation"] for r in result.rows}
    assert dev[0.25] > dev[0.1] > dev[0.01]


def test_fig1_visualizations(benchmark, nyx):
    """The visual half of Fig. 1: grayscale density-slice renders of the
    original and both reconstructions (open the PGMs in any viewer)."""
    from conftest import RESULTS_DIR
    from repro.foresight.imaging import render_slice, write_pgm

    sz = GPUSZ()
    field = nyx.fields["baryon_density"]

    def render_all():
        vmin, vmax = float(field[field > 0].min()), float(field.max())
        paths = [
            write_pgm(RESULTS_DIR / "fig1_original.pgm",
                      render_slice(field, vmin=vmin, vmax=vmax))
        ]
        for pwrel in (0.1, 0.25):
            recon = sz.decompress(sz.compress_pwrel_via_log(field, pwrel))
            paths.append(
                write_pgm(
                    RESULTS_DIR / f"fig1_pwrel_{pwrel}.pgm",
                    render_slice(recon, vmin=vmin, vmax=vmax),
                )
            )
        return paths

    paths = benchmark.pedantic(render_all, rounds=1, iterations=1)
    assert all(p.exists() for p in paths)


def test_fig1_pwrel_compression(benchmark, nyx):
    sz = GPUSZ()
    field = nyx.fields["baryon_density"]
    buf = benchmark(sz.compress_pwrel_via_log, field, 0.1)
    assert buf.compression_ratio > 1


def test_fig1_pwrel_decompression(benchmark, nyx):
    sz = GPUSZ()
    buf = sz.compress_pwrel_via_log(nyx.fields["baryon_density"], 0.1)
    recon = benchmark(sz.decompress, buf)
    assert recon.shape == nyx.fields["baryon_density"].shape
    nz = nyx.fields["baryon_density"] != 0
    rel = np.abs(
        (recon[nz] - nyx.fields["baryon_density"][nz])
        / nyx.fields["baryon_density"][nz]
    )
    assert rel.max() <= 0.1 * (1 + 1e-4)
