"""Table I: GPU catalog + the kernel-time model over all devices."""

from conftest import write_result
from repro.experiments import table1
from repro.gpu.device import GPU_CATALOG
from repro.gpu.kernel import kernel_time


def test_table1_rows(benchmark, profile):
    result = benchmark(table1.run, profile)
    write_result("table1", result.render())
    assert len(result.rows) == 7


def test_table1_kernel_model_eval(benchmark):
    def evaluate_catalog():
        return [
            kernel_time(g, "cuzfp", "compress", 512**3, 4.0) for g in GPU_CATALOG
        ]

    times = benchmark(evaluate_catalog)
    assert all(t > 0 for t in times)
