"""Temporal-vs-independent compression on a live in-situ stream.

Two measurements, one acceptance gate:

* **Ratio gain** (the gate): a correlated Nyx-like snapshot series
  (:func:`repro.cosmo.timeseries.make_nyx_series`) is compressed twice
  at the same absolute bound — independently per snapshot (the
  pre-time-axis workflow) and through the
  :class:`~repro.compressors.temporal.TemporalCompressor` delta stage.
  Consecutive outputs differ only by growth-factor evolution, so the
  residuals the temporal stage hands the inner codec are far more
  compressible than the fields themselves.  Acceptance floor:
  **temporal >= 1.3x the independent compression ratio**, enforced in
  both full and ``--quick`` runs.

* **Sustained bursty daemon traffic**: a stateful SESSION stream
  against a resident :class:`~repro.service.server.ServiceThread`,
  driven the way a simulation drives it — a *steady* phase (one step
  per cadence tick) followed by a *burst* phase (several steps
  back-to-back, the "every N-th timestep dumps all fields" pattern).
  Per-step client-observed latency is reported per phase, and every
  reply's bytes are checked identical to the library path — the daemon
  must never trade fidelity for cadence.

Each run appends one entry to the ``BENCH_insitu.json`` trajectory
(commit, date, ratios, per-phase latency) so the gain is tracked over
the repo's history.  CI smoke: ``python benchmarks/bench_insitu.py
--quick`` (smaller grid/series, both paths, same ratio floor), run with
and without ``REPRO_NO_SHM`` — see ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.compressors import TemporalCompressor, get_compressor
from repro.cosmo.timeseries import make_nyx_series

#: Acceptance floor: temporal ratio over independent ratio at one bound.
RATIO_GAIN_FLOOR = 1.3

#: Full-run shape (chosen so the floor holds with margin; see
#: docs/INSITU.md for the keyframe-cadence trade-off).
FULL = dict(grid=24, steps=16, keyframe_every=16, error_bound=1e-2)

#: CI smoke shape — smaller, same floor.
QUICK = dict(grid=20, steps=16, keyframe_every=16, error_bound=1e-2)

#: Daemon-phase shape: steady cadence then a burst.
STEADY_SLEEP_S = 0.01
BURST_EVERY = 4

FIELD = "baryon_density"
SEED = 3

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_insitu.json"


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    rank = max(
        0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1)))
    )
    return ordered[rank]


def _series(grid: int, steps: int) -> list[np.ndarray]:
    series = make_nyx_series(grid_size=grid, n_snapshots=steps, seed=SEED)
    return [s.fields[FIELD] for s in series.snapshots]


def _ratio_gain(
    snaps: list[np.ndarray], keyframe_every: int, error_bound: float
) -> dict:
    """Temporal vs independent bytes over one correlated series."""
    codec = TemporalCompressor(inner="sz", keyframe_every=keyframe_every)
    indep = get_compressor("sz")
    temporal = independent = raw = 0
    for snap in snaps:
        temporal += len(
            codec.compress(snap, mode="abs", error_bound=error_bound).payload
        )
        independent += len(
            indep.compress(snap, mode="abs", error_bound=error_bound).payload
        )
        raw += snap.nbytes
    return {
        "temporal_ratio": raw / temporal,
        "independent_ratio": raw / independent,
        "ratio_gain": independent / temporal,
    }


def _daemon_traffic(
    snaps: list[np.ndarray], keyframe_every: int, error_bound: float
) -> dict:
    """Steady-cadence + burst SESSION traffic against a live daemon."""
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceThread

    reference = TemporalCompressor(inner="sz", keyframe_every=keyframe_every)
    steady_ms: list[float] = []
    burst_ms: list[float] = []
    with ServiceThread() as service:
        with ServiceClient(port=service.port) as client:
            with client.session_open(
                "sz", mode="abs", value=error_bound,
                keyframe_every=keyframe_every,
            ) as session:
                for i, snap in enumerate(snaps):
                    burst = (i % BURST_EVERY) == BURST_EVERY - 1
                    if not burst:
                        time.sleep(STEADY_SLEEP_S)
                    t0 = time.perf_counter()
                    _, stream = session.step(snap)
                    (burst_ms if burst else steady_ms).append(
                        (time.perf_counter() - t0) * 1e3
                    )
                    expected = reference.compress(
                        snap, mode="abs", error_bound=error_bound
                    ).payload
                    assert stream == expected, (
                        f"daemon session bytes diverged from the library "
                        f"path at step {i}"
                    )
    out = {"steps": len(snaps), "byte_identical": True}
    for phase, values in (("steady", steady_ms), ("burst", burst_ms)):
        if values:
            out[f"{phase}_p50_ms"] = _percentile(values, 50)
            out[f"{phase}_p95_ms"] = _percentile(values, 95)
            out[f"{phase}_steps"] = len(values)
    return out


def _append_trajectory(entry: dict) -> None:
    import datetime

    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=TRAJECTORY.parent,
            capture_output=True, text=True, timeout=10,
        )
        commit = out.stdout.strip() or None if out.returncode == 0 else None
    except OSError:
        commit = None
    history.append({
        "commit": commit,
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        **entry,
    })
    TRAJECTORY.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


try:  # pytest collection (conftest lives beside this file)
    from conftest import write_result
except ImportError:  # standalone --quick
    def write_result(experiment_id: str, text: str) -> None:
        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / f"{experiment_id}.txt").write_text(text + "\n")


def _run(quick: bool) -> None:
    shape = QUICK if quick else FULL
    snaps = _series(shape["grid"], shape["steps"])
    ratios = _ratio_gain(
        snaps, shape["keyframe_every"], shape["error_bound"]
    )
    daemon = _daemon_traffic(
        snaps, shape["keyframe_every"], shape["error_bound"]
    )
    lines = [
        f"in-situ temporal compression "
        f"({shape['grid']}^3 x {shape['steps']} steps, "
        f"abs={shape['error_bound']:g}, K={shape['keyframe_every']})",
        f"  temporal ratio    {ratios['temporal_ratio']:8.2f}x",
        f"  independent ratio {ratios['independent_ratio']:8.2f}x",
        f"  gain              {ratios['ratio_gain']:8.2f}x "
        f"(floor {RATIO_GAIN_FLOOR:.1f}x)",
        "daemon SESSION stream (steady cadence + bursts): "
        f"{daemon['steps']} steps, byte-identical to library",
    ]
    for phase in ("steady", "burst"):
        if f"{phase}_p50_ms" in daemon:
            lines.append(
                f"  {phase:<6} p50 {daemon[f'{phase}_p50_ms']:7.2f} ms   "
                f"p95 {daemon[f'{phase}_p95_ms']:7.2f} ms   "
                f"(n={daemon[f'{phase}_steps']})"
            )
    text = "\n".join(lines)
    print(text)
    write_result("bench_insitu", text)
    _append_trajectory({"quick": quick, **shape, **ratios, "daemon": daemon})
    assert ratios["ratio_gain"] >= RATIO_GAIN_FLOOR, (
        f"temporal gain {ratios['ratio_gain']:.2f}x is below the "
        f"{RATIO_GAIN_FLOOR:.1f}x floor"
    )


def main(argv: list[str]) -> None:
    usage = "usage: bench_insitu.py [--quick]"
    if argv == ["--quick"]:
        _run(quick=True)
    elif not argv:
        _run(quick=False)
    else:
        raise SystemExit(usage)


if __name__ == "__main__":
    main(sys.argv[1:])
