"""Ablation: decimation vs error-bounded compression at equal storage.

Reproduces the paper's Section I motivation: decimation ("stores one
snapshot every other time step") loses far more post-analysis quality
than compressing every snapshot at the same storage budget."""

from conftest import write_result
from repro.analysis.decimation_study import decimation_vs_compression
from repro.cosmo.timeseries import make_nyx_series
from repro.foresight.visualization import format_table


def test_ablation_decimation(benchmark):
    series = make_nyx_series(grid_size=32, n_snapshots=6)
    rows = benchmark.pedantic(
        decimation_vs_compression, args=(series,),
        kwargs={"keep_everies": (2, 3)}, rounds=1, iterations=1,
    )
    write_result(
        "ablation_decimation",
        "== ablation: decimation vs SZ at matched storage (worst snapshot) ==\n"
        + format_table(rows)
        + "\npaper Section I: error-bounded compression achieves 'much higher "
        "compression ratios, given the same distortion' than decimation",
    )
    # Pair up: SZ must beat decimation at every storage budget.
    for i in range(0, len(rows), 2):
        dec, sz = rows[i], rows[i + 1]
        assert sz["worst_psnr_db"] > dec["worst_psnr_db"] + 10
        assert sz["worst_pk_deviation"] < dec["worst_pk_deviation"]
