"""Fig. 8: CPU vs GPU throughput; also measures this Python codec's own
wall-clock throughput for context (labelled, not a GPU claim)."""

import numpy as np

from conftest import write_result
from repro.compressors.sz import SZCompressor
from repro.experiments import fig8


def test_fig8_rows(benchmark, profile):
    result = benchmark.pedantic(fig8.run, args=(profile,), rounds=1, iterations=1)
    # Append the cuSZ projection the paper anticipates ("expected to be
    # significantly improved after the memory-layout optimization") as an
    # explicitly labelled extra section.
    from repro.gpu.runtime import simulate_compression, simulate_decompression

    n = 512**3
    proj_c = simulate_compression(n, 3.0, codec="cusz")
    proj_d = simulate_decompression(n, 3.0, codec="cusz")
    projection = (
        f"\nprojected cuSZ (not in the paper's Fig. 8; §IV-B-1 projection): "
        f"kernel {proj_c.kernel_throughput / 1e9:.0f} / "
        f"{proj_d.kernel_throughput / 1e9:.0f} GB/s (comp/decomp)"
    )
    write_result(
        "fig8",
        result.render(["platform", "compress_gbps", "decompress_gbps"]) + projection,
    )
    na = [r for r in result.rows if r.get("decompress_gbps") is None]
    assert len(na) == 1  # the ZFP-OpenMP N/A cell


def test_fig8_python_sz_throughput(benchmark, nyx):
    """Wall-clock of this numpy SZ implementation (reference point only)."""
    sz = SZCompressor()
    field = nyx.fields["velocity_x"]
    eb = float(np.std(field)) * 1e-2
    buf = benchmark(sz.compress, field, error_bound=eb)
    # report as extra info: MB/s of this pure-Python codec
    assert buf.original_nbytes > 0
