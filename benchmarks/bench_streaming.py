"""Streaming engine speedup + bounded peak memory vs the whole-array engine.

Headline measurement: an 8-cell ZFP+SZ sweep over a 30 MB 1-D HACC
position field (200^3 particles — the paper's out-of-core case is
particle data, and a 1-D field keeps whole-array and chunked cells on
the *same* codec path so the comparison is pure engine), run both ways
with ``workers=2``:

* **baseline**: the PR 2 engine — whole-array cells, pickling transport
  (``REPRO_NO_SHM=1`` ships the full field to every worker task);
* **streaming**: chunked cells (``chunk_budget=1M``) over the zero-copy
  shared-memory transport.

Two effects stack: workers attach the published field instead of
unpickling a private copy, and the chunked kernels run over
cache-resident working sets — at 30 MB the whole-array ZFP bit-plane
matrices alone are ~15x the field and fall out of every cache level
(measured per-cell at rate=8: ZFP 52 s -> 15 s, SZ 5.6 s -> 3.4 s).  The
acceptance bar is a >= 2x end-to-end speedup, best of ``TRIALS`` runs
per path.  A third (untimed) streaming run with ``REPRO_NO_SHM=1`` pins
transport invariance: identical records either way.

The memory benchmark runs three fresh subprocesses (``--memprobe``; a
fork would inherit the parent's VmHWM high-water mark) over a GenericIO
file holding a field >= 4x the chunk budget:

* **unit**: one chunk compressed + decompressed + one full metrics
  re-block — the irreducible per-chunk working set ``W``;
* **full**: the whole field streamed through mmap chunks
  (``drop_pages=True``) — must stay under ``2 * W``, i.e. peak RSS is
  independent of field size;
* **whole**: the in-memory whole-array path, for scale (measured ~8x
  the streaming peak at these sizes).

Run standalone for the CI smoke: ``python benchmarks/bench_streaming.py
--quick`` (small field, 2-cell sweep, equality + memory assertions, no
speedup floor — tiny inputs are all fixed overhead).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:  # standalone `python benchmarks/bench_streaming.py`
    sys.path.insert(0, SRC)

from repro.foresight.cbench import CBench
from repro.foresight.config import CompressorSweep

TRIALS = 1  # each path takes minutes; the measured margin is ~2x the floor
MEMORY_SLACK = 8 << 20  # allocator + interpreter jitter on top of 2*W


def _field_hacc_200() -> np.ndarray:
    """A 30 MB 1-D particle field regardless of REPRO_PROFILE.

    The bar is fixed, and it must be a size where whole-array codec
    working sets (~10-20x the field) genuinely thrash the cache.
    """
    from repro.cosmo.hacc import make_hacc_dataset

    return make_hacc_dataset(particles_per_side=200).fields["x"]


def _sz_sweep(field: np.ndarray, n: int = 4) -> CompressorSweep:
    std = float(field.std())
    ratios = (2e-3, 1e-3, 7e-4, 5e-4)[:n]
    return CompressorSweep(
        name="sz",
        mode="abs",
        sweep={"error_bound": [round(std * r, 6) for r in ratios]},
    )


def _sweep_once(
    field: np.ndarray,
    *,
    chunk_budget: int | None,
    no_shm: bool,
    workers: int = 2,
    cells: int = 4,
) -> list:
    if no_shm:
        os.environ["REPRO_NO_SHM"] = "1"
    else:
        os.environ.pop("REPRO_NO_SHM", None)
    try:
        bench = CBench(
            {"x": field},
            keep_reconstructions=False,
            chunk_budget=chunk_budget,
        )
        zfp = CompressorSweep(
            name="zfp",
            mode="fixed_rate",
            sweep={"rate": [4.0, 8.0, 12.0, 16.0][:cells]},
        )
        return bench.run_all([zfp, _sz_sweep(field, cells)], workers=workers)
    finally:
        os.environ.pop("REPRO_NO_SHM", None)


def _rows(records: list) -> list[tuple]:
    return [
        (r.compressor, r.field, r.parameter, r.compression_ratio, r.bitrate,
         tuple(sorted(r.metrics.items())))
        for r in records
    ]


def _best_of(fn, trials: int = TRIALS) -> tuple[float, list]:
    best, records = float("inf"), None
    for _ in range(trials):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best, records = dt, out
    return best, records


# --------------------------------------------------------------------------
# speedup
# --------------------------------------------------------------------------


def test_streaming_speedup(benchmark):
    field = _field_hacc_200()
    budget = 1 << 20

    baseline_seconds, baseline_records = _best_of(
        lambda: _sweep_once(field, chunk_budget=None, no_shm=True)
    )

    t0 = time.perf_counter()
    benchmark.pedantic(
        _sweep_once,
        args=(field,),
        kwargs=dict(chunk_budget=budget, no_shm=False),
        rounds=1,
        iterations=1,
    )
    first = time.perf_counter() - t0
    rest, fast_records = _best_of(
        lambda: _sweep_once(field, chunk_budget=budget, no_shm=False),
        TRIALS - 1,
    )
    fast_seconds = min(first, rest)
    if fast_records is None:  # TRIALS == 1: only the pedantic round ran
        fast_records = _sweep_once(field, chunk_budget=budget, no_shm=False)

    # Transport invariance: the pickling fallback must reproduce the shm
    # streaming records bit-for-bit (untimed).
    fallback_records = _sweep_once(field, chunk_budget=budget, no_shm=True)
    assert _rows(fallback_records) == _rows(fast_records)
    assert len(fast_records) == len(baseline_records) == 8

    speedup = baseline_seconds / fast_seconds
    lines = [
        "streaming engine: 8-cell ZFP+SZ sweep of a 30 MB HACC position field",
        f"(workers=2, best of {TRIALS} trials per path)",
        f"baseline (whole-array cells, pickling transport): {baseline_seconds:8.3f} s",
        f"streaming (1M chunks, shared-memory transport):   {fast_seconds:8.3f} s",
        f"speedup: {speedup:.2f}x (acceptance floor: 2x)",
    ]
    write_result("streaming", "\n".join(lines))
    assert speedup >= 2.0, f"streaming engine only {speedup:.2f}x faster"


# --------------------------------------------------------------------------
# bounded peak memory
# --------------------------------------------------------------------------


def _write_probe_file(path: str, elements: int) -> None:
    from repro.io.genericio import write_genericio

    rng = np.random.default_rng(0)
    t = np.linspace(0.0, 60.0, elements, dtype=np.float32)
    field = (np.sin(t) * 100.0 + rng.standard_normal(elements).astype(np.float32))
    write_genericio(path, {"rho": field.astype(np.float32)})


def _memprobe(mode: str, path: str, budget: int) -> dict:
    """Run one probe in a fresh interpreter (fork would inherit VmHWM)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    # The streaming-vs-whole-array margin below is a contract about the
    # numpy engine's traversal (its whole-array bit-plane temporaries);
    # leaner kernel tiers (native) shrink the whole-array peak and would
    # make the ratio flap with host toolchain availability.
    env["REPRO_BACKEND"] = "numpy"
    env.pop("REPRO_SCALAR_CODECS", None)
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--memprobe", mode, path,
         str(budget)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if out.returncode != 0:
        raise RuntimeError(f"memprobe {mode} failed:\n{out.stderr}")
    return json.loads(out.stdout.strip().splitlines()[-1])


def _run_memprobe(mode: str, path: str, budget: int) -> None:
    from repro.compressors.streaming import ChunkedCompressor
    from repro.compressors.sz.szcompressor import SZCompressor
    from repro.io.genericio import GenericIOReader
    from repro.metrics.streaming import BLOCK_ELEMENTS, StreamingDistortion
    from repro.telemetry.process import peak_rss_bytes

    reader = GenericIOReader(path, verify=False)
    chunk_elements = budget // reader.dtype("rho").itemsize
    total = reader.count("rho")
    base = peak_rss_bytes()

    if mode == "unit":
        # The irreducible working set: one chunk through the codec plus
        # one full metrics re-block (the accumulator's fixed block size).
        sz = SZCompressor()
        chunk = np.array(next(reader.iter_chunks("rho", chunk_elements)))
        buf = sz.compress(chunk, error_bound=0.5, mode="abs")
        part = sz.decompress(buf)
        acc = StreamingDistortion()
        acc.update(chunk, part)
        block = np.zeros(BLOCK_ELEMENTS, dtype=np.float32)
        acc.update(block, block)
        acc.result()
    elif mode == "full":
        chunked = ChunkedCompressor(SZCompressor(), chunk_elements)
        buf = chunked.compress_chunks(
            reader.iter_chunks("rho", chunk_elements, drop_pages=True),
            (total,), reader.dtype("rho"), error_bound=0.5, mode="abs",
        )
        acc = StreamingDistortion()
        originals = reader.iter_chunks("rho", chunk_elements, drop_pages=True)
        for part in chunked.iter_decompressed(buf):
            acc.update(next(originals), part)
        acc.result()
    elif mode == "whole":
        data = np.array(reader.view("rho"))
        sz = SZCompressor()
        buf = sz.compress(data, error_bound=0.5, mode="abs")
        recon = sz.decompress(buf)
        acc = StreamingDistortion()
        acc.update(data, recon)
        acc.result()
    else:
        raise SystemExit(f"unknown memprobe mode {mode!r}")

    print(json.dumps({"mode": mode, "delta": peak_rss_bytes() - base,
                      "field_bytes": total * 4, "budget": budget}))


def _assert_bounded_memory(
    elements: int, budget: int, whole_ratio: int = 4
) -> list[str]:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "probe.gio")
        _write_probe_file(path, elements)
        unit = _memprobe("unit", path, budget)
        full = _memprobe("full", path, budget)
        whole = _memprobe("whole", path, budget)

    field_bytes = full["field_bytes"]
    assert field_bytes >= 4 * budget, "probe field must dwarf the chunk budget"
    lines = [
        f"field {field_bytes >> 20} MB, chunk budget {budget >> 10} KB "
        f"(field = {field_bytes // budget}x budget); peak-RSS deltas:",
        f"unit  (one chunk + one metrics block): {unit['delta'] >> 20:5d} MB",
        f"full  (streamed, mmap + drop_pages):   {full['delta'] >> 20:5d} MB",
        f"whole (in-memory whole-array path):    {whole['delta'] >> 20:5d} MB",
    ]
    # The contract: streaming peak RSS is bounded by the per-chunk
    # working set, not by the field — 2x unit covers double buffering.
    assert full["delta"] <= 2 * unit["delta"] + MEMORY_SLACK, (
        f"streaming peak {full['delta']} exceeds 2x the per-chunk working "
        f"set {unit['delta']} (+{MEMORY_SLACK} slack)"
    )
    assert full["delta"] * whole_ratio <= whole["delta"], (
        f"streaming peak {full['delta']} is not well under the whole-array "
        f"peak {whole['delta']}"
    )
    return lines


def test_streaming_bounded_memory():
    lines = _assert_bounded_memory(elements=4 << 20, budget=1 << 20)
    write_result("streaming_memory", "\n".join(lines))


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------

try:  # pytest collection (conftest lives beside this file)
    from conftest import write_result
except ImportError:  # standalone --quick / --memprobe
    def write_result(experiment_id: str, text: str) -> None:
        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / f"{experiment_id}.txt").write_text(text + "\n")


def _quick() -> None:
    """CI smoke: tiny sizes, equality + memory assertions, no speedup bar."""
    from repro.experiments.base import hacc_for

    field = hacc_for("small").fields["x"]
    budget = 16 << 10
    t0 = time.perf_counter()
    base = _sweep_once(field, chunk_budget=None, no_shm=True, cells=1)
    fast = _sweep_once(field, chunk_budget=budget, no_shm=False, cells=1)
    fallback = _sweep_once(field, chunk_budget=budget, no_shm=True, cells=1)
    assert len(base) == len(fast) == 2
    assert _rows(fast) == _rows(fallback), "shm vs pickling records diverged"
    sweep_dt = time.perf_counter() - t0

    t0 = time.perf_counter()
    # The 4x whole-vs-streaming gap is a full-size property; on a 2 MB
    # smoke field fixed overheads compress it, so only require 2x here.
    lines = _assert_bounded_memory(
        elements=512 << 10, budget=128 << 10, whole_ratio=2
    )
    mem_dt = time.perf_counter() - t0
    print(f"quick sweep matrix ok ({sweep_dt:.1f}s); bounded memory ok "
          f"({mem_dt:.1f}s):")
    print("\n".join("  " + line for line in lines))


def main(argv: list[str]) -> None:
    if argv[:1] == ["--memprobe"]:
        _run_memprobe(argv[1], argv[2], int(argv[3]))
    elif argv[:1] == ["--quick"]:
        _quick()
    else:
        raise SystemExit("usage: bench_streaming.py --quick | "
                         "--memprobe MODE PATH BUDGET")


if __name__ == "__main__":
    main(sys.argv[1:])
