"""Section V-D guideline end to end (see repro.experiments.guideline)."""

from conftest import write_result
from repro.experiments import guideline


def test_guideline_end_to_end(benchmark, profile):
    result = benchmark.pedantic(guideline.run, args=(profile,), rounds=1, iterations=1)
    write_result("guideline", result.render(
        ["dataset", "field", "error_bound", "compression_ratio",
         "bitrate", "acceptable"]
    ))
    assert any("best fit" in n for n in result.notes)
    assert any("holds" in n for n in result.notes)
