"""Fig. 7: cuZFP time breakdown on Nyx (modeled); benchmarks the runtime
simulation itself and couples it to a real compressed bitrate."""

from conftest import write_result
from repro.compressors.zfp import ZFPCompressor
from repro.experiments import fig7
from repro.gpu.runtime import simulate_compression


def test_fig7_rows(benchmark, profile):
    result = benchmark.pedantic(fig7.run, args=(profile,), rounds=1, iterations=1)
    write_result("fig7", result.render(
        ["direction", "bitrate", "init_ms", "kernel_ms", "memcpy_ms",
         "free_ms", "total_ms", "baseline_ms"]
    ))
    comp = [r for r in result.rows if r["direction"] == "compress"]
    assert all(r["total_ms"] < r["baseline_ms"] for r in comp)


def test_fig7_simulation_kernel(benchmark):
    run = benchmark(simulate_compression, 512**3, 4.0)
    assert run.total_seconds > 0


def test_fig7_model_uses_real_bitrate(benchmark, nyx):
    """Couple the model to an actual compression of the Nyx field."""
    zfp = ZFPCompressor()

    def compress_then_model():
        buf = zfp.compress(nyx.fields["temperature"], rate=4.0)
        return simulate_compression(
            buf.original_nbytes // 4, buf.bitrate
        )

    run = benchmark(compress_then_model)
    assert run.compressed_bytes > 0
