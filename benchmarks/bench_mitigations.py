"""Section V-C mitigations: NVLink and asynchronous overlap.

"the overall compression and decompression throughput can be further
improved by using a faster CPU-GPU interconnect or asynchronous GPU-CPU
communication"
"""

from conftest import write_result
from repro.analysis.throughput import mitigation_study
from repro.foresight.visualization import format_table


def test_mitigations(benchmark):
    rows = benchmark.pedantic(
        mitigation_study, args=(512**3, (1.0, 2.0, 4.0, 8.0, 16.0)),
        rounds=1, iterations=1,
    )
    write_result(
        "mitigations",
        "== Section V-C mitigations: overall compression throughput (GB/s) ==\n"
        + format_table(rows),
    )
    for r in rows:
        assert r["nvlink_gbps"] > r["pcie_gbps"]
        assert r["pcie_async_gbps"] >= r["pcie_gbps"]
        assert r["nvlink_async_gbps"] >= max(r["pcie_async_gbps"], r["nvlink_gbps"])
