"""Daemon throughput vs per-call subprocess dispatch.

Headline measurement: 64 small-field COMPRESS requests (a 16^3 Nyx
baryon-density field, SZ at one absolute bound), served two ways:

* **baseline**: the pre-service workflow — every request pays a fresh
  ``python -m repro.foresight`` process (interpreter + numpy import +
  dataset + one-cell sweep), run sequentially as an in situ caller
  without the daemon would;
* **daemon**: one resident :class:`repro.service.server.ServiceThread`,
  hammered by 8 concurrent :class:`~repro.service.client.ServiceClient`
  threads; same-configuration arrivals coalesce into batches inside the
  server.

The daemon amortizes exactly what the baseline pays per request —
process start-up and codec warm-up — which is the operational point of
compression-as-a-service for in situ use.  Acceptance floor: **>= 3x**
request throughput.  Every daemon reply is additionally checked
byte-identical to a direct ``get_compressor(...).compress(...)`` call,
so the speed never comes at the cost of drift.

Reported per path: wall seconds, requests/s, and client-observed
p50/p99 latency (the daemon also reports its server-side percentiles
from STATS).

Run standalone for the CI smoke: ``python benchmarks/bench_service.py
--quick`` (8 requests, same 3x floor — subprocess start-up dominates at
any request count, so the floor holds even on the smallest run).

**Cluster saturation** (the multi-node fabric, ``docs/CLUSTER.md``):
an offered-load sweep against a :class:`repro.service.cluster.ClusterThread`
fleet of 1 vs N locally spawned shard daemons, requests spread over
distinct fields so consistent-hash placement uses the whole ring.
Acceptance: at saturating load the N-shard fleet must beat the 1-shard
fleet's throughput.  **Availability**: a steady request stream during
which one spawned shard is SIGKILLed mid-run — every accepted request
must still be answered (the router fails the orphaned forwards over to
the surviving shard), i.e. zero client-visible losses.

CI smoke for the fleet: ``python benchmarks/bench_service.py --quick
--shards 2``.

**Data plane** (``--data-plane``): the zero-copy transport matrix.  A
round trip through the ``store`` passthrough codec moves the payload
out and an equal-sized reply back with essentially zero compute, so
the sweep isolates transport cost: {inline TCP, shm handoff} × {1
in-flight (blocking client), N in-flight (pipelined PooledClient)}
across payload sizes.  Acceptance floor: shm+pipelined must reach
**>= 2x** the inline blocking round-trip throughput on >= 8 MiB
same-host payloads, every reply byte-identical either way.  Each run
appends to the ``BENCH_dataplane.json`` trajectory.  CI smoke:
``--data-plane --quick`` (small payloads, bit-exactness enforced, no
throughput floor — CI machines are too noisy to gate on a ratio).
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:  # standalone `python benchmarks/bench_service.py`
    sys.path.insert(0, SRC)

from repro.compressors.registry import get_compressor
from repro.cosmo.nyx import make_nyx_dataset
from repro.service import (
    ClusterThread,
    PooledClient,
    ServiceClient,
    ServiceThread,
)

GRID = 16
COMPRESSOR = "sz"
ERROR_BOUND = 0.5
CLIENTS = 8
SPEEDUP_FLOOR = 3.0

#: Saturation sweep: bigger fields (32^3, ~10 ms of SZ per request) so
#: shard CPU — not router overhead — is what saturates.
SAT_GRID = 32
#: Distinct fields cycled across requests: distinct routing keys, so
#: placement spreads the load over the whole ring.
SAT_FIELDS = 16
#: N-shard fleet must beat 1 shard by at least this at saturating load.
CLUSTER_FLOOR = 1.1
#: Shard scaling needs hardware parallelism: on a single-core host two
#: compressing processes time-slice one core, so the scaling acceptance
#: is waived (the sweep still runs and the fabric-overhead floor below
#: still applies — routing must never *halve* throughput).
MULTI_CORE = (os.cpu_count() or 1) >= 2
OVERHEAD_FLOOR = 0.5


def _field() -> np.ndarray:
    return make_nyx_dataset(grid_size=GRID).fields["baryon_density"]


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


# --------------------------------------------------------------------------
# baseline: one foresight process per request
# --------------------------------------------------------------------------


def _baseline_config(out_dir: str) -> dict:
    return {
        "input": {
            "dataset": "nyx",
            "generator": {"grid_size": GRID},
            "fields": ["baryon_density"],
        },
        "compressors": [{
            "name": COMPRESSOR,
            "mode": "abs",
            "sweep": {"error_bound": [ERROR_BOUND]},
        }],
        "analyses": [],
        "output": {"directory": out_dir},
    }


def _run_baseline(requests: int) -> tuple[float, list[float]]:
    """Sequential per-request subprocesses; returns (seconds, latencies)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    latencies: list[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        cfg_path = os.path.join(tmp, "one-cell.json")
        t0 = time.perf_counter()
        for i in range(requests):
            out_dir = os.path.join(tmp, f"run-{i}")
            Path(cfg_path).write_text(json.dumps(_baseline_config(out_dir)))
            r0 = time.perf_counter()
            proc = subprocess.run(
                [sys.executable, "-m", "repro.foresight", cfg_path,
                 "--quiet", "--workers", "1"],
                capture_output=True,
                text=True,
                env=env,
                timeout=600,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"baseline request {i} failed:\n{proc.stderr}"
                )
            latencies.append(time.perf_counter() - r0)
        return time.perf_counter() - t0, latencies


# --------------------------------------------------------------------------
# daemon: 8 concurrent clients against one resident service
# --------------------------------------------------------------------------


def _run_daemon(
    requests: int, field: np.ndarray, expected_payload: bytes
) -> tuple[float, list[float], dict]:
    """Concurrent clients; returns (seconds, latencies, server stats)."""
    per_client, remainder = divmod(requests, CLIENTS)
    counts = [per_client + (1 if c < remainder else 0) for c in range(CLIENTS)]
    latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()

    with ServiceThread(max_pending=max(64, requests)) as st:
        def worker(cid: int) -> None:
            mine: list[float] = []
            with ServiceClient(port=st.port, seed=cid) as client:
                for i in range(counts[cid]):
                    r0 = time.perf_counter()
                    buf = client.compress(
                        field, COMPRESSOR, mode="abs", value=ERROR_BOUND
                    )
                    mine.append(time.perf_counter() - r0)
                    if buf.payload != expected_payload:
                        with lock:
                            failures.append(f"client {cid} request {i}")
            with lock:
                latencies.extend(mine)

        threads = [
            threading.Thread(target=worker, args=(c,)) for c in range(CLIENTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(600)
        elapsed = time.perf_counter() - t0
        with ServiceClient(port=st.port) as client:
            stats = client.stats()

    if failures:
        raise AssertionError(
            f"daemon replies diverged from the direct library call: {failures}"
        )
    return elapsed, latencies, stats


# --------------------------------------------------------------------------
# cluster: saturation sweep and kill-a-shard availability
# --------------------------------------------------------------------------


def _sat_fields() -> list[np.ndarray]:
    return [
        make_nyx_dataset(grid_size=SAT_GRID, seed=seed)
        .fields["baryon_density"]
        for seed in range(SAT_FIELDS)
    ]


def _run_cluster_load(
    port: int,
    clients: int,
    requests: int,
    fields: list[np.ndarray],
    on_request_done=None,
) -> tuple[float, list[float], list[str]]:
    """Closed-loop load: ``clients`` threads hammer the router at ``port``.

    Returns (wall seconds, per-request latencies, failure descriptions).
    """
    per_client, remainder = divmod(requests, clients)
    counts = [per_client + (1 if c < remainder else 0) for c in range(clients)]
    latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()

    def worker(cid: int) -> None:
        mine: list[float] = []
        with ServiceClient(port=port, seed=cid,
                           request_timeout_s=120.0) as client:
            for i in range(counts[cid]):
                field = fields[(cid + i * clients) % len(fields)]
                r0 = time.perf_counter()
                try:
                    buf = client.compress(
                        field, COMPRESSOR, mode="abs", value=ERROR_BOUND
                    )
                    if buf.compressed_nbytes <= 0:
                        raise RuntimeError("empty reply payload")
                except Exception as exc:  # noqa: BLE001 - count every loss
                    with lock:
                        failures.append(f"client {cid} request {i}: {exc}")
                else:
                    mine.append(time.perf_counter() - r0)
                if on_request_done is not None:
                    on_request_done()
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, args=(c,)) for c in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(600)
    return time.perf_counter() - t0, latencies, failures


def _saturation(
    shard_counts: tuple[int, ...],
    loads: tuple[int, ...],
    requests: int,
) -> tuple[list[str], dict[int, float]]:
    """Offered-load sweep per fleet size; returns (report, peak rps)."""
    fields = _sat_fields()
    lines = [
        f"cluster saturation: {requests} {SAT_GRID}^3 f4 "
        f"{COMPRESSOR.upper()} requests per load level, "
        f"{SAT_FIELDS} distinct fields (consistent-hash spread)",
    ]
    peaks: dict[int, float] = {}
    for n_shards in shard_counts:
        with ClusterThread(spawn=n_shards,
                           shard_options={"max_pending": 256}) as cluster:
            # Warm every shard (codec paths, connection pool) so the
            # timed levels measure steady state, not first-touch costs.
            _, _, warm_failures = _run_cluster_load(
                cluster.port, 4, 2 * SAT_FIELDS, fields
            )
            if warm_failures:
                raise AssertionError(f"warmup failed: {warm_failures[:3]}")
            lines.append(f"{n_shards} shard(s):")
            for clients in loads:
                elapsed, lat, failures = _run_cluster_load(
                    cluster.port, clients, requests, fields
                )
                if failures:
                    raise AssertionError(
                        f"{len(failures)} request(s) lost at "
                        f"{clients} clients / {n_shards} shard(s): "
                        f"{failures[:3]}"
                    )
                rps = len(lat) / elapsed
                peaks[n_shards] = max(peaks.get(n_shards, 0.0), rps)
                lines.append(
                    f"  {clients:3d} clients  {elapsed:7.2f} s  "
                    f"{rps:8.2f} req/s  "
                    f"p50 {_percentile(lat, 50) * 1e3:7.1f} ms  "
                    f"p99 {_percentile(lat, 99) * 1e3:7.1f} ms"
                )
    return lines, peaks


def _availability(requests: int, clients: int = 4) -> list[str]:
    """Kill one of two spawned shards mid-run; count client-visible losses."""
    fields = _sat_fields()
    done = threading.Event()
    progress = {"n": 0}
    lock = threading.Lock()

    def tick() -> None:
        with lock:
            progress["n"] += 1
            if progress["n"] >= requests // 3:
                done.set()

    with ClusterThread(spawn=2, probe_interval_s=0.05, fail_after=2,
                       recover_after=1,
                       shard_options={"max_pending": 256}) as cluster:
        victim = cluster.router.shard_handles["s1"].proc

        killer_fired = threading.Event()

        def killer() -> None:
            done.wait(timeout=120)
            victim.kill()  # SIGKILL: no drain, orphaned forwards and all
            killer_fired.set()

        k = threading.Thread(target=killer)
        k.start()
        elapsed, lat, failures = _run_cluster_load(
            cluster.port, clients, requests, fields, on_request_done=tick
        )
        k.join(120)
        with ServiceClient(port=cluster.port) as client:
            serving = client.health()["serving"]

    assert killer_fired.is_set(), "the kill never happened"
    assert not failures, (
        f"{len(failures)} accepted request(s) lost after the shard kill: "
        f"{failures[:5]}"
    )
    return [
        f"cluster availability: {requests} requests over {clients} clients, "
        f"shard s1 SIGKILLed after ~{requests // 3} completions",
        f"  {elapsed:7.2f} s  {len(lat) / elapsed:8.2f} req/s  "
        f"p99 {_percentile(lat, 99) * 1e3:7.1f} ms",
        f"  losses: 0 of {requests}; serving after kill: {serving}",
    ]


# --------------------------------------------------------------------------
# data plane: {inline, shm} x {blocking, pipelined} transport matrix
# --------------------------------------------------------------------------

DATAPLANE_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_dataplane.json"
#: shm+pipelined vs inline+blocking round-trip throughput on >= 8 MiB.
DATAPLANE_FLOOR = 2.0
DATAPLANE_FLOOR_MIB = 8
DATAPLANE_SIZES_MIB = (1, 8, 16)
DATAPLANE_QUICK_SIZES_MIB = (0.25, 1)
#: Outstanding requests in the pipelined configurations.  Two per
#: connection keeps the wire busy while the previous reply is consumed;
#: deeper pipelines only add memory pressure on a CPU-bound host.
IN_FLIGHT = 2
#: Timed passes per configuration; the fastest is reported.  Thread
#: scheduling on a loaded single-core host is bimodal enough that a
#: single pass can read 2x slow — best-of-N measures the transport,
#: not the scheduler's mood.
TRIALS = 3


def _append_dataplane(entry: dict) -> None:
    import datetime

    history = []
    if DATAPLANE_TRAJECTORY.exists():
        try:
            history = json.loads(DATAPLANE_TRAJECTORY.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=DATAPLANE_TRAJECTORY.parent,
            capture_output=True, text=True, timeout=10,
        )
        commit = out.stdout.strip() or None if out.returncode == 0 else None
    except OSError:
        commit = None
    history.append({
        "commit": commit,
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        **entry,
    })
    DATAPLANE_TRAJECTORY.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n"
    )


def _dataplane_reps(nbytes: int, quick: bool) -> int:
    """Enough reps to move ~128 MiB (quick: ~16 MiB) per configuration."""
    budget = (16 if quick else 128) << 20
    return max(4, min(32, budget // max(1, nbytes)))


def _time_blocking(port: int, shm: bool, data: np.ndarray,
                   expected: bytes, reps: int) -> float:
    with ServiceClient(port=port, shm=shm) as client:
        for _ in range(2):  # warm: connection, caps, segment pool pages
            client.compress(data, "store", mode="abs", value=0.0)
        elapsed = math.inf
        for _ in range(TRIALS):
            t0 = time.perf_counter()
            for _ in range(reps):
                buf = client.compress(data, "store", mode="abs", value=0.0)
            elapsed = min(elapsed, time.perf_counter() - t0)
        if buf.payload != expected:
            raise AssertionError(
                f"store round trip diverged (shm={shm}, blocking)"
            )
    return elapsed


def _time_pipelined(port: int, shm: bool, data: np.ndarray,
                    expected: bytes, reps: int) -> float:
    from collections import deque

    with PooledClient(port=port, connections=2, shm=shm) as client:
        # Warm with a full pipeline's worth of overlapping calls so every
        # pooled shm segment the steady state needs is created and its
        # pages faulted in before the clock starts.
        warm = [
            client.compress_async(data, "store", mode="abs", value=0.0)
            for _ in range(IN_FLIGHT + 1)
        ]
        for fut in warm:
            fut.result(timeout=300)
        elapsed = math.inf
        for _ in range(TRIALS):
            pending: deque = deque()
            buf = None
            t0 = time.perf_counter()
            for _ in range(reps):
                pending.append(
                    client.compress_async(data, "store", mode="abs", value=0.0)
                )
                if len(pending) >= IN_FLIGHT:
                    buf = pending.popleft().result(timeout=300)
            while pending:
                buf = pending.popleft().result(timeout=300)
            elapsed = min(elapsed, time.perf_counter() - t0)
        if buf.payload != expected:
            raise AssertionError(
                f"store round trip diverged (shm={shm}, pipelined)"
            )
    return elapsed


def _run_dataplane(quick: bool = False) -> tuple[list[str], dict]:
    """The transport matrix; returns (report lines, trajectory entry)."""
    sizes = DATAPLANE_QUICK_SIZES_MIB if quick else DATAPLANE_SIZES_MIB
    rng = np.random.default_rng(7)
    configs = (
        ("inline_blocking", False, _time_blocking),
        ("shm_blocking", True, _time_blocking),
        ("inline_pipelined", False, _time_pipelined),
        ("shm_pipelined", True, _time_pipelined),
    )
    lines = [
        "service data plane: STORE round trips (payload out + equal-sized "
        "reply back), same host",
        f"configs: inline vs shm transport, 1 vs {IN_FLIGHT} in-flight "
        f"({'quick' if quick else 'full'} run)",
    ]
    sweep: dict[str, dict] = {}
    with ServiceThread(max_pending=256) as st:
        for mib in sizes:
            nbytes = int(mib * (1 << 20))
            data = rng.standard_normal(
                nbytes // 4, dtype=np.float32
            ).reshape(-1)
            expected = data.tobytes()
            reps = _dataplane_reps(data.nbytes, quick)
            row: dict[str, float] = {}
            for name, shm, timer in configs:
                elapsed = timer(st.port, shm, data, expected, reps)
                row[name] = reps * data.nbytes / elapsed / (1 << 20)
            ratio = row["shm_pipelined"] / row["inline_blocking"]
            sweep[f"{mib}MiB"] = {
                "payload_bytes": data.nbytes,
                "reps": reps,
                "mibps": {k: round(v, 1) for k, v in row.items()},
                "speedup_shm_pipelined_vs_inline_blocking": round(ratio, 2),
            }
            lines.append(
                f"  {mib:>5} MiB x{reps:<3d} "
                + "  ".join(
                    f"{name} {row[name]:7.1f} MiB/s" for name, _, _ in configs
                )
                + f"  -> {ratio:.2f}x"
            )
    entry = {
        "source": "bench_service",
        "mode": "data_plane",
        "quick": quick,
        "in_flight": IN_FLIGHT,
        "floor": DATAPLANE_FLOOR,
        "sweep": sweep,
    }
    _append_dataplane(entry)
    return lines, entry


def test_data_plane():
    lines, entry = _run_dataplane(quick=False)
    write_result("service_dataplane", "\n".join(lines))
    floors = {
        size: cell["speedup_shm_pipelined_vs_inline_blocking"]
        for size, cell in entry["sweep"].items()
        if cell["payload_bytes"] >= DATAPLANE_FLOOR_MIB << 20
    }
    assert floors, "sweep never reached the >= 8 MiB acceptance sizes"
    assert all(v >= DATAPLANE_FLOOR for v in floors.values()), (
        f"zero-copy data plane below the {DATAPLANE_FLOOR:.0f}x floor: "
        f"{floors}"
    )


# --------------------------------------------------------------------------
# the benchmark
# --------------------------------------------------------------------------


def _report(requests: int) -> tuple[list[str], float]:
    field = _field()
    expected = get_compressor(COMPRESSOR).compress(
        field, mode="abs", error_bound=ERROR_BOUND
    ).payload

    base_s, base_lat = _run_baseline(requests)
    daemon_s, daemon_lat, stats = _run_daemon(requests, field, expected)

    base_rps = requests / base_s
    daemon_rps = requests / daemon_s
    speedup = daemon_rps / base_rps
    lines = [
        f"compression service: {requests} small-field ({GRID}^3 f4) "
        f"{COMPRESSOR.upper()} requests",
        f"baseline (one `python -m repro.foresight` process per request, "
        f"sequential):",
        f"  {base_s:8.2f} s  {base_rps:8.2f} req/s  "
        f"p50 {_percentile(base_lat, 50) * 1e3:7.1f} ms  "
        f"p99 {_percentile(base_lat, 99) * 1e3:7.1f} ms",
        f"daemon ({CLIENTS} concurrent clients, batched dispatch):",
        f"  {daemon_s:8.2f} s  {daemon_rps:8.2f} req/s  "
        f"p50 {_percentile(daemon_lat, 50) * 1e3:7.1f} ms  "
        f"p99 {_percentile(daemon_lat, 99) * 1e3:7.1f} ms",
        f"server-side p99: "
        f"{stats.get('latency', {}).get('p99_ms', float('nan')):.1f} ms; "
        f"every reply byte-identical to the direct library call",
        f"speedup: {speedup:.1f}x (acceptance floor: {SPEEDUP_FLOOR:.0f}x)",
    ]
    return lines, speedup


def test_service_throughput():
    lines, speedup = _report(requests=64)
    write_result("service", "\n".join(lines))
    assert speedup >= SPEEDUP_FLOOR, (
        f"daemon only {speedup:.2f}x the per-process baseline"
    )


def test_cluster_saturation():
    lines, peaks = _saturation(
        shard_counts=(1, 2), loads=(4, 12), requests=96
    )
    gain = peaks[2] / peaks[1]
    if MULTI_CORE:
        lines.append(
            f"2-shard peak / 1-shard peak: {gain:.2f}x "
            f"(floor: {CLUSTER_FLOOR:.2f}x)"
        )
    else:
        lines.append(
            f"2-shard peak / 1-shard peak: {gain:.2f}x "
            f"(single-core host: scaling acceptance waived, "
            f"overhead floor {OVERHEAD_FLOOR:.2f}x applies)"
        )
    write_result("service_cluster", "\n".join(lines))
    if MULTI_CORE:
        assert gain >= CLUSTER_FLOOR, (
            f"2 shards only {gain:.2f}x of 1 shard at saturation"
        )
    else:
        assert gain >= OVERHEAD_FLOOR, (
            f"routing fabric overhead out of bounds: {gain:.2f}x"
        )


def test_cluster_availability():
    lines = _availability(requests=96)
    write_result("service_availability", "\n".join(lines))


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------

try:  # pytest collection (conftest lives beside this file)
    from conftest import write_result
except ImportError:  # standalone --quick
    def write_result(experiment_id: str, text: str) -> None:
        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / f"{experiment_id}.txt").write_text(text + "\n")


def _quick() -> None:
    """CI smoke: 8 requests, same floor (start-up costs dominate)."""
    lines, speedup = _report(requests=8)
    print("\n".join(lines))
    assert speedup >= SPEEDUP_FLOOR, (
        f"daemon only {speedup:.2f}x the per-process baseline"
    )


def _quick_cluster(shards: int) -> None:
    """CI smoke for the fleet: small saturation sweep + kill-a-shard."""
    lines, peaks = _saturation(
        shard_counts=(1, shards), loads=(8,), requests=48
    )
    gain = peaks[shards] / peaks[1]
    lines.append(
        f"{shards}-shard peak / 1-shard peak: {gain:.2f}x"
        + ("" if MULTI_CORE else " (single-core host)")
    )
    print("\n".join(lines))
    floor = 1.0 if MULTI_CORE else OVERHEAD_FLOOR
    assert gain > floor, (
        f"{shards}-shard fleet at {gain:.2f}x of 1 shard "
        f"(floor {floor:.2f}x)"
    )
    print("\n".join(_availability(requests=48)))


def main(argv: list[str]) -> None:
    usage = (
        "usage: bench_service.py --quick [--shards N] | "
        "--data-plane [--quick]"
    )
    if "--data-plane" in argv:
        rest = [a for a in argv if a != "--data-plane"]
        quick = rest == ["--quick"]
        if rest and not quick:
            raise SystemExit(usage)
        lines, entry = _run_dataplane(quick=quick)
        print("\n".join(lines))
        if not quick:
            floors = {
                size: cell["speedup_shm_pipelined_vs_inline_blocking"]
                for size, cell in entry["sweep"].items()
                if cell["payload_bytes"] >= DATAPLANE_FLOOR_MIB << 20
            }
            assert floors and all(
                v >= DATAPLANE_FLOOR for v in floors.values()
            ), (
                f"zero-copy data plane below the {DATAPLANE_FLOOR:.0f}x "
                f"floor: {floors}"
            )
    elif argv and argv[0] == "--quick":
        rest = argv[1:]
        if rest[:1] == ["--shards"] and len(rest) == 2:
            _quick_cluster(int(rest[1]))
        elif not rest:
            _quick()
        else:
            raise SystemExit(usage)
    else:
        raise SystemExit(usage)


if __name__ == "__main__":
    main(sys.argv[1:])
