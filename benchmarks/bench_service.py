"""Daemon throughput vs per-call subprocess dispatch.

Headline measurement: 64 small-field COMPRESS requests (a 16^3 Nyx
baryon-density field, SZ at one absolute bound), served two ways:

* **baseline**: the pre-service workflow — every request pays a fresh
  ``python -m repro.foresight`` process (interpreter + numpy import +
  dataset + one-cell sweep), run sequentially as an in situ caller
  without the daemon would;
* **daemon**: one resident :class:`repro.service.server.ServiceThread`,
  hammered by 8 concurrent :class:`~repro.service.client.ServiceClient`
  threads; same-configuration arrivals coalesce into batches inside the
  server.

The daemon amortizes exactly what the baseline pays per request —
process start-up and codec warm-up — which is the operational point of
compression-as-a-service for in situ use.  Acceptance floor: **>= 3x**
request throughput.  Every daemon reply is additionally checked
byte-identical to a direct ``get_compressor(...).compress(...)`` call,
so the speed never comes at the cost of drift.

Reported per path: wall seconds, requests/s, and client-observed
p50/p99 latency (the daemon also reports its server-side percentiles
from STATS).

Run standalone for the CI smoke: ``python benchmarks/bench_service.py
--quick`` (8 requests, same 3x floor — subprocess start-up dominates at
any request count, so the floor holds even on the smallest run).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:  # standalone `python benchmarks/bench_service.py`
    sys.path.insert(0, SRC)

from repro.compressors.registry import get_compressor
from repro.cosmo.nyx import make_nyx_dataset
from repro.service import ServiceClient, ServiceThread

GRID = 16
COMPRESSOR = "sz"
ERROR_BOUND = 0.5
CLIENTS = 8
SPEEDUP_FLOOR = 3.0


def _field() -> np.ndarray:
    return make_nyx_dataset(grid_size=GRID).fields["baryon_density"]


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


# --------------------------------------------------------------------------
# baseline: one foresight process per request
# --------------------------------------------------------------------------


def _baseline_config(out_dir: str) -> dict:
    return {
        "input": {
            "dataset": "nyx",
            "generator": {"grid_size": GRID},
            "fields": ["baryon_density"],
        },
        "compressors": [{
            "name": COMPRESSOR,
            "mode": "abs",
            "sweep": {"error_bound": [ERROR_BOUND]},
        }],
        "analyses": [],
        "output": {"directory": out_dir},
    }


def _run_baseline(requests: int) -> tuple[float, list[float]]:
    """Sequential per-request subprocesses; returns (seconds, latencies)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    latencies: list[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        cfg_path = os.path.join(tmp, "one-cell.json")
        t0 = time.perf_counter()
        for i in range(requests):
            out_dir = os.path.join(tmp, f"run-{i}")
            Path(cfg_path).write_text(json.dumps(_baseline_config(out_dir)))
            r0 = time.perf_counter()
            proc = subprocess.run(
                [sys.executable, "-m", "repro.foresight", cfg_path,
                 "--quiet", "--workers", "1"],
                capture_output=True,
                text=True,
                env=env,
                timeout=600,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"baseline request {i} failed:\n{proc.stderr}"
                )
            latencies.append(time.perf_counter() - r0)
        return time.perf_counter() - t0, latencies


# --------------------------------------------------------------------------
# daemon: 8 concurrent clients against one resident service
# --------------------------------------------------------------------------


def _run_daemon(
    requests: int, field: np.ndarray, expected_payload: bytes
) -> tuple[float, list[float], dict]:
    """Concurrent clients; returns (seconds, latencies, server stats)."""
    per_client, remainder = divmod(requests, CLIENTS)
    counts = [per_client + (1 if c < remainder else 0) for c in range(CLIENTS)]
    latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()

    with ServiceThread(max_pending=max(64, requests)) as st:
        def worker(cid: int) -> None:
            mine: list[float] = []
            with ServiceClient(port=st.port, seed=cid) as client:
                for i in range(counts[cid]):
                    r0 = time.perf_counter()
                    buf = client.compress(
                        field, COMPRESSOR, mode="abs", value=ERROR_BOUND
                    )
                    mine.append(time.perf_counter() - r0)
                    if buf.payload != expected_payload:
                        with lock:
                            failures.append(f"client {cid} request {i}")
            with lock:
                latencies.extend(mine)

        threads = [
            threading.Thread(target=worker, args=(c,)) for c in range(CLIENTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(600)
        elapsed = time.perf_counter() - t0
        with ServiceClient(port=st.port) as client:
            stats = client.stats()

    if failures:
        raise AssertionError(
            f"daemon replies diverged from the direct library call: {failures}"
        )
    return elapsed, latencies, stats


# --------------------------------------------------------------------------
# the benchmark
# --------------------------------------------------------------------------


def _report(requests: int) -> tuple[list[str], float]:
    field = _field()
    expected = get_compressor(COMPRESSOR).compress(
        field, mode="abs", error_bound=ERROR_BOUND
    ).payload

    base_s, base_lat = _run_baseline(requests)
    daemon_s, daemon_lat, stats = _run_daemon(requests, field, expected)

    base_rps = requests / base_s
    daemon_rps = requests / daemon_s
    speedup = daemon_rps / base_rps
    lines = [
        f"compression service: {requests} small-field ({GRID}^3 f4) "
        f"{COMPRESSOR.upper()} requests",
        f"baseline (one `python -m repro.foresight` process per request, "
        f"sequential):",
        f"  {base_s:8.2f} s  {base_rps:8.2f} req/s  "
        f"p50 {_percentile(base_lat, 50) * 1e3:7.1f} ms  "
        f"p99 {_percentile(base_lat, 99) * 1e3:7.1f} ms",
        f"daemon ({CLIENTS} concurrent clients, batched dispatch):",
        f"  {daemon_s:8.2f} s  {daemon_rps:8.2f} req/s  "
        f"p50 {_percentile(daemon_lat, 50) * 1e3:7.1f} ms  "
        f"p99 {_percentile(daemon_lat, 99) * 1e3:7.1f} ms",
        f"server-side p99: "
        f"{stats.get('latency', {}).get('p99_ms', float('nan')):.1f} ms; "
        f"every reply byte-identical to the direct library call",
        f"speedup: {speedup:.1f}x (acceptance floor: {SPEEDUP_FLOOR:.0f}x)",
    ]
    return lines, speedup


def test_service_throughput():
    lines, speedup = _report(requests=64)
    write_result("service", "\n".join(lines))
    assert speedup >= SPEEDUP_FLOOR, (
        f"daemon only {speedup:.2f}x the per-process baseline"
    )


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------

try:  # pytest collection (conftest lives beside this file)
    from conftest import write_result
except ImportError:  # standalone --quick
    def write_result(experiment_id: str, text: str) -> None:
        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / f"{experiment_id}.txt").write_text(text + "\n")


def _quick() -> None:
    """CI smoke: 8 requests, same floor (start-up costs dominate)."""
    lines, speedup = _report(requests=8)
    print("\n".join(lines))
    assert speedup >= SPEEDUP_FLOOR, (
        f"daemon only {speedup:.2f}x the per-process baseline"
    )


def main(argv: list[str]) -> None:
    if argv[:1] == ["--quick"]:
        _quick()
    else:
        raise SystemExit("usage: bench_service.py --quick")


if __name__ == "__main__":
    main(sys.argv[1:])
