"""Ablation: GPU-SZ block size (DESIGN.md / paper Fig. 4a discussion).

The paper attributes GPU-SZ's low-bitrate rate-distortion drop to
"dataset blocking, which divides the data into multiple independent
blocks and decorrelates at the block borders".  This ablation sweeps the
independent-block side and shows the cost: smaller blocks -> more border
decorrelation -> lower compression ratio at a fixed error bound.
"""

import numpy as np

from conftest import write_result
from repro.compressors.sz import SZCompressor
from repro.foresight.visualization import format_table

BLOCK_SIDES = (4, 6, 8, 12, 16)


def test_ablation_blocking(benchmark, nyx):
    field = nyx.fields["dark_matter_density"]
    eb = float(field.std()) * 1e-2

    def sweep():
        rows = []
        for side in BLOCK_SIDES:
            sz = SZCompressor(block_side=side)
            buf = sz.compress(field, error_bound=eb)
            rows.append(
                {
                    "block_side": side,
                    "compression_ratio": buf.compression_ratio,
                    "bitrate": buf.bitrate,
                    "regression_fraction": buf.meta["predictor_regression_fraction"],
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "ablation_blocking",
        "== ablation: SZ independent-block side (fixed eb) ==\n"
        + format_table(rows)
        + "\nsmaller blocks decorrelate at more borders -> lower ratio "
        "(the paper's explanation of Fig. 4a's low-bitrate drop)",
    )
    ratios = [r["compression_ratio"] for r in rows]
    # Larger blocks should compress at least as well as the smallest.
    assert max(ratios[1:]) >= ratios[0]


def test_ablation_blocking_kernel(benchmark, nyx):
    field = nyx.fields["dark_matter_density"]
    eb = float(field.std()) * 1e-2
    sz = SZCompressor(block_side=16)
    buf = benchmark(sz.compress, field, error_bound=eb)
    assert buf.compression_ratio > 1
