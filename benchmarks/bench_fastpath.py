"""Fast-path engine speedup: vectorized kernels + result cache vs the seed.

Headline measurement: a 4-point ZFP sweep plus a 4-point SZ sweep over a
64^3 Nyx dark-matter-density field, run both ways —

* **seed path**: scalar per-block/per-symbol codec loops
  (``REPRO_SCALAR_CODECS=1``), serial, no cache — the implementation the
  seed repo shipped;
* **fast path**: batched numpy kernels, ``workers=0`` (one worker
  process per CPU; on a single-CPU host the executor falls back to the
  serial in-process loop, so the measured gain is all kernels), no cache.

Each path is timed as the best of ``TRIALS`` runs so a single noisy run
on a shared host cannot flip the verdict.  The acceptance bar is a
>= 3x wall-clock speedup.  A separate test reports the warm-cache time
(excluded from the headline: a cache hit skips the codecs entirely,
which would trivialize the comparison).

SZ error bounds are value-range-relative (scaled by the field's std, the
regime Fig. 4/6 sweeps) so the quantization-code Huffman stream — the
component the vectorized encoder/decoder accelerates — carries realistic
entropy.
"""

from __future__ import annotations

import os
import time

import numpy as np

from bench_kernels import TARGET_KERNELS, _native_state, append_trajectory, measure
from conftest import write_result
from repro.experiments.base import nyx_for
from repro.foresight.cbench import CBench
from repro.foresight.config import CompressorSweep

TRIALS = 3

ZFP_SWEEP = CompressorSweep(
    name="zfp", mode="fixed_rate", sweep={"rate": [4.0, 8.0, 12.0, 16.0]}
)


def _field_64() -> np.ndarray:
    """One 64^3 Nyx field regardless of REPRO_PROFILE (the bar is fixed)."""
    return nyx_for("default").fields["dark_matter_density"]


def _sz_sweep(field: np.ndarray) -> CompressorSweep:
    std = float(field.std())
    return CompressorSweep(
        name="sz",
        mode="abs",
        sweep={"error_bound": [round(std * r, 6) for r in (2e-3, 1e-3, 7e-4, 5e-4)]},
    )


def _sweep_once(field: np.ndarray, workers: int) -> list:
    bench = CBench({"dark_matter_density": field}, keep_reconstructions=False)
    return bench.run_all([ZFP_SWEEP, _sz_sweep(field)], workers=workers)


def _best_of(fn, trials: int = TRIALS) -> tuple[float, list]:
    best, records = float("inf"), None
    for _ in range(trials):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best, records = dt, out
    return best, records


def test_fastpath_speedup_vs_seed(benchmark):
    field = _field_64()
    assert "REPRO_CACHE_DIR" not in os.environ or not os.environ["REPRO_CACHE_DIR"]

    os.environ["REPRO_SCALAR_CODECS"] = "1"
    try:
        seed_seconds, seed_records = _best_of(lambda: _sweep_once(field, workers=1))
    finally:
        del os.environ["REPRO_SCALAR_CODECS"]

    t0 = time.perf_counter()
    benchmark.pedantic(_sweep_once, args=(field, 0), rounds=1, iterations=1)
    first = time.perf_counter() - t0
    rest, fast_records = _best_of(lambda: _sweep_once(field, 0), TRIALS - 1)
    fast_seconds = min(first, rest)

    assert len(fast_records) == len(seed_records) == 8
    for seed_rec, fast_rec in zip(seed_records, fast_records):
        assert fast_rec.compressor == seed_rec.compressor
        assert fast_rec.parameter == seed_rec.parameter
        assert fast_rec.compression_ratio == seed_rec.compression_ratio
        assert fast_rec.metrics == seed_rec.metrics

    speedup = seed_seconds / fast_seconds
    lines = [
        "fast-path engine: 8-cell ZFP+SZ sweep of 64^3 Nyx dark_matter_density",
        f"(best of {TRIALS} trials per path)",
        f"seed path (scalar codecs, serial):      {seed_seconds:8.3f} s",
        f"fast path (batched kernels, workers=0): {fast_seconds:8.3f} s",
        f"speedup: {speedup:.2f}x (acceptance floor: 3x)",
    ]
    write_result("fastpath", "\n".join(lines))
    append_trajectory({
        "source": "bench_fastpath",
        "sweep": "8-cell ZFP+SZ, 64^3 Nyx dark_matter_density",
        "seed_seconds": round(seed_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(speedup, 3),
    })
    assert speedup >= 3.0, f"fast path only {speedup:.2f}x faster than seed"


def test_backend_tiers(request):
    """Whole-sweep seconds and per-kernel MB/s for each kernel tier.

    Every run appends one trajectory entry to ``BENCH_fastpath.json``
    (commit, date, per-kernel MB/s per backend).  With the numba flavor
    available, ``--backend native`` must beat the numpy tier by >= 1.5x
    single-core on at least two of the three target kernels; without
    numba the degradation is recorded instead of failing.
    """
    requested = request.config.getoption("--backend")
    available, flavor, reason = _native_state()
    if requested:
        tiers = [requested]
    else:
        tiers = ["scalar", "numpy"] + (["native"] if available else [])

    field = _field_64()
    sweep_seconds: dict[str, float] = {}
    for tier in tiers:
        bench = CBench(
            {"dark_matter_density": field},
            keep_reconstructions=False,
            backend=tier,
        )
        seconds, _ = _best_of(
            lambda: bench.run_all([ZFP_SWEEP, _sz_sweep(field)], workers=1)
        )
        sweep_seconds[tier] = round(seconds, 4)

    # Per-kernel MB/s always includes numpy so native has its reference.
    kernel_mbps = {t: measure(t, quick=True) for t in dict.fromkeys(tiers + ["numpy"])}

    entry: dict = {
        "source": "bench_fastpath",
        "sweep": "8-cell ZFP+SZ, 64^3 Nyx dark_matter_density, workers=1",
        "sweep_seconds": sweep_seconds,
        "mbps": kernel_mbps,
        "native_flavor": flavor,
        "degraded": not available,
    }
    if reason:
        entry["native_unavailable"] = reason
    speedups = {
        k: round(kernel_mbps["native"][k] / kernel_mbps["numpy"][k], 3)
        for k in kernel_mbps.get("native", {})
        if kernel_mbps["numpy"].get(k)
    }
    if speedups:
        entry["speedup_native_vs_numpy"] = speedups
    append_trajectory(entry)

    lines = ["per-tier 8-cell sweep (workers=1), best of %d trials" % TRIALS]
    lines += [f"  {t:>7s}: {s:8.3f} s" for t, s in sweep_seconds.items()]
    if speedups:
        lines.append("native vs numpy per-kernel speedup: " + ", ".join(
            f"{k}={v}x" for k, v in sorted(speedups.items())
        ))
    write_result("fastpath_backends", "\n".join(lines))

    if "native" in tiers and not available:
        return  # fallback served the sweep; degradation recorded above
    if flavor == "numba":
        fast = [k for k in TARGET_KERNELS if speedups.get(k, 0.0) >= 1.5]
        assert len(fast) >= 2, (
            f"native tier too slow: >=1.5x on {fast} only; {speedups}"
        )


def test_fastpath_warm_cache(benchmark, tmp_path):
    field = _field_64()
    cache_dir = tmp_path / "cache"

    def _cached_sweep() -> list:
        bench = CBench(
            {"dark_matter_density": field},
            keep_reconstructions=False,
            cache=cache_dir,
        )
        return bench.run_all([ZFP_SWEEP, _sz_sweep(field)], workers=1)

    t0 = time.perf_counter()
    cold = _cached_sweep()
    cold_seconds = time.perf_counter() - t0
    assert not any(r.meta.get("cache") == "hit" for r in cold)

    t0 = time.perf_counter()
    warm = benchmark.pedantic(_cached_sweep, rounds=1, iterations=1)
    warm_seconds = time.perf_counter() - t0
    assert all(r.meta.get("cache") == "hit" for r in warm)

    write_result(
        "fastpath_cache",
        "warm-cache replay of the 8-cell sweep\n"
        f"cold (miss, computes + stores): {cold_seconds:8.3f} s\n"
        f"warm (hit, loads records):      {warm_seconds:8.3f} s",
    )
    assert warm_seconds < cold_seconds
