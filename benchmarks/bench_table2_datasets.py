"""Table II: dataset metadata + generator throughput."""

from conftest import write_result
from repro.cosmo.hacc import make_hacc_dataset
from repro.cosmo.nyx import make_nyx_dataset
from repro.experiments import table2


def test_table2_rows(benchmark, profile):
    result = benchmark.pedantic(table2.run, args=(profile,), rounds=1, iterations=1)
    write_result("table2", result.render())
    assert all(r["in_range"] for r in result.rows)


def test_table2_nyx_generation(benchmark):
    ds = benchmark(make_nyx_dataset, 32)
    assert ds.grid_size == 32


def test_table2_hacc_generation(benchmark):
    ds = benchmark(make_hacc_dataset, 24)
    assert ds.n_particles == 24**3
