"""Node-level in-situ overhead (the paper's Summit argument, §V-C)."""

from conftest import write_result
from repro.foresight.visualization import format_table
from repro.gpu import SUMMIT_NODE, node_insitu_overhead


def test_node_overhead(benchmark):
    """Paper: GPU compression drops overhead 'from more than 10% to lower
    than 0.3%' on a 6-V100 Summit node."""

    def study():
        # HACC-at-scale numbers from the paper's intro: 2.5 TB/snapshot
        # over 1024 nodes, ~10 s per timestep.
        rows = []
        for o in node_insitu_overhead(2.5e12 / 1024, 10.0, bits_per_value=3.0,
                                      node=SUMMIT_NODE):
            rows.append(
                {
                    "strategy": o.strategy,
                    "seconds": o.compression_seconds,
                    "overhead_pct": o.overhead_fraction * 100,
                }
            )
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    write_result(
        "node_overhead",
        "== node-level in-situ overhead (2.44 GB/node snapshot, 10 s step) ==\n"
        + format_table(rows)
        + "\npaper: 'from more than 10% to lower than 0.3%'",
    )
    cpu, gpu = rows
    assert gpu["overhead_pct"] < 0.3
    assert cpu["overhead_pct"] > 3.0
