"""Shared benchmark fixtures.

Each ``bench_*`` file regenerates one table/figure of the paper: it writes
the reproduced rows/series to ``benchmarks/results/<id>.txt`` (and CSV
series where the figure is a curve) and benchmarks the computational
kernel behind the figure with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

and inspect ``benchmarks/results/`` afterwards.  ``PROFILE`` can be
overridden via the REPRO_PROFILE environment variable ("small",
"default", "paper").
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.base import hacc_for, nyx_for

PROFILE = os.environ.get("REPRO_PROFILE", "small")

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)


def write_result(experiment_id: str, text: str) -> None:
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--backend", default=None,
        choices=("scalar", "numpy", "native"),
        help="restrict backend-tier benchmarks to one kernel tier "
             "(default: every available tier)",
    )


@pytest.fixture(scope="session")
def profile() -> str:
    return PROFILE


@pytest.fixture(scope="session")
def nyx():
    return nyx_for(PROFILE)


@pytest.fixture(scope="session")
def hacc():
    return hacc_for(PROFILE)
