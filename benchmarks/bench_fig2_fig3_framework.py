"""Figs. 2-3: Foresight components and the study dependency graph."""

from conftest import write_result
from repro.experiments import fig2_fig3
from repro.foresight.pat import SlurmSimulator


def test_fig2_fig3_rows(benchmark, profile):
    result = benchmark.pedantic(fig2_fig3.run, args=(profile,), rounds=1, iterations=1)
    write_result("fig2_fig3", result.render(
        ["topological_position", "job", "depends_on", "nodes"]
    ))
    assert len(result.rows) == 5


def test_fig3_dag_execution(benchmark):
    """Execute the canonical DAG on the simulator (command-only jobs)."""
    wf = fig2_fig3.canonical_workflow()
    records = benchmark(SlurmSimulator(nodes=4).run, wf)
    assert all(r.state.name == "COMPLETED" for r in records.values())
