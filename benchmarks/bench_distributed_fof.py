"""Distributed FoF: correctness vs serial plus the communication bill."""

import collections

import numpy as np

from conftest import write_result
from repro.cosmo.fof import friends_of_friends
from repro.foresight.visualization import format_table
from repro.parallel import distributed_fof


def _signature(labels):
    groups = collections.defaultdict(list)
    for i, l in enumerate(labels):
        groups[int(l)].append(i)
    return sorted(tuple(v) for v in groups.values())


def test_distributed_fof_scaling(benchmark, hacc):
    n_side = round(hacc.n_particles ** (1 / 3))
    ll = 0.2 * hacc.box_size / n_side
    serial = friends_of_friends(hacc.positions, hacc.box_size, ll)

    def sweep():
        rows = []
        for dims in ((1, 1, 2), (2, 2, 2), (2, 2, 4)):
            result, stats = distributed_fof(hacc.positions, hacc.box_size, ll, dims=dims)
            rows.append(
                {
                    "ranks": int(np.prod(dims)),
                    "groups": result.n_groups,
                    "matches_serial": _signature(result.labels) == _signature(serial.labels),
                    "ghost_kb": stats["ghost_bytes"] / 1e3,
                    "max_owned": max(stats["owned_per_rank"]),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "distributed_fof",
        "== distributed FoF vs serial (partition identity + comm volume) ==\n"
        + format_table(rows),
    )
    assert all(r["matches_serial"] for r in rows)


def test_distributed_fof_kernel(benchmark, hacc):
    n_side = round(hacc.n_particles ** (1 / 3))
    ll = 0.2 * hacc.box_size / n_side
    result, _ = benchmark(distributed_fof, hacc.positions, hacc.box_size, ll)
    assert result.n_groups > 0
