"""Fig. 4: rate-distortion curves; benchmarks both codecs' round trips."""

import csv

from conftest import RESULTS_DIR, write_result
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.experiments import fig4


def test_fig4_curves(benchmark, profile):
    result = benchmark.pedantic(fig4.run, args=(profile,), rounds=1, iterations=1)
    write_result("fig4", result.render(
        ["dataset", "field", "compressor", "parameter", "bitrate", "psnr"]
    ))
    with open(RESULTS_DIR / "fig4_rate_distortion.csv", "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(result.rows[0]))
        writer.writeheader()
        writer.writerows(result.rows)
    assert len(result.rows) > 100


def test_fig4_sz_compress(benchmark, nyx):
    sz = SZCompressor()
    field = nyx.fields["dark_matter_density"]
    eb = float(field.std()) * 1e-2
    buf = benchmark(sz.compress, field, error_bound=eb)
    assert buf.compression_ratio > 1


def test_fig4_sz_decompress(benchmark, nyx):
    sz = SZCompressor()
    field = nyx.fields["dark_matter_density"]
    buf = sz.compress(field, error_bound=float(field.std()) * 1e-2)
    recon = benchmark(sz.decompress, buf)
    assert recon.shape == field.shape


def test_fig4_zfp_compress(benchmark, nyx):
    zfp = ZFPCompressor()
    buf = benchmark(zfp.compress, nyx.fields["dark_matter_density"], rate=4.0)
    assert abs(buf.bitrate - 4.0) < 0.5


def test_fig4_zfp_decompress(benchmark, nyx):
    zfp = ZFPCompressor()
    buf = zfp.compress(nyx.fields["dark_matter_density"], rate=4.0)
    recon = benchmark(zfp.decompress, buf)
    assert recon.shape == nyx.fields["dark_matter_density"].shape
