"""Batched ZFP block coding: all blocks at once, numpy ops per bit plane.

The scalar coder in :mod:`repro.compressors.zfp.blockcodec` transcribes
zfp's ``encode_ints``/``decode_ints`` control flow one block at a time —
a Python loop per block, per plane, per *bit*.  This module re-expresses
the identical algorithm over a ``(nblocks, planes)`` plane-word matrix so
the per-bit work becomes array operations across every block
simultaneously — the same blocks-through-vector-lanes transformation
cuSZ and FZ-GPU apply to this compressor class on GPUs.

The two implementations are **byte-identical** (enforced by
``tests/test_fastpath_equivalence.py``): same body bits, same per-block
offsets, same ``used_bits`` accounting, for every mode.  The trick is
that zfp's group-testing inner loops have a closed form per "group":
given a plane word ``x`` (already shifted past the known-significant
prefix) with lowest set bit ``j``, the scalar inner scan emits exactly

    ``c = min(j + 1, size - 1 - n, bits)``

bits — ``min(j, c)`` zeros followed by a one iff ``c == j + 1`` — after
which ``x`` shifts by ``c (+1 when no one was emitted)`` and ``n``
advances the same amount.  Each outer "group" iteration therefore needs
only a handful of vectorized ops (trailing-zero count, minima, masked
scatter) across all still-active blocks, instead of a Python iteration
per emitted bit.

Emission uses a zero-initialized per-block bit matrix, so only 1-bits
are ever scattered; zero runs and fixed-rate padding are free.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError
from repro.telemetry import get_telemetry

from repro.compressors.zfp.blockcodec import EBIAS, EBITS

_U64_ONE = np.uint64(1)
_U64_FULL = ~np.uint64(0)


def _ctz64(x: np.ndarray) -> np.ndarray:
    """Count trailing zeros of nonzero uint64 values."""
    lowbit = x & (~x + _U64_ONE)
    # A single set bit is a power of two <= 2^63: exactly representable
    # in float64, so frexp gives its position without loss.
    _, exponent = np.frexp(lowbit.astype(np.float64))
    return exponent.astype(np.int64) - 1


def _shift_right(x: np.ndarray, amount: np.ndarray) -> np.ndarray:
    """``x >> amount`` with ``amount`` possibly 64+ (result 0)."""
    clipped = np.minimum(amount, 63).astype(np.uint64)
    return np.where(amount >= 64, np.uint64(0), x >> clipped)


def _low_mask(nbits: np.ndarray) -> np.ndarray:
    """uint64 mask of the low ``nbits`` bits, ``nbits`` in [0, 64]."""
    shift = (np.uint64(64) - np.maximum(nbits, 1).astype(np.uint64))
    return np.where(nbits <= 0, np.uint64(0), _U64_FULL >> shift)


class _BitMatrix:
    """Zero-initialized per-block bit rows; only 1-bits are written."""

    def __init__(self, nblocks: int, capacity: int) -> None:
        self.capacity = capacity
        self.flat = np.zeros(nblocks * capacity, dtype=np.uint8)
        self.pos = np.zeros(nblocks, dtype=np.int64)

    def set_bits(self, blocks: np.ndarray, offsets: np.ndarray) -> None:
        """Set the bit at (block, pos[block] + offset) for each entry."""
        self.flat[blocks * self.capacity + self.pos[blocks] + offsets] = 1

    def emit_lsb(self, blocks: np.ndarray, values: np.ndarray,
                 nbits: np.ndarray) -> None:
        """Emit the low ``nbits`` of each value LSB-first, then advance.

        ``nbits`` is bounded by the block size (<= 64), so a rectangular
        ``(len(blocks), max(nbits))`` window beats the ragged
        repeat/cumsum formulation by a wide margin.
        """
        mx = int(nbits.max()) if nbits.size else 0
        if mx:
            cols = np.arange(mx, dtype=np.int64)
            bit = (values[:, None] >> cols[None, :].astype(np.uint64)) & _U64_ONE
            sel = (cols[None, :] < nbits[:, None]) & (bit != 0)
            base = blocks * self.capacity + self.pos[blocks]
            self.flat[(base[:, None] + cols[None, :])[sel]] = 1
        self.pos[blocks] += nbits

    def concatenate(self) -> tuple[np.ndarray, int]:
        """Per-block rows, trimmed to their used lengths, end to end."""
        total = int(self.pos.sum())
        if total == 0:
            return np.zeros(0, dtype=np.uint8), 0
        if total == self.flat.size:
            # Every row fully used (fixed-rate framing): already laid out.
            return self.flat, total
        owner = np.repeat(np.arange(self.pos.size), self.pos)
        starts = np.concatenate(([0], np.cumsum(self.pos)[:-1]))
        offset = np.arange(total, dtype=np.int64) - starts[owner]
        return self.flat[owner * self.capacity + offset], total


def encode_blocks(
    words: np.ndarray,
    nonzero: np.ndarray,
    e: np.ndarray,
    size: int,
    planes: int,
    budgets: np.ndarray,
    kmins: np.ndarray,
    maxbits: int = 0,
) -> tuple[bytes, int, np.ndarray, np.ndarray]:
    """Embedded-code every block of a stream in one vectorized pass.

    Parameters mirror the scalar per-block loop in
    :class:`~repro.compressors.zfp.zfpcompressor.ZFPCompressor`:
    ``words`` is the ``(nblocks, planes)`` plane-word matrix, ``budgets``
    / ``kmins`` the per-block plane-coding budget and cutoff, and
    ``maxbits`` nonzero selects fixed-rate framing (header counted in the
    per-block bit slot, zero-padded to exactly ``maxbits``).

    Returns ``(body, nbits, offsets, used_bits)`` — byte-identical to the
    scalar path: ``body``/``nbits`` as from ``_Emitter.pack()``,
    ``offsets`` the ``(nblocks + 1)`` uint64 bit-offset table, and
    ``used_bits`` the per-block coded bits (header included, padding
    excluded; 0 for zero blocks).
    """
    nblocks = words.shape[0]
    header_bits = 1 + EBITS
    fixed_rate = maxbits > 0
    if fixed_rate:
        capacity = maxbits
    else:
        capacity = header_bits + planes * (2 * size + 1) + 2 * size + 8
    out = _BitMatrix(nblocks, capacity)

    nz = np.flatnonzero(nonzero)
    # Block headers: nonzero flag, then the biased common exponent
    # MSB-first (EBITS iterations, vectorized across blocks).
    out.set_bits(nz, np.zeros(nz.size, dtype=np.int64))
    biased = (e[nz] + EBIAS).astype(np.uint64)
    for i in range(EBITS):
        bit_on = (biased >> np.uint64(EBITS - 1 - i)) & _U64_ONE != 0
        out.set_bits(nz[bit_on], np.full(int(bit_on.sum()), 1 + i, dtype=np.int64))
    out.pos[nz] = header_bits
    if fixed_rate:
        # Zero blocks: '0' flag plus maxbits-1 zero bits (already zero).
        out.pos[~nonzero] = maxbits
    else:
        out.pos[~nonzero] = 1

    n = np.zeros(nblocks, dtype=np.int64)
    bits = budgets.astype(np.int64).copy()
    bits[~nonzero] = 0

    lowest_kmin = int(kmins[nonzero].min()) if nz.size else planes
    for k in range(planes - 1, lowest_kmin - 1, -1):
        act = np.flatnonzero(nonzero & (kmins <= k) & (bits > 0))
        if act.size == 0:
            continue
        x = words[act, k].astype(np.uint64, copy=True)
        n_act = n[act]
        bits_act = bits[act]
        # Step 2: value bits for the already-significant group, LSB-first.
        m = np.minimum(n_act, bits_act)
        out.emit_lsb(act, x & _low_mask(m), m)
        bits_act -= m
        x = _shift_right(x, m)
        # Step 3: unary run-length / group testing, one vectorized
        # iteration per group across all still-live blocks.
        live = np.ones(act.size, dtype=bool)
        while True:
            g = np.flatnonzero(live & (n_act < size) & (bits_act > 0))
            if g.size == 0:
                break
            test = x[g] != 0
            bits_act[g] -= 1
            out.set_bits(act[g[test]], np.zeros(int(test.sum()), dtype=np.int64))
            out.pos[act[g]] += 1
            live[g[~test]] = False
            h = g[test]
            if h.size == 0:
                continue
            j = _ctz64(x[h])
            emitted = np.minimum(j + 1, np.minimum(size - 1 - n_act[h],
                                                   bits_act[h]))
            found_one = emitted == j + 1
            one_blocks = act[h[found_one]]
            out.set_bits(one_blocks, emitted[found_one] - 1)
            out.pos[act[h]] += emitted
            bits_act[h] -= emitted
            # State: zeros shift x once each; the terminating one (when
            # emitted) does not; the outer loop then shifts once more.
            advance = np.where(found_one, emitted, emitted + 1)
            x[h] = _shift_right(x[h], advance)
            n_act[h] += advance
        n[act] = n_act
        bits[act] = bits_act

    used_bits = np.zeros(nblocks, dtype=np.int64)
    used_bits[nz] = header_bits + (budgets[nz] - bits[nz])
    if fixed_rate:
        out.pos[nz] = maxbits  # zero padding up to the block budget

    lengths = out.pos.copy()
    offsets = np.zeros(nblocks + 1, dtype=np.uint64)
    np.cumsum(lengths, out=offsets[1:])
    flat_bits, nbits = out.concatenate()
    get_telemetry().count("zfp.emitted_bits", nbits)
    body = np.packbits(flat_bits, bitorder="big").tobytes()
    return body, nbits, offsets, used_bits


def read_block_headers(
    bits: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized per-block header parse: (nonzero flags, exponents).

    ``bits`` is the unpacked body bit array, ``offsets`` the int64
    ``(nblocks + 1)`` bit-offset table.  Raises
    :class:`~repro.errors.CorruptStreamError` for non-increasing offsets
    or blocks too short for their declared header — the same failures
    the scalar ``_BlockReader`` reports.
    """
    spans = np.diff(offsets)
    if spans.size and int(spans.min()) <= 0:
        raise CorruptStreamError("non-increasing ZFP block offsets")
    lo = offsets[:-1]
    nonzero = bits[lo] != 0
    if np.any(nonzero & (spans < 1 + EBITS)):
        raise CorruptStreamError("ZFP block bit budget overrun")
    nblocks = spans.size
    e = np.zeros(nblocks, dtype=np.int64)
    nz = np.flatnonzero(nonzero)
    if nz.size:
        window = lo[nz, None] + 1 + np.arange(EBITS, dtype=np.int64)[None, :]
        weights = (1 << np.arange(EBITS - 1, -1, -1)).astype(np.int64)
        e[nz] = bits[window].astype(np.int64) @ weights - EBIAS
    return nonzero, e


def decode_blocks(
    bits: np.ndarray,
    offsets: np.ndarray,
    nonzero: np.ndarray,
    planes: int,
    size: int,
    budgets: np.ndarray,
    kmins: np.ndarray,
) -> np.ndarray:
    """Mirror of :func:`encode_blocks`: recover the plane-word matrix.

    ``bits`` must be padded with at least ``size`` trailing zero bits so
    window gathers never index out of range (budget bookkeeping
    guarantees the padding is never *decoded*).
    """
    nblocks = offsets.size - 1
    words = np.zeros((nblocks, planes), dtype=np.uint64)
    cursor = (offsets[:-1] + 1 + EBITS).astype(np.int64)
    n = np.zeros(nblocks, dtype=np.int64)
    bits_left = budgets.astype(np.int64).copy()
    bits_left[~nonzero] = 0
    window_cols = np.arange(size, dtype=np.int64)

    nz_any = np.flatnonzero(nonzero)
    lowest_kmin = int(kmins[nz_any].min()) if nz_any.size else planes
    for k in range(planes - 1, lowest_kmin - 1, -1):
        act = np.flatnonzero(nonzero & (kmins <= k) & (bits_left > 0))
        if act.size == 0:
            continue
        n_act = n[act]
        bits_act = bits_left[act]
        cur = cursor[act]
        m = np.minimum(n_act, bits_act)
        x = np.zeros(act.size, dtype=np.uint64)
        mx = int(m.max()) if m.size else 0
        if mx:
            # Rectangular (act, m.max()) gather: m <= block size <= 64,
            # and the stream carries >= size trailing pad bits, so the
            # window never reads out of range; masked columns drop the
            # over-read.
            cols = np.arange(mx, dtype=np.int64)
            window = bits[cur[:, None] + cols[None, :]].astype(np.uint64)
            window &= cols[None, :] < m[:, None]
            x = (window << cols[None, :].astype(np.uint64)).sum(
                axis=1, dtype=np.uint64
            )
        cur += m
        bits_act -= m
        live = np.ones(act.size, dtype=bool)
        while True:
            g = np.flatnonzero(live & (n_act < size) & (bits_act > 0))
            if g.size == 0:
                break
            test = bits[cur[g]] != 0
            cur[g] += 1
            bits_act[g] -= 1
            live[g[~test]] = False
            h = g[test]
            if h.size == 0:
                continue
            reads_max = np.minimum(size - 1 - n_act[h], bits_act[h])
            window = bits[cur[h, None] + window_cols[None, :]]
            window = window & (window_cols[None, :] < reads_max[:, None])
            has_one = window.any(axis=1)
            first_one = np.argmax(window, axis=1)
            zeros = np.where(has_one, first_one, reads_max)
            consumed = np.where(has_one, first_one + 1, reads_max)
            n_act[h] += zeros
            x[h] |= _U64_ONE << n_act[h].astype(np.uint64)
            n_act[h] += 1
            cur[h] += consumed
            bits_act[h] -= consumed
        words[act, k] = x
        n[act] = n_act
        bits_left[act] = bits_act
        cursor[act] = cur
    return words
