"""ZFP-family transform-based fixed-rate compressor.

Follows the published ZFP pipeline (Lindstrom 2014) on 4^d blocks:
block-floating-point exponent alignment, the exact integer lifting
transform from the reference implementation, total-sequency coefficient
ordering, negabinary mapping, and embedded bit-plane coding with group
testing, truncated to a fixed per-block bit budget (cuZFP's only mode at
the time of the paper).
"""

from repro.compressors.zfp.zfpcompressor import CuZFP, ZFPCompressor

__all__ = ["ZFPCompressor", "CuZFP"]
