"""ZFP compressor facade: fixed-rate, fixed-precision, fixed-accuracy.

Stream layout::

    magic  b"ZFR1"
    fixed header (struct): version, dtype, ndim, planes, maxbits,
                           nblocks, mode, parameter
    shape  ndim * u64
    offset table ((nblocks + 1) * u64 bit offsets; variable-rate modes only)
    bit blob

Per block (inside the budget):

    1 bit   nonzero flag
    12 bits biased common exponent           (only if nonzero)
    ...     embedded-coded bit planes        (only if nonzero)
    ...     zero padding up to ``maxbits``   (fixed-rate mode only)

Fixed-rate is the paper's cuZFP mode: block ``b`` starts at bit
``b * maxbits``, which is what makes the stream GPU-decodable in
parallel.  Fixed-precision codes a constant number of bit planes per
block; fixed-accuracy truncates planes below a per-block cutoff derived
from the common exponent so the reconstruction error stays under an
absolute tolerance — the CPU-ZFP modes the paper notes were missing from
cuZFP.  Variable-rate streams carry an explicit per-block offset table
(the index a parallel decoder would need).
"""

from __future__ import annotations

import math
import struct
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.compressors.zfp import batch as B
from repro.compressors.zfp import blockcodec as BC
from repro.compressors.zfp import transform as T
from repro.errors import CorruptStreamError, DataError
from repro.telemetry import DEFAULT_BYTE_BUCKETS, get_telemetry
from repro.util.blocks import block_partition, block_reassemble
from repro.util.validation import check_dtype, check_shape_nd

_MAGIC = b"ZFR1"
_HDR = "<4sBBBBIQBd"
_DTYPES = {0: np.dtype(np.float32), 1: np.dtype(np.float64)}
_DTYPE_CODES = {v: k for k, v in _DTYPES.items()}

#: Bit planes kept per dtype; headroom notes in blockcodec/transform.
_PLANES = {0: 32, 1: 52}

_MODE_CODES = {
    CompressorMode.FIXED_RATE: 0,
    CompressorMode.FIXED_PRECISION: 1,
    CompressorMode.FIXED_ACCURACY: 2,
}
_CODE_MODES = {v: k for k, v in _MODE_CODES.items()}

#: Effectively-unbounded per-block budget for the variable-rate modes.
_UNBOUNDED = 1 << 20


def _accuracy_kmin(tolerance: float, e: int, planes: int, ndim: int) -> int:
    """Plane cutoff guaranteeing abs error <= tolerance for one block.

    Truncating planes below ``kmin`` perturbs each coefficient by
    ``< 2^kmin`` lattice units = ``2^(kmin + e - (planes-2))`` in value;
    the inverse transform amplifies the max coefficient error by at most
    ``(15/4)^ndim < 4^ndim``, so we solve for kmin with that conservative
    gain (matching zfp's accuracy-mode bookkeeping in spirit).
    """
    gain_log2 = 2 * ndim
    kmin = math.floor(math.log2(tolerance)) - gain_log2 - e + (planes - 2)
    return max(0, min(planes, kmin))


def _accuracy_kmin_array(
    tolerance: float, e: np.ndarray, planes: int, ndim: int
) -> np.ndarray:
    """Vectorized :func:`_accuracy_kmin` over per-block exponents."""
    base = math.floor(math.log2(tolerance)) - 2 * ndim + (planes - 2)
    return np.clip(base - e, 0, planes).astype(np.int64)


def _encode_blocks_scalar(
    words: np.ndarray,
    nonzero: np.ndarray,
    e: np.ndarray,
    size: int,
    planes: int,
    budgets: np.ndarray,
    kmins: np.ndarray,
    maxbits: int = 0,
) -> tuple[bytes, int, np.ndarray, np.ndarray]:
    """Seed per-block reference loop; same contract as
    :func:`repro.compressors.zfp.batch.encode_blocks`."""
    nblocks = words.shape[0]
    header_bits = 1 + BC.EBITS
    fixed_rate = maxbits > 0
    words_list = words.tolist()
    emitter = BC._Emitter()
    used_bits = np.zeros(nblocks, dtype=np.int64)
    offsets = np.zeros(nblocks + 1, dtype=np.uint64)
    for b in range(nblocks):
        offsets[b] = emitter.nbits
        if not nonzero[b]:
            emitter.emit_msb(0, 1)
            if fixed_rate:
                emitter.emit_msb(0, maxbits - 1)
            continue
        emitter.emit_msb(1, 1)
        emitter.emit_msb(int(e[b]) + BC.EBIAS, BC.EBITS)
        used_bits[b] = header_bits + BC.encode_block_planes(
            emitter, words_list[b], size, int(budgets[b]),
            kmin=int(kmins[b]), pad=fixed_rate,
        )
    offsets[nblocks] = emitter.nbits
    body, nbits = emitter.pack()
    return body, nbits, offsets, used_bits


class ZFPCompressor(Compressor):
    """Transform-based lossy compressor (ZFP family).

    Knobs (one per mode):

    * ``rate`` — bits per value; exact, data-independent ratio.
    * ``precision`` — bit planes kept per block (variable rate).
    * ``tolerance`` — absolute error bound (variable rate).

    The bit-plane coder dispatches through the kernel registry
    (:mod:`repro.kernels`): the scalar per-block reference loops, the
    vectorized all-blocks kernels of
    :mod:`repro.compressors.zfp.batch`, or the compiled native tier.
    All tiers produce **byte-identical** streams.  ``backend`` pins a
    tier for this instance; ``None`` defers to the process selection
    (``REPRO_BACKEND`` / :func:`repro.kernels.use`).  ``batched`` is the
    legacy knob: ``False`` forces the scalar tier, ``True`` forces a
    vectorized tier (``auto`` resolution, ignoring a ``scalar``
    environment selection) — the switch ``benchmarks/bench_fastpath.py``
    uses to measure the seed path.
    """

    name = "zfp"
    supported_modes = (
        CompressorMode.FIXED_RATE,
        CompressorMode.FIXED_PRECISION,
        CompressorMode.FIXED_ACCURACY,
    )

    def __init__(
        self, batched: bool | None = None, backend: str | None = None
    ) -> None:
        if batched is None:
            self._backend = backend
        elif batched:
            self._backend = backend if backend is not None else "auto"
        else:
            self._backend = "scalar"

    @property
    def batched(self) -> bool:
        """Whether the resolved bit-plane coder is a vectorized tier."""
        from repro import kernels

        return kernels.resolve_name("zfp.encode", self._backend) != "scalar"

    @batched.setter
    def batched(self, value: bool | None) -> None:
        if value is None:
            self._backend = None
        else:
            self._backend = "auto" if value else "scalar"

    @property
    def backend(self) -> str:
        """The tier the bit-plane coder resolves to right now."""
        from repro import kernels

        return kernels.resolve_name("zfp.encode", self._backend)

    def compress(
        self,
        data: np.ndarray,
        rate: float | None = None,
        precision: int | None = None,
        tolerance: float | None = None,
        mode: CompressorMode | str | None = None,
        **_: Any,
    ) -> CompressedBuffer:
        mode = self._resolve_mode(mode, rate, precision, tolerance)
        self.check_mode(mode)
        data = np.asarray(data)
        check_dtype(data, [np.float32, np.float64], "data")
        check_shape_nd(data, (1, 2, 3), "data")
        if not np.all(np.isfinite(data)):
            raise DataError("ZFP input must be finite (no NaN/Inf)")

        size = 4**data.ndim
        planes = _PLANES[_DTYPE_CODES[data.dtype]]
        header_bits = 1 + BC.EBITS

        if mode is CompressorMode.FIXED_RATE:
            maxbits = int(round(rate * size))
            if maxbits < header_bits + 1:
                raise DataError(
                    f"rate {rate} too small: needs at least "
                    f"{(header_bits + 1) / size:.3f} bits/value for the block header"
                )
            parameter = float(rate)
        elif mode is CompressorMode.FIXED_PRECISION:
            if not 1 <= int(precision) <= planes:
                raise DataError(f"precision must be in [1, {planes}]")
            maxbits = 0
            parameter = float(precision)
        else:
            if tolerance is None or tolerance <= 0 or not np.isfinite(tolerance):
                raise DataError("fixed-accuracy mode needs a positive tolerance")
            maxbits = 0
            parameter = float(tolerance)

        tm = get_telemetry()
        with tm.span("zfp.transform", bytes=data.nbytes):
            blocks, grid, _ = block_partition(data, (4,) * data.ndim, mode="edge")
            nblocks = blocks.shape[0]
            flat = blocks.reshape(nblocks, size).astype(np.float64)

            amax = np.abs(flat).max(axis=1)
            nonzero = amax > 0
            e = np.zeros(nblocks, dtype=np.int64)
            _, e_nz = np.frexp(amax[nonzero])
            e[nonzero] = e_nz  # amax < 2**e
            scale_exp = (planes - 2) - e
            ints = np.rint(np.ldexp(flat, scale_exp[:, None])).astype(np.int64)

            coeffs = T.forward_transform(ints.reshape(blocks.shape))
        with tm.span("zfp.reorder", bytes=data.nbytes):
            perm = T.sequency_order(data.ndim)
            ordered = coeffs.reshape(nblocks, size)[:, perm]
            u = BC.int_to_negabinary(ordered)

        fixed_rate = mode is CompressorMode.FIXED_RATE
        if fixed_rate:
            budgets = np.full(nblocks, maxbits - header_bits, dtype=np.int64)
            kmins = np.zeros(nblocks, dtype=np.int64)
        elif mode is CompressorMode.FIXED_PRECISION:
            budgets = np.full(nblocks, _UNBOUNDED, dtype=np.int64)
            kmins = np.full(nblocks, planes - int(precision), dtype=np.int64)
        else:
            budgets = np.full(nblocks, _UNBOUNDED, dtype=np.int64)
            kmins = _accuracy_kmin_array(parameter, e, planes, data.ndim)
        from repro import kernels

        coder = kernels.resolve_name("zfp.encode", self._backend)
        with tm.span("zfp.bitplane", bytes=data.nbytes, nblocks=nblocks,
                     mode=mode.value, backend=coder,
                     batched=coder != "scalar"):
            words = BC.plane_words(u, planes, backend=self._backend)
            body, nbits, offsets, used_bits = kernels.call(
                "zfp.encode", words, nonzero, e, size, planes, budgets,
                kmins, maxbits=maxbits if fixed_rate else 0,
                backend=self._backend,
            )
            if fixed_rate and nbits != nblocks * maxbits:
                raise AssertionError("fixed-rate invariant violated")
        # Bit-plane truncation stats: bits each block actually coded (before
        # any fixed-rate zero padding) — the quantity Fig. 10's rate knob
        # trades against error.
        tm.observe_many("zfp.block_used_bits", used_bits[nonzero])
        if fixed_rate:
            tm.count("zfp.padding_bits",
                     int((np.int64(maxbits) - used_bits[nonzero]).sum()))
        tm.count("zfp.zero_blocks", int((~nonzero).sum()))

        header = struct.pack(
            _HDR,
            _MAGIC,
            2,
            _DTYPE_CODES[data.dtype],
            data.ndim,
            planes,
            maxbits,
            nblocks,
            _MODE_CODES[mode],
            parameter,
        )
        shape_bytes = struct.pack(f"<{data.ndim}Q", *data.shape)
        offset_bytes = b"" if fixed_rate else offsets.tobytes()
        payload = header + shape_bytes + offset_bytes + body
        tm.count("zfp.bytes_in", data.nbytes)
        tm.count("zfp.bytes_out", len(payload))
        tm.observe("zfp.payload_bytes", len(payload), bounds=DEFAULT_BYTE_BUCKETS)
        return CompressedBuffer(
            payload=payload,
            original_shape=data.shape,
            original_dtype=data.dtype,
            mode=mode,
            parameter=parameter,
            meta={
                "maxbits_per_block": maxbits,
                "zero_blocks": int((~nonzero).sum()),
                "body_bits": int(nbits),
            },
        )

    def decompress(self, buf: CompressedBuffer | bytes) -> np.ndarray:
        payload = buf.payload if isinstance(buf, CompressedBuffer) else buf
        hsize = struct.calcsize(_HDR)
        if len(payload) < hsize or payload[:4] != _MAGIC:
            raise CorruptStreamError("bad ZFP stream header")
        (
            _m, version, dtype_code, ndim, planes, maxbits, nblocks,
            mode_code, parameter,
        ) = struct.unpack(_HDR, payload[:hsize])
        if version != 2:
            raise CorruptStreamError(f"unsupported ZFP stream version {version}")
        if mode_code not in _CODE_MODES:
            raise CorruptStreamError(f"unknown ZFP mode code {mode_code}")
        mode = _CODE_MODES[mode_code]
        dtype = _DTYPES[dtype_code]
        pos = hsize
        shape = struct.unpack(f"<{ndim}Q", payload[pos : pos + 8 * ndim])
        pos += 8 * ndim
        size = 4**ndim
        header_bits = 1 + BC.EBITS
        fixed_rate = mode is CompressorMode.FIXED_RATE

        if fixed_rate:
            offsets = np.arange(nblocks + 1, dtype=np.int64) * maxbits
        else:
            if len(payload) < pos + 8 * (nblocks + 1):
                raise CorruptStreamError("ZFP stream truncated (offset table)")
            offsets = np.frombuffer(
                payload[pos : pos + 8 * (nblocks + 1)], dtype=np.uint64
            ).astype(np.int64)
            pos += 8 * (nblocks + 1)

        body = np.frombuffer(payload[pos:], dtype=np.uint8)
        total_bits = int(offsets[-1])
        if body.size * 8 < total_bits:
            raise CorruptStreamError("ZFP stream truncated (body)")
        bits = np.unpackbits(body, count=total_bits, bitorder="big")

        tm = get_telemetry()
        from repro import kernels

        coder = kernels.resolve_name("zfp.decode", self._backend)
        with tm.span("zfp.bitplane", bytes=len(payload), nblocks=nblocks,
                     direction="decompress", backend=coder,
                     batched=coder != "scalar"):
            nonzero, e = B.read_block_headers(bits, offsets)
            spans = offsets[1:] - offsets[:-1]
            if fixed_rate:
                budgets = np.full(
                    nblocks, maxbits - header_bits, dtype=np.int64
                )
                kmins = np.zeros(nblocks, dtype=np.int64)
            elif mode is CompressorMode.FIXED_PRECISION:
                budgets = spans - header_bits
                kmins = np.full(
                    nblocks, planes - int(parameter), dtype=np.int64
                )
            else:
                budgets = spans - header_bits
                kmins = _accuracy_kmin_array(parameter, e, planes, ndim)
            # Trailing zero padding so decode window gathers stay in
            # range; per-block budgets guarantee it is never decoded.
            padded = np.concatenate([bits, np.zeros(128, dtype=np.uint8)])
            words_mat = kernels.call(
                "zfp.decode", padded, offsets, nonzero, planes, size,
                budgets, kmins, backend=self._backend,
            )
            u = BC.words_matrix_to_coeffs(words_mat, size, backend=self._backend)

        with tm.span("zfp.reorder", direction="decompress"):
            ordered = BC.negabinary_to_int(u)
            inv_perm = T.inverse_sequency_order(ndim)
            coeffs = ordered[:, inv_perm].reshape((nblocks,) + (4,) * ndim)
        with tm.span("zfp.transform", direction="decompress"):
            ints = T.inverse_transform(coeffs)
            scale_exp = -((planes - 2) - e)
            flat = np.ldexp(ints.reshape(nblocks, size).astype(np.float64), scale_exp[:, None])
            flat[~nonzero] = 0.0

            grid = tuple(-(-s // 4) for s in shape)
            arr = block_reassemble(flat.reshape((nblocks,) + (4,) * ndim), grid, shape)
        return arr.astype(dtype)

    @staticmethod
    def _resolve_mode(
        mode: CompressorMode | str | None,
        rate: float | None,
        precision: int | None,
        tolerance: float | None,
    ) -> CompressorMode:
        if isinstance(mode, str):
            mode = CompressorMode(mode)
        if mode is None:
            given = [m for m, v in (
                (CompressorMode.FIXED_RATE, rate),
                (CompressorMode.FIXED_PRECISION, precision),
                (CompressorMode.FIXED_ACCURACY, tolerance),
            ) if v is not None]
            if len(given) != 1:
                raise DataError(
                    "pass exactly one of rate=, precision=, tolerance= "
                    "(or an explicit mode=)"
                )
            return given[0]
        knob_map = {
            CompressorMode.FIXED_RATE: rate,
            CompressorMode.FIXED_PRECISION: precision,
            CompressorMode.FIXED_ACCURACY: tolerance,
        }
        if mode not in knob_map:
            return mode  # non-ZFP mode: let check_mode report it properly
        if knob_map[mode] is None:
            raise DataError(f"mode {mode.value} requires its knob argument")
        return mode


class CuZFP(ZFPCompressor):
    """cuZFP as evaluated in the paper: **fixed-rate mode only**.

    Functionally identical streams to :class:`ZFPCompressor` in that mode
    (the CUDA port codes the same layout); the restricted
    ``supported_modes`` models the prototype's limitation the paper works
    around (Section IV-B-1).
    """

    name = "cuzfp"
    supported_modes = (CompressorMode.FIXED_RATE,)
