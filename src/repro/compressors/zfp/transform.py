"""ZFP's integer decorrelating transform, vectorized across blocks.

The forward/inverse lifting steps are transcribed from the reference
implementation (``fwd_lift`` / ``inv_lift`` in zfp): an exact,
integer-to-integer approximation of a 4-point orthogonal transform

             ( 4  4  4  4)                  ( 4  6 -4 -1)
    fwd 1/16 ( 5  1 -1 -5)      inv   1/4 * ( 4  2  4  5)
             (-4  4  4 -4)                  ( 4 -2  4 -5)
             (-2  6 -6  2)                  ( 4 -6 -4  1)

applied along every axis of a 4^d block.  Every row of the forward matrix
has L1 norm <= 1, so the transform never grows the max coefficient
magnitude — which is what bounds the plane count needed downstream.

Roundtrip rounding bound
------------------------

The lifting steps drop fractional bits (arithmetic right shifts), so
``inverse_transform(forward_transform(b))`` is only *bounded*, not
exact.  The worst-case pointwise error is magnitude independent (the
shifts only ever discard low-order bits, so the error depends on input
residues mod small powers of two, not on size):

* **1-D**: exhaustive search over all residue blocks ``[-8, 8)^4``
  gives a max roundtrip error ``E_1 = 2``.
* **composition**: applying the d-th inverse axis pass to a block whose
  other axes already carry error ``E_{d-1}`` amplifies that error by at
  most the largest inverse-matrix row L1 norm, ``15/4`` (every row of
  ``1/4 * (4 6 -4 -1)`` etc. sums to ``15/4`` in absolute value), and
  the pass's own rounding adds at most ``E_1``:
  ``E_d <= E_1 + (15/4) * E_{d-1}``.
* so ``E_2 <= 2 + 7.5 = 9.5`` (randomized adversarial search attains
  exactly 9) and ``E_3 <= 2 + (15/4) * 9.5 ~= 37.6`` (search attains
  30; ``tests/test_property_based.py`` pins that block and asserts the
  documented bound of 40 = 37.6 rounded up with slack for the inverse
  pass's own shift interactions).

All functions operate on an int64 batch of shape ``(nblocks, 4, ..., 4)``
and rely on numpy's arithmetic (sign-preserving) right shift.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import DataError


def _axis_views(blocks: np.ndarray, axis: int) -> tuple[np.ndarray, ...]:
    idx = [slice(None)] * blocks.ndim
    views = []
    for i in range(4):
        idx[axis] = i
        views.append(blocks[tuple(idx)])
    return tuple(views)


def _fwd_lift_axis(blocks: np.ndarray, axis: int) -> None:
    """In-place forward lifting along ``axis`` (must have length 4)."""
    x, y, z, w = (v.copy() for v in _axis_views(blocks, axis))
    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1
    for i, v in enumerate((x, y, z, w)):
        idx = [slice(None)] * blocks.ndim
        idx[axis] = i
        blocks[tuple(idx)] = v


def _inv_lift_axis(blocks: np.ndarray, axis: int) -> None:
    """In-place inverse lifting along ``axis``; exact inverse of forward."""
    x, y, z, w = (v.copy() for v in _axis_views(blocks, axis))
    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w
    for i, v in enumerate((x, y, z, w)):
        idx = [slice(None)] * blocks.ndim
        idx[axis] = i
        blocks[tuple(idx)] = v


def forward_transform(blocks: np.ndarray) -> np.ndarray:
    """Forward transform over all block axes; returns a new int64 array."""
    if blocks.dtype != np.int64 or any(s != 4 for s in blocks.shape[1:]):
        raise DataError("expected int64 blocks of shape (n, 4, ..., 4)")
    out = blocks.copy()
    for axis in range(1, blocks.ndim):
        _fwd_lift_axis(out, axis)
    return out


def inverse_transform(blocks: np.ndarray) -> np.ndarray:
    """Inverse transform; ``inverse_transform(forward_transform(b)) == b``."""
    if blocks.dtype != np.int64 or any(s != 4 for s in blocks.shape[1:]):
        raise DataError("expected int64 blocks of shape (n, 4, ..., 4)")
    out = blocks.copy()
    for axis in range(blocks.ndim - 1, 0, -1):
        _inv_lift_axis(out, axis)
    return out


@lru_cache(maxsize=8)
def sequency_order(ndim: int) -> np.ndarray:
    """Flat coefficient permutation ordering a 4^d block by total sequency.

    Low-frequency (low coordinate-sum) coefficients come first so the
    embedded coder spends early bit planes on the coefficients that carry
    the most energy, mirroring zfp's ``PERM`` tables.
    """
    if not 1 <= ndim <= 3:
        raise DataError("sequency_order supports 1-3 dimensions")
    coords = np.stack(
        np.meshgrid(*[np.arange(4)] * ndim, indexing="ij"), axis=-1
    ).reshape(-1, ndim)
    total = coords.sum(axis=1)
    sumsq = (coords**2).sum(axis=1)
    flat = np.arange(coords.shape[0])
    return np.lexsort((flat, sumsq, total)).astype(np.int64)


def inverse_sequency_order(ndim: int) -> np.ndarray:
    """Permutation undoing :func:`sequency_order`."""
    perm = sequency_order(ndim)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size)
    return inv
