"""ZFP per-block embedded coding: exponent alignment, negabinary, group
testing — exact transcription of the reference ``encode_ints`` /
``decode_ints`` control flow, truncated to a fixed per-block bit budget.

Stream order convention: bits are concatenated MSB-first at the byte level
(``np.packbits(bitorder="big")``); *within* a multi-bit value-bit write the
bits appear LSB-first, exactly like zfp's ``stream_write_bits``.  Each
block occupies exactly ``maxbits`` bits so block ``b`` starts at bit
``b * maxbits`` — the property that makes fixed-rate streams seekable and
GPU-decodable in parallel.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError, DataError
from repro.telemetry import get_telemetry
from repro.util.bits import pack_varlen_codes

#: Negabinary conversion mask (alternating bits), as in zfp's NBMASK.
NBMASK = np.uint64(0xAAAAAAAAAAAAAAAA)

#: Bits used for the per-block common exponent (covers float64's range).
EBITS = 12
EBIAS = 2048


def int_to_negabinary(i: np.ndarray) -> np.ndarray:
    """Two's complement int64 -> negabinary uint64 (zfp's int2uint)."""
    u = i.astype(np.int64).view(np.uint64)
    return (u + NBMASK) ^ NBMASK


def negabinary_to_int(u: np.ndarray) -> np.ndarray:
    """Inverse of :func:`int_to_negabinary` (zfp's uint2int)."""
    u = u.astype(np.uint64)
    return ((u ^ NBMASK) - NBMASK).view(np.int64)


def plane_words(u: np.ndarray, nplanes: int, backend: str | None = None) -> np.ndarray:
    """Bit-plane words: ``words[b, k]`` has bit ``i`` = bit ``k`` of
    coefficient ``i`` of block ``b``.

    Dispatches the ``zfp.transpose`` kernel (per-plane reduction in the
    ``scalar`` tier, an ``unpackbits``/``packbits`` round trip in
    ``numpy``, a compiled sparse-bit loop in ``native``); ``backend``
    pins a tier for this call.
    """
    from repro.kernels import call

    nblocks, size = u.shape
    if size > 64:
        raise DataError("plane words require block size <= 64 coefficients")
    return call("zfp.transpose", u, nplanes, backend=backend)


def _plane_words_numpy(u: np.ndarray, nplanes: int) -> np.ndarray:
    """(size x nplanes) bit transpose via one ``unpackbits``/``packbits``
    round trip per batch — constant cost in ``nplanes`` instead of one
    pass per plane.  Little-endian byte order makes bit ``k`` of a uint64
    land at flat position ``k`` after ``unpackbits(bitorder="little")``,
    so the transpose is a plain axis swap between the coefficient and
    plane axes."""
    nblocks, size = u.shape
    u = np.ascontiguousarray(u)
    bits = np.unpackbits(
        u.view(np.uint8).reshape(nblocks, size, 8), axis=2, bitorder="little"
    )[:, :, :nplanes]
    t = np.ascontiguousarray(bits.transpose(0, 2, 1))
    if size < 64:
        t = np.concatenate(
            [t, np.zeros((nblocks, nplanes, 64 - size), dtype=np.uint8)], axis=2
        )
    packed = np.packbits(t, axis=2, bitorder="little")
    return packed.reshape(nblocks, nplanes * 8).view(np.uint64).copy()


def _plane_words_scalar(u: np.ndarray, nplanes: int) -> np.ndarray:
    """Seed reference: one masked reduction per plane."""
    nblocks, size = u.shape
    weights = np.uint64(1) << np.arange(size, dtype=np.uint64)
    words = np.empty((nblocks, nplanes), dtype=np.uint64)
    for k in range(nplanes):
        bits = (u >> np.uint64(k)) & np.uint64(1)
        words[:, k] = (bits * weights).sum(axis=1, dtype=np.uint64)
    return words


def _rev_bits(x: int, n: int) -> int:
    """Reverse the low ``n`` bits of ``x``."""
    if n <= 1:
        return x & 1 if n else 0
    return int(format(x & ((1 << n) - 1), f"0{n}b")[::-1], 2)


class _Emitter:
    """Accumulates (code, length) pairs; value bits are LSB-first like
    zfp's ``stream_write_bits``.  One vectorized pack at the end."""

    __slots__ = ("codes", "lengths", "nbits")

    def __init__(self) -> None:
        self.codes: list[int] = []
        self.lengths: list[int] = []
        self.nbits = 0

    def emit_msb(self, value: int, nbits: int) -> None:
        """Emit ``nbits`` of ``value`` MSB-first (headers, single bits)."""
        while nbits > 57:
            self.codes.append((value >> (nbits - 57)) & ((1 << 57) - 1))
            self.lengths.append(57)
            nbits -= 57
            self.nbits += 57
        if nbits:
            self.codes.append(value & ((1 << nbits) - 1))
            self.lengths.append(nbits)
            self.nbits += nbits

    def emit_lsb(self, value: int, nbits: int) -> None:
        """Emit the low ``nbits`` of ``value`` starting from the LSB."""
        while nbits > 0:
            chunk = min(nbits, 32)
            self.emit_msb(_rev_bits(value & ((1 << chunk) - 1), chunk), chunk)
            value >>= chunk
            nbits -= chunk

    def pack(self) -> tuple[bytes, int]:
        get_telemetry().count("zfp.emitted_bits", self.nbits)
        codes = np.array(self.codes, dtype=np.uint64)
        lengths = np.array(self.lengths, dtype=np.int64)
        return pack_varlen_codes(codes, lengths)


class _BlockReader:
    """Cursor over one block's bits held in a single Python int.

    Bit 0 of the stream is the *most significant* bit of ``value`` so that
    sequential reads walk the int from the top down.
    """

    __slots__ = ("value", "total", "pos")

    def __init__(self, value: int, total: int) -> None:
        self.value = value
        self.total = total
        self.pos = 0

    def read_bit(self) -> int:
        if self.pos >= self.total:
            raise CorruptStreamError("ZFP block bit budget overrun")
        b = (self.value >> (self.total - 1 - self.pos)) & 1
        self.pos += 1
        return b

    def read_msb(self, nbits: int) -> int:
        if nbits == 0:
            return 0
        if self.pos + nbits > self.total:
            raise CorruptStreamError("ZFP block bit budget overrun")
        v = (self.value >> (self.total - self.pos - nbits)) & ((1 << nbits) - 1)
        self.pos += nbits
        return v

    def read_lsb(self, nbits: int) -> int:
        return _rev_bits(self.read_msb(nbits), nbits)


def encode_block_planes(
    emit: _Emitter, words: list[int], size: int, budget: int, kmin: int = 0,
    pad: bool = True,
) -> int:
    """Embedded-code one block's bit planes, MSB plane first.

    ``words`` is indexed by plane (0 = LSB); emission stops when ``budget``
    bits have been spent or plane ``kmin`` has been coded (fixed-precision
    / fixed-accuracy truncation).  Transcribes zfp's ``encode_ints`` loop
    including the implicit final-coefficient bit.  Returns the number of
    bits emitted (before padding); pads to ``budget`` when ``pad``.
    """
    bits = budget
    n = 0
    for k in range(len(words) - 1, kmin - 1, -1):
        if bits == 0:
            break
        x = words[k]
        # step 2: value bits for the already-significant group
        m = min(n, bits)
        bits -= m
        emit.emit_lsb(x & ((1 << m) - 1), m)
        x >>= m
        # step 3: unary run-length / group testing
        while True:
            if not (n < size and bits):
                break
            bits -= 1
            test = 1 if x else 0
            emit.emit_msb(test, 1)
            if not test:
                break
            while True:
                if not (n < size - 1 and bits):
                    break
                bits -= 1
                b = x & 1
                emit.emit_msb(b, 1)
                if b:
                    break
                x >>= 1
                n += 1
            x >>= 1
            n += 1
    if bits and pad:
        emit.emit_msb(0, bits)  # fixed-rate zero padding
    return budget - bits


def decode_block_planes(
    reader: _BlockReader, nplanes: int, size: int, budget: int, kmin: int = 0
) -> list[int]:
    """Mirror of :func:`encode_block_planes`; returns plane words."""
    words = [0] * nplanes
    bits = budget
    n = 0
    for k in range(nplanes - 1, kmin - 1, -1):
        if bits == 0:
            break
        m = min(n, bits)
        bits -= m
        x = reader.read_lsb(m)
        while True:
            if not (n < size and bits):
                break
            bits -= 1
            if not reader.read_bit():
                break
            while True:
                if not (n < size - 1 and bits):
                    break
                bits -= 1
                if reader.read_bit():
                    break
                n += 1
            x += 1 << n
            n += 1
        words[k] = x
    return words


def _decode_blocks_scalar(
    bits: np.ndarray,
    offsets: np.ndarray,
    nonzero: np.ndarray,
    planes: int,
    size: int,
    budgets: np.ndarray,
    kmins: np.ndarray,
) -> np.ndarray:
    """Seed per-block reference decode; same contract as
    :func:`repro.compressors.zfp.batch.decode_blocks`.

    Each block's bit span is packed into one Python int and walked with
    :class:`_BlockReader` / :func:`decode_block_planes`, exactly like
    the original per-block decompress loop (headers are re-read from the
    stream; the precomputed ``nonzero`` flags are only consulted by the
    vectorized tiers).
    """
    nblocks = offsets.size - 1
    words_mat = np.zeros((nblocks, planes), dtype=np.uint64)
    for b in range(nblocks):
        lo, hi = int(offsets[b]), int(offsets[b + 1])
        span = hi - lo
        if span <= 0:
            raise CorruptStreamError("non-increasing ZFP block offsets")
        chunk = bits[lo:hi]
        pad = (-span) % 8
        if pad:
            chunk = np.concatenate([chunk, np.zeros(pad, dtype=np.uint8)])
        value = int.from_bytes(
            np.packbits(chunk, bitorder="big").tobytes(), "big"
        ) >> pad
        reader = _BlockReader(value, span)
        if not reader.read_bit():
            continue
        reader.read_msb(EBITS)  # exponent: already parsed by the caller
        words_mat[b] = decode_block_planes(
            reader, planes, size, int(budgets[b]), kmin=int(kmins[b])
        )
    return words_mat


def words_matrix_to_coeffs(
    words: np.ndarray, size: int, backend: str | None = None
) -> np.ndarray:
    """Inverse of :func:`plane_words` over a whole batch
    (``zfp.transpose_inverse`` kernel).

    ``words`` has shape ``(nblocks, nplanes)``; returns ``(nblocks, size)``
    negabinary coefficients.
    """
    from repro.kernels import call

    return call("zfp.transpose_inverse", words, size, backend=backend)


def _words_matrix_numpy(words: np.ndarray, size: int) -> np.ndarray:
    """Same unpackbits/packbits transpose as :func:`_plane_words_numpy`,
    in the other direction: plane axis in, coefficient axis out."""
    nblocks, nplanes = words.shape
    words = np.ascontiguousarray(words)
    bits = np.unpackbits(
        words.view(np.uint8).reshape(nblocks, nplanes, 8),
        axis=2,
        bitorder="little",
    )[:, :, :size]
    t = np.ascontiguousarray(bits.transpose(0, 2, 1))
    if nplanes < 64:
        t = np.concatenate(
            [t, np.zeros((nblocks, size, 64 - nplanes), dtype=np.uint8)], axis=2
        )
    packed = np.packbits(t, axis=2, bitorder="little")
    return packed.reshape(nblocks, size * 8).view(np.uint64).copy()


def _words_matrix_scalar(words: np.ndarray, size: int) -> np.ndarray:
    """Seed reference: one masked scatter per plane."""
    nblocks, nplanes = words.shape
    u = np.zeros((nblocks, size), dtype=np.uint64)
    idx = np.arange(size, dtype=np.uint64)
    for k in range(nplanes):
        bits = (words[:, k : k + 1] >> idx) & np.uint64(1)
        u |= bits << np.uint64(k)
    return u


def words_to_coeffs(words: list[int], size: int) -> np.ndarray:
    """Transpose plane words back to per-coefficient negabinary uints."""
    u = np.zeros(size, dtype=np.uint64)
    for k, x in enumerate(words):
        if x:
            idx = 0
            while x:
                if x & 1:
                    u[idx] |= np.uint64(1) << np.uint64(k)
                x >>= 1
                idx += 1
    return u
