"""Temporal decimation — the baseline lossy compression replaces.

Decimation keeps every ``keep_every``-th snapshot and drops the rest
(paper Section I: "Decimation stores one snapshot every other time step
...  This process can lead to a loss of valuable simulation information").
Reconstruction interpolates the missing snapshots from the kept ones —
nearest-neighbor (what an analyst implicitly does when reusing the
closest stored snapshot) or linear in time.

The storage ratio is exactly ``n / n_kept``; quality on the *dropped*
snapshots is whatever interpolation can recover, which is the quantity
the decimation-vs-compression ablation benchmark compares against
error-bounded compression at the same storage budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosmo.datasets import GridDataset
from repro.cosmo.timeseries import SnapshotSeries
from repro.errors import DataError


@dataclass
class DecimatedSeries:
    """Kept snapshots plus everything needed to reconstruct the series."""

    times: np.ndarray            # all original times
    kept_indices: np.ndarray
    kept_snapshots: list[GridDataset]
    interpolation: str

    @property
    def storage_ratio(self) -> float:
        """Original bytes over stored bytes (the decimation 'compression
        ratio')."""
        return self.times.size / self.kept_indices.size

    def reconstruct(self) -> list[GridDataset]:
        """Rebuild all snapshots; kept ones come back bit-exact."""
        kept_times = self.times[self.kept_indices]
        out: list[GridDataset] = []
        for i, t in enumerate(self.times):
            where = np.searchsorted(kept_times, t)
            if where < kept_times.size and kept_times[where] == t:
                out.append(self.kept_snapshots[where])
                continue
            lo = max(0, where - 1)
            hi = min(kept_times.size - 1, where)
            if self.interpolation == "nearest" or lo == hi:
                pick = lo if (hi == lo or t - kept_times[lo] <= kept_times[hi] - t) else hi
                out.append(self.kept_snapshots[pick])
            else:
                w = (t - kept_times[lo]) / (kept_times[hi] - kept_times[lo])
                a, b = self.kept_snapshots[lo], self.kept_snapshots[hi]
                fields = {
                    name: (
                        (1.0 - w) * a.fields[name].astype(np.float64)
                        + w * b.fields[name].astype(np.float64)
                    ).astype(a.fields[name].dtype)
                    for name in a.fields
                }
                out.append(GridDataset(fields=fields, box_size=a.box_size,
                                       name=f"interp_t{t:g}"))
        return out


def decimate(
    series: SnapshotSeries,
    keep_every: int = 2,
    interpolation: str = "linear",
) -> DecimatedSeries:
    """Keep every ``keep_every``-th snapshot (always including the last)."""
    if keep_every < 2:
        raise DataError("keep_every must be >= 2 (otherwise nothing is saved)")
    if interpolation not in ("nearest", "linear"):
        raise DataError("interpolation must be 'nearest' or 'linear'")
    n = series.n_snapshots
    kept = list(range(0, n, keep_every))
    if kept[-1] != n - 1:
        kept.append(n - 1)
    kept_idx = np.array(kept, dtype=np.int64)
    return DecimatedSeries(
        times=series.times.copy(),
        kept_indices=kept_idx,
        kept_snapshots=[series.snapshots[i] for i in kept_idx],
        interpolation=interpolation,
    )
