"""Compressor adapters.

:class:`Reshaped3D` implements the paper's Section IV-B-4 workflow for
1-D HACC fields: view the array as a zero-padded 3-D slab (the paper uses
``2,097,152 x 8 x 8`` for cuZFP and ``512^3`` for GPU-SZ), compress the
slab, and strip the padding on reconstruction.  "The time overhead of
this conversion is negligible because we only pass the pointer and
specify the data dimension" — true here as well: the conversion is a
reshape plus (at most) one zero-pad copy.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.errors import CorruptStreamError, DataError
from repro.util.dims import convert_1d_to_3d, convert_3d_to_1d

_MAGIC = b"RSH1"


class Reshaped3D(Compressor):
    """Wrap a compressor so 1-D inputs are compressed as 3-D slabs.

    ``tail_shape`` is the trailing (y, z) slab cross-section; the leading
    extent is ``ceil(n / prod(tail_shape))``, so there is always exactly
    one partition (the paper's multi-partition split is an artifact of
    its MPI decomposition, not of the algorithm).
    """

    def __init__(self, inner: Compressor, tail_shape: tuple[int, int] = (8, 8)) -> None:
        if any(t < 1 for t in tail_shape):
            raise DataError("tail_shape extents must be positive")
        self.inner = inner
        self.tail_shape = tail_shape
        self.name = f"{inner.name}+3d"
        self.supported_modes = inner.supported_modes

    def compress(self, data: np.ndarray, **params: Any) -> CompressedBuffer:
        data = np.asarray(data)
        if data.ndim != 1:
            raise DataError("Reshaped3D expects 1-D input; pass N-D data directly")
        tail = int(np.prod(self.tail_shape))
        lead = max(1, -(-data.size // tail))
        shape = (lead, *self.tail_shape)
        partitions, n = convert_1d_to_3d(data, shape)
        inner_buf = self.inner.compress(partitions[0], **params)
        payload = _MAGIC + struct.pack("<Q", n) + inner_buf.payload
        return CompressedBuffer(
            payload=payload,
            original_shape=(n,),
            original_dtype=data.dtype,
            mode=inner_buf.mode,
            parameter=inner_buf.parameter,
            meta={**inner_buf.meta, "slab_shape": shape},
        )

    def decompress(self, buf: CompressedBuffer | bytes) -> np.ndarray:
        payload = buf.payload if isinstance(buf, CompressedBuffer) else buf
        if payload[:4] != _MAGIC:
            raise CorruptStreamError("bad Reshaped3D magic")
        (n,) = struct.unpack("<Q", payload[4:12])
        slab = self.inner.decompress(payload[12:])
        return convert_3d_to_1d(slab[None, ...], n)
