"""Error-bounded and fixed-rate lossy compressors.

Public entry points:

* :class:`repro.compressors.sz.SZCompressor` — prediction-based,
  error-bounded (SZ family; the GPU variant the paper calls GPU-SZ).
* :class:`repro.compressors.zfp.ZFPCompressor` — transform-based,
  fixed-rate (ZFP family; the CUDA variant the paper calls cuZFP).
* :func:`get_compressor` / :func:`available_compressors` — name-based
  registry used by Foresight JSON configs.
"""

from repro.compressors.base import (
    CompressedBuffer,
    Compressor,
    CompressorMode,
)
from repro.compressors.registry import (
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compressors.adapters import Reshaped3D
from repro.compressors.decimation import DecimatedSeries, decimate
from repro.compressors.streaming import ChunkedCompressor
from repro.compressors.sz import GPUSZ, SZCompressor
from repro.compressors.temporal import TemporalCompressor, reference_digest
from repro.compressors.zfp import CuZFP, ZFPCompressor

__all__ = [
    "CompressedBuffer",
    "Compressor",
    "CompressorMode",
    "available_compressors",
    "get_compressor",
    "register_compressor",
    "SZCompressor",
    "GPUSZ",
    "ZFPCompressor",
    "CuZFP",
    "Reshaped3D",
    "DecimatedSeries",
    "decimate",
    "ChunkedCompressor",
    "TemporalCompressor",
    "reference_digest",
]
