"""Linear-scaling quantization and escape-coded symbol mapping.

SZ quantizes prediction residuals into ``2R`` uniform bins of width
``2 * error_bound`` centered on the prediction.  Residuals outside the bin
range are "unpredictable": they get the reserved escape symbol 0 and their
exact integer value is stored in a raw outlier section (zigzag + fixed
width), matching SZ's unpredictable-data handling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CorruptStreamError, DataError
from repro.util.bits import pack_fixed_width, unpack_fixed_width

ESCAPE = 0  # reserved symbol for out-of-range residuals


def prequantize(data: np.ndarray, error_bound: float) -> np.ndarray:
    """Quantize values onto the lattice ``2*eb*Z`` (dual quantization step 1).

    ``rint`` guarantees ``|data - 2*eb*q| <= eb`` elementwise.
    """
    if error_bound <= 0 or not np.isfinite(error_bound):
        raise DataError(f"error bound must be a positive finite float, got {error_bound}")
    q = np.rint(data.astype(np.float64) / (2.0 * error_bound))
    if np.any(np.abs(q) > 2**62):
        raise DataError("error bound too small relative to data magnitude (int64 overflow)")
    return q.astype(np.int64)


def dequantize(q: np.ndarray, error_bound: float, dtype: np.dtype) -> np.ndarray:
    """Map lattice indices back to values (dual quantization inverse)."""
    return (q.astype(np.float64) * (2.0 * error_bound)).astype(dtype)


def residuals_to_symbols(residual: np.ndarray, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Map integer residuals to Huffman symbols with escape coding.

    Returns ``(symbols, outliers)``: symbols are in ``[0, 2*radius)`` with
    0 = escape; ``outliers`` lists the escaped residuals in scan order.
    """
    if radius < 2:
        raise DataError("quantization radius must be >= 2")
    flat = residual.ravel()
    inrange = np.abs(flat) < radius
    symbols = np.where(inrange, flat + radius, ESCAPE).astype(np.int64)
    outliers = flat[~inrange]
    return symbols, outliers


def symbols_to_residuals(symbols: np.ndarray, outliers: np.ndarray, radius: int) -> np.ndarray:
    """Inverse of :func:`residuals_to_symbols`."""
    symbols = np.asarray(symbols, dtype=np.int64)
    residual = symbols - radius
    escaped = np.flatnonzero(symbols == ESCAPE)
    if escaped.size != outliers.size:
        raise CorruptStreamError(
            f"outlier count mismatch: {escaped.size} escapes vs {outliers.size} stored"
        )
    residual[escaped] = outliers
    return residual


@dataclass(frozen=True)
class OutlierSection:
    """Serialized raw outliers: zigzag-mapped, fixed-width bit-packed."""

    payload: bytes
    count: int
    width: int

    @classmethod
    def encode(cls, outliers: np.ndarray) -> "OutlierSection":
        outliers = np.asarray(outliers, dtype=np.int64)
        if outliers.size == 0:
            return cls(payload=b"", count=0, width=0)
        zz = _zigzag(outliers)
        width = max(1, int(zz.max()).bit_length())
        if width > 57:
            raise DataError("outlier magnitude exceeds 57-bit packing limit")
        return cls(payload=pack_fixed_width(zz, width), count=outliers.size, width=width)

    def decode(self) -> np.ndarray:
        if self.count == 0:
            return np.zeros(0, dtype=np.int64)
        zz = unpack_fixed_width(self.payload, self.width, self.count)
        return _unzigzag(zz)


def _zigzag(v: np.ndarray) -> np.ndarray:
    """Map signed ints to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    v = v.astype(np.int64)
    return (np.abs(v) * 2 - (v < 0)).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.uint64)
    mag = ((u + np.uint64(1)) // np.uint64(2)).astype(np.int64)
    sign = np.where((u % np.uint64(2)) == 1, -1, 1)
    return mag * sign
