"""SZ-family prediction-based error-bounded compressor.

The implementation follows the *GPU* formulation of SZ (cuSZ / GPU-SZ):

* **dual quantization** — values are first quantized onto the error-bound
  lattice, then a *lossless* Lorenzo predictor runs on the quantized
  integers.  This removes the serial dependence on reconstructed neighbors
  that makes CPU-SZ sequential, which is exactly why the GPU ports use it;
  here it also makes the whole codec expressible as vectorized numpy.
* **independent blocks** — prediction never crosses block borders, as in
  the GPU kernels.  The paper attributes the low-bitrate drop of GPU-SZ's
  rate-distortion curves on Nyx (Fig. 4a) to this blocking; the same
  artifact emerges here.
* **adaptive prediction** — per block, the cheaper of the Lorenzo
  predictor and a least-squares linear (regression) predictor is chosen,
  mirroring SZ 2.x's adaptive predictor cited by the paper.
* quantization codes are entropy-coded with the canonical Huffman codec;
  out-of-range residuals use an escape symbol plus a raw outlier section.
"""

from repro.compressors.sz.szcompressor import GPUSZ, SZCompressor

__all__ = ["SZCompressor", "GPUSZ"]
