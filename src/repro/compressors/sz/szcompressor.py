"""The SZ compressor: dual quantization + adaptive prediction + Huffman.

Stream layout (little endian)::

    ABS stream                       PW_REL wrapper
    ----------                       --------------
    magic   b"SZR1"                  magic   b"SZRP"
    fixed header (struct)            fixed header (struct)
    shape   ndim * u64               shape   ndim * u64
    mode-bit section (1 bit/block)   sign-bit section (1 bit/value)
    regression coefficients (f32)    zero-position list (u64 each)
    Huffman payload (maybe LZSS'd)   inner ABS stream of log-magnitudes
    outlier section

The ABS path guarantees ``max |x - x'| <= error_bound``; the PW_REL path
guarantees ``|x - x'| <= pwrel * |x|`` pointwise (zeros exact), using the
logarithmic transformation of Section IV-B-4 of the paper.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.compressors.sz import predictor as P
from repro.compressors.sz import quantizer as Q
from repro.errors import CorruptStreamError, DataError
from repro.telemetry import DEFAULT_BYTE_BUCKETS, get_telemetry
from repro.lossless.huffman import HuffmanCodec
from repro.lossless.pipeline import LosslessPipeline
from repro.util.blocks import block_partition, block_reassemble
from repro.util.logtransform import LogTransform, pwrel_to_abs_bound
from repro.util.validation import check_dtype, check_shape_nd

_MAGIC_ABS = b"SZR1"
_MAGIC_PWR = b"SZRP"
_HDR_ABS = "<4sBBBBBIdQQQB"
_HDR_PWR = "<4sBBBdQQ"
_DTYPES = {0: np.dtype(np.float32), 1: np.dtype(np.float64)}
_DTYPE_CODES = {v: k for k, v in _DTYPES.items()}


def _coerce_mode(mode: CompressorMode | str) -> CompressorMode:
    if isinstance(mode, CompressorMode):
        return mode
    try:
        return CompressorMode(mode)
    except ValueError as exc:
        raise DataError(f"unknown compression mode {mode!r}") from exc


class SZCompressor(Compressor):
    """Prediction-based error-bounded lossy compressor (SZ family).

    Parameters
    ----------
    block_side:
        Side of the independent prediction blocks (SZ uses 6).
    radius:
        Quantization radius; the Huffman alphabet has ``2 * radius``
        symbols, so ``radius <= 32768`` with the default 16-bit codes.
    lossless:
        Optional byte-level stages (e.g. ``["lzss"]``) applied to the
        Huffman payload, mirroring SZ's dictionary-coder stage.
    predictor:
        ``"adaptive"`` (default, per-block choice as in SZ 2.x),
        ``"lorenzo"`` or ``"regression"`` to force one predictor —
        the knob the predictor ablation benchmarks sweep.
    """

    name = "sz"
    supported_modes = (CompressorMode.ABS, CompressorMode.PW_REL)

    _PREDICTORS = ("adaptive", "lorenzo", "regression")

    def __init__(
        self,
        block_side: int = 6,
        radius: int | str = 1024,
        lossless: list[str] | None = None,
        huffman_chunk: int = 1024,
        predictor: str = "adaptive",
    ) -> None:
        if not 2 <= block_side <= 255:
            raise DataError("block_side must be in [2, 255]")
        if radius == "auto":
            self.radius: int | None = None
        else:
            if not isinstance(radius, (int, np.integer)) or not 2 <= radius <= 32768:
                raise DataError("radius must be in [2, 32768] or 'auto'")
            self.radius = int(radius)
        if predictor not in self._PREDICTORS:
            raise DataError(f"predictor must be one of {self._PREDICTORS}")
        self.block_side = block_side
        self.predictor = predictor
        self.pipeline = LosslessPipeline(lossless) if lossless else None
        self.huffman = HuffmanCodec(max_len=16, chunk_size=huffman_chunk)

    @staticmethod
    def _auto_radius(residual: np.ndarray) -> int:
        """Pick the quantization radius from the residual distribution.

        SZ's "optimized quantization intervals": the radius covers the
        99.9th percentile of |residual| (so almost nothing escape-codes)
        rounded up to a power of two, clamped to the 16-bit-table limit.
        """
        mags = np.abs(residual)
        if mags.size == 0:
            return 2
        p999 = float(np.percentile(mags, 99.9))
        radius = 1 << max(1, int(np.ceil(np.log2(p999 + 2))))
        return int(min(max(radius, 2), 32768))

    # -- public API ---------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        error_bound: float | None = None,
        pwrel: float | None = None,
        mode: CompressorMode | str = CompressorMode.ABS,
        **_: Any,
    ) -> CompressedBuffer:
        mode = _coerce_mode(mode)
        self.check_mode(mode)
        data = np.asarray(data)
        check_dtype(data, [np.float32, np.float64], "data")
        check_shape_nd(data, (1, 2, 3), "data")
        if not np.all(np.isfinite(data)):
            raise DataError("SZ input must be finite (no NaN/Inf)")
        if mode is CompressorMode.PW_REL:
            if pwrel is None:
                raise DataError("PW_REL mode requires pwrel=")
            return self._compress_pwrel(data, float(pwrel))
        if error_bound is None:
            raise DataError("ABS mode requires error_bound=")
        payload, meta = self._compress_abs(data, float(error_bound))
        return CompressedBuffer(
            payload=payload,
            original_shape=data.shape,
            original_dtype=data.dtype,
            mode=CompressorMode.ABS,
            parameter=float(error_bound),
            meta=meta,
        )

    def decompress(self, buf: CompressedBuffer | bytes) -> np.ndarray:
        payload = buf.payload if isinstance(buf, CompressedBuffer) else buf
        magic = payload[:4]
        if magic == _MAGIC_ABS:
            return self._decompress_abs(payload)
        if magic == _MAGIC_PWR:
            return self._decompress_pwrel(payload)
        raise CorruptStreamError(f"bad SZ magic {magic!r}")

    # -- ABS path -----------------------------------------------------------

    def _compress_abs(self, data: np.ndarray, eb: float) -> tuple[bytes, dict]:
        tm = get_telemetry()
        block = (self.block_side,) * data.ndim
        blocks, grid, orig_shape = block_partition(data, block, mode="edge")
        nblocks = blocks.shape[0]
        baxes = tuple(range(1, data.ndim + 1))

        # Lorenzo on the prequantized lattice (dual quantization).
        from repro import kernels

        with tm.span("sz.prequant", bytes=data.nbytes, nblocks=nblocks,
                     backend=kernels.resolve_name("sz.lorenzo")):
            if self.predictor != "regression":
                res_lorenzo = kernels.call("sz.lorenzo", blocks, eb)
            else:
                res_lorenzo = None

        with tm.span("sz.predict", bytes=data.nbytes, predictor=self.predictor):
            # Regression with stored-coefficient feedback.
            if self.predictor != "lorenzo":
                coefs = P.regression_fit(blocks)
                pred = P.regression_predict(coefs, block)
                res_reg_f = np.rint((blocks.astype(np.float64) - pred) / (2.0 * eb))
                res_reg = np.clip(res_reg_f, -(2**62), 2**62).astype(np.int64)
            else:
                coefs = np.zeros((nblocks, data.ndim + 1), dtype=np.float32)
                res_reg = None

            if self.predictor == "lorenzo":
                use_reg = np.zeros(nblocks, dtype=bool)
                residual = res_lorenzo
            elif self.predictor == "regression":
                use_reg = np.ones(nblocks, dtype=bool)
                residual = res_reg
            else:
                cost_l = P.estimate_code_bits(res_lorenzo, baxes)
                cost_r = P.estimate_code_bits(res_reg, baxes) + 32.0 * (data.ndim + 1)
                use_reg = cost_r < cost_l
                sel_shape = (nblocks,) + (1,) * data.ndim
                residual = np.where(use_reg.reshape(sel_shape), res_reg, res_lorenzo)

        with tm.span("sz.huffman", bytes=data.nbytes) as huff_span:
            radius = self.radius if self.radius is not None else self._auto_radius(residual)
            symbols, outliers = Q.residuals_to_symbols(residual, radius)
            # Serialize only the used prefix of the alphabet: the code-length
            # table costs 5 bits/symbol, which dominates small inputs if the
            # full 2*radius alphabet is always written.
            alphabet = int(symbols.max()) + 1 if symbols.size else 1
            enc = self.huffman.encode(symbols, alphabet)
            huff_span.attrs["alphabet"] = alphabet
            huff_span.attrs["outliers"] = int(outliers.size)
        with tm.span("sz.lossless", bytes=len(enc.payload),
                     stages=0 if self.pipeline is None else len(self.pipeline.stages)):
            huff_payload = enc.payload
            if self.pipeline is not None:
                huff_payload = self.pipeline.compress(huff_payload)
        out = Q.OutlierSection.encode(outliers)
        mode_bits = np.packbits(use_reg.astype(np.uint8), bitorder="big").tobytes()
        reg_coefs = coefs[use_reg].tobytes()

        header = struct.pack(
            _HDR_ABS,
            _MAGIC_ABS,
            1,  # version
            _DTYPE_CODES[data.dtype],
            data.ndim,
            self.block_side,
            1 if self.pipeline is not None else 0,
            radius,
            eb,
            nblocks,
            out.count,
            len(huff_payload),
            out.width,
        )
        shape_bytes = struct.pack(f"<{data.ndim}Q", *data.shape)
        payload = b"".join(
            [header, shape_bytes, mode_bits, reg_coefs, huff_payload, out.payload]
        )
        meta = {
            "predictor_regression_fraction": float(use_reg.mean()),
            "outlier_count": int(out.count),
            "huffman_bits_per_symbol": 8.0 * len(enc.payload) / symbols.size,
        }
        tm.count("sz.bytes_in", data.nbytes)
        tm.count("sz.bytes_out", len(payload))
        tm.count("sz.outliers", out.count)
        tm.observe("sz.huffman_alphabet", alphabet)
        tm.observe("sz.payload_bytes", len(payload), bounds=DEFAULT_BYTE_BUCKETS)
        return payload, meta

    def _decompress_abs(self, payload: bytes) -> np.ndarray:
        hsize = struct.calcsize(_HDR_ABS)
        if len(payload) < hsize:
            raise CorruptStreamError("SZ stream truncated (header)")
        (
            _magic,
            version,
            dtype_code,
            ndim,
            block_side,
            has_pipeline,
            radius,
            eb,
            nblocks,
            out_count,
            huff_len,
            out_width,
        ) = struct.unpack(_HDR_ABS, payload[:hsize])
        if version != 1:
            raise CorruptStreamError(f"unsupported SZ stream version {version}")
        if dtype_code not in _DTYPES:
            raise CorruptStreamError(f"unknown dtype code {dtype_code}")
        dtype = _DTYPES[dtype_code]
        pos = hsize
        shape = struct.unpack(f"<{ndim}Q", payload[pos : pos + 8 * ndim])
        pos += 8 * ndim
        nmode_bytes = -(-nblocks // 8)
        use_reg = (
            np.unpackbits(
                np.frombuffer(payload[pos : pos + nmode_bytes], dtype=np.uint8),
                count=nblocks,
                bitorder="big",
            ).astype(bool)
        )
        pos += nmode_bytes
        n_reg = int(use_reg.sum())
        ncoef = ndim + 1
        coefs = np.frombuffer(
            payload[pos : pos + 4 * ncoef * n_reg], dtype=np.float32
        ).reshape(n_reg, ncoef)
        pos += 4 * ncoef * n_reg
        huff_payload = payload[pos : pos + huff_len]
        pos += huff_len
        out_payload = payload[pos:]

        tm = get_telemetry()
        with tm.span("sz.lossless", bytes=len(huff_payload), direction="decompress"):
            if has_pipeline:
                huff_payload = LosslessPipeline().decompress(huff_payload)
        with tm.span("sz.huffman", bytes=len(huff_payload), direction="decompress"):
            symbols = self.huffman.decode(huff_payload)
            outliers = Q.OutlierSection(
                payload=out_payload, count=out_count, width=out_width
            ).decode()
            residual = Q.symbols_to_residuals(symbols, outliers, radius)

        from repro import kernels

        with tm.span("sz.predict", bytes=residual.nbytes, direction="decompress",
                     backend=kernels.resolve_name("sz.lorenzo_inverse")):
            block = (block_side,) * ndim
            grid = tuple(-(-s // block_side) for s in shape)
            residual = residual.reshape((nblocks,) + block)

            recon = np.empty(residual.shape, dtype=np.float64)
            lor = ~use_reg
            if lor.any():
                q = kernels.call("sz.lorenzo_inverse", residual[lor])
                recon[lor] = q.astype(np.float64) * (2.0 * eb)
            if use_reg.any():
                pred = P.regression_predict(coefs, block)
                recon[use_reg] = pred + residual[use_reg].astype(np.float64) * (2.0 * eb)

            arr = block_reassemble(recon, grid, shape)
        return arr.astype(dtype)

    # -- PW_REL path --------------------------------------------------------

    def _compress_pwrel(self, data: np.ndarray, pwrel: float) -> CompressedBuffer:
        abs_bound = pwrel_to_abs_bound(pwrel)
        logmag, xform = LogTransform.forward(data)
        inner_payload, meta = self._compress_abs(logmag.astype(np.float64), abs_bound)

        sign_bits = np.packbits(
            (xform.signs < 0).astype(np.uint8).ravel(), bitorder="big"
        ).tobytes()
        zeros = np.flatnonzero(xform.signs.ravel() == 0).astype(np.uint64)

        header = struct.pack(
            _HDR_PWR,
            _MAGIC_PWR,
            1,
            _DTYPE_CODES[data.dtype],
            data.ndim,
            pwrel,
            zeros.size,
            len(inner_payload),
        )
        shape_bytes = struct.pack(f"<{data.ndim}Q", *data.shape)
        payload = b"".join(
            [header, shape_bytes, sign_bits, zeros.tobytes(), inner_payload]
        )
        meta = dict(meta)
        meta["log_abs_bound"] = abs_bound
        meta["zero_count"] = int(zeros.size)
        return CompressedBuffer(
            payload=payload,
            original_shape=data.shape,
            original_dtype=data.dtype,
            mode=CompressorMode.PW_REL,
            parameter=pwrel,
            meta=meta,
        )

    def _decompress_pwrel(self, payload: bytes) -> np.ndarray:
        hsize = struct.calcsize(_HDR_PWR)
        _magic, version, dtype_code, ndim, pwrel, nzeros, inner_len = struct.unpack(
            _HDR_PWR, payload[:hsize]
        )
        if version != 1:
            raise CorruptStreamError(f"unsupported SZ PW_REL version {version}")
        dtype = _DTYPES[dtype_code]
        pos = hsize
        shape = struct.unpack(f"<{ndim}Q", payload[pos : pos + 8 * ndim])
        pos += 8 * ndim
        n = int(np.prod(shape))
        nsign_bytes = -(-n // 8)
        neg = np.unpackbits(
            np.frombuffer(payload[pos : pos + nsign_bytes], dtype=np.uint8),
            count=n,
            bitorder="big",
        ).astype(bool)
        pos += nsign_bytes
        zeros = np.frombuffer(payload[pos : pos + 8 * nzeros], dtype=np.uint64)
        pos += 8 * nzeros
        inner = payload[pos : pos + inner_len]

        logmag = self._decompress_abs(inner).astype(np.float64)
        signs = np.where(neg, -1, 1).astype(np.int8)
        signs[zeros.astype(np.int64)] = 0
        xform = LogTransform(signs=signs.reshape(shape))
        return xform.backward(logmag.reshape(shape)).astype(dtype)


class GPUSZ(SZCompressor):
    """GPU-SZ as evaluated in the paper.

    Matches the documented restrictions of the prototype: 3-D input only
    and ABS mode only (Section IV-B-1).  PW_REL behaviour is obtained the
    way the paper does it — callers apply the logarithmic transformation
    first (:meth:`compress_pwrel_via_log` automates this and is exactly
    the SZCompressor PW_REL path).  1-D HACC fields must be converted with
    :func:`repro.util.dims.convert_1d_to_3d` before compression.
    """

    name = "gpu-sz"
    supported_modes = (CompressorMode.ABS,)

    def compress(
        self,
        data: np.ndarray,
        error_bound: float | None = None,
        mode: CompressorMode | str = CompressorMode.ABS,
        **kw: Any,
    ) -> CompressedBuffer:
        data = np.asarray(data)
        if data.ndim != 3:
            raise DataError(
                "GPU-SZ only supports 3-D data; convert 1-D fields with "
                "repro.util.dims.convert_1d_to_3d (see paper Section IV-B-4)"
            )
        return super().compress(data, error_bound=error_bound, mode=mode, **kw)

    def compress_pwrel_via_log(self, data: np.ndarray, pwrel: float) -> CompressedBuffer:
        """The paper's PW_REL workaround: log transform + ABS compression."""
        if data.ndim != 3:
            raise DataError("GPU-SZ only supports 3-D data")
        return SZCompressor._compress_pwrel(self, data, float(pwrel))
