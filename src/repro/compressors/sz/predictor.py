"""Block predictors for the SZ compressor.

Both predictors operate on a dense batch of equal-size blocks with shape
``(nblocks, B, ..., B)`` and are fully vectorized across blocks.

Lorenzo (on the prequantized lattice)
    The d-dimensional Lorenzo residual of the quantized integers is the
    iterated first difference along every axis (with an implicit zero
    boundary), and its inverse is the iterated cumulative sum.  On the
    integer lattice this is exact, so prediction is lossless — the defining
    property of dual quantization.

Regression
    An affine model ``a0 + a1*i + a2*j + a3*k`` is fit per block by least
    squares (one matmul against a precomputed pseudo-inverse), coefficients
    are truncated to float32 (that is what gets stored), and residuals are
    computed against the *stored* coefficients so compressor and
    decompressor agree bit-for-bit.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import DataError


def lorenzo_residual(q: np.ndarray) -> np.ndarray:
    """Iterated first difference of quantized blocks along all block axes."""
    res = q
    for axis in range(1, q.ndim):
        res = np.diff(res, axis=axis, prepend=0)
    return res


def lorenzo_reconstruct(residual: np.ndarray) -> np.ndarray:
    """Inverse of :func:`lorenzo_residual` (iterated cumulative sum)."""
    q = residual
    for axis in range(1, residual.ndim):
        q = np.cumsum(q, axis=axis)
    return q


def _lorenzo_dualquant_ref(blocks: np.ndarray, error_bound: float) -> np.ndarray:
    """Reference for the fused ``sz.lorenzo`` kernel: prequantize then
    take the Lorenzo residual.  The native tier fuses both passes into
    one compiled sweep over the block batch."""
    from repro.compressors.sz.quantizer import prequantize

    return lorenzo_residual(prequantize(blocks, error_bound))


@lru_cache(maxsize=16)
def _design_matrix(block_shape: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
    """Design matrix ``X`` (centered coordinates + intercept) and its
    pseudo-inverse for affine regression over one block."""
    grids = np.meshgrid(
        *[np.arange(b, dtype=np.float64) - (b - 1) / 2.0 for b in block_shape],
        indexing="ij",
    )
    cols = [np.ones(int(np.prod(block_shape)))] + [g.ravel() for g in grids]
    x = np.stack(cols, axis=1)
    return x, np.linalg.pinv(x)


def regression_fit(blocks: np.ndarray) -> np.ndarray:
    """Least-squares affine coefficients per block, stored as float32.

    Returns an array of shape ``(nblocks, ndim + 1)``.
    """
    if blocks.ndim < 2:
        raise DataError("blocks must have shape (nblocks, B, ...)")
    block_shape = blocks.shape[1:]
    _, pinv = _design_matrix(block_shape)
    flat = blocks.reshape(blocks.shape[0], -1).astype(np.float64)
    coefs = flat @ pinv.T
    return coefs.astype(np.float32)


def regression_predict(coefs: np.ndarray, block_shape: tuple[int, ...]) -> np.ndarray:
    """Evaluate stored (float32) coefficients on the block lattice."""
    x, _ = _design_matrix(tuple(block_shape))
    pred = coefs.astype(np.float64) @ x.T
    return pred.reshape(coefs.shape[0], *block_shape)


def estimate_code_bits(residual: np.ndarray, axis: tuple[int, ...]) -> np.ndarray:
    """Cheap per-block bit-cost proxy: ``sum(2*log2(1+|r|) + 1)``.

    This approximates the length of an Elias-gamma-like code for each
    residual and is what the adaptive predictor uses to pick the cheaper
    of Lorenzo and regression per block (SZ 2.x samples instead; an exact
    vectorized sum is affordable here).
    """
    mag = np.abs(residual.astype(np.float64))
    return np.sum(2.0 * np.log2(1.0 + mag) + 1.0, axis=axis)
