"""Chunked (streaming) compression for bounded-memory operation.

The paper's HACC fields hold 1.07e9 values — compressing them as one
buffer would demand several working-set copies.  :class:`ChunkedCompressor`
splits a field into fixed-size chunks, compresses each independently
(every chunk stream is self-describing), and concatenates them with an
index — preserving the error bound exactly (bounds are pointwise) and
enabling bounded-memory compression, random access by chunk, and
out-of-core streaming, the way GenericIO blocks are compressed
independently in practice.

Three ways in, one stream format:

* :meth:`ChunkedCompressor.compress` — in-memory array (1-D or any
  C-contiguous N-D array; the flat view is streamed and the shape is
  restored on decompress).
* :meth:`ChunkedCompressor.compress_chunks` — an *iterator* of 1-D
  chunks (e.g. :meth:`repro.io.genericio.GenericIOReader.iter_chunks`),
  so a field larger than memory never materializes.
* ``compress(..., workers=N)`` — chunks fan out over the shared process
  executor and are concatenated deterministically, so the payload is
  byte-identical to the serial loop.

The chunked working set is not just a memory cap — it is a throughput
win: the codec kernels are memory-bound (bit-plane transposes, scatter
packing), and cache-resident chunks run several times faster than one
whole-array pass (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import struct
from functools import partial
from typing import Any, Iterable, Iterator

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.errors import CorruptStreamError, DataError
from repro.parallel.executor import process_map
from repro.telemetry import get_telemetry

_MAGIC = b"CHK1"
_HEADER = "<4sQQ"

#: Knob keywords recognized across the registry's compressors, in the
#: order they are consulted when deriving ``CompressedBuffer.parameter``.
_KNOB_KEYS = ("error_bound", "pwrel", "rate", "precision", "tolerance")


def _mode_parameter_from_params(params: dict[str, Any]) -> tuple[CompressorMode, float]:
    """Derive the (mode, parameter) bookkeeping from compress kwargs.

    Used for the zero-chunk (empty input) stream, where no inner buffer
    exists to copy them from — the requested params must still round-trip
    into the :class:`CompressedBuffer` instead of silently defaulting.
    """
    mode = params.get("mode", CompressorMode.ABS)
    if isinstance(mode, str):
        mode = CompressorMode(mode)
    for key in _KNOB_KEYS:
        if params.get(key) is not None:
            return mode, float(params[key])
    return mode, 0.0


def _compress_one(inner: Compressor, params: dict[str, Any], chunk: np.ndarray) -> bytes:
    """Module-level (picklable) worker: one chunk -> its payload bytes."""
    return inner.compress(chunk, **params).payload


class ChunkedCompressor(Compressor):
    """Wrap any compressor to stream data in fixed-size chunks."""

    def __init__(self, inner: Compressor, chunk_size: int = 1 << 20) -> None:
        if chunk_size < 64:
            raise DataError("chunk_size must be >= 64")
        self.inner = inner
        self.chunk_size = chunk_size
        self.name = f"{inner.name}+chunked"
        self.supported_modes = inner.supported_modes

    # -- compression --------------------------------------------------------

    def iter_input_chunks(self, data: np.ndarray) -> Iterator[np.ndarray]:
        """Yield the successive ``chunk_size`` views of ``data``'s flat view.

        N-D input must be C-contiguous: the stream stores the flat view
        and :meth:`decompress` restores the shape, so Nyx 3-D fields
        stream without caller-side reshapes.
        """
        data = np.asarray(data)
        if data.ndim != 1:
            if not data.flags.c_contiguous:
                raise DataError(
                    "ChunkedCompressor needs C-contiguous data to stream the "
                    "flat view; pass np.ascontiguousarray(...) explicitly"
                )
            data = data.reshape(-1)
        for start in range(0, data.size, self.chunk_size):
            yield data[start : start + self.chunk_size]

    def compress(
        self, data: np.ndarray, workers: int | None = 1, **params: Any
    ) -> CompressedBuffer:
        data = np.asarray(data)
        shape, dtype = data.shape, data.dtype
        chunks = self.iter_input_chunks(data)
        if workers is not None and workers == 1:
            payloads = self._compress_serial(chunks, params)
        else:
            worker = partial(_compress_one, self.inner, params)
            payloads = process_map(worker, list(chunks), workers=workers)
        return self.assemble(payloads, data.size, shape, dtype, params)

    def compress_chunks(
        self,
        chunks: Iterable[np.ndarray],
        shape: tuple[int, ...],
        dtype: np.dtype,
        **params: Any,
    ) -> CompressedBuffer:
        """Out-of-core entry point: compress an iterator of 1-D chunks.

        ``shape``/``dtype`` describe the logical field the chunks spell
        out (the caller streams them from disk, shared memory, ...).
        The produced stream is byte-identical to :meth:`compress` on the
        materialized array with the same ``chunk_size`` — provided the
        iterator yields ``chunk_size``-element chunks (the last one may
        be short), which :meth:`iter_input_chunks` and the io readers
        guarantee.
        """
        payloads = self._compress_serial(chunks, params)
        size = int(np.prod(shape, dtype=np.int64))
        return self.assemble(payloads, size, tuple(shape), np.dtype(dtype), params)

    def _compress_serial(
        self, chunks: Iterable[np.ndarray], params: dict[str, Any]
    ) -> list[bytes]:
        tm = get_telemetry()
        payloads = []
        for index, chunk in enumerate(chunks):
            with tm.span("chunked.compress_chunk", index=index, elements=chunk.size):
                payloads.append(self.inner.compress(chunk, **params).payload)
        return payloads

    def assemble(
        self,
        payloads: list[bytes],
        size: int,
        shape: tuple[int, ...],
        dtype: np.dtype,
        params: dict[str, Any],
    ) -> CompressedBuffer:
        """Concatenate per-chunk payloads into the indexed stream."""
        mode, parameter = _mode_parameter_from_params(params)
        header = struct.pack(_HEADER, _MAGIC, size, len(payloads))
        index = struct.pack(f"<{len(payloads)}Q", *(len(c) for c in payloads))
        return CompressedBuffer(
            payload=header + index + b"".join(payloads),
            original_shape=tuple(shape),
            original_dtype=np.dtype(dtype),
            mode=mode,
            parameter=parameter,
            meta={"n_chunks": len(payloads), "chunk_size": self.chunk_size},
        )

    # -- decompression ------------------------------------------------------

    def iter_chunks(self, buf: CompressedBuffer | bytes) -> Iterator[bytes]:
        """Yield each chunk's stream without decompressing (random access)."""
        payload = buf.payload if isinstance(buf, CompressedBuffer) else buf
        hsize = struct.calcsize(_HEADER)
        if payload[:4] != _MAGIC:
            raise CorruptStreamError("bad chunked-stream magic")
        _, _n, n_chunks = struct.unpack(_HEADER, payload[:hsize])
        sizes = struct.unpack(
            f"<{n_chunks}Q", payload[hsize : hsize + 8 * n_chunks]
        )
        pos = hsize + 8 * n_chunks
        for size in sizes:
            yield payload[pos : pos + size]
            pos += size

    def iter_decompressed(self, buf: CompressedBuffer | bytes) -> Iterator[np.ndarray]:
        """Yield decompressed chunks one at a time (bounded memory)."""
        for chunk in self.iter_chunks(buf):
            yield self.inner.decompress(chunk)

    def element_count(self, buf: CompressedBuffer | bytes) -> int:
        """Total elements recorded in the stream header."""
        payload = buf.payload if isinstance(buf, CompressedBuffer) else buf
        hsize = struct.calcsize(_HEADER)
        if payload[:4] != _MAGIC:
            raise CorruptStreamError("bad chunked-stream magic")
        _, n, _chunks = struct.unpack(_HEADER, payload[:hsize])
        return int(n)

    def decompress(self, buf: CompressedBuffer | bytes) -> np.ndarray:
        parts = list(self.iter_decompressed(buf))
        if not parts:
            if self.element_count(buf) != 0:
                raise CorruptStreamError("empty chunked stream")
            dtype = (
                buf.original_dtype
                if isinstance(buf, CompressedBuffer)
                else np.dtype(np.float64)
            )
            out = np.empty(0, dtype=dtype)
        else:
            out = np.concatenate(parts)
        if isinstance(buf, CompressedBuffer) and len(buf.original_shape) != 1:
            out = out.reshape(buf.original_shape)
        return out

    def decompress_chunk(self, buf: CompressedBuffer | bytes, index: int) -> np.ndarray:
        """Decompress a single chunk (bounded-memory random access)."""
        for i, chunk in enumerate(self.iter_chunks(buf)):
            if i == index:
                return self.inner.decompress(chunk)
        raise DataError(f"chunk index {index} out of range")
