"""Chunked (streaming) compression for bounded-memory operation.

The paper's HACC fields hold 1.07e9 values — compressing them as one
buffer would demand several working-set copies.  :class:`ChunkedCompressor`
splits a 1-D field into fixed-size chunks, compresses each independently
(every chunk stream is self-describing), and concatenates them with an
index — preserving the error bound exactly (bounds are pointwise) and
enabling both bounded-memory compression and random access by chunk,
the way GenericIO blocks are compressed independently in practice.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.errors import CorruptStreamError, DataError

_MAGIC = b"CHK1"


class ChunkedCompressor(Compressor):
    """Wrap any compressor to stream 1-D data in fixed-size chunks."""

    def __init__(self, inner: Compressor, chunk_size: int = 1 << 20) -> None:
        if chunk_size < 64:
            raise DataError("chunk_size must be >= 64")
        self.inner = inner
        self.chunk_size = chunk_size
        self.name = f"{inner.name}+chunked"
        self.supported_modes = inner.supported_modes

    def compress(self, data: np.ndarray, **params: Any) -> CompressedBuffer:
        data = np.asarray(data)
        if data.ndim != 1:
            raise DataError("ChunkedCompressor expects 1-D data")
        chunks = []
        mode = CompressorMode.ABS
        parameter = 0.0
        for start in range(0, data.size, self.chunk_size):
            buf = self.inner.compress(data[start : start + self.chunk_size], **params)
            chunks.append(buf.payload)
            mode = buf.mode
            parameter = buf.parameter
        header = struct.pack("<4sQQ", _MAGIC, data.size, len(chunks))
        index = struct.pack(f"<{len(chunks)}Q", *(len(c) for c in chunks))
        return CompressedBuffer(
            payload=header + index + b"".join(chunks),
            original_shape=data.shape,
            original_dtype=data.dtype,
            mode=mode,
            parameter=parameter,
            meta={"n_chunks": len(chunks), "chunk_size": self.chunk_size},
        )

    def iter_chunks(self, buf: CompressedBuffer | bytes) -> Iterator[bytes]:
        """Yield each chunk's stream without decompressing (random access)."""
        payload = buf.payload if isinstance(buf, CompressedBuffer) else buf
        hsize = struct.calcsize("<4sQQ")
        if payload[:4] != _MAGIC:
            raise CorruptStreamError("bad chunked-stream magic")
        _, _n, n_chunks = struct.unpack("<4sQQ", payload[:hsize])
        sizes = struct.unpack(
            f"<{n_chunks}Q", payload[hsize : hsize + 8 * n_chunks]
        )
        pos = hsize + 8 * n_chunks
        for size in sizes:
            yield payload[pos : pos + size]
            pos += size

    def decompress(self, buf: CompressedBuffer | bytes) -> np.ndarray:
        parts = [self.inner.decompress(chunk) for chunk in self.iter_chunks(buf)]
        if not parts:
            raise CorruptStreamError("empty chunked stream")
        return np.concatenate(parts)

    def decompress_chunk(self, buf: CompressedBuffer | bytes, index: int) -> np.ndarray:
        """Decompress a single chunk (bounded-memory random access)."""
        for i, chunk in enumerate(self.iter_chunks(buf)):
            if i == index:
                return self.inner.decompress(chunk)
        raise DataError(f"chunk index {index} out of range")
