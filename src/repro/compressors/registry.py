"""Name-based compressor registry used by Foresight JSON configs."""

from __future__ import annotations

from typing import Any, Callable

from repro.compressors.base import Compressor
from repro.errors import ConfigError

_REGISTRY: dict[str, Callable[..., Compressor]] = {}


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register ``factory`` under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigError(f"compressor {name!r} already registered")
    _REGISTRY[key] = factory


def get_compressor(name: str, **kwargs: Any) -> Compressor:
    """Instantiate a registered compressor by name."""
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown compressor {name!r}; known: {known}")
    return _REGISTRY[key](**kwargs)


def available_compressors() -> list[str]:
    """Sorted names of all registered compressors."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    # Imported lazily to avoid import cycles at package init.
    from repro.compressors.store import StoreCompressor
    from repro.compressors.sz import GPUSZ, SZCompressor
    from repro.compressors.temporal import TemporalCompressor
    from repro.compressors.zfp import CuZFP, ZFPCompressor

    register_compressor("sz", SZCompressor)
    register_compressor("gpu-sz", GPUSZ)
    register_compressor("zfp", ZFPCompressor)
    register_compressor("cuzfp", CuZFP)
    register_compressor("store", StoreCompressor)
    register_compressor("temporal", TemporalCompressor)


_register_builtins()
