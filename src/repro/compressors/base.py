"""Common compressor API.

Every compressor maps an ndarray to a :class:`CompressedBuffer` (raw bytes
plus bookkeeping) and back.  The paper's evaluation only needs this narrow
contract: CBench treats compressors as black boxes parameterized by a mode
and a single knob (error bound or bitrate).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import UnsupportedModeError


class CompressorMode(enum.Enum):
    """Compression modes appearing in the paper (Section II-A).

    FIXED_PRECISION and FIXED_ACCURACY are the CPU-ZFP modes the paper
    notes cuZFP lacked at the time ("cuZFP has not supported the ABS mode
    yet"); they are implemented here as the natural extension.
    """

    ABS = "abs"           # absolute error bound
    PW_REL = "pw_rel"     # point-wise relative error bound
    FIXED_RATE = "fixed_rate"  # target bits per value
    FIXED_PRECISION = "fixed_precision"  # bit planes kept per block
    FIXED_ACCURACY = "fixed_accuracy"    # absolute error tolerance (ZFP-style)


@dataclass
class CompressedBuffer:
    """Result of a compression call.

    Attributes
    ----------
    payload:
        The serialized compressed stream (self-describing).
    original_shape / original_dtype:
        Enough to rebuild the array without out-of-band metadata.
    mode / parameter:
        The mode and knob value used (error bound or bitrate).
    meta:
        Free-form per-compressor diagnostics (predictor mix, outlier count,
        plane statistics, ...), surfaced by CBench.
    """

    payload: bytes
    original_shape: tuple[int, ...]
    original_dtype: np.dtype
    mode: CompressorMode
    parameter: float
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def original_nbytes(self) -> int:
        return int(np.prod(self.original_shape)) * self.original_dtype.itemsize

    @property
    def compressed_nbytes(self) -> int:
        return len(self.payload)

    @property
    def compression_ratio(self) -> float:
        """Original size over compressed size (paper's Metric 1)."""
        return self.original_nbytes / max(1, self.compressed_nbytes)

    @property
    def bitrate(self) -> float:
        """Average bits per value of the compressed stream."""
        n = int(np.prod(self.original_shape))
        return 8.0 * self.compressed_nbytes / max(1, n)


class Compressor(abc.ABC):
    """Abstract lossy compressor."""

    #: Registry / display name (e.g. ``"sz"``, ``"cuzfp"``).
    name: str = "abstract"

    #: Modes this implementation accepts.
    supported_modes: tuple[CompressorMode, ...] = ()

    def check_mode(self, mode: CompressorMode) -> None:
        """Raise :class:`UnsupportedModeError` if ``mode`` is unsupported.

        Real GPU codecs at the paper's time were mode-restricted (GPU-SZ:
        ABS only; cuZFP: fixed-rate only); subclasses model that.
        """
        if mode not in self.supported_modes:
            supported = ", ".join(m.value for m in self.supported_modes)
            raise UnsupportedModeError(
                f"{self.name} does not support mode {mode.value!r}; "
                f"supported: {supported}"
            )

    @abc.abstractmethod
    def compress(self, data: np.ndarray, **params: Any) -> CompressedBuffer:
        """Compress ``data``; knobs are compressor-specific keyword args."""

    @abc.abstractmethod
    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        """Reconstruct the array described by ``buf``."""

    def roundtrip(self, data: np.ndarray, **params: Any) -> tuple[np.ndarray, CompressedBuffer]:
        """Compress then decompress; convenience for evaluation loops."""
        buf = self.compress(data, **params)
        return self.decompress(buf), buf
