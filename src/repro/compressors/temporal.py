"""Temporal (delta/keyframe) compression for snapshot *sequences*.

The paper's deployment scenario is in-situ: a simulation emits one
snapshot every few timesteps and compression has to keep pace on the
node.  Consecutive outputs are strongly correlated (the growth factor
moves, the realization does not — see :mod:`repro.cosmo.timeseries`),
so an error-bounded codec spends most of its bits re-describing
structure it already shipped one step earlier.  `TemporalCompressor`
removes that redundancy: each snapshot is delta-coded against the
*previous decompressed* snapshot and only the residual goes to the
inner codec (any registered SZ/ZFP/decimation-style compressor).

Two properties are load-bearing and deliberately engineered:

**No error accumulation.**  The reference is always the previous
*decompressed* snapshot — exactly the array the decoder will hold after
decoding the previous frame — never the previous original.  The
encoder-side reconstruction ``ref + decode(residual)`` and the
decoder-side reconstruction are therefore the same array, and the
pointwise error of step *t* is the inner codec's error on the step-*t*
residual alone: for an ABS bound ``e`` the error at step 50 is ``<= e``,
not ``<= 50 e``.  (Closed-loop prediction — the same trick DPCM and
video codecs use.)

**Stateless, self-describing decode.**  Every frame is a ``TMP1``
stream: magic, a keyframe flag, the step index, the inner codec's name
and knob, and the blake2b digest of the reference frame the delta was
taken against.  A keyframe (every ``keyframe_every`` steps, always the
first frame) needs no history at all; a delta frame checks the recorded
reference digest against the decoder's current reference and raises
:class:`~repro.errors.CorruptStreamError` on any mismatch — a desynced
consumer fails fast instead of silently decoding garbage.

The encoder and decoder sides keep *independent* state, so one instance
can encode a live stream while verifying its own output; :meth:`reset`
clears both, and :meth:`decode_series` replays a whole recorded session
from scratch without touching live decoder state.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.compressors.registry import get_compressor
from repro.errors import CorruptStreamError, DataError

__all__ = ["TemporalCompressor", "reference_digest", "TMP_MAGIC"]

#: Frame magic of the temporal stream format (version 1).
TMP_MAGIC = b"TMP1"

#: magic + flags byte + u32 header length.
_PREFIX = struct.Struct(">4sBI")

_FLAG_KEYFRAME = 0x01


def reference_digest(arr: np.ndarray) -> str:
    """Content digest of a reference snapshot (dtype, shape, raw bytes).

    This is the identity delta frames are validated against — and the
    component the service folds into cache/session keys so two sessions
    at the same (codec, bound, data) can never collide on cached bytes.
    """
    a = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(a.dtype.str.encode())
    h.update(repr(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def _coerce_mode(mode: CompressorMode | str) -> CompressorMode:
    return mode if isinstance(mode, CompressorMode) else CompressorMode(str(mode))


class TemporalCompressor(Compressor):
    """Delta/keyframe wrapper around any registered codec (see module doc).

    Parameters
    ----------
    inner:
        Inner codec: a registry name (``"sz"``, ``"zfp"``, ...) or a
        ready :class:`~repro.compressors.base.Compressor` instance.
    keyframe_every:
        Emit a self-contained keyframe every K steps (K >= 1; 1 means
        every frame is independent and temporal coding is a no-op).
    inner_options:
        Constructor options for a named inner codec.

    >>> import numpy as np
    >>> tc = TemporalCompressor(inner="sz", keyframe_every=4)
    >>> a = np.linspace(0, 1, 64, dtype=np.float32).reshape(4, 4, 4)
    >>> buf = tc.compress(a, mode="abs", error_bound=1e-3)
    >>> bool(buf.meta["keyframe"])
    True
    >>> bool(np.max(np.abs(tc.decompress(buf) - a)) <= 1e-3)
    True
    """

    name = "temporal"

    def __init__(
        self,
        inner: str | Compressor = "sz",
        keyframe_every: int = 8,
        inner_options: dict[str, Any] | None = None,
    ) -> None:
        if isinstance(inner, Compressor):
            if inner_options:
                raise DataError(
                    "inner_options only apply to a named inner codec"
                )
            self.inner = inner
        else:
            self.inner = get_compressor(inner, **(inner_options or {}))
        if isinstance(self.inner, TemporalCompressor):
            raise DataError("temporal cannot wrap another temporal codec")
        if not isinstance(keyframe_every, (int, np.integer)) or keyframe_every < 1:
            raise DataError(
                f"keyframe_every must be an int >= 1, got {keyframe_every!r}"
            )
        self.keyframe_every = int(keyframe_every)
        self.inner_options = dict(inner_options or {})
        self.supported_modes = self.inner.supported_modes
        self._enc_ref: np.ndarray | None = None
        self._enc_step = 0
        self._dec_ref: np.ndarray | None = None
        self._dec_step = 0

    # -- state -------------------------------------------------------------

    @property
    def step(self) -> int:
        """How many frames the encoder side has produced."""
        return self._enc_step

    @property
    def encode_reference_digest(self) -> str | None:
        """Digest of the current encoder reference (``None`` before step 1)."""
        return None if self._enc_ref is None else reference_digest(self._enc_ref)

    @property
    def decode_reference_digest(self) -> str | None:
        """Digest of the current decoder reference (``None`` before step 1)."""
        return None if self._dec_ref is None else reference_digest(self._dec_ref)

    def reset(self) -> None:
        """Forget all encoder and decoder state (next frame is a keyframe)."""
        self._enc_ref = None
        self._enc_step = 0
        self._dec_ref = None
        self._dec_step = 0

    # -- encode ------------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        mode: CompressorMode | str = CompressorMode.ABS,
        **params: Any,
    ) -> CompressedBuffer:
        mode = _coerce_mode(mode)
        self.check_mode(mode)
        data = np.asarray(data)
        keyframe = (
            self._enc_ref is None
            or self._enc_step % self.keyframe_every == 0
            or self._enc_ref.shape != data.shape
            or self._enc_ref.dtype != data.dtype
        )
        ref_digest = None if keyframe else reference_digest(self._enc_ref)
        if keyframe:
            inner_buf = self.inner.compress(data, mode=mode, **params)
            recon = self.inner.decompress(inner_buf)
        else:
            residual = (
                data.astype(np.float64) - self._enc_ref.astype(np.float64)
            ).astype(data.dtype)
            inner_buf = self.inner.compress(residual, mode=mode, **params)
            recon = (
                self._enc_ref.astype(np.float64)
                + self.inner.decompress(inner_buf).astype(np.float64)
            ).astype(data.dtype)
        payload = self._frame(
            inner_buf, keyframe=keyframe, step=self._enc_step,
            ref=ref_digest, data=data,
        )
        # Closed loop: the *decompressed* output becomes the next
        # reference, so encoder and decoder references never diverge and
        # per-step error never compounds.
        self._enc_ref = recon
        step = self._enc_step
        self._enc_step += 1
        meta: dict[str, Any] = {
            "compressor": self.name,
            "inner": self.inner.name,
            "keyframe": keyframe,
            "step": step,
            "keyframe_every": self.keyframe_every,
            "ref": ref_digest,
            "ref_after": reference_digest(recon),
            "inner_meta": dict(inner_buf.meta),
        }
        if self.inner_options:
            meta["inner_options"] = dict(self.inner_options)
        return CompressedBuffer(
            payload=payload,
            original_shape=data.shape,
            original_dtype=data.dtype,
            mode=inner_buf.mode,
            parameter=inner_buf.parameter,
            meta=meta,
        )

    def _frame(
        self,
        inner_buf: CompressedBuffer,
        *,
        keyframe: bool,
        step: int,
        ref: str | None,
        data: np.ndarray,
    ) -> bytes:
        head = {
            "step": step,
            "keyframe_every": self.keyframe_every,
            "inner": self.inner.name,
            "mode": inner_buf.mode.value,
            "parameter": inner_buf.parameter,
            "ref": ref,
            "dtype": data.dtype.str,
            "shape": list(data.shape),
        }
        raw = json.dumps(head, sort_keys=True, separators=(",", ":")).encode()
        flags = _FLAG_KEYFRAME if keyframe else 0
        return (
            _PREFIX.pack(TMP_MAGIC, flags, len(raw)) + raw + inner_buf.payload
        )

    # -- decode ------------------------------------------------------------

    @staticmethod
    def parse_frame(payload: bytes) -> tuple[dict[str, Any], bool, bytes]:
        """Split a TMP1 stream into (header, keyframe?, inner payload)."""
        if len(payload) < _PREFIX.size:
            raise CorruptStreamError(
                f"TMP1 stream truncated at {len(payload)} bytes"
            )
        magic, flags, head_len = _PREFIX.unpack_from(payload)
        if magic != TMP_MAGIC:
            raise CorruptStreamError(f"bad temporal magic {magic!r}")
        end = _PREFIX.size + head_len
        if len(payload) < end:
            raise CorruptStreamError("TMP1 header truncated")
        try:
            head = json.loads(payload[_PREFIX.size:end].decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise CorruptStreamError(f"bad TMP1 header: {exc}") from exc
        if not isinstance(head, dict):
            raise CorruptStreamError("TMP1 header must be a JSON object")
        return head, bool(flags & _FLAG_KEYFRAME), payload[end:]

    def _inner_buffer(
        self, head: dict[str, Any], inner_payload: bytes
    ) -> CompressedBuffer:
        if head.get("inner") != self.inner.name:
            raise CorruptStreamError(
                f"stream was coded with inner codec {head.get('inner')!r}, "
                f"this decoder wraps {self.inner.name!r}"
            )
        try:
            shape = tuple(int(s) for s in head["shape"])
            dtype = np.dtype(head["dtype"])
            mode = CompressorMode(head["mode"])
            parameter = float(head["parameter"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptStreamError(f"bad TMP1 header fields: {exc}") from exc
        return CompressedBuffer(
            payload=inner_payload,
            original_shape=shape,
            original_dtype=dtype,
            mode=mode,
            parameter=parameter,
        )

    def decompress(self, buf: CompressedBuffer | bytes) -> np.ndarray:
        """Decode one frame, advancing the decoder reference.

        Delta frames validate the recorded reference digest against the
        decoder's current reference; a mismatch (frames skipped,
        reordered, or decoded by a fresh instance mid-stream) raises
        :class:`~repro.errors.CorruptStreamError`.
        """
        payload = buf.payload if isinstance(buf, CompressedBuffer) else buf
        head, keyframe, inner_payload = self.parse_frame(payload)
        inner_buf = self._inner_buffer(head, inner_payload)
        recon = self._apply(
            head, keyframe, inner_buf, self._dec_ref, side="decoder"
        )
        self._dec_ref = recon
        self._dec_step = int(head.get("step", self._dec_step)) + 1
        return recon

    def _apply(
        self,
        head: dict[str, Any],
        keyframe: bool,
        inner_buf: CompressedBuffer,
        ref: np.ndarray | None,
        side: str,
    ) -> np.ndarray:
        if keyframe:
            return self.inner.decompress(inner_buf)
        want = head.get("ref")
        have = None if ref is None else reference_digest(ref)
        if have is None or want != have:
            raise CorruptStreamError(
                f"temporal {side} desync at step {head.get('step')}: frame "
                f"was coded against reference {want}, {side} holds "
                f"{have or 'nothing'} — decode the stream from its last "
                "keyframe (or reset())"
            )
        residual = self.inner.decompress(inner_buf)
        return (
            ref.astype(np.float64) + residual.astype(np.float64)
        ).astype(inner_buf.original_dtype)

    def advance_with(self, buf: CompressedBuffer | bytes) -> np.ndarray:
        """Advance the *encoder* state with an already-compressed frame.

        The service's result cache uses this on a hit: the cached bytes
        are exactly what :meth:`compress` would have produced, so the
        encoder reference must advance to that frame's reconstruction
        without re-running the inner codec's compression.
        """
        payload = buf.payload if isinstance(buf, CompressedBuffer) else buf
        head, keyframe, inner_payload = self.parse_frame(payload)
        inner_buf = self._inner_buffer(head, inner_payload)
        recon = self._apply(
            head, keyframe, inner_buf, self._enc_ref, side="encoder"
        )
        self._enc_ref = recon
        self._enc_step = int(head.get("step", self._enc_step)) + 1
        return recon

    def decode_series(
        self, bufs: list[CompressedBuffer | bytes]
    ) -> list[np.ndarray]:
        """Stateless decode of a whole recorded session, first frame on.

        Runs on a scratch reference (live decoder state is untouched),
        so a stored stream can be replayed at any time.  The first frame
        must be a keyframe — which frame 0 of any session always is.
        """
        saved = (self._dec_ref, self._dec_step)
        self._dec_ref, self._dec_step = None, 0
        try:
            return [self.decompress(b) for b in bufs]
        finally:
            self._dec_ref, self._dec_step = saved
