"""Lossless passthrough "compressor" — the data plane's yardstick.

``store`` copies bytes verbatim: compression ratio 1.0, zero error,
essentially zero compute.  A service round trip through it therefore
measures *pure data movement* — framing, copies, socket versus
shared-memory transport — which is exactly what
``benchmarks/bench_service.py --data-plane`` needs to isolate: any real
codec would drown the transport difference in compute time.

It is registered as a real codec (not a bench-only hack) so every
service path — batching, result cache, sweeps, the cluster router —
can exercise it, and so operators can measure their own deployment's
transport ceiling with an ordinary client call.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor, CompressorMode
from repro.errors import DataError

#: Knob keyword per mode (mirrors the service's KNOB_FOR_MODE); store
#: ignores the value but records it as the buffer's parameter.
_KNOBS = ("error_bound", "pwrel", "rate", "precision", "tolerance")


class StoreCompressor(Compressor):
    """Identity codec: ``decompress(compress(x)) == x`` bit for bit."""

    name = "store"
    supported_modes = (
        CompressorMode.ABS,
        CompressorMode.PW_REL,
        CompressorMode.FIXED_RATE,
        CompressorMode.FIXED_PRECISION,
        CompressorMode.FIXED_ACCURACY,
    )

    def __init__(self, **_: Any) -> None:
        # Accepts (and ignores) arbitrary options so Foresight configs
        # can sweep it alongside real codecs without special-casing.
        pass

    def compress(
        self,
        data: np.ndarray,
        mode: CompressorMode | str = CompressorMode.ABS,
        **params: Any,
    ) -> CompressedBuffer:
        if isinstance(mode, str):
            try:
                mode = CompressorMode(mode)
            except ValueError as exc:
                raise DataError(f"unknown mode {mode!r}") from exc
        self.check_mode(mode)
        data = np.ascontiguousarray(data)
        parameter = 0.0
        for knob in _KNOBS:
            if params.get(knob) is not None:
                parameter = float(params[knob])
                break
        return CompressedBuffer(
            payload=data.tobytes(),
            original_shape=data.shape,
            original_dtype=data.dtype,
            mode=mode,
            parameter=parameter,
            meta={"codec": "store", "lossless": True},
        )

    def decompress(self, buf: CompressedBuffer) -> np.ndarray:
        expected = buf.original_nbytes
        if len(buf.payload) != expected:
            raise DataError(
                f"store payload is {len(buf.payload)} bytes; "
                f"shape/dtype imply {expected}"
            )
        arr = np.frombuffer(buf.payload, dtype=buf.original_dtype)
        return arr.reshape(buf.original_shape).copy()
