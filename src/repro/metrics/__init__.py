"""Evaluation metrics (Section III of the paper).

Metric 1 (compression ratio / bitrate): :mod:`repro.metrics.ratio`.
Metric 2 (distortion: PSNR and friends): :mod:`repro.metrics.error`.
Metric 3 (cosmology-specific) lives in :mod:`repro.cosmo` and
:mod:`repro.analysis`.  Metric 4 (throughput) lives in :mod:`repro.gpu`.
"""

from repro.metrics.error import (
    max_abs_error,
    max_pointwise_relative_error,
    mean_relative_error,
    mse,
    nrmse,
    psnr,
    evaluate_distortion,
)
from repro.metrics.distribution import ErrorDistribution, error_distribution
from repro.metrics.ratio import bitrate, compression_ratio
from repro.metrics.ssim import ssim3d
from repro.metrics.streaming import StreamingDistortion, StreamingHistogram

__all__ = [
    "StreamingDistortion",
    "StreamingHistogram",
    "max_abs_error",
    "max_pointwise_relative_error",
    "mean_relative_error",
    "mse",
    "nrmse",
    "psnr",
    "evaluate_distortion",
    "bitrate",
    "compression_ratio",
    "ssim3d",
    "ErrorDistribution",
    "error_distribution",
]
