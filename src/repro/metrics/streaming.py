"""Streaming (chunk-at-a-time) metric accumulators.

The out-of-core pipeline never holds the original and the reconstruction
as whole arrays, so the distortion metrics must accumulate chunk by
chunk.  The catch is reproducibility: floating-point accumulation is not
associative, so a naive running sum would make the metric values depend
on the caller's chunk size.  :class:`StreamingDistortion` removes that
dependence by re-blocking its input internally to a **fixed** block size
(:data:`BLOCK_ELEMENTS`) and merging the per-block partial sums with
``math.fsum`` (exact, order-independent).  The result is therefore
*byte-identical* for any chunking of the same data — including the
degenerate one-call "full array" case, which is exactly how
:func:`repro.metrics.error.evaluate_distortion` is now implemented.

Min/max-style statistics (value range, max absolute / pointwise-relative
error) and the integer histogram counts are exactly order-independent,
so they need no special treatment.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import DataError

__all__ = ["StreamingDistortion", "StreamingHistogram", "BLOCK_ELEMENTS"]

#: Internal accumulation block (elements).  Fixed so that the partial-sum
#: tree — and therefore every last bit of the result — is independent of
#: how callers chunk their updates.
BLOCK_ELEMENTS = 1 << 20


class StreamingDistortion:
    """Chunk-at-a-time equivalent of the full-array distortion metrics.

    >>> import numpy as np
    >>> a = np.linspace(0.0, 1.0, 10_000)
    >>> b = a + 1e-4
    >>> acc = StreamingDistortion()
    >>> for s in range(0, a.size, 1024):
    ...     acc.update(a[s:s + 1024], b[s:s + 1024])
    >>> from repro.metrics.error import evaluate_distortion
    >>> acc.result() == evaluate_distortion(a, b)
    True
    """

    def __init__(self, block_elements: int = BLOCK_ELEMENTS) -> None:
        if block_elements < 1:
            raise DataError("block_elements must be >= 1")
        self._block = int(block_elements)
        self._n = 0
        self._sq_sums: list[float] = []
        self._abs_sums: list[float] = []
        self._max_abs = 0.0
        self._max_pw_rel = 0.0
        self._amin = math.inf
        self._amax = -math.inf
        self._pend_a = np.empty(0, dtype=np.float64)
        self._pend_b = np.empty(0, dtype=np.float64)

    @property
    def count(self) -> int:
        """Samples consumed so far (pending partial block included)."""
        return self._n

    def update(self, original: np.ndarray, reconstructed: np.ndarray) -> "StreamingDistortion":
        """Fold one chunk pair into the running statistics."""
        a = np.asarray(original, dtype=np.float64).ravel()
        b = np.asarray(reconstructed, dtype=np.float64).ravel()
        if np.shape(original) != np.shape(reconstructed):
            raise DataError(
                f"shape mismatch: {np.shape(original)} vs {np.shape(reconstructed)}"
            )
        self._n += a.size
        if self._pend_a.size:
            a = np.concatenate([self._pend_a, a])
            b = np.concatenate([self._pend_b, b])
        nfull = (a.size // self._block) * self._block
        for start in range(0, nfull, self._block):
            self._ingest(a[start : start + self._block], b[start : start + self._block])
        self._pend_a = a[nfull:].copy()
        self._pend_b = b[nfull:].copy()
        return self

    def _ingest(self, a: np.ndarray, b: np.ndarray) -> None:
        d = a - b
        # np.sum and np.mean share numpy's pairwise reduction, so for a
        # single block sum/size reproduces np.mean(...) bit for bit.
        self._sq_sums.append(float(np.sum(d * d)))
        self._abs_sums.append(float(np.sum(np.abs(d))))
        self._max_abs = max(self._max_abs, float(np.max(np.abs(d))))
        nz = a != 0
        if nz.any():
            rel = float(np.max(np.abs((b[nz] - a[nz]) / a[nz])))
            self._max_pw_rel = max(self._max_pw_rel, rel)
        self._amin = min(self._amin, float(a.min()))
        self._amax = max(self._amax, float(a.max()))

    def _flush(self) -> None:
        if self._pend_a.size:
            self._ingest(self._pend_a, self._pend_b)
            self._pend_a = np.empty(0, dtype=np.float64)
            self._pend_b = np.empty(0, dtype=np.float64)

    def result(self) -> dict[str, float]:
        """The full metric dict, matching ``evaluate_distortion`` exactly."""
        if self._n == 0:
            raise DataError("empty arrays")
        self._flush()
        n = self._n
        err = math.fsum(self._sq_sums) / n
        mean_abs = math.fsum(self._abs_sums) / n
        vrange = self._amax - self._amin
        if err == 0:
            psnr = float("inf")
        elif vrange == 0:
            psnr = float("-inf")
        else:
            psnr = float(10.0 * np.log10(vrange**2 / err))
        return {
            "mse": err,
            "psnr": psnr,
            "mre": mean_abs / vrange if vrange != 0 else 0.0,
            "nrmse": float(np.sqrt(err)) / vrange if vrange != 0 else 0.0,
            "max_abs_error": self._max_abs,
            "max_pw_rel_error": self._max_pw_rel,
        }


class StreamingHistogram:
    """Fixed-edge value histogram accumulated chunk at a time.

    Counts are integers, so any chunking produces exactly the counts of
    ``np.histogram(full_array, bins=edges)``.
    """

    def __init__(self, edges: Sequence[float] | np.ndarray) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2 or np.any(np.diff(edges) <= 0):
            raise DataError("edges must be a strictly increasing 1-D sequence")
        self.edges = edges
        self.counts = np.zeros(edges.size - 1, dtype=np.int64)
        self._n = 0

    @property
    def count(self) -> int:
        return self._n

    def update(self, values: np.ndarray) -> "StreamingHistogram":
        values = np.asarray(values).ravel()
        self._n += values.size
        if values.size:
            hist, _ = np.histogram(values, bins=self.edges)
            self.counts += hist
        return self
