"""Size metrics: compression ratio and bitrate (the paper's Metric 1).

The conversion the paper spells out: for 32-bit inputs a bitrate of 4.0
bits/value is a compression ratio of 8x.
"""

from __future__ import annotations

from repro.errors import DataError


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Original size over compressed size."""
    if original_bytes <= 0 or compressed_bytes <= 0:
        raise DataError("sizes must be positive")
    return original_bytes / compressed_bytes


def bitrate(compressed_bytes: int, n_values: int) -> float:
    """Average bits per value of the compressed representation."""
    if compressed_bytes < 0 or n_values <= 0:
        raise DataError("invalid sizes")
    return 8.0 * compressed_bytes / n_values
