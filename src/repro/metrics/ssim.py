"""3-D structural similarity (SSIM).

The paper cites SSIM as the domain metric climate studies use ([20]); it
is included as the extension hook for applying this framework to other
sciences.  Implemented as the standard Wang et al. formula with a uniform
cubic window, computed via ``scipy.ndimage.uniform_filter`` so it scales
to full snapshots.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from repro.errors import DataError


def ssim3d(
    original: np.ndarray,
    reconstructed: np.ndarray,
    window: int = 7,
    k1: float = 0.01,
    k2: float = 0.03,
) -> float:
    """Mean SSIM between two 3-D fields."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise DataError("shape mismatch")
    if a.ndim != 3:
        raise DataError("ssim3d expects 3-D fields")
    if window < 3 or window % 2 == 0:
        raise DataError("window must be odd and >= 3")
    drange = float(a.max() - a.min())
    if drange == 0:
        return 1.0 if np.array_equal(a, b) else 0.0
    c1 = (k1 * drange) ** 2
    c2 = (k2 * drange) ** 2

    mu_a = uniform_filter(a, window)
    mu_b = uniform_filter(b, window)
    mu_a2 = mu_a * mu_a
    mu_b2 = mu_b * mu_b
    mu_ab = mu_a * mu_b
    sigma_a2 = uniform_filter(a * a, window) - mu_a2
    sigma_b2 = uniform_filter(b * b, window) - mu_b2
    sigma_ab = uniform_filter(a * b, window) - mu_ab

    num = (2 * mu_ab + c1) * (2 * sigma_ab + c2)
    den = (mu_a2 + mu_b2 + c1) * (sigma_a2 + sigma_b2 + c2)
    return float(np.mean(num / den))
