"""General distortion metrics (the paper's Metric 2 plus CBench's set).

All functions compare an original and a reconstructed array in float64 to
keep the metric itself from adding rounding noise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def _pair(original: np.ndarray, reconstructed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise DataError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise DataError("empty arrays")
    return a, b


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _pair(original, reconstructed)
    return float(np.mean((a - b) ** 2))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest absolute pointwise error (what ABS mode bounds)."""
    a, b = _pair(original, reconstructed)
    return float(np.max(np.abs(a - b)))


def max_pointwise_relative_error(
    original: np.ndarray, reconstructed: np.ndarray
) -> float:
    """Largest ``|x' - x| / |x|`` over nonzero originals (PW_REL's bound)."""
    a, b = _pair(original, reconstructed)
    nz = a != 0
    if not nz.any():
        return 0.0
    return float(np.max(np.abs((b[nz] - a[nz]) / a[nz])))


def mean_relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """MRE: mean absolute error normalized by the value range (CBench's
    definition, robust to zeros in the data)."""
    a, b = _pair(original, reconstructed)
    vrange = float(a.max() - a.min())
    if vrange == 0:
        return 0.0
    return float(np.mean(np.abs(a - b)) / vrange)


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalized by the value range."""
    a, b = _pair(original, reconstructed)
    vrange = float(a.max() - a.min())
    if vrange == 0:
        return 0.0
    return float(np.sqrt(np.mean((a - b) ** 2)) / vrange)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, ``10 log10(range^2 / MSE)``.

    Returns ``inf`` for exact reconstructions (the rate-distortion plots
    clip it).  This is the definition used for Fig. 4.
    """
    a, b = _pair(original, reconstructed)
    err = mse(a, b)
    vrange = float(a.max() - a.min())
    if err == 0:
        return float("inf")
    if vrange == 0:
        return float("-inf") if err > 0 else float("inf")
    return float(10.0 * np.log10(vrange**2 / err))


def evaluate_distortion(original: np.ndarray, reconstructed: np.ndarray) -> dict[str, float]:
    """All scalar distortion metrics in one dict (CBench's output row).

    Implemented on top of :class:`repro.metrics.streaming.StreamingDistortion`
    (one ``update`` over the whole pair), so the full-array path and the
    chunk-at-a-time out-of-core path produce byte-identical values — and
    a single pass replaces the six independent two-pass metric calls.
    """
    from repro.metrics.streaming import StreamingDistortion

    if np.shape(original) != np.shape(reconstructed):
        raise DataError(
            f"shape mismatch: {np.shape(original)} vs {np.shape(reconstructed)}"
        )
    return StreamingDistortion().update(original, reconstructed).result()
