"""CBench: the compression benchmark runner (Foresight component 1).

CBench takes fields and compressor sweeps and produces one record per
(compressor, field, configuration): compression ratio, bitrate, the full
distortion metric set, wall-clock timings of this Python implementation
(labelled as such — GPU throughput comes from :mod:`repro.gpu`), and
optionally the reconstructed array for downstream domain analyses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer
from repro.compressors.registry import get_compressor
from repro.errors import DataError
from repro.foresight.config import CompressorSweep
from repro.metrics.error import evaluate_distortion
from repro.telemetry import get_telemetry


@dataclass
class CBenchRecord:
    """One benchmark row."""

    compressor: str
    field: str
    mode: str
    parameter: float
    compression_ratio: float
    bitrate: float
    metrics: dict[str, float]
    compress_seconds: float
    decompress_seconds: float
    meta: dict[str, Any] = field(default_factory=dict)
    reconstruction: np.ndarray | None = None

    def to_row(self) -> dict[str, Any]:
        """Flat dict for RecordStore / Cinema (drops the reconstruction)."""
        row: dict[str, Any] = {
            "compressor": self.compressor,
            "field": self.field,
            "mode": self.mode,
            "parameter": self.parameter,
            "compression_ratio": self.compression_ratio,
            "bitrate": self.bitrate,
            "compress_seconds": self.compress_seconds,
            "decompress_seconds": self.decompress_seconds,
        }
        row.update(self.metrics)
        return row


class CBench:
    """Benchmark executor.

    >>> bench = CBench({"rho": some_field})
    >>> records = bench.run(sweep)            # doctest: +SKIP
    """

    def __init__(self, fields: dict[str, np.ndarray], keep_reconstructions: bool = True) -> None:
        if not fields:
            raise DataError("CBench needs at least one field")
        self.fields = fields
        self.keep_reconstructions = keep_reconstructions

    def run_one(
        self,
        sweep: CompressorSweep,
        field_name: str,
        value: float,
    ) -> CBenchRecord:
        """Run a single (compressor, field, knob value) cell."""
        if field_name not in self.fields:
            raise DataError(f"unknown field {field_name!r}")
        data = self.fields[field_name]
        compressor = get_compressor(sweep.name, **sweep.options)

        tm = get_telemetry()
        # High-water mark so the cell's whole span subtree (including the
        # codec-internal stage spans) can be attached to the record below.
        mark = tm.tracer.last_span_id() if tm.enabled else 0

        kwargs: dict[str, Any] = {"mode": sweep.mode, sweep.knob: value}
        with tm.span(
            "cbench.run_one",
            compressor=sweep.name,
            field=field_name,
            mode=sweep.mode,
            parameter=float(value),
            bytes=data.nbytes,
        ):
            t0 = time.perf_counter()
            with tm.span("cbench.compress", bytes=data.nbytes, compressor=sweep.name):
                buf: CompressedBuffer = compressor.compress(data, **kwargs)
            t1 = time.perf_counter()
            with tm.span("cbench.decompress", bytes=data.nbytes, compressor=sweep.name):
                recon = compressor.decompress(buf)
            t2 = time.perf_counter()
            with tm.span("cbench.metrics", bytes=data.nbytes):
                distortion = evaluate_distortion(data, recon)

        meta = dict(buf.meta)
        if tm.enabled:
            tm.count("cbench.cells")
            tm.count("cbench.bytes_in", data.nbytes)
            tm.count("cbench.bytes_out", buf.compressed_nbytes)
            meta["telemetry"] = {
                "spans": [s.to_dict() for s in tm.tracer.drain(mark)],
                "compression_ratio": buf.compression_ratio,
            }

        return CBenchRecord(
            compressor=sweep.name,
            field=field_name,
            mode=sweep.mode,
            parameter=value,
            compression_ratio=buf.compression_ratio,
            bitrate=buf.bitrate,
            metrics=distortion,
            compress_seconds=t1 - t0,
            decompress_seconds=t2 - t1,
            meta=meta,
            reconstruction=recon if self.keep_reconstructions else None,
        )

    def run(self, sweep: CompressorSweep, fields: list[str] | None = None) -> list[CBenchRecord]:
        """Run a full sweep over the requested fields."""
        out = []
        for name in fields or list(self.fields):
            for value in sweep.values_for(name):
                out.append(self.run_one(sweep, name, value))
        return out

    def run_all(self, sweeps: list[CompressorSweep], fields: list[str] | None = None) -> list[CBenchRecord]:
        """Run several compressor sweeps back to back."""
        out: list[CBenchRecord] = []
        for sweep in sweeps:
            out.extend(self.run(sweep, fields))
        return out
