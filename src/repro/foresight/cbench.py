"""CBench: the compression benchmark runner (Foresight component 1).

CBench takes fields and compressor sweeps and produces one record per
(compressor, field, configuration): compression ratio, bitrate, the full
distortion metric set, wall-clock timings of this Python implementation
(labelled as such — GPU throughput comes from :mod:`repro.gpu`), and
optionally the reconstructed array for downstream domain analyses.

Fast-path engine hooks:

* ``workers`` on :meth:`CBench.run` / :meth:`CBench.run_all` fans the
  cells out over worker *processes* (:mod:`repro.parallel.executor`);
  record order matches the serial loop, and per-cell telemetry spans
  produced in workers ride home in ``CBenchRecord.meta["telemetry"]``.
* ``cache`` on :class:`CBench` memoizes cells on disk
  (:mod:`repro.cache`): a hit skips compress/decompress/metrics entirely
  and is marked ``meta["cache"] == "hit"`` (timings are the original
  run's — records are otherwise identical).

Zero-copy / out-of-core engine hooks (this PR):

* With multiple workers, :meth:`CBench.run_all` publishes each swept
  field **once** into POSIX shared memory (:mod:`repro.parallel.shm`)
  and ships only tiny descriptors through the task pickles; workers
  attach by name and read the same physical pages.  ``REPRO_NO_SHM=1``
  restores the pickling transport (results are identical either way).
* ``chunk_budget`` (or ``REPRO_CHUNK_BUDGET``, bytes with optional
  K/M/G suffix) switches :meth:`CBench.run_one` to the *streaming*
  cell: the field is compressed chunk by chunk through
  :class:`~repro.compressors.streaming.ChunkedCompressor`'s stream
  format, with chunk N+1 compressing in a background thread while the
  main thread decompresses chunk N and feeds the
  :class:`~repro.metrics.streaming.StreamingDistortion` accumulator —
  so original + reconstruction never coexist as whole arrays and peak
  memory tracks the chunk budget, not the field size.
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path
from typing import Any

import numpy as np

from repro import kernels
from repro.cache import ResultCache, data_digest, make_key
from repro.compressors.base import CompressedBuffer
from repro.compressors.registry import get_compressor
from repro.compressors.streaming import ChunkedCompressor
from repro.errors import ConfigError, DataError
from repro.foresight.config import CompressorSweep
from repro.metrics.error import evaluate_distortion
from repro.metrics.streaming import StreamingDistortion
from repro.parallel.executor import process_map, resolve_workers
from repro.parallel.shm import ShmDescriptor, SharedArray, attach_cached, shm_enabled
from repro.telemetry import enabled_telemetry, get_telemetry, peak_rss_bytes
from repro.util.validation import parse_bytes  # noqa: F401 (historical home)

#: Environment variable supplying a default streaming chunk budget.
CHUNK_BUDGET_ENV = "REPRO_CHUNK_BUDGET"


def resolve_chunk_budget(chunk_budget: int | str | None) -> int | None:
    """Normalize a chunk-budget request (None → ``REPRO_CHUNK_BUDGET``)."""
    if chunk_budget is None:
        raw = os.environ.get(CHUNK_BUDGET_ENV, "").strip()
        if not raw:
            return None
        return parse_bytes(raw)
    return parse_bytes(chunk_budget)


@dataclass
class CBenchRecord:
    """One benchmark row."""

    compressor: str
    field: str
    mode: str
    parameter: float
    compression_ratio: float
    bitrate: float
    metrics: dict[str, float]
    compress_seconds: float
    decompress_seconds: float
    meta: dict[str, Any] = field(default_factory=dict)
    reconstruction: np.ndarray | None = None

    def to_row(self) -> dict[str, Any]:
        """Flat dict for RecordStore / Cinema (drops the reconstruction)."""
        row: dict[str, Any] = {
            "compressor": self.compressor,
            "field": self.field,
            "mode": self.mode,
            "parameter": self.parameter,
            "compression_ratio": self.compression_ratio,
            "bitrate": self.bitrate,
            "compress_seconds": self.compress_seconds,
            "decompress_seconds": self.decompress_seconds,
        }
        row.update(self.metrics)
        return row


def _run_cell(
    bench: "CBench",
    telem: bool,
    parent_pid: int,
    task: tuple[CompressorSweep, str, float],
) -> CBenchRecord:
    """Module-level (picklable) worker for one sweep cell.

    When the parent had telemetry enabled, a worker process (detected by
    pid — a forked child inherits the parent's enabled telemetry) runs
    the cell under a fresh local telemetry so the span subtree is
    captured into the record's meta and pickled back; the parent then
    re-ingests it into its own tracer.
    """
    sweep, field_name, value = task
    if telem and os.getpid() != parent_pid:
        with enabled_telemetry():
            record = bench.run_one(sweep, field_name, value)
        info = record.meta.get("telemetry")
        if isinstance(info, dict):
            info["remote"] = True
        return record
    return bench.run_one(sweep, field_name, value)


class CBench:
    """Benchmark executor.

    >>> bench = CBench({"rho": some_field})
    >>> records = bench.run(sweep)            # doctest: +SKIP

    ``cache`` (a :class:`repro.cache.ResultCache` or a directory path)
    memoizes cells across runs; ``None`` falls back to the
    ``REPRO_CACHE_DIR`` environment variable (unset → no caching).
    """

    def __init__(
        self,
        fields: dict[str, np.ndarray],
        keep_reconstructions: bool = True,
        cache: ResultCache | Path | str | None = None,
        chunk_budget: int | str | None = None,
        backend: str | None = None,
    ) -> None:
        if not fields:
            raise DataError("CBench needs at least one field")
        self.fields = fields
        self.keep_reconstructions = keep_reconstructions
        if cache is None:
            cache = ResultCache.from_env()
        elif not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.chunk_budget = resolve_chunk_budget(chunk_budget)
        if backend is not None and backend != "auto" and backend not in kernels.TIER_ORDER:
            raise ConfigError(
                f"backend must be one of {('auto',) + kernels.TIER_ORDER}, "
                f"got {backend!r}"
            )
        #: Kernel tier every cell runs under (``None`` → process default).
        #: The bench itself is pickled to process_map workers, so the
        #: selection rides along to parallel cells too.
        self.backend = backend
        self._digests: dict[str, str] = {}

    def _field(self, name: str) -> np.ndarray:
        """Resolve a field to an array, attaching shm descriptors lazily.

        After :meth:`run_all` publishes fields to shared memory, workers
        receive a bench whose ``fields`` hold :class:`ShmDescriptor`
        values; the first access in each process attaches the segment
        (memoized) and yields the zero-copy read-only view.
        """
        if name not in self.fields:
            raise DataError(f"unknown field {name!r}")
        value = self.fields[name]
        if isinstance(value, ShmDescriptor):
            return attach_cached(value)
        return value

    def _cell_key(self, sweep: CompressorSweep, field_name: str, value: float) -> str:
        digest = self._digests.get(field_name)
        if digest is None:
            digest = self._digests[field_name] = data_digest(self._field(field_name))
        options = sweep.options
        if self.chunk_budget is not None:
            # The streaming cell's payload is the chunked stream, whose
            # bytes depend on the chunk size — a different budget must
            # miss rather than alias the whole-array entry.
            options = {**options, "_chunk_budget": int(self.chunk_budget)}
        return make_key(
            sweep.name, options, sweep.mode, sweep.knob, float(value), digest
        )

    def run_one(
        self,
        sweep: CompressorSweep,
        field_name: str,
        value: float,
    ) -> CBenchRecord:
        """Run a single (compressor, field, knob value) cell.

        With a ``chunk_budget`` configured the cell runs the streaming
        pipeline (:meth:`_run_one_streaming`) instead.  Either way the
        cell runs under this bench's kernel ``backend`` selection; the
        override is process-global, so the streaming path's background
        compress thread inherits it too.
        """
        with kernels.use(self.backend):
            if self.chunk_budget is not None:
                return self._run_one_streaming(sweep, field_name, value)
            return self._run_one_dense(sweep, field_name, value)

    def _run_one_dense(
        self,
        sweep: CompressorSweep,
        field_name: str,
        value: float,
    ) -> CBenchRecord:
        data = self._field(field_name)
        key = None
        if self.cache is not None:
            key = self._cell_key(sweep, field_name, value)
            hit = self.cache.get(key)
            if hit is not None:
                record, buf = hit
                record = replace(record, meta={**record.meta, "cache": "hit"})
                if self.keep_reconstructions:
                    compressor = get_compressor(sweep.name, **sweep.options)
                    record.reconstruction = compressor.decompress(buf)
                return record

        compressor = get_compressor(sweep.name, **sweep.options)

        tm = get_telemetry()
        # High-water mark so the cell's whole span subtree (including the
        # codec-internal stage spans) can be attached to the record below.
        mark = tm.tracer.last_span_id() if tm.enabled else 0

        kwargs: dict[str, Any] = {"mode": sweep.mode, sweep.knob: value}
        with tm.span(
            "cbench.run_one",
            compressor=sweep.name,
            field=field_name,
            mode=sweep.mode,
            parameter=float(value),
            bytes=data.nbytes,
        ):
            t0 = time.perf_counter()
            with tm.span("cbench.compress", bytes=data.nbytes, compressor=sweep.name):
                buf: CompressedBuffer = compressor.compress(data, **kwargs)
            t1 = time.perf_counter()
            with tm.span("cbench.decompress", bytes=data.nbytes, compressor=sweep.name):
                recon = compressor.decompress(buf)
            t2 = time.perf_counter()
            with tm.span("cbench.metrics", bytes=data.nbytes):
                distortion = evaluate_distortion(data, recon)

        meta = dict(buf.meta)
        meta["kernels"] = kernels.active()
        if tm.enabled:
            tm.count("cbench.cells")
            tm.count("cbench.bytes_in", data.nbytes)
            tm.count("cbench.bytes_out", buf.compressed_nbytes)
            meta["telemetry"] = {
                "spans": [s.to_dict() for s in tm.tracer.drain(mark)],
                "compression_ratio": buf.compression_ratio,
            }

        record = CBenchRecord(
            compressor=sweep.name,
            field=field_name,
            mode=sweep.mode,
            parameter=value,
            compression_ratio=buf.compression_ratio,
            bitrate=buf.bitrate,
            metrics=distortion,
            compress_seconds=t1 - t0,
            decompress_seconds=t2 - t1,
            meta=meta,
            reconstruction=recon if self.keep_reconstructions else None,
        )
        if self.cache is not None and key is not None:
            # The reconstruction is re-derivable from the buffer and the
            # telemetry subtree belongs to the original run only; cache
            # the record without them plus the compressed stream itself.
            cache_meta = {k: v for k, v in meta.items() if k != "telemetry"}
            self.cache.put(
                key, (replace(record, reconstruction=None, meta=cache_meta), buf)
            )
        return record

    def _run_one_streaming(
        self,
        sweep: CompressorSweep,
        field_name: str,
        value: float,
    ) -> CBenchRecord:
        """One cell, out-of-core: double-buffered chunk pipeline.

        Chunk N+1 compresses in a background thread while the main
        thread decompresses chunk N and folds it into the streaming
        metric accumulator, so compression and evaluation overlap and
        the working set stays ~O(chunk budget): the original is only
        ever *viewed* chunk-wise and the reconstruction exists one chunk
        at a time (unless ``keep_reconstructions`` asks for it whole).
        The assembled payload is byte-identical to
        ``ChunkedCompressor.compress`` on the materialized field with
        the same chunk size, and the metric values are byte-identical
        to ``evaluate_distortion`` on the full pair.
        """
        data = self._field(field_name)
        dtype = data.dtype
        chunk_elements = max(64, int(self.chunk_budget // max(1, dtype.itemsize)))
        chunked = ChunkedCompressor(
            get_compressor(sweep.name, **sweep.options), chunk_elements
        )

        key = None
        if self.cache is not None:
            key = self._cell_key(sweep, field_name, value)
            hit = self.cache.get(key)
            if hit is not None:
                record, buf = hit
                record = replace(record, meta={**record.meta, "cache": "hit"})
                if self.keep_reconstructions:
                    record.reconstruction = chunked.decompress(buf)
                return record

        inner = chunked.inner
        kwargs: dict[str, Any] = {"mode": sweep.mode, sweep.knob: value}
        flat = data.reshape(-1)
        n_chunks = max(1, -(-flat.size // chunk_elements))
        recon = (
            np.empty(data.shape, dtype=dtype) if self.keep_reconstructions else None
        )
        recon_flat = recon.reshape(-1) if recon is not None else None

        def compress_chunk(index: int) -> tuple[bytes, float]:
            lo = index * chunk_elements
            t0 = time.perf_counter()
            payload = inner.compress(flat[lo : lo + chunk_elements], **kwargs).payload
            return payload, time.perf_counter() - t0

        tm = get_telemetry()
        mark = tm.tracer.last_span_id() if tm.enabled else 0
        payloads: list[bytes] = []
        acc = StreamingDistortion()
        compress_seconds = 0.0
        decompress_seconds = 0.0
        with tm.span(
            "cbench.run_one",
            compressor=sweep.name,
            field=field_name,
            mode=sweep.mode,
            parameter=float(value),
            bytes=data.nbytes,
            streaming=True,
            chunks=n_chunks,
        ):
            with ThreadPoolExecutor(max_workers=1) as pool:
                future = pool.submit(compress_chunk, 0)
                for index in range(n_chunks):
                    payload, dt = future.result()
                    compress_seconds += dt
                    if index + 1 < n_chunks:
                        future = pool.submit(compress_chunk, index + 1)
                    lo = index * chunk_elements
                    hi = min(flat.size, lo + chunk_elements)
                    with tm.span(
                        "cbench.chunk", index=index, elements=hi - lo,
                        bytes=len(payload),
                    ):
                        t0 = time.perf_counter()
                        part = inner.decompress(payload)
                        decompress_seconds += time.perf_counter() - t0
                        acc.update(flat[lo:hi], part)
                        if recon_flat is not None:
                            recon_flat[lo:hi] = part
                    payloads.append(payload)
            buf = chunked.assemble(
                payloads, flat.size, data.shape, dtype, kwargs
            )
            with tm.span("cbench.metrics", bytes=data.nbytes, streaming=True):
                distortion = acc.result()

        meta = dict(buf.meta)
        meta["kernels"] = kernels.active()
        meta["streaming"] = {"chunk_elements": chunk_elements, "n_chunks": n_chunks}
        if tm.enabled:
            tm.count("cbench.cells")
            tm.count("cbench.bytes_in", data.nbytes)
            tm.count("cbench.bytes_out", buf.compressed_nbytes)
            tm.set_gauge("process.peak_rss_bytes", float(peak_rss_bytes()))
            meta["telemetry"] = {
                "spans": [s.to_dict() for s in tm.tracer.drain(mark)],
                "compression_ratio": buf.compression_ratio,
            }

        record = CBenchRecord(
            compressor=sweep.name,
            field=field_name,
            mode=sweep.mode,
            parameter=value,
            compression_ratio=buf.compression_ratio,
            bitrate=buf.bitrate,
            metrics=distortion,
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
            meta=meta,
            reconstruction=recon,
        )
        if self.cache is not None and key is not None:
            cache_meta = {k: v for k, v in meta.items() if k != "telemetry"}
            self.cache.put(
                key, (replace(record, reconstruction=None, meta=cache_meta), buf)
            )
        return record

    def _tasks(
        self, sweeps: list[CompressorSweep], fields: list[str] | None
    ) -> list[tuple[CompressorSweep, str, float]]:
        return [
            (sweep, name, value)
            for sweep in sweeps
            for name in (fields or list(self.fields))
            for value in sweep.values_for(name)
        ]

    def run(
        self,
        sweep: CompressorSweep,
        fields: list[str] | None = None,
        workers: int | None = None,
    ) -> list[CBenchRecord]:
        """Run a full sweep over the requested fields.

        ``workers`` follows :func:`repro.parallel.executor.resolve_workers`
        (``None`` → ``REPRO_WORKERS`` env, 0 → one per CPU); the record
        order is identical to the serial loop regardless.
        """
        return self.run_all([sweep], fields, workers=workers)

    def run_all(
        self,
        sweeps: list[CompressorSweep],
        fields: list[str] | None = None,
        workers: int | None = None,
    ) -> list[CBenchRecord]:
        """Run several compressor sweeps back to back (see :meth:`run`).

        With more than one worker and shared memory enabled
        (``REPRO_NO_SHM`` unset), every swept ndarray field is published
        once into a shared segment; the bench shipped to workers carries
        only descriptors, so task pickles are O(bytes of metadata)
        instead of O(bytes of field) and all workers read the same
        pages.  Segments are unlinked when the sweep returns.
        """
        tasks = self._tasks(sweeps, fields)
        tm = get_telemetry()
        published: list[SharedArray] = []
        bench = self
        if resolve_workers(workers) > 1 and len(tasks) > 1 and shm_enabled():
            swept = {name for _, name, _ in tasks}
            shm_fields: dict[str, Any] = dict(self.fields)
            for name in swept:
                arr = self.fields[name]
                if isinstance(arr, np.ndarray) and arr.nbytes > 0:
                    if self.cache is not None:
                        # Digest in the parent so workers don't re-hash.
                        self._digests.setdefault(name, data_digest(arr))
                    handle = SharedArray.publish(np.ascontiguousarray(arr))
                    published.append(handle)
                    shm_fields[name] = handle.descriptor()
            if published:
                bench = copy.copy(self)
                bench.fields = shm_fields
        try:
            worker = partial(_run_cell, bench, tm.enabled, os.getpid())
            records = process_map(worker, tasks, workers=workers)
        finally:
            for handle in published:
                handle.unlink()
        if tm.enabled:
            # Re-adopt span subtrees captured in worker processes so the
            # parent trace shows every cell (serial cells traced directly).
            for rec in records:
                info = rec.meta.get("telemetry")
                if isinstance(info, dict) and info.pop("remote", False):
                    if info.get("spans"):
                        tm.tracer.ingest(info["spans"])
        return records
