"""CBench: the compression benchmark runner (Foresight component 1).

CBench takes fields and compressor sweeps and produces one record per
(compressor, field, configuration): compression ratio, bitrate, the full
distortion metric set, wall-clock timings of this Python implementation
(labelled as such — GPU throughput comes from :mod:`repro.gpu`), and
optionally the reconstructed array for downstream domain analyses.

Fast-path engine hooks:

* ``workers`` on :meth:`CBench.run` / :meth:`CBench.run_all` fans the
  cells out over worker *processes* (:mod:`repro.parallel.executor`);
  record order matches the serial loop, and per-cell telemetry spans
  produced in workers ride home in ``CBenchRecord.meta["telemetry"]``.
* ``cache`` on :class:`CBench` memoizes cells on disk
  (:mod:`repro.cache`): a hit skips compress/decompress/metrics entirely
  and is marked ``meta["cache"] == "hit"`` (timings are the original
  run's — records are otherwise identical).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path
from typing import Any

import numpy as np

from repro.cache import ResultCache, data_digest, make_key
from repro.compressors.base import CompressedBuffer
from repro.compressors.registry import get_compressor
from repro.errors import DataError
from repro.foresight.config import CompressorSweep
from repro.metrics.error import evaluate_distortion
from repro.parallel.executor import process_map
from repro.telemetry import enabled_telemetry, get_telemetry


@dataclass
class CBenchRecord:
    """One benchmark row."""

    compressor: str
    field: str
    mode: str
    parameter: float
    compression_ratio: float
    bitrate: float
    metrics: dict[str, float]
    compress_seconds: float
    decompress_seconds: float
    meta: dict[str, Any] = field(default_factory=dict)
    reconstruction: np.ndarray | None = None

    def to_row(self) -> dict[str, Any]:
        """Flat dict for RecordStore / Cinema (drops the reconstruction)."""
        row: dict[str, Any] = {
            "compressor": self.compressor,
            "field": self.field,
            "mode": self.mode,
            "parameter": self.parameter,
            "compression_ratio": self.compression_ratio,
            "bitrate": self.bitrate,
            "compress_seconds": self.compress_seconds,
            "decompress_seconds": self.decompress_seconds,
        }
        row.update(self.metrics)
        return row


def _run_cell(
    bench: "CBench",
    telem: bool,
    parent_pid: int,
    task: tuple[CompressorSweep, str, float],
) -> CBenchRecord:
    """Module-level (picklable) worker for one sweep cell.

    When the parent had telemetry enabled, a worker process (detected by
    pid — a forked child inherits the parent's enabled telemetry) runs
    the cell under a fresh local telemetry so the span subtree is
    captured into the record's meta and pickled back; the parent then
    re-ingests it into its own tracer.
    """
    sweep, field_name, value = task
    if telem and os.getpid() != parent_pid:
        with enabled_telemetry():
            record = bench.run_one(sweep, field_name, value)
        info = record.meta.get("telemetry")
        if isinstance(info, dict):
            info["remote"] = True
        return record
    return bench.run_one(sweep, field_name, value)


class CBench:
    """Benchmark executor.

    >>> bench = CBench({"rho": some_field})
    >>> records = bench.run(sweep)            # doctest: +SKIP

    ``cache`` (a :class:`repro.cache.ResultCache` or a directory path)
    memoizes cells across runs; ``None`` falls back to the
    ``REPRO_CACHE_DIR`` environment variable (unset → no caching).
    """

    def __init__(
        self,
        fields: dict[str, np.ndarray],
        keep_reconstructions: bool = True,
        cache: ResultCache | Path | str | None = None,
    ) -> None:
        if not fields:
            raise DataError("CBench needs at least one field")
        self.fields = fields
        self.keep_reconstructions = keep_reconstructions
        if cache is None:
            cache = ResultCache.from_env()
        elif not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self._digests: dict[str, str] = {}

    def _cell_key(self, sweep: CompressorSweep, field_name: str, value: float) -> str:
        digest = self._digests.get(field_name)
        if digest is None:
            digest = self._digests[field_name] = data_digest(self.fields[field_name])
        return make_key(
            sweep.name, sweep.options, sweep.mode, sweep.knob, float(value), digest
        )

    def run_one(
        self,
        sweep: CompressorSweep,
        field_name: str,
        value: float,
    ) -> CBenchRecord:
        """Run a single (compressor, field, knob value) cell."""
        if field_name not in self.fields:
            raise DataError(f"unknown field {field_name!r}")
        data = self.fields[field_name]

        key = None
        if self.cache is not None:
            key = self._cell_key(sweep, field_name, value)
            hit = self.cache.get(key)
            if hit is not None:
                record, buf = hit
                record = replace(record, meta={**record.meta, "cache": "hit"})
                if self.keep_reconstructions:
                    compressor = get_compressor(sweep.name, **sweep.options)
                    record.reconstruction = compressor.decompress(buf)
                return record

        compressor = get_compressor(sweep.name, **sweep.options)

        tm = get_telemetry()
        # High-water mark so the cell's whole span subtree (including the
        # codec-internal stage spans) can be attached to the record below.
        mark = tm.tracer.last_span_id() if tm.enabled else 0

        kwargs: dict[str, Any] = {"mode": sweep.mode, sweep.knob: value}
        with tm.span(
            "cbench.run_one",
            compressor=sweep.name,
            field=field_name,
            mode=sweep.mode,
            parameter=float(value),
            bytes=data.nbytes,
        ):
            t0 = time.perf_counter()
            with tm.span("cbench.compress", bytes=data.nbytes, compressor=sweep.name):
                buf: CompressedBuffer = compressor.compress(data, **kwargs)
            t1 = time.perf_counter()
            with tm.span("cbench.decompress", bytes=data.nbytes, compressor=sweep.name):
                recon = compressor.decompress(buf)
            t2 = time.perf_counter()
            with tm.span("cbench.metrics", bytes=data.nbytes):
                distortion = evaluate_distortion(data, recon)

        meta = dict(buf.meta)
        if tm.enabled:
            tm.count("cbench.cells")
            tm.count("cbench.bytes_in", data.nbytes)
            tm.count("cbench.bytes_out", buf.compressed_nbytes)
            meta["telemetry"] = {
                "spans": [s.to_dict() for s in tm.tracer.drain(mark)],
                "compression_ratio": buf.compression_ratio,
            }

        record = CBenchRecord(
            compressor=sweep.name,
            field=field_name,
            mode=sweep.mode,
            parameter=value,
            compression_ratio=buf.compression_ratio,
            bitrate=buf.bitrate,
            metrics=distortion,
            compress_seconds=t1 - t0,
            decompress_seconds=t2 - t1,
            meta=meta,
            reconstruction=recon if self.keep_reconstructions else None,
        )
        if self.cache is not None and key is not None:
            # The reconstruction is re-derivable from the buffer and the
            # telemetry subtree belongs to the original run only; cache
            # the record without them plus the compressed stream itself.
            cache_meta = {k: v for k, v in meta.items() if k != "telemetry"}
            self.cache.put(
                key, (replace(record, reconstruction=None, meta=cache_meta), buf)
            )
        return record

    def _tasks(
        self, sweeps: list[CompressorSweep], fields: list[str] | None
    ) -> list[tuple[CompressorSweep, str, float]]:
        return [
            (sweep, name, value)
            for sweep in sweeps
            for name in (fields or list(self.fields))
            for value in sweep.values_for(name)
        ]

    def run(
        self,
        sweep: CompressorSweep,
        fields: list[str] | None = None,
        workers: int | None = None,
    ) -> list[CBenchRecord]:
        """Run a full sweep over the requested fields.

        ``workers`` follows :func:`repro.parallel.executor.resolve_workers`
        (``None`` → ``REPRO_WORKERS`` env, 0 → one per CPU); the record
        order is identical to the serial loop regardless.
        """
        return self.run_all([sweep], fields, workers=workers)

    def run_all(
        self,
        sweeps: list[CompressorSweep],
        fields: list[str] | None = None,
        workers: int | None = None,
    ) -> list[CBenchRecord]:
        """Run several compressor sweeps back to back (see :meth:`run`)."""
        tasks = self._tasks(sweeps, fields)
        tm = get_telemetry()
        worker = partial(_run_cell, self, tm.enabled, os.getpid())
        records = process_map(worker, tasks, workers=workers)
        if tm.enabled:
            # Re-adopt span subtrees captured in worker processes so the
            # parent trace shows every cell (serial cells traced directly).
            for rec in records:
                info = rec.meta.get("telemetry")
                if isinstance(info, dict) and info.pop("remote", False):
                    if info.get("spans"):
                        tm.tracer.ingest(info["spans"])
        return records
