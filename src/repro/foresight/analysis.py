"""Pluggable post-hoc analyses.

The paper: "in this study we adopt cosmology-specific analysis scripts
for dark matter halos and power spectrum, whereas other analysis code can
be added into our framework for different scientific simulations."  This
registry is that extension point: an analysis is a callable
``(original, reconstructed, **context) -> dict`` registered by name and
selected from the JSON config's ``analyses`` list.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import ConfigError

AnalysisFn = Callable[..., dict[str, Any]]

_REGISTRY: dict[str, AnalysisFn] = {}


def register_analysis(name: str, fn: AnalysisFn, overwrite: bool = False) -> None:
    """Register ``fn`` under ``name``."""
    if name in _REGISTRY and not overwrite:
        raise ConfigError(f"analysis {name!r} already registered")
    _REGISTRY[name] = fn


def get_analysis(name: str) -> AnalysisFn:
    if name not in _REGISTRY:
        raise ConfigError(f"unknown analysis {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def available_analyses() -> list[str]:
    return sorted(_REGISTRY)


# -- built-ins ----------------------------------------------------------------


def _distortion(original: np.ndarray, reconstructed: np.ndarray, **_: Any) -> dict[str, Any]:
    from repro.metrics.error import evaluate_distortion

    return evaluate_distortion(original, reconstructed)


def _power_spectrum(
    original: np.ndarray,
    reconstructed: np.ndarray,
    box_size: float = 1.0,
    nbins: int = 16,
    tolerance: float = 0.01,
    **_: Any,
) -> dict[str, Any]:
    from repro.cosmo.power_spectrum import (
        power_spectrum,
        power_spectrum_ratio,
        ratio_within_band,
    )

    ref = power_spectrum(np.asarray(original, dtype=np.float64), box_size, nbins=nbins)
    rec = power_spectrum(np.asarray(reconstructed, dtype=np.float64), box_size, nbins=nbins)
    ratio = power_spectrum_ratio(ref, rec)
    return {
        "k": ref.k,
        "pk_ratio": ratio,
        "within_band": ratio_within_band(ratio, tolerance),
        "max_deviation": float(np.nanmax(np.abs(ratio - 1.0))),
    }


def _halo_finder(
    original: np.ndarray,
    reconstructed: np.ndarray,
    box_size: float = 1.0,
    linking_length: float | None = None,
    min_members: int = 10,
    nbins: int = 10,
    **_: Any,
) -> dict[str, Any]:
    from repro.cosmo.halos import find_halos, halo_count_ratio, halo_mass_function

    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if linking_length is None:
        n_part = original.shape[0]
        linking_length = 0.2 * box_size / max(2, round(n_part ** (1.0 / 3.0)))
    cat_o = find_halos(original, box_size, linking_length, min_members=min_members)
    cat_r = find_halos(reconstructed, box_size, linking_length, min_members=min_members)
    mf_o = halo_mass_function(cat_o, nbins=nbins)
    mf_r = halo_mass_function(cat_r, bin_edges=mf_o.bin_edges)
    ratio = halo_count_ratio(mf_o, mf_r)
    return {
        "mass_bin_centers": mf_o.bin_centers,
        "counts_original": mf_o.counts,
        "counts_reconstructed": mf_r.counts,
        "count_ratio": ratio,
        "n_halos_original": cat_o.n_halos,
        "n_halos_reconstructed": cat_r.n_halos,
    }


register_analysis("distortion", _distortion)
register_analysis("power_spectrum", _power_spectrum)
register_analysis("halo_finder", _halo_finder)
