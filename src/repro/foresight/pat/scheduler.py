"""In-process SLURM simulator.

Executes a PAT workflow's DAG with cluster semantics: a fixed node pool,
FIFO-with-dependencies dispatch, simulated submit/start/end timestamps
(wall-clock of the in-process actions, or the declared walltime for
command-only jobs), and SLURM-like job states.  Failing actions put the
job in FAILED and cascade CANCELLED to dependents — the ``afterok``
behaviour the generated sbatch scripts would have.

Per-job robustness (``Job.timeout_s`` / ``Job.retries`` /
``Job.retry_backoff_s``): an action with a timeout runs on a watchdog
thread and is abandoned when the budget elapses — the attempt counts as
failed (SLURM's ``--time`` kill, minus the actual kill: Python threads
cannot be interrupted, so the stray thread is a daemon and its eventual
result is discarded).  Failed or timed-out attempts are retried up to
``retries`` times with exponential backoff; once attempts are exhausted
the job records FAILED and cascades CANCELLED exactly like a raised
exception.
"""

from __future__ import annotations

import enum
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ScheduleError
from repro.foresight.pat.job import Job
from repro.foresight.pat.workflow import Workflow
from repro.telemetry import get_telemetry

logger = logging.getLogger("repro.foresight.pat")


class JobState(enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"


@dataclass
class JobRecord:
    job: Job
    job_id: int
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    result: Any = None
    error: str | None = None
    attempts: int = 0


class JobTimeout(Exception):
    """Internal marker: one action attempt exceeded its ``timeout_s``."""


def _call_with_timeout(job: Job) -> Any:
    """Run ``job.action``, enforcing ``job.timeout_s`` when set.

    The timed path executes the action on a daemon thread and joins with
    the budget; on expiry the thread is abandoned (it cannot be killed)
    and :class:`JobTimeout` is raised.  Without a timeout the action runs
    inline — identical stack traces, no thread.
    """
    if job.timeout_s is None:
        return job.action(*job.args, **job.kwargs)

    outcome: dict[str, Any] = {}

    def target() -> None:
        try:
            outcome["result"] = job.action(*job.args, **job.kwargs)
        except BaseException as exc:  # re-raised in the scheduler thread
            outcome["error"] = exc

    thread = threading.Thread(
        target=target, name=f"pat-job-{job.name}", daemon=True
    )
    thread.start()
    thread.join(job.timeout_s)
    if thread.is_alive():
        raise JobTimeout(
            f"timed out after {job.timeout_s}s (attempt abandoned)"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


class SlurmSimulator:
    """Simulated cluster executing :class:`Workflow` DAGs in-process."""

    def __init__(self, nodes: int = 4) -> None:
        if nodes < 1:
            raise ScheduleError("cluster needs at least one node")
        self.nodes = nodes
        self._next_id = 1000

    def run(self, workflow: Workflow, raise_on_failure: bool = False) -> dict[str, JobRecord]:
        """Execute ``workflow``; returns per-job records keyed by name."""
        workflow.validate()
        order = workflow.topological_order()
        # perf_counter keeps submit stamps on the same monotonic clock as
        # every duration in the simulator (never wall-clock epochs).
        records = {
            job.name: JobRecord(
                job=job, job_id=self._next_id + i, submit_time=time.perf_counter()
            )
            for i, job in enumerate(order)
        }
        self._next_id += len(order)
        tm = get_telemetry()
        logger.info(
            "workflow %s: %d jobs submitted on %d nodes",
            workflow.name, len(order), self.nodes,
        )

        clock = 0.0  # simulated seconds for command-only jobs
        for job in order:
            rec = records[job.name]
            if job.nodes > self.nodes:
                rec.state = JobState.FAILED
                rec.error = (
                    f"requested {job.nodes} nodes but the cluster has {self.nodes}"
                )
                logger.warning("job %s (%d): %s", job.name, rec.job_id, rec.error)
                self._cascade_cancel(job.name, records)
                continue
            dep_states = [records[d].state for d in job.depends_on]
            if any(s is not JobState.COMPLETED for s in dep_states):
                rec.state = JobState.CANCELLED
                rec.error = "dependency not satisfied (afterok)"
                logger.warning("job %s (%d): cancelled — %s", job.name, rec.job_id, rec.error)
                continue
            rec.state = JobState.RUNNING
            rec.start_time = clock
            logger.debug("job %s (%d): RUNNING", job.name, rec.job_id)
            if job.action is not None:
                t0 = time.perf_counter()
                while True:
                    rec.attempts += 1
                    try:
                        with tm.span("pat.job", job=job.name,
                                     job_id=rec.job_id, attempt=rec.attempts):
                            rec.result = _call_with_timeout(job)
                        rec.state = JobState.COMPLETED
                        rec.error = None
                        break
                    except JobTimeout as exc:  # timeout == failure (afterok)
                        rec.state = JobState.FAILED
                        rec.error = f"TimeoutError: {exc}"
                    except Exception as exc:  # action failures become job failures
                        rec.state = JobState.FAILED
                        rec.error = f"{type(exc).__name__}: {exc}"
                    if rec.attempts > job.retries:
                        break
                    delay = job.retry_backoff_s * (2 ** (rec.attempts - 1))
                    logger.warning(
                        "job %s (%d): attempt %d failed (%s); retrying in %.3fs",
                        job.name, rec.job_id, rec.attempts, rec.error, delay,
                    )
                    tm.count("pat.retries")
                    if delay > 0:
                        time.sleep(delay)
                clock += time.perf_counter() - t0
            else:
                # Command-only job: charge its declared walltime.
                clock += job.walltime_minutes * 60.0
                rec.state = JobState.COMPLETED
            rec.end_time = clock
            if rec.state is JobState.FAILED:
                logger.warning("job %s (%d): FAILED — %s", job.name, rec.job_id, rec.error)
                self._cascade_cancel(job.name, records)
            else:
                logger.info(
                    "job %s (%d): %s in %.3fs",
                    job.name, rec.job_id, rec.state.value, rec.end_time - rec.start_time,
                )

        if raise_on_failure:
            failed = [n for n, r in records.items() if r.state is JobState.FAILED]
            if failed:
                details = "; ".join(f"{n}: {records[n].error}" for n in failed)
                raise ScheduleError(f"workflow jobs failed: {details}")
        return records

    @staticmethod
    def _cascade_cancel(failed_name: str, records: dict[str, JobRecord]) -> None:
        """Cancel every job transitively depending on ``failed_name``."""
        changed = True
        bad = {failed_name}
        while changed:
            changed = False
            for rec in records.values():
                if rec.state is JobState.PENDING and set(rec.job.depends_on) & bad:
                    rec.state = JobState.CANCELLED
                    rec.error = f"upstream failure: {failed_name}"
                    bad.add(rec.job.name)
                    changed = True
