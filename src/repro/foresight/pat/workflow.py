"""The PAT Workflow class: a dependency DAG of jobs.

Responsibilities split exactly as the paper describes: the Workflow
"tracks the dependencies between jobs and writes the submission script
for the workflow"; execution is delegated to a scheduler
(:class:`repro.foresight.pat.scheduler.SlurmSimulator` in-process, or a
real SLURM via the generated script).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ScheduleError
from repro.foresight.pat.job import Job


class Workflow:
    """Ordered collection of :class:`Job` with dependency validation."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ScheduleError("workflow needs a name")
        self.name = name
        self.jobs: dict[str, Job] = {}

    def add_job(self, job: Job) -> None:
        if job.name in self.jobs:
            raise ScheduleError(f"duplicate job name {job.name!r}")
        self.jobs[job.name] = job

    def validate(self) -> None:
        """Check that dependencies exist and the graph is acyclic."""
        for job in self.jobs.values():
            for dep in job.depends_on:
                if dep not in self.jobs:
                    raise ScheduleError(f"job {job.name!r} depends on unknown {dep!r}")
        self.topological_order()

    def topological_order(self) -> list[Job]:
        """Kahn's algorithm; raises :class:`ScheduleError` on cycles."""
        indeg = {name: 0 for name in self.jobs}
        children: dict[str, list[str]] = {name: [] for name in self.jobs}
        for job in self.jobs.values():
            for dep in job.depends_on:
                if dep not in self.jobs:
                    raise ScheduleError(f"job {job.name!r} depends on unknown {dep!r}")
                indeg[job.name] += 1
                children[dep].append(job.name)
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[Job] = []
        while ready:
            name = ready.pop(0)
            order.append(self.jobs[name])
            for child in children[name]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.append(child)
            ready.sort()
        if len(order) != len(self.jobs):
            cyclic = sorted(set(self.jobs) - {j.name for j in order})
            raise ScheduleError(f"dependency cycle involving: {cyclic}")
        return order

    def write_submission_script(self, path: str | Path) -> str:
        """Write a chained-sbatch submission script and return its text."""
        order = self.topological_order()
        job_ids = {job.name: f"${{{job.name}_id}}" for job in order}
        lines = ["#!/bin/bash", f"# PAT workflow: {self.name}", "set -e", ""]
        for job in order:
            script_name = f"{self.name}_{job.name}.sbatch"
            lines.append(f"cat > {script_name} <<'EOF'")
            lines.append("#!/bin/bash")
            lines.extend(job.sbatch_lines(job_ids))
            lines.append("EOF")
            lines.append(
                f"{job.name}_id=$(sbatch --parsable {script_name})"
            )
            lines.append("")
        text = "\n".join(lines)
        Path(path).write_text(text)
        return text
