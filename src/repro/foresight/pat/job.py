"""The PAT Job class: one SLURM batch job with requirements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ScheduleError


@dataclass
class Job:
    """Specification of one batch job.

    ``action`` is the in-process callable the simulator executes;
    ``command`` is the shell line written into the sbatch script (for a
    real cluster).  Either may be omitted, but not both.

    Robustness knobs (honored by the simulator for action jobs):

    ``timeout_s``
        Wall-clock budget per attempt.  An attempt exceeding it is
        treated exactly like an attempt that raised — the job records
        FAILED (after retries are exhausted) and dependents cascade to
        CANCELLED.
    ``retries``
        How many *additional* attempts a failing or timed-out action
        gets (0 = fail on the first error, like the real ``afterok``).
    ``retry_backoff_s``
        Base of the exponential backoff slept between attempts
        (``retry_backoff_s * 2**(attempt-1)``; 0 = retry immediately).
    """

    name: str
    action: Callable[..., Any] | None = None
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    command: str | None = None
    nodes: int = 1
    walltime_minutes: int = 60
    partition: str = "standard"
    depends_on: list[str] = field(default_factory=list)
    timeout_s: float | None = None
    retries: int = 0
    retry_backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or " " in self.name:
            raise ScheduleError(f"invalid job name {self.name!r}")
        if self.action is None and self.command is None:
            raise ScheduleError(f"job {self.name!r} needs an action or a command")
        if self.nodes < 1 or self.walltime_minutes < 1:
            raise ScheduleError(f"job {self.name!r} has invalid resources")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ScheduleError(f"job {self.name!r} timeout_s must be > 0")
        if self.retries < 0 or self.retry_backoff_s < 0:
            raise ScheduleError(f"job {self.name!r} has invalid retry settings")

    def sbatch_lines(self, job_ids: dict[str, str]) -> list[str]:
        """Render the ``#SBATCH`` header + command for a submission script."""
        lines = [
            f"#SBATCH --job-name={self.name}",
            f"#SBATCH --nodes={self.nodes}",
            f"#SBATCH --time={self.walltime_minutes}",
            f"#SBATCH --partition={self.partition}",
        ]
        if self.depends_on:
            deps = ":".join(job_ids.get(d, d) for d in self.depends_on)
            lines.append(f"#SBATCH --dependency=afterok:{deps}")
        lines.append(self.command or f"# in-process action: {self.action!r}")
        return lines
