"""PAT: the workflow submission package (Foresight component 2).

Two user-facing classes, as the paper describes: :class:`Job` specifies
the requirements of one SLURM batch job and its dependencies;
:class:`Workflow` tracks the dependency DAG and writes the submission
script.  :class:`SlurmSimulator` executes the same DAG in process with
simulated cluster semantics, so studies run identically with or without
a real scheduler.
"""

from repro.foresight.pat.job import Job
from repro.foresight.pat.scheduler import JobState, SlurmSimulator
from repro.foresight.pat.workflow import Workflow

__all__ = ["Job", "Workflow", "SlurmSimulator", "JobState"]
