"""Foresight JSON configuration.

The real Foresight is driven by one JSON file naming the input data, the
compressors with their parameter sweeps, the analyses to run, and the
output location.  Example::

    {
      "input": {"dataset": "nyx", "generator": {"grid_size": 64, "seed": 1},
                 "fields": ["baryon_density", "temperature"]},
      "compressors": [
        {"name": "cuzfp", "mode": "fixed_rate", "sweep": {"rate": [1, 2, 4]}},
        {"name": "gpu-sz", "mode": "abs",
         "sweep": {"error_bound": {"baryon_density": [0.1, 0.2],
                                    "temperature": [1e3]}}}
      ],
      "analyses": ["distortion", "power_spectrum"],
      "output": {"directory": "results"}
    }

Per-field sweeps (dict-valued) let different fields use different knob
values, which the paper's best-fit configurations require.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.compressors.registry import available_compressors
from repro.errors import ConfigError

_VALID_MODES = {"abs", "pw_rel", "fixed_rate"}
_KNOBS = {"abs": "error_bound", "pw_rel": "pwrel", "fixed_rate": "rate"}


@dataclass
class CompressorSweep:
    """One compressor entry: which knob values to run per field."""

    name: str
    mode: str
    sweep: dict[str, Any]
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name.lower() not in available_compressors():
            raise ConfigError(
                f"unknown compressor {self.name!r}; available: {available_compressors()}"
            )
        if self.mode not in _VALID_MODES:
            raise ConfigError(f"mode must be one of {sorted(_VALID_MODES)}")
        knob = _KNOBS[self.mode]
        if knob not in self.sweep:
            raise ConfigError(f"mode {self.mode!r} sweep must define {knob!r}")

    @property
    def knob(self) -> str:
        return _KNOBS[self.mode]

    def values_for(self, field_name: str) -> list[float]:
        """Knob values for a field (dict sweeps are per-field)."""
        raw = self.sweep[self.knob]
        if isinstance(raw, dict):
            if field_name not in raw:
                return []
            raw = raw[field_name]
        if not isinstance(raw, (list, tuple)):
            raw = [raw]
        values = [float(v) for v in raw]
        if any(v <= 0 for v in values):
            raise ConfigError(f"{self.knob} values must be positive")
        return values


@dataclass
class ForesightConfig:
    """Validated top-level configuration.

    Input data comes either from a synthetic generator (``generator``
    keys are passed to ``make_nyx_dataset`` / ``make_hacc_dataset``) or
    from a snapshot file (``input.file``): a GenericIO-like ``.gio`` for
    HACC layouts or an HDF5-like ``.h5l`` for Nyx layouts — mirroring the
    real Foresight, which points at simulation outputs.
    """

    dataset: str
    generator: dict[str, Any]
    fields: list[str]
    compressors: list[CompressorSweep]
    analyses: list[str]
    output_directory: Path
    input_file: Path | None = None
    box_size: float | None = None

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ForesightConfig":
        try:
            inp = raw["input"]
            dataset = inp["dataset"]
            comps = raw["compressors"]
        except KeyError as exc:
            raise ConfigError(f"missing required config key: {exc}") from exc
        if dataset not in ("nyx", "hacc"):
            raise ConfigError("input.dataset must be 'nyx' or 'hacc'")
        if "file" in inp and "generator" in inp:
            raise ConfigError("input.file and input.generator are mutually exclusive")
        sweeps = [
            CompressorSweep(
                name=c["name"],
                mode=c.get("mode", "abs"),
                sweep=c.get("sweep", {}),
                options=c.get("options", {}),
            )
            for c in comps
        ]
        return cls(
            dataset=dataset,
            generator=dict(inp.get("generator", {})),
            fields=list(inp.get("fields", [])),
            compressors=sweeps,
            analyses=list(raw.get("analyses", ["distortion"])),
            output_directory=Path(raw.get("output", {}).get("directory", "foresight-out")),
            input_file=Path(inp["file"]) if "file" in inp else None,
            box_size=float(inp["box_size"]) if "box_size" in inp else None,
        )


def load_config(source: str | Path | dict[str, Any]) -> ForesightConfig:
    """Load a config from a JSON file path or an already-parsed dict."""
    if isinstance(source, dict):
        return ForesightConfig.from_dict(source)
    path = Path(source)
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise ConfigError(f"config file not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"config is not valid JSON: {exc}") from exc
    return ForesightConfig.from_dict(raw)
