"""Static HTML viewer for Cinema databases.

The paper shows its results through "web-based Cinema viewers"; this
writer produces a dependency-free ``index.html`` inside a ``.cdb``
directory — a sortable parameter table with links to per-row artifacts —
so a study's outputs are browsable without any server or JS framework.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.errors import DataError
from repro.foresight.cinema import CinemaDatabase

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; }
table { border-collapse: collapse; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: right; }
th { background: #eee; cursor: default; }
td.text { text-align: left; }
caption { font-weight: 600; margin-bottom: 0.5rem; text-align: left; }
"""


def write_viewer(db: CinemaDatabase, title: str = "Foresight study") -> Path:
    """Render ``index.html`` for an existing database; returns its path."""
    rows = db.read()
    if not rows:
        raise DataError("database has no rows")
    columns = list(rows[0].keys())

    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<table><caption>{html.escape(title)} &mdash; {len(rows)} configurations</caption>",
        "<tr>" + "".join(f"<th>{html.escape(c)}</th>" for c in columns) + "</tr>",
    ]
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if col == "FILE" and value:
                cells.append(
                    f"<td class='text'><a href='{html.escape(value)}'>"
                    f"{html.escape(Path(value).name)}</a></td>"
                )
            else:
                escaped = html.escape(_fmt(value))
                css = " class='text'" if not _is_number(value) else ""
                cells.append(f"<td{css}>{escaped}</td>")
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</table></body></html>")
    out = db.path / "index.html"
    out.write_text("\n".join(parts), encoding="utf-8")
    return out


def _is_number(value: object) -> bool:
    try:
        float(str(value))
        return True
    except (TypeError, ValueError):
        return False


def _fmt(value: object) -> str:
    if _is_number(value):
        f = float(str(value))
        if f == int(f) and abs(f) < 1e15:
            return str(int(f))
        return f"{f:.5g}"
    return str(value)
