"""``python -m repro.foresight`` — the Foresight study CLI."""

from repro.foresight.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
