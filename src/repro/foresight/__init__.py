"""Foresight: the compression benchmark & analysis framework (Section IV-A).

The three components of the paper's Fig. 2:

* **CBench** (:mod:`repro.foresight.cbench`) — executes compressor x
  field x configuration sweeps and records compression ratio, distortion
  metrics, throughput estimates, and reconstructed data.
* **PAT** (:mod:`repro.foresight.pat`) — a lightweight workflow package:
  ``Job`` captures one SLURM batch job, ``Workflow`` tracks dependencies
  and writes submission scripts, and an in-process scheduler simulator
  executes the DAG so whole studies run without a cluster.
* **Cinema** (:mod:`repro.foresight.cinema`) — writes Cinema-spec
  databases (``data.csv`` plus per-row artifacts) for interactive
  exploration.

Everything is driven by a single JSON configuration
(:mod:`repro.foresight.config`), as in the real Foresight.
"""

from repro.foresight.analysis import available_analyses, get_analysis, register_analysis
from repro.foresight.cbench import CBench, CBenchRecord
from repro.foresight.cinema import CinemaDatabase
from repro.foresight.config import ForesightConfig, load_config
from repro.foresight.pat import Job, SlurmSimulator, Workflow

__all__ = [
    "CBench",
    "CBenchRecord",
    "CinemaDatabase",
    "ForesightConfig",
    "load_config",
    "Job",
    "Workflow",
    "SlurmSimulator",
    "available_analyses",
    "get_analysis",
    "register_analysis",
]
