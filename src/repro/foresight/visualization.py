"""Text-mode visualization: the last stage of the Foresight pipeline.

The real Foresight renders matplotlib plots into Cinema databases; in
this matplotlib-free environment the same information is rendered as
aligned ASCII line charts plus machine-readable CSV series (both are
valid Cinema artifacts).
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import DataError

_GLYPHS = "ox+*#@%&"


def render_ascii_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str = "",
    width: int = 72,
    height: int = 20,
    logx: bool = False,
) -> str:
    """Render one or more y(x) series as an ASCII scatter chart."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise DataError("empty x axis")
    ys = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    for k, v in ys.items():
        if v.shape != x.shape:
            raise DataError(f"series {k!r} length does not match x")

    xs = np.log10(np.maximum(x, 1e-300)) if logx else x
    all_y = np.concatenate([v[np.isfinite(v)] for v in ys.values()])
    if all_y.size == 0:
        raise DataError("no finite y values")
    ymin, ymax = float(all_y.min()), float(all_y.max())
    if math.isclose(ymin, ymax):
        ymin -= 0.5
        ymax += 0.5
    xmin, xmax = float(xs.min()), float(xs.max())
    if math.isclose(xmin, xmax):
        xmin -= 0.5
        xmax += 0.5

    grid = [[" "] * width for _ in range(height)]
    for si, (name, v) in enumerate(ys.items()):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        for xi, yi in zip(xs, v):
            if not (np.isfinite(xi) and np.isfinite(yi)):
                continue
            col = int((xi - xmin) / (xmax - xmin) * (width - 1))
            row = int((yi - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{ymin:.4g}, {ymax:.4g}]   x: [{x.min():.4g}, {x.max():.4g}]"
                 + ("  (log x)" if logx else ""))
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(ys)
    )
    lines.append(legend)
    return "\n".join(lines)


def save_series_csv(
    path: str | Path,
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    x_name: str = "x",
) -> Path:
    """Write x plus named series as CSV columns."""
    path = Path(path)
    x = np.asarray(x, dtype=np.float64)
    cols = {x_name: x}
    for k, v in series.items():
        v = np.asarray(v, dtype=np.float64)
        if v.shape != x.shape:
            raise DataError(f"series {k!r} length does not match x")
        cols[k] = v
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(cols.keys())
        for i in range(x.size):
            writer.writerow([f"{cols[c][i]:.10g}" for c in cols])
    return path


def format_table(rows: list[dict[str, object]], columns: list[str] | None = None) -> str:
    """Render records as an aligned text table (used by the benches)."""
    if not rows:
        raise DataError("no rows")
    columns = columns or sorted({k for r in rows for k in r})
    rendered = [
        {c: _fmt(r.get(c, "")) for c in columns} for r in rows
    ]
    widths = {c: max(len(c), *(len(r[c]) for r in rendered)) for c in columns}
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    sep = "-+-".join("-" * widths[c] for c in columns)
    body = [" | ".join(r[c].ljust(widths[c]) for c in columns) for r in rendered]
    return "\n".join([header, sep, *body])


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
