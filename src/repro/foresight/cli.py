"""Foresight command-line interface.

The real Foresight is driven as ``foresight <config.json>``; this module
is that executable: it loads the JSON config, generates (or loads) the
dataset, runs the CBench sweeps as a PAT workflow on the SLURM simulator,
executes the configured analyses, and writes a Cinema database plus a
JSON-lines record file into the output directory.

Usage::

    python -m repro.foresight.cli config.json [--nodes 4] [-v | --quiet]
                                  [--trace-out trace.jsonl]
                                  [--workers N] [--cache DIR]

Progress goes through the ``repro.foresight`` logger (stderr); only the
final result table is written to stdout.  ``--trace-out`` enables the
telemetry subsystem for the run and writes every span (CBench cells,
codec pipeline stages, PAT jobs) to a trace file readable with
``python -m repro.telemetry report``.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.parallel.shm import NO_SHM_ENV
from repro.cosmo.hacc import make_hacc_dataset
from repro.cosmo.nyx import make_nyx_dataset
from repro.errors import ReproError
from repro.foresight.analysis import get_analysis
from repro.foresight.cbench import CBench
from repro.foresight.cinema import CinemaDatabase
from repro.foresight.config import ForesightConfig, load_config
from repro.foresight.pat import Job, SlurmSimulator, Workflow
from repro.foresight.visualization import format_table
from repro.io.json_records import RecordStore
from repro.telemetry.export import write_chrome, write_jsonl

logger = logging.getLogger("repro.foresight")


def configure_logging(
    verbosity: int = 0, quiet: bool = False, json_logs: bool = False
) -> None:
    """Wire the ``repro.foresight`` logger hierarchy to stderr.

    ``quiet`` shows warnings only; default shows INFO; ``-v`` adds DEBUG
    (including per-job PAT scheduler transitions).  ``json_logs`` swaps
    in :class:`repro.telemetry.logs.JsonLogFormatter`: one JSON object
    per record, stamped with the active trace/request ids.
    """
    level = logging.WARNING if quiet else (
        logging.DEBUG if verbosity > 0 else logging.INFO
    )
    handler = logging.StreamHandler(sys.stderr)
    if json_logs:
        from repro.telemetry.logs import JsonLogFormatter

        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
    root = logging.getLogger("repro")
    root.handlers[:] = [handler]
    root.setLevel(level)


def _load_fields_from_file(cfg: ForesightConfig) -> tuple[dict[str, np.ndarray], float]:
    """Load snapshot fields from a .gio (HACC layout) or .h5l (Nyx) file."""
    from repro.io.genericio import read_genericio
    from repro.io.hdf5like import H5LikeFile

    path = cfg.input_file
    box = cfg.box_size if cfg.box_size is not None else (
        256.0 if cfg.dataset == "hacc" else 50.0
    )
    if path.suffix == ".gio":
        gio = read_genericio(path, variables=cfg.fields or None)
        return dict(gio.variables), box
    if path.suffix == ".h5l":
        h5 = H5LikeFile.load(path)
        names = cfg.fields or [k.rsplit("/", 1)[-1] for k in h5.keys()]
        fields = {}
        for name in names:
            key = next((k for k in h5.keys() if k.rsplit("/", 1)[-1] == name), None)
            if key is None:
                raise ReproError(f"dataset {name!r} not found in {path}")
            fields[name] = h5[key]
        return fields, box
    raise ReproError(f"unsupported input file type: {path.suffix!r} (.gio or .h5l)")


def _build_fields(cfg: ForesightConfig) -> tuple[dict[str, np.ndarray], float]:
    if cfg.input_file is not None:
        return _load_fields_from_file(cfg)
    if cfg.dataset == "nyx":
        ds = make_nyx_dataset(**cfg.generator)
    else:
        ds = make_hacc_dataset(**cfg.generator)
    names = cfg.fields or sorted(ds.fields)
    missing = [n for n in names if n not in ds.fields]
    if missing:
        raise ReproError(f"config names unknown fields: {missing}")
    return {n: ds.fields[n] for n in names}, ds.box_size


def run_study(
    cfg: ForesightConfig,
    nodes: int = 4,
    verbose: bool = True,
    trace_out: Path | str | None = None,
    workers: int | None = None,
    cache: Path | str | None = None,
    chunk_budget: int | str | None = None,
    no_shm: bool = False,
) -> list[dict]:
    """Execute a full Foresight study; returns the flat result rows.

    ``trace_out`` enables telemetry for the study and writes the span
    trace there afterwards — ``.json`` gets Chrome trace-event format,
    anything else JSONL.  ``workers`` fans the CBench cells out over
    worker processes (``None`` → ``REPRO_WORKERS`` env, 0 → one per
    CPU); ``cache`` memoizes cells in the given directory (``None`` →
    ``REPRO_CACHE_DIR`` env, unset → no caching).  ``chunk_budget``
    (bytes, K/M/G suffix allowed; ``None`` → ``REPRO_CHUNK_BUDGET``)
    switches CBench to the out-of-core streaming cell; ``no_shm``
    forces the pickling transport for parallel sweeps (equivalent to
    ``REPRO_NO_SHM=1``) — results are identical either way.
    """
    if no_shm:
        os.environ[NO_SHM_ENV] = "1"
    tm_prev = None
    if trace_out is not None:
        tm_prev = telemetry.set_telemetry(telemetry.Telemetry("foresight"))
    try:
        return _run_study(cfg, nodes, verbose, workers=workers, cache=cache,
                          chunk_budget=chunk_budget)
    finally:
        if tm_prev is not None:
            tm = telemetry.set_telemetry(tm_prev)
            path = Path(trace_out)
            spans = tm.tracer.finished_spans()
            if path.suffix == ".json":
                write_chrome(path, spans)
            else:
                write_jsonl(path, spans)
            logger.info("wrote telemetry trace %s (%d spans)", path, len(spans))


def _run_study(
    cfg: ForesightConfig,
    nodes: int,
    verbose: bool,
    workers: int | None = None,
    cache: Path | str | None = None,
    chunk_budget: int | str | None = None,
) -> list[dict]:
    fields, box_size = _build_fields(cfg)
    logger.info(
        "loaded %d field(s): %s", len(fields), ", ".join(sorted(fields))
    )
    bench = CBench(fields, cache=cache, chunk_budget=chunk_budget)
    state: dict = {}

    def cbench_job():
        state["records"] = bench.run_all(
            cfg.compressors, list(fields), workers=workers
        )
        if bench.cache is not None:
            logger.info("cbench cache: %s", bench.cache.stats.to_dict())
        return len(state["records"])

    def analysis_job():
        rows = []
        for rec in state["records"]:
            row = rec.to_row()
            for name in cfg.analyses:
                if name == "distortion":
                    continue  # CBench already computed it
                fn = get_analysis(name)
                out = fn(
                    fields[rec.field],
                    rec.reconstruction,
                    box_size=box_size,
                )
                for key, value in out.items():
                    if np.isscalar(value) or isinstance(value, (bool, int, float)):
                        row[f"{name}.{key}"] = value
            rows.append(row)
        state["rows"] = rows
        return len(rows)

    wf = Workflow("foresight-cli")
    wf.add_job(Job(name="cbench", action=cbench_job))
    wf.add_job(Job(name="analysis", action=analysis_job, depends_on=["cbench"]))
    SlurmSimulator(nodes=nodes).run(wf, raise_on_failure=True)

    outdir = cfg.output_directory
    outdir.mkdir(parents=True, exist_ok=True)
    RecordStore(outdir / "records.jsonl").extend(state["rows"])
    CinemaDatabase(outdir / "study").write(state["rows"])
    logger.info("wrote %s and %s", outdir / "records.jsonl", outdir / "study.cdb")
    if verbose:
        # The result table is the study's product — it stays on stdout.
        cols = [c for c in ("compressor", "field", "parameter",
                            "compression_ratio", "psnr") if any(c in r for r in state["rows"])]
        print(format_table(state["rows"], cols))
    return state["rows"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="foresight", description="Run a Foresight compression study."
    )
    parser.add_argument("config", help="JSON configuration file")
    parser.add_argument("--nodes", type=int, default=4,
                        help="simulated cluster size (default 4)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the result table and progress logging")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="debug-level progress logging")
    parser.add_argument("--log-json", action="store_true",
                        help="emit one JSON object per log record, stamped "
                             "with trace/request ids when available")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="enable telemetry; write the span trace here "
                             "(.json = Chrome trace format, else JSONL)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="CBench worker processes (default: "
                             "$REPRO_WORKERS or serial; 0 = one per CPU)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="memoize CBench cells in this directory "
                             "(default: $REPRO_CACHE_DIR or no caching)")
    parser.add_argument("--chunk-budget", default=None, metavar="BYTES",
                        help="stream each cell chunk-by-chunk with this "
                             "per-chunk byte budget (K/M/G suffix allowed; "
                             "default: $REPRO_CHUNK_BUDGET or whole-array)")
    parser.add_argument("--no-shm", action="store_true",
                        help="disable the shared-memory field transport for "
                             "parallel sweeps (same as REPRO_NO_SHM=1)")
    args = parser.parse_args(argv)
    configure_logging(verbosity=args.verbose, quiet=args.quiet,
                      json_logs=args.log_json)
    try:
        cfg = load_config(Path(args.config))
        run_study(cfg, nodes=args.nodes, verbose=not args.quiet,
                  trace_out=args.trace_out, workers=args.workers,
                  cache=args.cache, chunk_budget=args.chunk_budget,
                  no_shm=args.no_shm)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
