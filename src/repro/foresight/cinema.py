"""Cinema database writer (Foresight component 3).

Cinema (Woodring et al. 2017) stores exploration results as a directory
with a ``data.csv`` index whose columns are parameter values and whose
``FILE`` column points at per-row artifacts.  This writer produces
spec-compliant databases from CBench/analysis records; artifacts are
written by a caller-supplied callback (CSV series, rendered ASCII plots,
JSON blobs — anything file-shaped).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Callable

from repro.errors import DataError


class CinemaDatabase:
    """A ``.cdb`` directory with a data.csv index."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.suffix != ".cdb":
            self.path = self.path.with_suffix(".cdb")
        self.path.mkdir(parents=True, exist_ok=True)

    def write(
        self,
        records: list[dict[str, Any]],
        artifact_writer: Callable[[dict[str, Any], Path], str] | None = None,
    ) -> Path:
        """Write ``records`` to ``data.csv``.

        ``artifact_writer(record, artifact_dir)`` returns the relative
        path of the artifact it wrote for that record; it becomes the
        row's ``FILE`` column.
        """
        if not records:
            raise DataError("no records to write")
        columns = sorted({k for r in records for k in r})
        artifact_dir = self.path / "artifacts"
        rows = []
        for i, rec in enumerate(records):
            row = {c: rec.get(c, "NaN") for c in columns}
            if artifact_writer is not None:
                artifact_dir.mkdir(exist_ok=True)
                row["FILE"] = artifact_writer(rec, artifact_dir)
            rows.append(row)
        if artifact_writer is not None:
            columns = columns + ["FILE"]
        index = self.path / "data.csv"
        with open(index, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        return index

    def read(self) -> list[dict[str, str]]:
        """Load data.csv back as a list of string-valued records."""
        index = self.path / "data.csv"
        if not index.exists():
            raise DataError(f"no data.csv in {self.path}")
        with open(index, newline="", encoding="utf-8") as fh:
            return list(csv.DictReader(fh))
