"""Dependency-free image rendering for Cinema artifacts.

Fig. 1 of the paper shows grayscale visualizations of Nyx density slices
for the original and reconstructed data.  This module renders exactly
that without matplotlib: a 2-D slice, log-scaled, written as a binary
PGM (portable graymap) file — a format every image viewer opens and a
valid Cinema artifact.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DataError


def render_slice(
    field: np.ndarray,
    axis: int = 2,
    index: int | None = None,
    log_scale: bool = True,
    vmin: float | None = None,
    vmax: float | None = None,
) -> np.ndarray:
    """Render a 2-D slice of a 3-D field to uint8 grayscale.

    ``vmin``/``vmax`` pin the scaling so original and reconstructed
    renders are directly comparable (pass the original's range to both).
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 3:
        raise DataError("render_slice expects a 3-D field")
    if not 0 <= axis <= 2:
        raise DataError("axis must be 0, 1, or 2")
    if index is None:
        index = field.shape[axis] // 2
    plane = np.take(field, index, axis=axis)
    if log_scale:
        floor = np.min(plane[plane > 0]) if (plane > 0).any() else 1.0
        plane = np.log10(np.maximum(plane, floor))
    lo = float(plane.min()) if vmin is None else (np.log10(vmin) if log_scale and vmin and vmin > 0 else vmin)
    hi = float(plane.max()) if vmax is None else (np.log10(vmax) if log_scale and vmax and vmax > 0 else vmax)
    if hi <= lo:
        return np.zeros(plane.shape, dtype=np.uint8)
    scaled = np.clip((plane - lo) / (hi - lo), 0.0, 1.0)
    return (scaled * 255.0 + 0.5).astype(np.uint8)


def write_pgm(path: str | Path, image: np.ndarray) -> Path:
    """Write a uint8 grayscale image as binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2 or image.dtype != np.uint8:
        raise DataError("write_pgm expects a 2-D uint8 array")
    path = Path(path)
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode()
    path.write_bytes(header + image.tobytes())
    return path


def read_pgm(path: str | Path) -> np.ndarray:
    """Read a binary PGM written by :func:`write_pgm`."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P5"):
        raise DataError("not a binary PGM file")
    parts = raw.split(b"\n", 3)
    if len(parts) < 4:
        raise DataError("truncated PGM header")
    width, height = (int(v) for v in parts[1].split())
    body = parts[3]
    if len(body) < width * height:
        raise DataError("truncated PGM body")
    return np.frombuffer(body[: width * height], dtype=np.uint8).reshape(height, width)
