"""Host-device interconnect model.

All GPUs in the paper's experiments hang off 16-lane PCIe 3.0
(Section IV-B-3), whose 15.75 GB/s theoretical rate delivers ~12 GB/s in
practice for large cudaMemcpy transfers.  A transfer costs a fixed launch
latency plus size over effective bandwidth; the latency term is what makes
tiny compressed payloads not infinitely fast in Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Interconnect:
    name: str
    effective_bandwidth_gbps: float
    latency_s: float

    @property
    def effective_bandwidth(self) -> float:
        """Bytes per second."""
        return self.effective_bandwidth_gbps * 1e9


#: 16-lane PCIe 3.0 — the paper's configuration for every GPU.
PCIE3_X16 = Interconnect("PCIe 3.0 x16", effective_bandwidth_gbps=12.0, latency_s=10e-6)

#: NVLink 2.0 — the faster interconnect the paper cites as future mitigation.
NVLINK2 = Interconnect("NVLink 2.0", effective_bandwidth_gbps=70.0, latency_s=5e-6)


def transfer_time(nbytes: float, link: Interconnect = PCIE3_X16) -> float:
    """Seconds to move ``nbytes`` across ``link`` (one direction)."""
    check_positive(nbytes, "nbytes", strict=False)
    if nbytes == 0:
        return 0.0
    return link.latency_s + nbytes / link.effective_bandwidth
