"""Node-level in-situ compression model (the paper's Summit argument).

Section V-C: "taking into account multiple GPUs on a single node, for
instance, six Nvidia Tesla V100 GPUs per Summit node, cuZFP can
significantly reduce the compression overhead to 1/40 of the original
multi-core compression overhead (e.g., from more than 10% to lower than
0.3%)".  This module composes the per-GPU runtime model into that
node-level overhead computation: given a timestep duration and a
snapshot size per node, what fraction of the step does compression cost
on (a) the node's CPUs and (b) its GPUs?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataError
from repro.gpu.device import GPUSpec, V100
from repro.gpu.kernel import cpu_throughput
from repro.gpu.runtime import simulate_compression
from repro.util.validation import check_positive


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: GPUs + a reference CPU."""

    name: str
    gpu: GPUSpec
    n_gpus: int
    cpu_threads: int


#: Summit-like node: 6 V100s, ~40 usable CPU cores (2x IBM POWER9 22c).
SUMMIT_NODE = NodeSpec("Summit-like", gpu=V100, n_gpus=6, cpu_threads=40)


@dataclass(frozen=True)
class InSituOverhead:
    """Compression cost relative to one simulation timestep."""

    strategy: str
    compression_seconds: float
    timestep_seconds: float

    @property
    def overhead_fraction(self) -> float:
        return self.compression_seconds / self.timestep_seconds


def node_insitu_overhead(
    snapshot_bytes_per_node: float,
    timestep_seconds: float,
    bits_per_value: float,
    node: NodeSpec = SUMMIT_NODE,
    value_bytes: int = 4,
    cpu_codec: str = "sz",
) -> list[InSituOverhead]:
    """Overhead of compressing one snapshot per timestep, CPU vs GPU.

    The GPU path assumes data is GPU-resident (the paper's Metric 4
    protocol) and splits the snapshot evenly across the node's GPUs; the
    CPU path must run the multi-core compressor over the whole snapshot.
    """
    check_positive(snapshot_bytes_per_node, "snapshot_bytes_per_node")
    check_positive(timestep_seconds, "timestep_seconds")
    if node.n_gpus < 1:
        raise DataError("node needs at least one GPU")

    out = []
    cpu_bw = cpu_throughput(cpu_codec, "compress", threads=node.cpu_threads)
    out.append(
        InSituOverhead(
            strategy=f"{cpu_codec.upper()} on {node.cpu_threads} CPU threads",
            compression_seconds=snapshot_bytes_per_node / cpu_bw,
            timestep_seconds=timestep_seconds,
        )
    )
    per_gpu_values = snapshot_bytes_per_node / node.n_gpus / value_bytes
    run = simulate_compression(
        int(per_gpu_values), bits_per_value, device=node.gpu, value_bytes=value_bytes
    )
    out.append(
        InSituOverhead(
            strategy=f"cuZFP on {node.n_gpus}x {node.gpu.name}",
            compression_seconds=run.total_seconds,  # GPUs run concurrently
            timestep_seconds=timestep_seconds,
        )
    )
    return out
