"""Analytic GPU performance model.

No GPU is required (or used) anywhere in this library: the paper's
throughput experiments (Figs. 7-10) are regenerated from a calibrated
analytic model instead of wall-clock kernel timings.  The model has three
layers:

* :mod:`repro.gpu.device` — the hardware catalog (Table I of the paper)
  plus the Xeon Gold 6148 CPU reference.
* :mod:`repro.gpu.pcie` — host-device transfer times (16-lane PCIe 3.0 in
  the paper; NVLink available for what-if studies).
* :mod:`repro.gpu.kernel` — roofline-style kernel-time model for the
  compression codecs, calibrated against published cuZFP/SZ throughputs.
* :mod:`repro.gpu.runtime` — composes the above into the init / kernel /
  memcpy / free timelines of Fig. 7 and the throughput summaries of
  Figs. 8-10.
"""

from repro.gpu.device import (
    CPU_XEON_6148,
    GPU_CATALOG,
    V100,
    CPUSpec,
    GPUSpec,
    get_gpu,
)
from repro.gpu.kernel import (
    CodecKernelModel,
    cpu_throughput,
    kernel_time,
)
from repro.gpu.pcie import Interconnect, PCIE3_X16, NVLINK2, transfer_time
from repro.gpu.node import (
    InSituOverhead,
    NodeSpec,
    SUMMIT_NODE,
    node_insitu_overhead,
)
from repro.gpu.runtime import (
    GPUCompressionRun,
    TimelineStage,
    simulate_compression,
    simulate_decompression,
)

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "GPU_CATALOG",
    "V100",
    "CPU_XEON_6148",
    "get_gpu",
    "Interconnect",
    "PCIE3_X16",
    "NVLINK2",
    "transfer_time",
    "CodecKernelModel",
    "kernel_time",
    "cpu_throughput",
    "TimelineStage",
    "GPUCompressionRun",
    "simulate_compression",
    "simulate_decompression",
    "NodeSpec",
    "SUMMIT_NODE",
    "InSituOverhead",
    "node_insitu_overhead",
]
