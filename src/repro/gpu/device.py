"""Hardware catalog: the GPUs of Table I and the reference CPU.

Values are transcribed from Table I of the paper ("Specifications of
Different GPUs Used in Our Experiments").  The K80 is a dual-chip board;
per the paper's footnotes its shader count, peak performance and
bandwidth are per chip x2 — the model uses a single chip (the paper's
kernels run on one), with :attr:`GPUSpec.dual_chip` recording the fact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class GPUSpec:
    """One row of Table I."""

    name: str
    release_year: int
    architecture: str
    compute_capability: str
    memory_gb: float
    memory_type: str
    shaders: int
    peak_tflops_fp32: float
    mem_bandwidth_gbps: float
    dual_chip: bool = False

    @property
    def peak_flops(self) -> float:
        return self.peak_tflops_fp32 * 1e12

    @property
    def mem_bandwidth(self) -> float:
        """Bytes per second."""
        return self.mem_bandwidth_gbps * 1e9


@dataclass(frozen=True)
class CPUSpec:
    """Reference CPU (20-core Intel Xeon Gold 6148, PantaRhei cluster)."""

    name: str
    cores: int
    base_clock_ghz: float
    mem_bandwidth_gbps: float


RTX_2080TI = GPUSpec("Nvidia RTX 2080Ti", 2018, "Turing", "7.5", 11, "GDDR6", 4352, 13.0, 448.0)
V100 = GPUSpec("Nvidia Tesla V100", 2017, "Volta", "7.0-7.2", 16, "HBM2", 5120, 14.0, 900.0)
TITAN_V = GPUSpec("Nvidia Titan V", 2017, "Volta", "7.0-7.2", 12, "HBM2", 5120, 15.0, 650.0)
GTX_1080TI = GPUSpec("Nvidia GTX 1080Ti", 2017, "Pascal", "6.0-6.2", 11, "GDDR5X", 3584, 11.0, 485.0)
P6000 = GPUSpec("Nvidia P6000", 2016, "Pascal", "6.0-6.2", 24, "GDDR5X", 3840, 13.0, 433.0)
P100 = GPUSpec("Nvidia Tesla P100", 2016, "Pascal", "6.0-6.2", 16, "HBM2", 3584, 9.5, 732.0)
K80 = GPUSpec("Nvidia Tesla K80", 2014, "Kepler 2.0", "3.0-3.7", 12, "GDDR5", 2496, 4.0, 240.0, dual_chip=True)

#: Table I, in the paper's row order.
GPU_CATALOG: tuple[GPUSpec, ...] = (
    RTX_2080TI,
    V100,
    TITAN_V,
    GTX_1080TI,
    P6000,
    P100,
    K80,
)

CPU_XEON_6148 = CPUSpec("Intel Xeon Gold 6148", cores=20, base_clock_ghz=2.4, mem_bandwidth_gbps=128.0)


def get_gpu(name: str) -> GPUSpec:
    """Look up a catalog GPU by (case-insensitive) substring of its name."""
    key = name.lower()
    matches = [g for g in GPU_CATALOG if key in g.name.lower()]
    if not matches:
        known = ", ".join(g.name for g in GPU_CATALOG)
        raise ConfigError(f"unknown GPU {name!r}; catalog: {known}")
    if len(matches) > 1:
        raise ConfigError(f"ambiguous GPU name {name!r}: {[g.name for g in matches]}")
    return matches[0]
