"""Roofline kernel-time model for the compression codecs.

Kernel time is ``max(compute time, memory time)`` where

* compute time = ``N * ops_per_value(knob) / (efficiency * peak_flops)``;
* memory time  = ``traffic_bytes(N, knob) / mem_bandwidth``.

The per-codec coefficients are calibrated so that the V100 reproduces the
throughput regimes reported for cuZFP and (projected) cuSZ around the
paper's time frame — tens of GB/s kernels, decreasing with bitrate
(paper Fig. 10 and Section V-C: "the kernel throughput is also decreased
by increasing the bitrate").  Absolute numbers are model outputs, not
measurements; EXPERIMENTS.md flags them as such.

CPU throughputs for Fig. 8 follow published single-core SZ/ZFP figures
with an Amdahl-style parallel efficiency for the OpenMP variants.  ZFP's
OpenMP decompression did not exist at the paper's time (Fig. 8 "N/A"),
which :func:`cpu_throughput` reproduces by returning ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.device import CPU_XEON_6148, CPUSpec, GPUSpec
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CodecKernelModel:
    """Operation/traffic coefficients of one GPU codec kernel.

    ``ops_per_value = ops_base + ops_per_bit * bits_per_value`` — embedded
    coding and Huffman stages do work proportional to the bits they emit,
    on top of a fixed transform/prediction cost.
    """

    name: str
    ops_base: float
    ops_per_bit: float
    flop_efficiency: float
    #: bytes of device-memory traffic per value beyond the compressed bits
    traffic_base_bytes: float

    def ops_per_value(self, bits_per_value: float) -> float:
        return self.ops_base + self.ops_per_bit * bits_per_value

    def traffic_bytes(self, nvalues: float, bits_per_value: float) -> float:
        return nvalues * (self.traffic_base_bytes + bits_per_value / 8.0)


#: cuZFP compression kernel.  Calibrated so the V100 kernel is
#: memory-bandwidth-bound (~105 GB/s) at low rates and slides into the
#: compute roof at high rates — reproducing both the paper's observation
#: that the kernel is cheap next to the PCIe memcpy (Fig. 7) and the
#: decreasing kernel throughput with bitrate (Fig. 10).
CUZFP_COMPRESS = CodecKernelModel("cuzfp-compress", ops_base=50.0, ops_per_bit=25.0, flop_efficiency=0.5, traffic_base_bytes=8.0)
#: cuZFP decompression kernel (lighter: no forward transform bookkeeping).
CUZFP_DECOMPRESS = CodecKernelModel("cuzfp-decompress", ops_base=40.0, ops_per_bit=20.0, flop_efficiency=0.5, traffic_base_bytes=8.0)
#: Projected cuSZ-style kernel (the paper withholds GPU-SZ throughput as
#: the OpenMP prototype's memory layout was unoptimized; these are the
#: projected post-optimization numbers the SZ team anticipated).
CUSZ_COMPRESS = CodecKernelModel("cusz-compress", ops_base=120.0, ops_per_bit=30.0, flop_efficiency=0.35, traffic_base_bytes=12.0)
CUSZ_DECOMPRESS = CodecKernelModel("cusz-decompress", ops_base=100.0, ops_per_bit=25.0, flop_efficiency=0.35, traffic_base_bytes=12.0)

_GPU_KERNELS = {
    ("cuzfp", "compress"): CUZFP_COMPRESS,
    ("cuzfp", "decompress"): CUZFP_DECOMPRESS,
    ("cusz", "compress"): CUSZ_COMPRESS,
    ("cusz", "decompress"): CUSZ_DECOMPRESS,
}


def kernel_time(
    device: GPUSpec,
    codec: str,
    direction: str,
    nvalues: float,
    bits_per_value: float,
) -> float:
    """Seconds the (de)compression kernel runs on ``device``."""
    check_positive(nvalues, "nvalues")
    check_positive(bits_per_value, "bits_per_value")
    key = (codec.lower(), direction)
    if key not in _GPU_KERNELS:
        known = sorted({c for c, _ in _GPU_KERNELS})
        raise ConfigError(f"no kernel model for codec={codec!r} direction={direction!r}; codecs: {known}")
    model = _GPU_KERNELS[key]
    compute = nvalues * model.ops_per_value(bits_per_value) / (
        model.flop_efficiency * device.peak_flops
    )
    memory = model.traffic_bytes(nvalues, bits_per_value) / device.mem_bandwidth
    return max(compute, memory)


# -- CPU reference (Fig. 8) --------------------------------------------------

#: Single-core throughputs in bytes/s, from the SZ/ZFP literature the paper
#: cites (SZ ~hundreds of MB/s; ZFP several hundred MB/s serial).
_CPU_SINGLE_CORE = {
    ("sz", "compress"): 180e6,
    ("sz", "decompress"): 350e6,
    ("zfp", "compress"): 400e6,
    ("zfp", "decompress"): 800e6,
}

#: OpenMP strong-scaling efficiency at 20 cores.
_OMP_EFFICIENCY = {
    ("sz", "compress"): 0.75,
    ("sz", "decompress"): 0.75,
    ("zfp", "compress"): 0.80,
    # ZFP had no OpenMP decompression at the paper's time (Fig. 8 N/A).
    ("zfp", "decompress"): None,
}


def cpu_throughput(
    codec: str,
    direction: str,
    threads: int = 1,
    cpu: CPUSpec = CPU_XEON_6148,
) -> float | None:
    """Bytes/s on the reference CPU, or ``None`` when unsupported (the
    Fig. 8 "N/A" cell: multi-threaded ZFP decompression)."""
    key = (codec.lower(), direction)
    if key not in _CPU_SINGLE_CORE:
        known = sorted({c for c, _ in _CPU_SINGLE_CORE})
        raise ConfigError(f"no CPU model for codec={codec!r}; codecs: {known}")
    single = _CPU_SINGLE_CORE[key]
    if threads <= 1:
        return single
    eff = _OMP_EFFICIENCY[key]
    if eff is None:
        return None
    threads = min(threads, cpu.cores)
    return single * threads * eff
