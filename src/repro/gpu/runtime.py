"""Simulated GPU compression runs with Fig. 7-style timelines.

The paper's measurement protocol (Section III, Metric 4): simulation data
already lives in GPU memory; compression runs on-device; only the
*compressed* bytes cross PCIe to the host.  Decompression is the mirror
image: compressed bytes move host-to-device, the kernel reconstructs, and
the output stays on the GPU for the next analysis task.

Each run decomposes into the four stages of Fig. 7:

* ``init``   — parameter upload + cudaMalloc of the output buffer;
* ``kernel`` — the (de)compression kernel itself;
* ``memcpy`` — compressed data over the interconnect;
* ``free``   — cudaFree.

The *baseline* (red dashed line in Fig. 7a) is moving the uncompressed
data across PCIe with no compression at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.gpu.device import GPUSpec, V100
from repro.gpu.kernel import kernel_time
from repro.gpu.pcie import Interconnect, PCIE3_X16, transfer_time
from repro.telemetry import get_telemetry
from repro.telemetry.export import chrome_event
from repro.telemetry.spans import Span, Tracer
from repro.util.validation import check_positive

#: Fixed driver-side costs (cudaMalloc/cudaFree/param upload), seconds.
_INIT_FIXED_S = 4.0e-4
_INIT_PER_BYTE_S = 1.0e-13  # allocation scales weakly with size
_FREE_FIXED_S = 2.5e-4


@dataclass(frozen=True)
class TimelineStage:
    name: str
    seconds: float


@dataclass
class GPUCompressionRun:
    """Result of one simulated (de)compression launch."""

    device: GPUSpec
    codec: str
    direction: str
    nvalues: int
    value_bytes: int
    bits_per_value: float
    link: Interconnect
    stages: list[TimelineStage] = field(default_factory=list)

    @property
    def original_bytes(self) -> float:
        return float(self.nvalues) * self.value_bytes

    @property
    def compressed_bytes(self) -> float:
        return self.nvalues * self.bits_per_value / 8.0

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages)

    @property
    def kernel_seconds(self) -> float:
        return next(s.seconds for s in self.stages if s.name == "kernel")

    @property
    def kernel_throughput(self) -> float:
        """Bytes of original data per second through the kernel alone."""
        return self.original_bytes / self.kernel_seconds

    @property
    def overall_throughput(self) -> float:
        """Bytes of original data per second including transfers (the
        dashed-line quantity of Fig. 10)."""
        return self.original_bytes / self.total_seconds

    @property
    def overlapped_total_seconds(self) -> float:
        """Total with asynchronous kernel/transfer overlap.

        The paper (Section V-C): throughput "can be further improved by
        using ... asynchronous GPU-CPU communication".  With the stream
        pipelined in chunks, the kernel and the memcpy run concurrently,
        so the steady-state cost is the max of the two plus the fixed
        driver overheads.
        """
        by_name = self.breakdown()
        return (
            by_name["init"]
            + max(by_name["kernel"], by_name["memcpy"])
            + by_name["free"]
        )

    @property
    def overlapped_throughput(self) -> float:
        """Bytes of original data per second under async overlap."""
        return self.original_bytes / self.overlapped_total_seconds

    @property
    def baseline_seconds(self) -> float:
        """Moving the uncompressed data over the link (Fig. 7 baseline)."""
        return transfer_time(self.original_bytes, self.link)

    def breakdown(self) -> dict[str, float]:
        """Stage name -> seconds, in timeline order."""
        return {s.name: s.seconds for s in self.stages}

    # -- telemetry bridging -------------------------------------------------
    #
    # The simulated Fig. 7 timeline and the measured Python spans share one
    # trace format, so a single chrome://tracing view (or one
    # ``repro.telemetry report`` table) can hold both.

    def trace_events(
        self, start_s: float = 0.0, pid: int = 0, tid: int = 0
    ) -> list[dict[str, Any]]:
        """The run's stages as Chrome trace-event dicts, laid end to end
        starting at ``start_s`` (seconds)."""
        prefix = f"gpu.{self.codec}.{self.direction}"
        events = []
        t = start_s
        for stage in self.stages:
            nbytes = (
                self.compressed_bytes if stage.name == "memcpy" else self.original_bytes
            )
            events.append(
                chrome_event(
                    f"{prefix}.{stage.name}",
                    t,
                    stage.seconds,
                    pid=pid,
                    tid=tid,
                    args={
                        "bytes": int(nbytes),
                        "device": self.device.name,
                        "simulated": True,
                    },
                )
            )
            t += stage.seconds
        return events

    def record(self, tracer: Tracer | None = None, start_s: float = 0.0) -> list[Span]:
        """Replay the simulated stages into ``tracer`` as synthetic spans.

        Defaults to the active telemetry's tracer; a no-op (returning
        ``[]``) when telemetry is disabled and no tracer is given.
        """
        if tracer is None:
            tm = get_telemetry()
            if not tm.enabled:
                return []
            tracer = tm.tracer
        prefix = f"gpu.{self.codec}.{self.direction}"
        spans = []
        t = start_s
        for stage in self.stages:
            nbytes = (
                self.compressed_bytes if stage.name == "memcpy" else self.original_bytes
            )
            spans.append(
                tracer.add_span(
                    f"{prefix}.{stage.name}",
                    t,
                    t + stage.seconds,
                    bytes=int(nbytes),
                    device=self.device.name,
                    simulated=True,
                )
            )
            t += stage.seconds
        return spans


def _make_run(
    device: GPUSpec,
    codec: str,
    direction: str,
    nvalues: int,
    value_bytes: int,
    bits_per_value: float,
    link: Interconnect,
) -> GPUCompressionRun:
    check_positive(nvalues, "nvalues")
    check_positive(bits_per_value, "bits_per_value")
    run = GPUCompressionRun(
        device=device,
        codec=codec,
        direction=direction,
        nvalues=nvalues,
        value_bytes=value_bytes,
        bits_per_value=bits_per_value,
        link=link,
    )
    alloc_bytes = run.compressed_bytes if direction == "compress" else run.original_bytes
    init = _INIT_FIXED_S + alloc_bytes * _INIT_PER_BYTE_S
    kern = kernel_time(device, codec, direction, nvalues, bits_per_value)
    copy = transfer_time(run.compressed_bytes, link)
    if direction == "compress":
        stages = [("init", init), ("kernel", kern), ("memcpy", copy), ("free", _FREE_FIXED_S)]
    else:
        stages = [("init", init), ("memcpy", copy), ("kernel", kern), ("free", _FREE_FIXED_S)]
    run.stages = [TimelineStage(n, s) for n, s in stages]
    return run


def simulate_compression(
    nvalues: int,
    bits_per_value: float,
    device: GPUSpec = V100,
    codec: str = "cuzfp",
    value_bytes: int = 4,
    link: Interconnect = PCIE3_X16,
) -> GPUCompressionRun:
    """Simulate compressing ``nvalues`` values already resident on the GPU.

    ``bits_per_value`` is the *actual* compressed bitrate — pass the
    measured :attr:`CompressedBuffer.bitrate` of a real compression to
    couple the model to real compressibility.
    """
    return _make_run(device, codec, "compress", nvalues, value_bytes, bits_per_value, link)


def simulate_decompression(
    nvalues: int,
    bits_per_value: float,
    device: GPUSpec = V100,
    codec: str = "cuzfp",
    value_bytes: int = 4,
    link: Interconnect = PCIE3_X16,
) -> GPUCompressionRun:
    """Simulate decompressing onto the GPU (compressed bytes cross PCIe)."""
    return _make_run(device, codec, "decompress", nvalues, value_bytes, bits_per_value, link)
