"""Content-addressed result cache (fast-path engine layer 3).

See :mod:`repro.cache.store` for the key scheme and on-disk layout, and
``docs/PERFORMANCE.md`` for how :class:`repro.foresight.cbench.CBench`
uses it to memoize sweep cells.
"""

from repro.cache.store import (
    CACHE_DIR_ENV,
    CACHE_MAX_BYTES_ENV,
    SCHEMA_VERSION,
    CacheStats,
    ResultCache,
    data_digest,
    make_key,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "SCHEMA_VERSION",
    "CacheStats",
    "ResultCache",
    "data_digest",
    "make_key",
]
