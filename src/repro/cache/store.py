"""Content-addressed result cache for CBench cells.

A cache entry is keyed by *what was computed*, never by when or where:
the key digests the compressor name, its constructor options, the knob
(mode + value), a schema version, and a content digest of the input
array.  Re-running a figure script therefore hits for every cell already
computed — and sweeping a superset of error bounds only computes the
delta — while any change to the data, the knob, or the codec options
changes the key and transparently invalidates the entry.

Key scheme (documented in ``docs/PERFORMANCE.md``)::

    data_digest = sha256(dtype || shape || raw bytes)
    key         = sha256(canonical_json({
        "schema": SCHEMA_VERSION, "compressor": name, "options": {...},
        "mode": mode, "knob": knob, "value": value, "data": data_digest,
    }))

Entries are pickles under ``root/<key[:2]>/<key>.pkl`` (two-level fanout
keeps directories small).  Writes go through a temporary file in the
same directory followed by ``os.replace`` so concurrent writers — the
process-parallel sweep workers — can only ever race to an *identical*
complete entry, never a torn one.  Unreadable entries count as misses.

The store can be **bounded**: ``ResultCache(max_bytes=...)`` (or the
``REPRO_CACHE_MAX_BYTES`` environment variable, K/M/G suffixes allowed)
caps the total on-disk size.  Exceeding the cap on ``put`` evicts
least-recently-used entries first — recency is the file access time,
which ``get`` refreshes explicitly (``os.utime``) so hits count as use
even on ``relatime``/``noatime`` mounts.  Evictions are counted in
``stats.evictions`` and the ``cache.evictions`` telemetry counter.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.telemetry import get_telemetry
from repro.util.validation import parse_bytes

#: Environment variable providing a default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the cache's total on-disk size.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Bumped whenever the cached record layout changes incompatibly —
#: invalidates every existing entry at once.
SCHEMA_VERSION = 1


def data_digest(data: np.ndarray) -> str:
    """Content digest of an array: dtype, shape, and raw bytes."""
    data = np.ascontiguousarray(data)
    h = hashlib.sha256()
    h.update(data.dtype.str.encode())
    h.update(repr(data.shape).encode())
    h.update(data.tobytes())
    return h.hexdigest()


def make_key(
    compressor: str,
    options: dict[str, Any],
    mode: str,
    knob: str,
    value: float,
    digest: str,
    reference: str | None = None,
) -> str:
    """Cache key for one (compressor, configuration, data) cell.

    ``reference`` is the codec-state identity for *stateful* codecs (the
    temporal stage's step index + reference-snapshot digest): the bytes
    a session emits for a given input depend on what the session has
    already seen, so two sessions at the same (compressor, bound, data)
    must never collide on a cached entry.  Stateless codecs leave it
    ``None``, which keeps every pre-existing key unchanged.
    """
    doc = {
        "schema": SCHEMA_VERSION,
        "compressor": compressor,
        "options": options,
        "mode": mode,
        "knob": knob,
        "value": value,
        "data": digest,
    }
    if reference is not None:
        doc["reference"] = reference
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    put_bytes: int = 0
    evictions: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "put_bytes": self.put_bytes,
            "evictions": self.evictions,
        }


@dataclass
class ResultCache:
    """On-disk content-addressed store of picklable values.

    >>> cache = ResultCache("/tmp/repro-cache")         # doctest: +SKIP
    >>> cache.put("a" * 64, {"answer": 42})             # doctest: +SKIP
    >>> cache.get("a" * 64)                             # doctest: +SKIP
    {'answer': 42}

    Stats are per-instance (worker processes carry their own copy), so
    parent-side counters reflect parent-side lookups only.
    """

    root: Path
    max_bytes: int | None
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, root: Path | str, max_bytes: int | str | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
            max_bytes = raw or None
        self.max_bytes = parse_bytes(max_bytes) if max_bytes is not None else None
        self.stats = CacheStats()

    @classmethod
    def from_env(cls) -> "ResultCache | None":
        """Cache at ``$REPRO_CACHE_DIR``, or ``None`` when unset/empty."""
        raw = os.environ.get(CACHE_DIR_ENV, "").strip()
        return cls(raw) if raw else None

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any | None:
        """Stored value, or ``None`` on miss (or unreadable entry)."""
        path = self.path_for(key)
        tm = get_telemetry()
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except Exception:
            # A truncated or corrupt entry can surface as almost any
            # exception from the unpickler (ValueError for a bad
            # protocol byte, UnpicklingError, EOFError, AttributeError
            # for a renamed class, ...).  All of them mean the same
            # thing for a cache: treat it as a miss and recompute.
            self.stats.misses += 1
            tm.count("cache.misses")
            return None
        try:
            # Refresh the access time explicitly: LRU eviction orders by
            # atime, and relatime/noatime mounts would otherwise never
            # record that this entry is hot.
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        tm.count("cache.hits")
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically store ``value`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        self.stats.put_bytes += len(blob)
        tm = get_telemetry()
        tm.count("cache.puts")
        tm.count("cache.put_bytes", len(blob))
        if self.max_bytes is not None:
            self._evict(keep=path)

    def _evict(self, keep: Path | None = None) -> int:
        """Evict least-recently-used entries until the cap is met.

        ``keep`` (the entry just written) is never evicted — a value the
        caller is about to rely on must survive its own ``put`` even
        when it alone exceeds the cap.  Races with concurrent writers
        are benign: a stat/unlink that loses simply skips the entry.
        """
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for entry in self.root.glob("??/*.pkl"):
            try:
                st = entry.stat()
            except OSError:
                continue
            total += st.st_size
            if keep is None or entry != keep:
                entries.append((st.st_atime_ns, st.st_size, entry))
        if total <= self.max_bytes:
            return 0
        entries.sort()  # oldest access first
        evicted = 0
        for _, size, entry in entries:
            if total <= self.max_bytes:
                break
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
            get_telemetry().count("cache.evictions", evicted)
        return evicted

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("??/*.pkl"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed
