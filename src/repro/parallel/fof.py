"""Distributed Friends-of-Friends.

The paper: "A parallel halo-finding function is applied [to] the dataset".
The standard parallel FoF recipe (used by HACC's halo finder) is:

1. decompose the box; each rank receives its owned particles plus a
   ghost layer one linking length deep;
2. run *local* FoF on owned+ghost particles;
3. groups that span rank boundaries appear as fragments sharing ghost
   particles — merge fragments whose particle sets intersect via a
   global union-find keyed on global particle ids;
4. relabel to canonical global group ids.

The result is identical (as a partition) to serial FoF on the full box,
which the test suite verifies directly.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.cosmo.fof import FOFResult, friends_of_friends
from repro.errors import DataError
from repro.parallel.decomposition import CartesianDecomposition


def distributed_fof(
    positions: np.ndarray,
    box_size: float,
    linking_length: float,
    dims: tuple[int, int, int] = (2, 2, 2),
) -> tuple[FOFResult, dict]:
    """Run FoF via domain decomposition; returns (result, stats).

    ``stats`` reports per-rank particle counts and the ghost-exchange
    volume — the communication cost a real MPI run would pay.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise DataError("positions must have shape (N, 3)")
    n = positions.shape[0]
    decomp = CartesianDecomposition(box_size, dims)
    ranks, exchange = decomp.exchange_ghosts(positions, cutoff=linking_length)

    # Local FoF per rank; collect same-group edges in *global* ids.
    # Connecting each local group's members through its first member is
    # enough to reproduce the partition under a global union-find.
    edge_a: list[np.ndarray] = []
    edge_b: list[np.ndarray] = []
    stats = {
        "n_ranks": decomp.n_ranks,
        "ghost_bytes": exchange.total_bytes,
        "owned_per_rank": [rp.n_owned for rp in ranks],
        "ghosts_per_rank": [rp.n_ghost for rp in ranks],
    }
    for rp in ranks:
        total = rp.n_owned + rp.n_ghost
        if total == 0:
            continue
        local = friends_of_friends(
            rp.positions, box_size, linking_length, periodic=False
        )
        gids = rp.all_ids
        order = np.argsort(local.labels, kind="stable")
        boundaries = np.searchsorted(
            local.labels[order], np.arange(local.n_groups + 1)
        )
        for g in range(local.n_groups):
            members = order[boundaries[g] : boundaries[g + 1]]
            if members.size < 2:
                continue
            root = gids[members[0]]
            edge_a.append(np.full(members.size - 1, root, dtype=np.int64))
            edge_b.append(gids[members[1:]])

    if edge_a:
        ea = np.concatenate(edge_a)
        eb = np.concatenate(edge_b)
    else:
        ea = eb = np.zeros(0, dtype=np.int64)
    graph = coo_matrix((np.ones(ea.size, dtype=np.int8), (ea, eb)), shape=(n, n))
    n_groups, labels = connected_components(graph, directed=False)

    result = FOFResult(
        labels=labels.astype(np.int64),
        n_groups=int(n_groups),
        edges=np.stack([ea, eb], axis=1) if ea.size else np.zeros((0, 2), dtype=np.int64),
        linking_length=linking_length,
    )
    return result, stats
