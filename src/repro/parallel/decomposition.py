"""Cartesian domain decomposition with ghost exchange.

The decomposition mirrors HACC's: the periodic box is split into
``dims[0] x dims[1] x dims[2]`` equal sub-boxes, one per (simulated) MPI
rank.  Particles are *owned* by the rank whose sub-box contains them;
algorithms that need neighbor information (FoF, short-range forces)
additionally receive a *ghost layer* — copies of remote particles within
a cutoff of the local boundary.  The exchange records per-rank
communication volume, the quantity an MPI implementation would move over
the network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError
from repro.util.validation import check_positive


@dataclass
class RankParticles:
    """Particles held by one rank: owned plus ghosts.

    ``global_ids`` index into the original particle arrays, so results
    computed per rank can be stitched globally.  Ghosts carry the owner's
    global id — that shared identity is what the distributed FoF merge
    keys on.
    """

    rank: int
    owned_ids: np.ndarray
    ghost_ids: np.ndarray
    positions: np.ndarray  # owned then ghosts, (n_owned + n_ghost, 3)

    @property
    def n_owned(self) -> int:
        return self.owned_ids.size

    @property
    def n_ghost(self) -> int:
        return self.ghost_ids.size

    @property
    def all_ids(self) -> np.ndarray:
        return np.concatenate([self.owned_ids, self.ghost_ids])


@dataclass
class GhostExchange:
    """Communication record of one ghost exchange."""

    cutoff: float
    bytes_sent: dict[int, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())


class CartesianDecomposition:
    """Periodic box split into a Cartesian grid of ranks (HACC-style)."""

    def __init__(self, box_size: float, dims: tuple[int, int, int]) -> None:
        check_positive(box_size, "box_size")
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise DataError("dims must be three positive integers")
        self.box_size = box_size
        self.dims = tuple(int(d) for d in dims)
        self.n_ranks = int(np.prod(self.dims))
        self.cell = np.array([box_size / d for d in self.dims])

    def rank_of(self, positions: np.ndarray) -> np.ndarray:
        """Owning rank of each position."""
        positions = np.mod(np.asarray(positions, dtype=np.float64), self.box_size)
        coords = np.minimum(
            (positions / self.cell).astype(np.int64),
            np.array(self.dims) - 1,
        )
        return (coords[:, 0] * self.dims[1] + coords[:, 1]) * self.dims[2] + coords[:, 2]

    def rank_bounds(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) corner of a rank's sub-box."""
        if not 0 <= rank < self.n_ranks:
            raise DataError(f"rank {rank} out of range")
        k = rank % self.dims[2]
        j = (rank // self.dims[2]) % self.dims[1]
        i = rank // (self.dims[1] * self.dims[2])
        lo = np.array([i, j, k]) * self.cell
        return lo, lo + self.cell

    def scatter(self, positions: np.ndarray) -> list[np.ndarray]:
        """Owned global ids per rank."""
        owner = self.rank_of(positions)
        order = np.argsort(owner, kind="stable")
        bounds = np.searchsorted(owner[order], np.arange(self.n_ranks + 1))
        return [order[bounds[r] : bounds[r + 1]] for r in range(self.n_ranks)]

    def _distance_to_box(self, positions: np.ndarray, rank: int) -> np.ndarray:
        """Euclidean (non-periodic) distance to a rank's sub-box."""
        lo, hi = self.rank_bounds(rank)
        outside = np.maximum(np.maximum(lo - positions, positions - hi), 0.0)
        return np.sqrt((outside**2).sum(axis=1))

    def exchange_ghosts(
        self, positions: np.ndarray, cutoff: float, bytes_per_particle: int = 24
    ) -> tuple[list[RankParticles], GhostExchange]:
        """Build per-rank particle sets with a ghost layer of ``cutoff``.

        Periodicity is handled by enumerating the 27 box images of every
        particle: any image within ``cutoff`` of a rank's sub-box becomes
        a ghost there — including *self*-images, which is what keeps the
        periodic wrap correct when an axis has only one rank (slab
        decompositions).  Ghost positions arrive already shifted into the
        receiving rank's frame so local algorithms use plain Euclidean
        distances.
        """
        check_positive(cutoff, "cutoff")
        if cutoff >= self.cell.min() / 2:
            raise DataError(
                "ghost cutoff must be smaller than half the rank sub-box"
            )
        positions = np.mod(np.asarray(positions, dtype=np.float64), self.box_size)
        owned_per_rank = self.scatter(positions)
        exchange = GhostExchange(cutoff=cutoff)

        shifts = [
            np.array(s, dtype=np.float64) * self.box_size
            for s in itertools.product((-1, 0, 1), repeat=3)
        ]
        ranks = []
        for rank in range(self.n_ranks):
            owned = owned_per_rank[rank]
            owned_set = np.zeros(positions.shape[0], dtype=bool)
            owned_set[owned] = True
            ghost_id_parts: list[np.ndarray] = []
            ghost_pos_parts: list[np.ndarray] = []
            for shift in shifts:
                shifted = positions + shift
                near = self._distance_to_box(shifted, rank) <= cutoff
                if not shift.any():
                    near &= ~owned_set  # identity image of owned is not a ghost
                ids = np.flatnonzero(near)
                if ids.size:
                    ghost_id_parts.append(ids)
                    ghost_pos_parts.append(shifted[ids])
            if ghost_id_parts:
                ghost_ids = np.concatenate(ghost_id_parts)
                ghost_pos = np.vstack(ghost_pos_parts)
            else:
                ghost_ids = np.zeros(0, dtype=np.int64)
                ghost_pos = np.zeros((0, 3))
            ranks.append(
                RankParticles(
                    rank=rank,
                    owned_ids=owned,
                    ghost_ids=ghost_ids,
                    positions=np.vstack([positions[owned], ghost_pos])
                    if owned.size + ghost_ids.size
                    else np.zeros((0, 3)),
                )
            )
            exchange.bytes_sent[rank] = int(ghost_ids.size) * bytes_per_particle
        return ranks, exchange
