"""Zero-copy shared-memory transport for dataset fields.

The PR 2 parallel sweep pickles the *entire* field dict to every worker
chunk — for the paper's 1.07e9-particle HACC fields that serialization
dominates end-to-end cost.  This module is the zero-copy replacement:
the parent **publishes** each array once into a POSIX shared-memory
segment (:class:`SharedArray`), ships only a tiny :class:`ShmDescriptor`
(name, shape, dtype) through the task pickle, and workers **attach** the
segment by name, getting a read-only numpy view backed by the same
physical pages — no copies, no serialization, O(1) per task.

Lifecycle contract:

* The publisher owns the segment.  ``publish`` copies the array in once;
  ``unlink`` (or dropping the last reference) removes it.  Handles are
  refcounted — ``addref``/``release`` let several consumers share one
  attachment, and the backing segment is only closed when the count
  reaches zero.
* Workers attach via :func:`attach_cached`, which memoizes one
  attachment per segment per process (repeated cells on one worker cost
  a dict lookup).  Attachments are deliberately *not* registered with
  ``multiprocessing.resource_tracker`` — on CPython < 3.13 attaching
  registers the segment a second time, and the worker's tracker would
  unlink it at exit while the publisher still owns it.
* ``REPRO_NO_SHM=1`` disables the transport globally
  (:func:`shm_enabled`); callers fall back to the pickling path.

Telemetry: ``shm.bytes_published`` / ``shm.segments_published`` count on
the publisher side, ``shm.bytes_attached`` / ``shm.segments_attached``
on the attaching side (visible when telemetry is enabled in that
process).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

from repro.errors import DataError
from repro.telemetry import get_telemetry

#: Environment variable disabling the shared-memory transport.
NO_SHM_ENV = "REPRO_NO_SHM"


def shm_enabled() -> bool:
    """True unless ``REPRO_NO_SHM`` requests the pickling fallback."""
    return os.environ.get(NO_SHM_ENV, "").strip().lower() not in (
        "1", "true", "yes", "on",
    )


@dataclass(frozen=True)
class ShmDescriptor:
    """Picklable handle to a published array: everything a worker needs
    to attach (segment name, shape, dtype) and nothing else."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@contextmanager
def _untracked_attach() -> "Iterator[None]":
    """Attach without registering with the ``resource_tracker``.

    CPython < 3.13 registers every ``SharedMemory`` — including pure
    attachments — with the resource tracker, whose exit-time cleanup
    would unlink the publisher's segment out from under it.  Sending an
    unregister afterwards is not enough either: the tracker's cache is a
    *set*, so two workers attaching the same segment underflow it and
    the tracker prints ``KeyError`` tracebacks.  Suppressing the
    ``register`` call for the duration of the attach avoids both.
    Python 3.13+ exposes ``track=False`` instead; :meth:`SharedArray.attach`
    tries that first.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        yield
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class SharedArray:
    """A numpy array backed by a named shared-memory segment.

    >>> handle = SharedArray.publish(np.arange(4.0))    # doctest: +SKIP
    >>> desc = handle.descriptor()                      # pickle this
    >>> remote = SharedArray.attach(desc)               # in the worker
    >>> remote.array[2]                                 # zero-copy view
    2.0
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._shape = tuple(int(s) for s in shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner
        # Ownership is per *process*, not per object: a fork()ed child
        # (e.g. a batch worker pool) inherits this handle, and its
        # exit-time GC must not unlink a segment the parent still
        # serves.  close() only unlinks when the pid matches.
        self._owner_pid = os.getpid() if owner else None
        self._refs = 1
        self._closed = False
        arr = np.ndarray(self._shape, dtype=self._dtype, buffer=segment.buf)
        arr.flags.writeable = owner  # consumers see an immutable view
        self._array = arr

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, nbytes: int) -> "SharedArray":
        """A fresh *writable* owner segment of ``nbytes`` flat bytes.

        Unlike :meth:`publish` nothing is copied in — the caller fills
        (and refills) the segment through :meth:`view`.  This is the
        data-plane scratch-buffer constructor (:class:`SegmentPool`).
        """
        if nbytes <= 0:
            raise DataError("cannot create an empty shared segment")
        segment = shared_memory.SharedMemory(create=True, size=int(nbytes))
        tm = get_telemetry()
        tm.count("shm.segments_published")
        return cls(segment, (int(nbytes),), np.dtype(np.uint8), owner=True)

    @classmethod
    def publish(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared segment (done once per sweep)."""
        array = np.asarray(array)
        if array.nbytes == 0:
            raise DataError("cannot publish an empty array to shared memory")
        tm = get_telemetry()
        with tm.span("shm.publish", bytes=array.nbytes):
            segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
            handle = cls(segment, array.shape, array.dtype, owner=True)
            handle._array[...] = array
            handle._array.flags.writeable = False
        tm.count("shm.segments_published")
        tm.count("shm.bytes_published", array.nbytes)
        return handle

    @classmethod
    def attach(cls, desc: ShmDescriptor) -> "SharedArray":
        """Attach to a published segment by descriptor (worker side)."""
        tm = get_telemetry()
        with tm.span("shm.attach", bytes=desc.nbytes, segment=desc.name):
            try:
                segment = shared_memory.SharedMemory(name=desc.name, track=False)
            except TypeError:  # Python < 3.13: no track kwarg
                with _untracked_attach():
                    segment = shared_memory.SharedMemory(name=desc.name)
            if segment.size < desc.nbytes:
                segment.close()
                raise DataError(
                    f"shared segment {desc.name!r} holds {segment.size} bytes, "
                    f"descriptor expects {desc.nbytes}"
                )
            handle = cls(segment, desc.shape, np.dtype(desc.dtype), owner=False)
        tm.count("shm.segments_attached")
        tm.count("shm.bytes_attached", desc.nbytes)
        return handle

    # -- accessors ----------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The zero-copy view (read-only unless this handle published it)."""
        if self._closed:
            raise DataError("shared array handle is closed")
        return self._array

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def nbytes(self) -> int:
        return int(np.prod(self._shape, dtype=np.int64)) * self._dtype.itemsize

    def descriptor(self) -> ShmDescriptor:
        """The picklable attach-by-name handle for workers."""
        return ShmDescriptor(
            name=self._segment.name, shape=self._shape, dtype=self._dtype.str
        )

    def view(self, shape: tuple[int, ...], dtype: np.dtype | str) -> np.ndarray:
        """An ndarray view of the segment's *prefix* with a caller shape.

        The segment may be larger than the view needs (pooled scratch
        buffers round capacities up); writability follows ownership.
        """
        if self._closed:
            raise DataError("shared array handle is closed")
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes > self._segment.size:
            raise DataError(
                f"view needs {nbytes} bytes, segment holds {self._segment.size}"
            )
        arr = np.ndarray(shape, dtype=dtype, buffer=self._segment.buf)
        arr.flags.writeable = self._owner
        return arr

    def view_descriptor(
        self, shape: tuple[int, ...], dtype: np.dtype | str
    ) -> ShmDescriptor:
        """Descriptor for a :meth:`view`-shaped prefix of this segment."""
        return ShmDescriptor(
            name=self._segment.name,
            shape=tuple(int(s) for s in shape),
            dtype=np.dtype(dtype).str,
        )

    # -- refcounted lifecycle -----------------------------------------------

    def addref(self) -> "SharedArray":
        if self._closed:
            raise DataError("shared array handle is closed")
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; closes (and unlinks, if owner) at zero."""
        if self._closed:
            return
        self._refs -= 1
        if self._refs <= 0:
            self.close()

    def close(self) -> None:
        """Detach the view.  The publisher also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        # Release the exported buffer before closing the mapping.
        self._array = None  # type: ignore[assignment]
        try:
            self._segment.close()
        finally:
            if self._owner and self._owner_pid == os.getpid():
                try:
                    self._segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def unlink(self) -> None:
        """Publisher-side teardown (alias for :meth:`close` on the owner)."""
        self.close()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


#: Per-process memo of attached segments (worker side): name -> handle.
_ATTACHED: dict[str, SharedArray] = {}


def attach_cached(desc: ShmDescriptor) -> np.ndarray:
    """Attach ``desc`` (memoized per process) and return the array view.

    Worker processes call this once per cell; every cell of the same
    field after the first costs a dictionary lookup.  The attachment
    stays open for the life of the process — worker pools tear down
    their processes at pool shutdown, which releases the mapping.
    """
    handle = _ATTACHED.get(desc.name)
    if handle is None or handle._closed:
        handle = _ATTACHED[desc.name] = SharedArray.attach(desc)
    return handle.array


def detach_all() -> int:
    """Close every memoized attachment (test isolation); returns count."""
    n = 0
    for handle in _ATTACHED.values():
        if not handle._closed:
            handle.close()
            n += 1
    _ATTACHED.clear()
    return n


@contextmanager
def attached_view(desc: ShmDescriptor) -> "Iterator[np.ndarray]":
    """Attach ``desc`` for the duration of a block (no per-process memo).

    The service data plane uses this for one-shot request payloads: the
    segment belongs to a *client* and is unlinked the moment its request
    completes, so memoizing the attachment (:func:`attach_cached`) would
    pin dead pages in the worker.  The mapping is closed on exit; the
    caller must not let views escape the block.
    """
    handle = SharedArray.attach(desc)
    try:
        yield handle.array
    finally:
        handle.close()


class SegmentPool:
    """Reusable publisher-owned scratch segments for the service data plane.

    The dominant cost of a fresh shm publish is not the copy but the
    page faults of first-touching new pages (measured ~6x the memcpy
    itself at 8 MB).  A client doing sustained large transfers therefore
    *reuses* segments: :meth:`acquire` hands out an owner handle with
    capacity rounded up to the next power of two (so a handful of size
    classes serve any request mix), :meth:`release` returns it for the
    next request, and :meth:`close` unlinks everything.

    Thread-safe — one pool serves all connections of a pooled client.
    Ownership never leaves the pool's process: segments acquired here
    are registered with this process's ``resource_tracker``, so even a
    SIGKILLed client leaks nothing (the tracker unlinks at teardown).
    """

    #: Smallest capacity handed out (matches the service's shm threshold).
    MIN_CAPACITY = 1 << 16

    def __init__(self, max_idle: int = 8) -> None:
        self.max_idle = max_idle
        self._idle: dict[int, list[SharedArray]] = {}
        self._lock = threading.Lock()
        self._closed = False

    @staticmethod
    def _capacity(nbytes: int) -> int:
        cap = SegmentPool.MIN_CAPACITY
        while cap < nbytes:
            cap <<= 1
        return cap

    def acquire(self, nbytes: int) -> SharedArray:
        """An owner handle with at least ``nbytes`` capacity (writable)."""
        if nbytes <= 0:
            raise DataError("cannot acquire an empty scratch segment")
        cap = self._capacity(nbytes)
        with self._lock:
            if self._closed:
                raise DataError("segment pool is closed")
            free = self._idle.get(cap)
            if free:
                get_telemetry().count("shm.pool_reuses")
                return free.pop()
        get_telemetry().count("shm.pool_creates")
        return SharedArray.create(cap)

    def release(self, handle: SharedArray) -> None:
        """Return ``handle`` for reuse (or unlink it if the pool is full)."""
        if handle._closed:
            return
        with self._lock:
            if not self._closed:
                free = self._idle.setdefault(handle.nbytes, [])
                if sum(len(v) for v in self._idle.values()) < self.max_idle:
                    free.append(handle)
                    return
        handle.unlink()

    def close(self) -> None:
        """Unlink every idle segment; the pool refuses further acquires."""
        with self._lock:
            self._closed = True
            idle = [h for free in self._idle.values() for h in free]
            self._idle.clear()
        for handle in idle:
            handle.unlink()

    def __enter__(self) -> "SegmentPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
