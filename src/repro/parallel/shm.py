"""Zero-copy shared-memory transport for dataset fields.

The PR 2 parallel sweep pickles the *entire* field dict to every worker
chunk — for the paper's 1.07e9-particle HACC fields that serialization
dominates end-to-end cost.  This module is the zero-copy replacement:
the parent **publishes** each array once into a POSIX shared-memory
segment (:class:`SharedArray`), ships only a tiny :class:`ShmDescriptor`
(name, shape, dtype) through the task pickle, and workers **attach** the
segment by name, getting a read-only numpy view backed by the same
physical pages — no copies, no serialization, O(1) per task.

Lifecycle contract:

* The publisher owns the segment.  ``publish`` copies the array in once;
  ``unlink`` (or dropping the last reference) removes it.  Handles are
  refcounted — ``addref``/``release`` let several consumers share one
  attachment, and the backing segment is only closed when the count
  reaches zero.
* Workers attach via :func:`attach_cached`, which memoizes one
  attachment per segment per process (repeated cells on one worker cost
  a dict lookup).  Attachments are deliberately *not* registered with
  ``multiprocessing.resource_tracker`` — on CPython < 3.13 attaching
  registers the segment a second time, and the worker's tracker would
  unlink it at exit while the publisher still owns it.
* ``REPRO_NO_SHM=1`` disables the transport globally
  (:func:`shm_enabled`); callers fall back to the pickling path.

Telemetry: ``shm.bytes_published`` / ``shm.segments_published`` count on
the publisher side, ``shm.bytes_attached`` / ``shm.segments_attached``
on the attaching side (visible when telemetry is enabled in that
process).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

from repro.errors import DataError
from repro.telemetry import get_telemetry

#: Environment variable disabling the shared-memory transport.
NO_SHM_ENV = "REPRO_NO_SHM"


def shm_enabled() -> bool:
    """True unless ``REPRO_NO_SHM`` requests the pickling fallback."""
    return os.environ.get(NO_SHM_ENV, "").strip().lower() not in (
        "1", "true", "yes", "on",
    )


@dataclass(frozen=True)
class ShmDescriptor:
    """Picklable handle to a published array: everything a worker needs
    to attach (segment name, shape, dtype) and nothing else."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@contextmanager
def _untracked_attach() -> "Iterator[None]":
    """Attach without registering with the ``resource_tracker``.

    CPython < 3.13 registers every ``SharedMemory`` — including pure
    attachments — with the resource tracker, whose exit-time cleanup
    would unlink the publisher's segment out from under it.  Sending an
    unregister afterwards is not enough either: the tracker's cache is a
    *set*, so two workers attaching the same segment underflow it and
    the tracker prints ``KeyError`` tracebacks.  Suppressing the
    ``register`` call for the duration of the attach avoids both.
    Python 3.13+ exposes ``track=False`` instead; :meth:`SharedArray.attach`
    tries that first.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        yield
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class SharedArray:
    """A numpy array backed by a named shared-memory segment.

    >>> handle = SharedArray.publish(np.arange(4.0))    # doctest: +SKIP
    >>> desc = handle.descriptor()                      # pickle this
    >>> remote = SharedArray.attach(desc)               # in the worker
    >>> remote.array[2]                                 # zero-copy view
    2.0
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._shape = tuple(int(s) for s in shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner
        self._refs = 1
        self._closed = False
        arr = np.ndarray(self._shape, dtype=self._dtype, buffer=segment.buf)
        arr.flags.writeable = owner  # consumers see an immutable view
        self._array = arr

    # -- construction -------------------------------------------------------

    @classmethod
    def publish(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared segment (done once per sweep)."""
        array = np.asarray(array)
        if array.nbytes == 0:
            raise DataError("cannot publish an empty array to shared memory")
        tm = get_telemetry()
        with tm.span("shm.publish", bytes=array.nbytes):
            segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
            handle = cls(segment, array.shape, array.dtype, owner=True)
            handle._array[...] = array
            handle._array.flags.writeable = False
        tm.count("shm.segments_published")
        tm.count("shm.bytes_published", array.nbytes)
        return handle

    @classmethod
    def attach(cls, desc: ShmDescriptor) -> "SharedArray":
        """Attach to a published segment by descriptor (worker side)."""
        tm = get_telemetry()
        with tm.span("shm.attach", bytes=desc.nbytes, segment=desc.name):
            try:
                segment = shared_memory.SharedMemory(name=desc.name, track=False)
            except TypeError:  # Python < 3.13: no track kwarg
                with _untracked_attach():
                    segment = shared_memory.SharedMemory(name=desc.name)
            if segment.size < desc.nbytes:
                segment.close()
                raise DataError(
                    f"shared segment {desc.name!r} holds {segment.size} bytes, "
                    f"descriptor expects {desc.nbytes}"
                )
            handle = cls(segment, desc.shape, np.dtype(desc.dtype), owner=False)
        tm.count("shm.segments_attached")
        tm.count("shm.bytes_attached", desc.nbytes)
        return handle

    # -- accessors ----------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The zero-copy view (read-only unless this handle published it)."""
        if self._closed:
            raise DataError("shared array handle is closed")
        return self._array

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def nbytes(self) -> int:
        return int(np.prod(self._shape, dtype=np.int64)) * self._dtype.itemsize

    def descriptor(self) -> ShmDescriptor:
        """The picklable attach-by-name handle for workers."""
        return ShmDescriptor(
            name=self._segment.name, shape=self._shape, dtype=self._dtype.str
        )

    # -- refcounted lifecycle -----------------------------------------------

    def addref(self) -> "SharedArray":
        if self._closed:
            raise DataError("shared array handle is closed")
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; closes (and unlinks, if owner) at zero."""
        if self._closed:
            return
        self._refs -= 1
        if self._refs <= 0:
            self.close()

    def close(self) -> None:
        """Detach the view.  The publisher also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        # Release the exported buffer before closing the mapping.
        self._array = None  # type: ignore[assignment]
        try:
            self._segment.close()
        finally:
            if self._owner:
                try:
                    self._segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def unlink(self) -> None:
        """Publisher-side teardown (alias for :meth:`close` on the owner)."""
        self.close()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


#: Per-process memo of attached segments (worker side): name -> handle.
_ATTACHED: dict[str, SharedArray] = {}


def attach_cached(desc: ShmDescriptor) -> np.ndarray:
    """Attach ``desc`` (memoized per process) and return the array view.

    Worker processes call this once per cell; every cell of the same
    field after the first costs a dictionary lookup.  The attachment
    stays open for the life of the process — worker pools tear down
    their processes at pool shutdown, which releases the mapping.
    """
    handle = _ATTACHED.get(desc.name)
    if handle is None or handle._closed:
        handle = _ATTACHED[desc.name] = SharedArray.attach(desc)
    return handle.array


def detach_all() -> int:
    """Close every memoized attachment (test isolation); returns count."""
    n = 0
    for handle in _ATTACHED.values():
        if not handle._closed:
            handle.close()
            n += 1
    _ATTACHED.clear()
    return n
