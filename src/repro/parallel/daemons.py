"""Supervised daemon subprocesses: spawn, await readiness, drain.

The cluster router (:mod:`repro.service.cluster`) can spawn its shard
daemons locally instead of being pointed at pre-started ``host:port``
endpoints.  :class:`DaemonProcess` is the small supervisor that makes
that safe:

* **readiness**: the child announces itself with one stdout line (the
  service CLI prints ``serving on HOST:PORT``); :meth:`start` blocks
  until a caller-supplied regex matches it, so the spawner learns the
  ephemeral port without racing the bind;
* **graceful stop**: :meth:`terminate` sends SIGTERM — the same signal
  an operator or init system would — which the compression daemon
  answers with its graceful drain (admitted requests finish and get
  replies); only if the child outlives the timeout is it SIGKILLed;
* **crash injection**: :meth:`kill` is immediate SIGKILL, used by the
  availability probe in ``benchmarks/bench_service.py`` to murder a
  shard mid-sweep and assert the router loses nothing.

The supervisor is service-agnostic — command line in, ready-line match
out — so it lives in :mod:`repro.parallel` with the other
process-lifecycle machinery rather than in the service package.

>>> import sys
>>> d = DaemonProcess([sys.executable, "-u", "-c",
...                    "import time; print('ready on 1234'); time.sleep(60)"],
...                   ready_pattern=r"ready on (\\d+)")
>>> d.start().group(1)
'1234'
>>> d.alive
True
>>> d.terminate(timeout_s=10.0)
"""

from __future__ import annotations

import queue
import re
import signal
import subprocess
import threading
import time
from typing import Any

from repro.errors import ServiceError

__all__ = ["DaemonProcess"]


class DaemonProcess:
    """One supervised child process (see module docstring)."""

    def __init__(
        self,
        argv: list[str],
        *,
        ready_pattern: str,
        name: str | None = None,
        env: dict[str, str] | None = None,
        start_timeout_s: float = 30.0,
    ) -> None:
        self.argv = list(argv)
        self.ready_re = re.compile(ready_pattern)
        self.name = name or self.argv[0]
        self.env = env
        self.start_timeout_s = start_timeout_s
        self.proc: subprocess.Popen | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "re.Match[str]":
        """Spawn and block until the ready line appears; returns its match.

        Raises :class:`~repro.errors.ServiceError` if the child exits or
        stays silent past ``start_timeout_s`` — with the child's stderr
        tail in the message, because "my shard never came up" is only
        debuggable with the child's own words.
        """
        self.proc = subprocess.Popen(
            self.argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=self.env,
        )
        # A blocking readline would wedge on a child that is alive but
        # silent; a daemon reader thread keeps the timeout honest (and
        # keeps draining stdout afterwards so the child can never block
        # on a full pipe).
        lines: queue.Queue[str | None] = queue.Queue()
        stdout = self.proc.stdout
        assert stdout is not None

        def _read() -> None:
            try:
                for line in stdout:
                    lines.put(line)
            except ValueError:  # pipe closed under the reader
                pass
            lines.put(None)

        threading.Thread(
            target=_read, name=f"{self.name}-stdout", daemon=True
        ).start()
        deadline = time.monotonic() + self.start_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                line = lines.get(timeout=min(remaining, 0.2))
            except queue.Empty:
                continue
            if line is None:  # EOF: the child exited
                break
            match = self.ready_re.search(line)
            if match is not None:
                return match
        stderr = ""
        if self.proc.poll() is not None and self.proc.stderr is not None:
            stderr = self.proc.stderr.read()[-2000:]
        self.kill()
        raise ServiceError(
            f"{self.name} did not become ready within "
            f"{self.start_timeout_s:.0f}s"
            + (f"; stderr tail:\n{stderr}" if stderr else "")
        )

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> int | None:
        return None if self.proc is None else self.proc.pid

    def terminate(self, timeout_s: float = 15.0) -> None:
        """SIGTERM (graceful drain) first; SIGKILL if it overstays."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout_s)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(5.0)
        self._close_pipes()

    def kill(self) -> None:
        """Immediate SIGKILL — crash injection, no drain."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(5.0)
        self._close_pipes()

    def _close_pipes(self) -> None:
        assert self.proc is not None
        for stream in (self.proc.stdout, self.proc.stderr):
            if stream is not None:
                stream.close()

    def __enter__(self) -> "DaemonProcess":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.terminate()
