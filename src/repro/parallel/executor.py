"""Process-based parallel execution for CPU-bound sweep work.

Every expensive unit of work in this stack — a CBench cell, a figure
experiment, a per-rank compression — is pure Python + numpy.  Thread
pools cannot speed those up: the codec inner loops hold the GIL, so
threads serialize (numpy releases it only inside individual array ops).
This module is the shared *process* executor that gives the sweeps real
CPU parallelism, the way the paper's evaluation farms CBench runs out to
cluster nodes.

Design points:

* **Deterministic ordering.**  Results always come back in task order no
  matter which worker finished first, so a parallel sweep produces the
  same record sequence as the serial loop.
* **Per-task chunking.**  Tasks are grouped into chunks (default: ~4
  chunks per worker) so per-task pickling overhead amortizes while load
  still balances.
* **One knob.**  ``workers=None`` defers to the ``REPRO_WORKERS``
  environment variable (unset/empty → serial); ``workers=0`` means
  "one per CPU".  The same convention is honored by
  :meth:`repro.foresight.cbench.CBench.run_all`,
  ``repro.experiments.runner.run_all``,
  :func:`repro.parallel.compression.compress_distributed`, and the
  ``--workers`` flags of the Foresight and experiments CLIs.
* **Serial fallback.**  With one worker (or one task) the functions run
  inline — no processes, no pickling, identical stack traces.

Workers are separate processes: the callable and every task must be
picklable (module-level functions, ``functools.partial`` over them), and
telemetry enabled in the parent is *not* active in workers — callers
that want per-task spans must capture them in the task result (CBench
does; see ``CBenchRecord.meta["telemetry"]``).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError
from repro.telemetry import context as trace_context
from repro.telemetry import get_telemetry

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "REPRO_WORKERS"

#: Target number of chunks per worker when chunk_size is unspecified.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int | None = None) -> int:
    """Normalize a worker-count request to a concrete positive integer.

    ``None`` reads :data:`WORKERS_ENV` (unset or empty → 1, i.e. serial);
    ``0`` means one worker per CPU; negative values are a
    :class:`~repro.errors.ConfigError`.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ConfigError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
    workers = int(workers)
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def chunked(items: Sequence[T], chunk_size: int) -> list[Sequence[T]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def _apply_chunk(
    fn: Callable[[T], R],
    chunk: Sequence[T],
    ctx: "trace_context.TraceContext | None" = None,
    backend: str | None = None,
) -> list[R]:
    """Worker entry point: apply ``fn`` to every task of one chunk.

    ``ctx`` is the submitter's trace context, re-activated here so task
    bodies that capture telemetry locally (CBench cells, service batch
    workers) mint spans parented under the originating remote span —
    worker subtrees stitch back into the distributed trace on re-ingest.

    ``backend`` is the submitter's kernel-backend override.  Workers are
    fresh processes: they inherit ``REPRO_BACKEND`` through the
    environment, but an override installed with
    :func:`repro.kernels.use` / ``set_backend`` lives in parent memory
    only, so it is re-installed here before any codec work runs.
    """
    from repro import kernels

    with trace_context.use(ctx), kernels.use(backend):
        return [fn(task) for task in chunk]


def process_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """``[fn(t) for t in tasks]``, fanned out over worker processes.

    Results are returned in task order regardless of completion order.
    With ``workers`` resolving to 1 (the default when ``REPRO_WORKERS``
    is unset) — or with fewer than two tasks — this runs inline.

    ``fn`` and the tasks must be picklable; use a module-level function
    (optionally via :func:`functools.partial`).  The first worker
    exception is re-raised in the parent, and remaining chunks are
    cancelled.
    """
    task_list = list(tasks)
    nworkers = resolve_workers(workers)
    if nworkers <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]

    if chunk_size is None:
        chunk_size = max(
            1, -(-len(task_list) // (nworkers * _CHUNKS_PER_WORKER))
        )
    chunks = chunked(task_list, chunk_size)
    nworkers = min(nworkers, len(chunks))
    if nworkers <= 1:
        return [fn(task) for task in task_list]

    tm = get_telemetry()
    results: list[list[R] | None] = [None] * len(chunks)
    with tm.span(
        "parallel.process_map",
        tasks=len(task_list),
        chunks=len(chunks),
        workers=nworkers,
    ):
        ctx = trace_context.current()  # carried into workers (picklable)
        from repro import kernels

        backend = kernels.current_override()  # re-installed in workers
        with ProcessPoolExecutor(max_workers=nworkers) as pool:
            futures = {
                pool.submit(_apply_chunk, fn, chunk, ctx, backend): index
                for index, chunk in enumerate(chunks)
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            first_error: BaseException | None = None
            for future in done:
                error = future.exception()
                if error is not None and first_error is None:
                    first_error = error
            if first_error is not None:
                for future in not_done:
                    future.cancel()
                raise first_error
            for future, index in futures.items():
                results[index] = future.result()
    tm.count("parallel.process_map_tasks", len(task_list))
    return [result for chunk in results for result in chunk]  # type: ignore[union-attr]
