"""Simulated distributed-memory substrate.

HACC writes its snapshots from an MPI domain decomposition (the paper's
dataset comes from 8x8x4 ranks — the origin of the 1-D->3-D partition
sizes in Section IV-B-4), compresses *per rank*, and finds halos with a
parallel FoF.  This package reproduces those parallel algorithms
in-process:

* :mod:`repro.parallel.decomposition` — Cartesian box decomposition,
  particle-to-rank assignment, ghost-layer exchange with communication
  accounting.
* :mod:`repro.parallel.compression` — per-rank independent compression
  (exactly how the paper's dataset was produced) with global error-bound
  validation.
* :mod:`repro.parallel.executor` — the shared process-pool executor
  (chunked ``process_map``, ``REPRO_WORKERS`` knob) behind CBench
  sweeps, the experiment runner, and per-rank compression.
* :mod:`repro.parallel.fof` — distributed Friends-of-Friends: local FoF
  per rank over owned+ghost particles, then a global union of group
  fragments through shared ghost particles.  Verified against the serial
  finder.
* :mod:`repro.parallel.shm` — zero-copy shared-memory field transport
  for the parallel sweeps: publish once, attach by name in workers,
  ``REPRO_NO_SHM=1`` for the pickling fallback.
"""

from repro.parallel.compression import DistributedCompressionResult, compress_distributed
from repro.parallel.decomposition import (
    CartesianDecomposition,
    GhostExchange,
    RankParticles,
)
from repro.parallel.executor import process_map, resolve_workers
from repro.parallel.fof import distributed_fof
from repro.parallel.shm import (
    ShmDescriptor,
    SharedArray,
    attach_cached,
    detach_all,
    shm_enabled,
)

__all__ = [
    "CartesianDecomposition",
    "RankParticles",
    "GhostExchange",
    "compress_distributed",
    "DistributedCompressionResult",
    "distributed_fof",
    "process_map",
    "resolve_workers",
    "ShmDescriptor",
    "SharedArray",
    "attach_cached",
    "detach_all",
    "shm_enabled",
]
