"""Per-rank independent compression — how the paper's dataset was made.

HACC's GenericIO files store each MPI rank's particles contiguously
("the HACC simulation used to generate this dataset runs with 8x8x4 MPI
processes, and each MPI process saves its own portion"), and in-situ
compression happens independently per rank.  This module reproduces that
path: scatter a particle field by rank, compress every rank's share
separately, and reassemble — validating that the global error bound
survives the decomposition (it must: ABS bounds compose trivially).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor
from repro.errors import DataError
from repro.parallel.decomposition import CartesianDecomposition
from repro.telemetry import get_telemetry


@dataclass
class DistributedCompressionResult:
    """Per-rank buffers plus global reassembly bookkeeping."""

    buffers: list[CompressedBuffer]
    owned_ids: list[np.ndarray]
    n_total: int

    @property
    def compressed_nbytes(self) -> int:
        return sum(b.compressed_nbytes for b in self.buffers)

    @property
    def original_nbytes(self) -> int:
        return sum(b.original_nbytes for b in self.buffers)

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / max(1, self.compressed_nbytes)

    def per_rank_ratios(self) -> list[float]:
        return [b.compression_ratio for b in self.buffers]


def compress_distributed(
    compressor: Compressor,
    values: np.ndarray,
    positions: np.ndarray,
    decomp: CartesianDecomposition,
    max_workers: int | None = None,
    **params: Any,
) -> DistributedCompressionResult:
    """Compress ``values`` (one per particle) rank by rank.

    ``max_workers`` > 1 compresses the ranks on a thread pool (each rank
    is independent, like the MPI processes it models); the buffer order
    still follows rank order either way.  Every rank is wrapped in a
    ``parallel.rank_compress`` span, so a trace shows the per-rank
    timeline — concurrent ranks land on distinct ``thread_id``s.
    """
    values = np.asarray(values)
    if values.ndim != 1 or values.shape[0] != positions.shape[0]:
        raise DataError("values must be 1-D with one entry per particle")
    owned = decomp.scatter(positions)
    tm = get_telemetry()

    def _one(rank: int, ids: np.ndarray) -> CompressedBuffer:
        chunk = values[ids]
        with tm.span(
            "parallel.rank_compress",
            rank=rank,
            particles=int(ids.size),
            bytes=chunk.nbytes,
        ):
            buf = compressor.compress(chunk, **params)
        tm.count("parallel.rank_cells")
        tm.count("parallel.bytes_in", chunk.nbytes)
        tm.count("parallel.bytes_out", buf.compressed_nbytes)
        return buf

    work = [(rank, ids) for rank, ids in enumerate(owned) if ids.size]
    if max_workers is not None and max_workers > 1 and len(work) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            buffers = list(pool.map(lambda w: _one(*w), work))
    else:
        buffers = [_one(rank, ids) for rank, ids in work]
    kept_ids = [ids for _, ids in work]
    return DistributedCompressionResult(
        buffers=buffers, owned_ids=kept_ids, n_total=values.shape[0]
    )


def decompress_distributed(
    compressor: Compressor,
    result: DistributedCompressionResult,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """Reassemble the global field from per-rank buffers."""
    tm = get_telemetry()
    out: np.ndarray | None = None
    for rank, (buf, ids) in enumerate(zip(result.buffers, result.owned_ids)):
        with tm.span(
            "parallel.rank_decompress",
            rank=rank,
            bytes=buf.original_nbytes,
        ):
            chunk = compressor.decompress(buf)
        if out is None:
            out = np.empty(result.n_total, dtype=dtype or chunk.dtype)
        out[ids] = chunk
    if out is None:
        raise DataError("nothing to decompress")
    return out
