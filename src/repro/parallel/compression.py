"""Per-rank independent compression — how the paper's dataset was made.

HACC's GenericIO files store each MPI rank's particles contiguously
("the HACC simulation used to generate this dataset runs with 8x8x4 MPI
processes, and each MPI process saves its own portion"), and in-situ
compression happens independently per rank.  This module reproduces that
path: scatter a particle field by rank, compress every rank's share
separately, and reassemble — validating that the global error bound
survives the decomposition (it must: ABS bounds compose trivially).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, Compressor
from repro.errors import DataError
from repro.parallel.decomposition import CartesianDecomposition
from repro.parallel.executor import process_map, resolve_workers
from repro.telemetry import enabled_telemetry, get_telemetry


@dataclass
class DistributedCompressionResult:
    """Per-rank buffers plus global reassembly bookkeeping."""

    buffers: list[CompressedBuffer]
    owned_ids: list[np.ndarray]
    n_total: int

    @property
    def compressed_nbytes(self) -> int:
        return sum(b.compressed_nbytes for b in self.buffers)

    @property
    def original_nbytes(self) -> int:
        return sum(b.original_nbytes for b in self.buffers)

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / max(1, self.compressed_nbytes)

    def per_rank_ratios(self) -> list[float]:
        return [b.compression_ratio for b in self.buffers]


def _compress_rank(
    compressor: Compressor,
    params: dict[str, Any],
    telem: bool,
    parent_pid: int,
    task: tuple[int, np.ndarray],
) -> tuple[CompressedBuffer, list[dict[str, Any]] | None]:
    """Module-level (picklable) worker: compress one rank's particles.

    In a worker process (detected by pid — a forked child inherits the
    parent's *enabled* telemetry, so the flag alone cannot tell) the
    rank's span subtree is captured in a fresh local telemetry and
    returned for the parent to
    :meth:`~repro.telemetry.spans.Tracer.ingest`.
    """
    rank, chunk = task
    tm = get_telemetry()
    if telem and os.getpid() != parent_pid:
        with enabled_telemetry() as wtm:
            with wtm.span(
                "parallel.rank_compress",
                rank=rank,
                particles=int(chunk.size),
                bytes=chunk.nbytes,
            ):
                buf = compressor.compress(chunk, **params)
            spans = [s.to_dict() for s in wtm.tracer.finished_spans()]
        return buf, spans
    with tm.span(
        "parallel.rank_compress",
        rank=rank,
        particles=int(chunk.size),
        bytes=chunk.nbytes,
    ):
        buf = compressor.compress(chunk, **params)
    return buf, None


def compress_distributed(
    compressor: Compressor,
    values: np.ndarray,
    positions: np.ndarray,
    decomp: CartesianDecomposition,
    max_workers: int | None = None,
    **params: Any,
) -> DistributedCompressionResult:
    """Compress ``values`` (one per particle) rank by rank.

    ``max_workers`` resolving to > 1 compresses the ranks on worker
    *processes* (:func:`repro.parallel.executor.process_map`; ``None``
    defers to ``REPRO_WORKERS``, 0 means one per CPU).  The codec inner
    loops are pure Python/numpy holding the GIL, so the thread pool this
    module used to offer serialized them — only separate processes give
    the per-rank parallelism of the MPI processes being modelled.  Buffer
    order follows rank order either way.  Every rank is wrapped in a
    ``parallel.rank_compress`` span: serial ranks trace directly into
    the caller's tracer, worker ranks capture their subtree in-process
    and the parent re-ingests it, so the merged trace always shows the
    per-rank timeline.
    """
    values = np.asarray(values)
    if values.ndim != 1 or values.shape[0] != positions.shape[0]:
        raise DataError("values must be 1-D with one entry per particle")
    owned = decomp.scatter(positions)
    tm = get_telemetry()

    work = [(rank, values[ids]) for rank, ids in enumerate(owned) if ids.size]
    results = process_map(
        partial(_compress_rank, compressor, params, tm.enabled, os.getpid()),
        work, workers=resolve_workers(max_workers), chunk_size=1,
    )
    buffers: list[CompressedBuffer] = []
    for (rank, chunk), (buf, spans) in zip(work, results):
        if spans and tm.enabled:
            tm.tracer.ingest(spans)
        tm.count("parallel.rank_cells")
        tm.count("parallel.bytes_in", chunk.nbytes)
        tm.count("parallel.bytes_out", buf.compressed_nbytes)
        buffers.append(buf)
    kept_ids = [ids for ids in owned if ids.size]
    return DistributedCompressionResult(
        buffers=buffers, owned_ids=kept_ids, n_total=values.shape[0]
    )


def decompress_distributed(
    compressor: Compressor,
    result: DistributedCompressionResult,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """Reassemble the global field from per-rank buffers."""
    tm = get_telemetry()
    out: np.ndarray | None = None
    for rank, (buf, ids) in enumerate(zip(result.buffers, result.owned_ids)):
        with tm.span(
            "parallel.rank_decompress",
            rank=rank,
            bytes=buf.original_nbytes,
        ):
            chunk = compressor.decompress(buf)
        if out is None:
            out = np.empty(result.n_total, dtype=dtype or chunk.dtype)
        out[ids] = chunk
    if out is None:
        raise DataError("nothing to decompress")
    return out
