"""In-situ simulation loop: compress a live snapshot stream step by step.

This is the paper's deployment scenario (PAPER.md §I, §V) as a runnable
driver: a toy time-stepping loop evolves the correlated Nyx-like
generator (:func:`repro.cosmo.timeseries.make_nyx_series`) across scale
factors and pushes every snapshot, as it is "emitted", through one of

* the **library** path — a local
  :class:`~repro.compressors.temporal.TemporalCompressor`, or
* the **service** path — a running daemon's stateful
  ``SESSION_OPEN``/``SESSION_STEP``/``SESSION_CLOSE`` ops
  (``--target service``), whose emitted bytes are asserted identical to
  the library's.

Each step is also run through two baselines on the *same* series:
independent per-snapshot compression with the same inner codec at the
same bound (what the repo did before the time axis existed), and the
paper's **decimation** baseline (keep every K-th snapshot, interpolate
the rest — PAPER.md §I).  Per-step drift metrics
(:func:`repro.analysis.drift.snapshot_drift`) for all three go into a
JSONL step log, one record per timestep, plus a summary line; telemetry
spans (``insitu.step``) wrap every step for trace/`top` visibility.

Run it::

    PYTHONPATH=src python -m repro.experiments.insitu --steps 16
    PYTHONPATH=src python -m repro.experiments.insitu \
        --target service --port 9461 --log /tmp/insitu.jsonl

This is a workload driver, not a paper figure, so it is *not* part of
the ``repro.experiments`` figure registry (``__main__.py``); see
docs/INSITU.md for the operational story.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, TextIO

import numpy as np

from repro.analysis.drift import snapshot_drift
from repro.compressors import TemporalCompressor, decimate, get_compressor
from repro.cosmo.timeseries import make_nyx_series
from repro.errors import DataError
from repro.service.batch import KNOB_FOR_MODE
from repro.telemetry import get_telemetry

__all__ = ["run_insitu", "main"]


def _knob(mode: str) -> str:
    knob = KNOB_FOR_MODE.get(mode)
    if knob is None:
        raise DataError(
            f"unknown mode {mode!r}; known: {sorted(KNOB_FOR_MODE)}"
        )
    return knob


def run_insitu(
    grid_size: int = 32,
    n_steps: int = 16,
    field: str = "baryon_density",
    compressor: str = "sz",
    mode: str = "abs",
    value: float = 1e-2,
    keyframe_every: int = 8,
    options: dict[str, Any] | None = None,
    target: str = "library",
    host: str = "127.0.0.1",
    port: int | None = None,
    keep_every: int = 2,
    interpolation: str = "linear",
    box_size: float = 50.0,
    seed: int = 11,
    nbins: int = 8,
    log: TextIO | str | Path | None = None,
) -> dict[str, Any]:
    """Run the in-situ loop; returns the summary dict (see module doc).

    ``target`` is ``"library"`` (in-process codec) or ``"service"`` (a
    running daemon at ``host:port`` — its session bytes are asserted
    identical to the library path's before any metric is computed).
    ``log`` appends one JSON line per step plus a final summary line.
    """
    if target not in ("library", "service"):
        raise DataError("target must be 'library' or 'service'")
    knob = _knob(mode)
    options = dict(options or {})
    tm = get_telemetry()

    series = make_nyx_series(
        grid_size=grid_size, n_snapshots=n_steps,
        box_size=box_size, seed=seed,
    )
    snaps = [s.fields[field] for s in series.snapshots]

    # The decimation baseline reconstructs the *whole* series up front
    # (it is an offline storage policy, not a streaming codec).
    decimated = decimate(
        series, keep_every=keep_every, interpolation=interpolation
    )
    dec_recon = [d.fields[field] for d in decimated.reconstruct()]

    indep = get_compressor(compressor, **options)
    codec = TemporalCompressor(
        inner=compressor, keyframe_every=keyframe_every,
        inner_options=options,
    )
    decoder = TemporalCompressor(
        inner=compressor, keyframe_every=keyframe_every,
        inner_options=options,
    )

    session = client = None
    if target == "service":
        from repro.service.client import DEFAULT_PORT, ServiceClient

        client = ServiceClient(host=host, port=port or DEFAULT_PORT)
        session = client.session_open(
            compressor, mode=mode, value=value, options=options,
            keyframe_every=keyframe_every,
        )

    close = None
    if log is not None and not hasattr(log, "write"):
        log = open(log, "a", encoding="utf-8")
        close = log

    steps: list[dict[str, Any]] = []
    temporal_bytes = independent_bytes = raw_bytes = 0
    try:
        for i, snap in enumerate(snaps):
            with tm.span(
                "insitu.step", step=i, field=field, target=target
            ):
                t0 = time.perf_counter()
                if session is not None:
                    reply, stream = session.step(snap)
                    local = codec.compress(snap, mode=mode, **{knob: value})
                    if local.payload != stream:
                        raise DataError(
                            f"service session bytes diverged from the "
                            f"library path at step {i}"
                        )
                else:
                    buf = codec.compress(snap, mode=mode, **{knob: value})
                    stream = buf.payload
                recon = decoder.decompress(stream)
                ibuf = indep.compress(snap, mode=mode, **{knob: value})
                irecon = indep.decompress(ibuf)
                elapsed = time.perf_counter() - t0

            temporal_bytes += len(stream)
            independent_bytes += len(ibuf.payload)
            raw_bytes += snap.nbytes
            head, keyframe, _ = TemporalCompressor.parse_frame(stream)
            record = {
                "step": i,
                "time": float(series.times[i]),
                "field": field,
                "target": target,
                "keyframe": keyframe,
                "elapsed_s": elapsed,
                "temporal": {
                    "bytes": len(stream),
                    "ratio": snap.nbytes / len(stream),
                    **snapshot_drift(snap, recon, box_size, nbins=nbins),
                },
                "independent": {
                    "bytes": len(ibuf.payload),
                    "ratio": snap.nbytes / len(ibuf.payload),
                    **snapshot_drift(snap, irecon, box_size, nbins=nbins),
                },
                "decimation": {
                    "kept": bool(i in decimated.kept_indices),
                    "storage_ratio": decimated.storage_ratio,
                    **snapshot_drift(
                        snap, dec_recon[i], box_size, nbins=nbins
                    ),
                },
            }
            steps.append(record)
            if log is not None:
                log.write(json.dumps(record, sort_keys=True) + "\n")
        summary = _summarize(
            steps, grid_size=grid_size, n_steps=n_steps, field=field,
            compressor=compressor, mode=mode, value=value,
            keyframe_every=keyframe_every, keep_every=keep_every,
            target=target, raw_bytes=raw_bytes,
            temporal_bytes=temporal_bytes,
            independent_bytes=independent_bytes,
            decimation_storage_ratio=decimated.storage_ratio,
        )
        if log is not None:
            log.write(json.dumps(
                {k: v for k, v in summary.items() if k != "steps"},
                sort_keys=True,
            ) + "\n")
        return summary
    finally:
        if session is not None:
            session.close()
        if client is not None:
            client.close()
        if close is not None:
            close.close()


def _summarize(
    steps: list[dict[str, Any]],
    *,
    grid_size: int,
    n_steps: int,
    field: str,
    compressor: str,
    mode: str,
    value: float,
    keyframe_every: int,
    keep_every: int,
    target: str,
    raw_bytes: int,
    temporal_bytes: int,
    independent_bytes: int,
    decimation_storage_ratio: float,
) -> dict[str, Any]:
    return {
        "summary": True,
        "grid_size": grid_size,
        "n_steps": n_steps,
        "field": field,
        "compressor": compressor,
        "mode": mode,
        "value": value,
        "keyframe_every": keyframe_every,
        "keep_every": keep_every,
        "target": target,
        "temporal_ratio": raw_bytes / temporal_bytes,
        "independent_ratio": raw_bytes / independent_bytes,
        "ratio_gain": independent_bytes / temporal_bytes,
        "decimation_storage_ratio": decimation_storage_ratio,
        "max_abs_error": max(
            s["temporal"]["max_abs_error"] for s in steps
        ),
        "max_pk_dev": max(s["temporal"]["pk_max_dev"] for s in steps),
        "decimation_max_abs_error": max(
            s["decimation"]["max_abs_error"] for s in steps
        ),
        "steps": steps,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.insitu",
        description="In-situ time-stepping loop with temporal compression "
                    "(library or service path) plus independent-codec and "
                    "decimation baselines.",
    )
    parser.add_argument("--grid", type=int, default=32, help="grid side")
    parser.add_argument("--steps", type=int, default=16,
                        help="number of timesteps")
    parser.add_argument("--field", default="baryon_density")
    parser.add_argument("--compressor", default="sz")
    parser.add_argument("--mode", default="abs")
    parser.add_argument("--value", type=float, default=1e-2,
                        help="error bound / knob value")
    parser.add_argument("--keyframe-every", type=int, default=8)
    parser.add_argument("--keep-every", type=int, default=2,
                        help="decimation baseline cadence")
    parser.add_argument("--target", choices=("library", "service"),
                        default="library")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--log", default=None,
                        help="append JSONL step records here")
    args = parser.parse_args(argv)

    summary = run_insitu(
        grid_size=args.grid,
        n_steps=args.steps,
        field=args.field,
        compressor=args.compressor,
        mode=args.mode,
        value=args.value,
        keyframe_every=args.keyframe_every,
        keep_every=args.keep_every,
        target=args.target,
        host=args.host,
        port=args.port,
        seed=args.seed,
        log=args.log,
    )
    brief = {k: v for k, v in summary.items() if k != "steps"}
    print(json.dumps(brief, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
