"""Per-table/figure experiment modules.

Every module exposes ``run(profile=...) -> ExperimentResult`` where the
profile ("small" for tests, "paper" for the benchmark harness) sets the
dataset scale.  ``repro.experiments.runner.run_all`` executes the full
suite and renders EXPERIMENTS.md-style summaries.
"""

from repro.experiments.base import ExperimentResult, Profile, PROFILES
from repro.experiments import (
    fig1,
    fig2_fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    guideline,
    table1,
    table2,
)
from repro.experiments.runner import ALL_EXPERIMENTS, run_all

__all__ = [
    "ExperimentResult",
    "Profile",
    "PROFILES",
    "table1",
    "table2",
    "fig1",
    "fig2_fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "guideline",
    "ALL_EXPERIMENTS",
    "run_all",
]
