"""Fig. 5: power-spectrum ratio analysis on the six Nyx spectra.

The paper's six panels are baryon density, dark matter density, overall
density (sum of the two), temperature, velocity magnitude, and velocity
vz — i.e. composites as well as raw fields.  For each compressor
configuration we compress all six raw fields, rebuild the composites from
the reconstructions, and test every spectrum against the 1 +/- 1% band.

The experiment then applies the Section V-D guideline end to end: find,
per compressor, the highest-compression configuration whose spectra are
all acceptable — the paper lands on bitrates (4,4,4,2,2,2) for cuZFP
(overall 10.7x) and per-field ABS bounds for GPU-SZ (overall 15.4x),
with GPU-SZ beating cuZFP on overall ratio.  The synthetic data
reproduces the *procedure* and the SZ-over-ZFP ordering.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.optimizer import BestFitResult, ConfigCandidate, select_best_fit
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.cosmo.power_spectrum import (
    power_spectrum,
    power_spectrum_ratio,
    ratio_within_band,
)
from repro.experiments.base import ExperimentResult, get_profile, nyx_for

RAW_FIELDS = (
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
)

CUZFP_RATES = (1.0, 2.0, 4.0, 8.0)
SZ_EB_FRACTIONS = (0.1, 0.03, 0.01, 3e-3, 1e-3)
PK_BINS = 12
TOLERANCE = 0.01


def _spectra_of(fields: dict[str, np.ndarray], box: float) -> dict[str, np.ndarray]:
    """The six analyzed quantities (Fig. 5 panels) from raw fields."""
    vx = fields["velocity_x"].astype(np.float64)
    vy = fields["velocity_y"].astype(np.float64)
    vz = fields["velocity_z"].astype(np.float64)
    return {
        "baryon_density": fields["baryon_density"].astype(np.float64),
        "dark_matter_density": fields["dark_matter_density"].astype(np.float64),
        "overall_density": fields["baryon_density"].astype(np.float64)
        + fields["dark_matter_density"].astype(np.float64),
        "temperature": fields["temperature"].astype(np.float64),
        "velocity_magnitude": np.sqrt(vx**2 + vy**2 + vz**2),
        "velocity_z": vz,
    }


def _roundtrip_all(
    compress: Callable[[str, np.ndarray], tuple[np.ndarray, float]],
    nyx_fields: dict[str, np.ndarray],
) -> tuple[dict[str, np.ndarray], dict[str, float]]:
    recon = {}
    ratios = {}
    for name in RAW_FIELDS:
        recon[name], ratios[name] = compress(name, nyx_fields[name])
    return recon, ratios


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    nyx = nyx_for(prof.name)
    box = nyx.box_size
    sz = SZCompressor()
    zfp = ZFPCompressor()

    originals = _spectra_of(nyx.fields, box)
    reference = {
        name: power_spectrum(q, box, nbins=PK_BINS) for name, q in originals.items()
    }

    rows: list[dict] = []
    candidates: list[ConfigCandidate] = []
    series: dict[str, np.ndarray] = {
        "k": reference["baryon_density"].k,
    }

    # -- cuZFP: one rate applied to every field per configuration ----------
    for rate in CUZFP_RATES:
        def _zfp_compress(name: str, data: np.ndarray, _r=rate):
            buf = zfp.compress(data, rate=_r)
            return zfp.decompress(buf), buf.compression_ratio

        recon, cr = _roundtrip_all(_zfp_compress, nyx.fields)
        derived = _spectra_of(recon, box)
        for panel, quantity in derived.items():
            spec = power_spectrum(quantity, box, nbins=PK_BINS)
            ratio = power_spectrum_ratio(reference[panel], spec)
            ok = ratio_within_band(ratio, TOLERANCE)
            series[f"cuzfp_rate{rate:g}_{panel}"] = ratio
            rows.append(
                {
                    "compressor": "cuzfp",
                    "parameter": rate,
                    "panel": panel,
                    "max_pk_deviation": float(np.nanmax(np.abs(ratio - 1.0))),
                    "acceptable": ok,
                }
            )
        # Per-field acceptability for the optimizer: a field's config is
        # acceptable when every panel it feeds stays in band.
        field_panels = {
            "baryon_density": ("baryon_density", "overall_density"),
            "dark_matter_density": ("dark_matter_density", "overall_density"),
            "temperature": ("temperature",),
            "velocity_x": ("velocity_magnitude",),
            "velocity_y": ("velocity_magnitude",),
            "velocity_z": ("velocity_magnitude", "velocity_z"),
        }
        panel_ok = {
            panel: ratio_within_band(
                power_spectrum_ratio(
                    reference[panel], power_spectrum(derived[panel], box, nbins=PK_BINS)
                ),
                TOLERANCE,
            )
            for panel in derived
        }
        for fname, panels in field_panels.items():
            candidates.append(
                ConfigCandidate(
                    field_name=fname,
                    compressor="cuzfp",
                    mode="fixed_rate",
                    parameter=rate,
                    compression_ratio=cr[fname],
                    acceptable=all(panel_ok[p] for p in panels),
                )
            )

    # -- GPU-SZ: per-field ABS bound sweep ---------------------------------
    sz_recon_cache: dict[tuple[str, float], tuple[np.ndarray, float]] = {}
    for frac in SZ_EB_FRACTIONS:
        def _sz_compress(name: str, data: np.ndarray, _f=frac):
            eb = max(float(np.std(data)) * _f, 1e-12)
            buf = sz.compress(data, error_bound=eb, mode="abs")
            recon = sz.decompress(buf)
            sz_recon_cache[(name, _f)] = (recon, buf.compression_ratio)
            return recon, buf.compression_ratio

        recon, cr = _roundtrip_all(_sz_compress, nyx.fields)
        derived = _spectra_of(recon, box)
        panel_ok = {}
        for panel, quantity in derived.items():
            spec = power_spectrum(quantity, box, nbins=PK_BINS)
            ratio = power_spectrum_ratio(reference[panel], spec)
            ok = ratio_within_band(ratio, TOLERANCE)
            panel_ok[panel] = ok
            series[f"gpu-sz_frac{frac:g}_{panel}"] = ratio
            rows.append(
                {
                    "compressor": "gpu-sz",
                    "parameter": frac,
                    "panel": panel,
                    "max_pk_deviation": float(np.nanmax(np.abs(ratio - 1.0))),
                    "acceptable": ok,
                }
            )
        field_panels = {
            "baryon_density": ("baryon_density", "overall_density"),
            "dark_matter_density": ("dark_matter_density", "overall_density"),
            "temperature": ("temperature",),
            "velocity_x": ("velocity_magnitude",),
            "velocity_y": ("velocity_magnitude",),
            "velocity_z": ("velocity_magnitude", "velocity_z"),
        }
        for fname, panels in field_panels.items():
            candidates.append(
                ConfigCandidate(
                    field_name=fname,
                    compressor="gpu-sz",
                    mode="abs",
                    parameter=frac,
                    compression_ratio=cr[fname],
                    acceptable=all(panel_ok[p] for p in panels),
                )
            )

    # -- Section V-D guideline: best-fit per compressor ---------------------
    notes = []
    best_fits: dict[str, BestFitResult] = {}
    for comp in ("cuzfp", "gpu-sz"):
        subset = [c for c in candidates if c.compressor == comp]
        try:
            best = select_best_fit(subset)
            best_fits[comp] = best
            notes.append(
                f"best-fit {comp}: overall CR {best.overall_compression_ratio:.2f}x "
                f"with per-field parameters {best.parameters()}"
            )
        except Exception as exc:
            notes.append(f"best-fit {comp}: no fully acceptable configuration ({exc})")
    if "gpu-sz" in best_fits and "cuzfp" in best_fits:
        sz_cr = best_fits["gpu-sz"].overall_compression_ratio
        zfp_cr = best_fits["cuzfp"].overall_compression_ratio
        notes.append(
            f"paper finding reproduced: GPU-SZ best-fit CR ({sz_cr:.2f}x) "
            + ("exceeds" if sz_cr > zfp_cr else "does NOT exceed")
            + f" cuZFP's ({zfp_cr:.2f}x); paper reports 15.4x vs 10.7x"
        )
    return ExperimentResult(
        experiment_id="fig5",
        title="Power-spectrum ratios of reconstructed Nyx fields",
        rows=rows,
        series=series,
        notes=notes,
    )
