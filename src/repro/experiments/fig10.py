"""Fig. 10: cuZFP throughput vs bitrate on the Nyx dataset (V100).

Solid lines = kernel throughput; dashed = overall including CPU-GPU
transfer; horizontal baseline = raw PCIe transfer with no compression.
Both kernel and overall throughput fall as bitrate rises — the
observation behind the Section V-D guideline ("choose the [acceptable]
configuration with the highest compression ratio").
"""

from __future__ import annotations

from repro.analysis.throughput import throughput_vs_rate_study
from repro.experiments.base import ExperimentResult, get_profile

RATES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    rows = throughput_vs_rate_study(prof.paper_nvalues, RATES)
    mono_kernel = all(
        rows[i]["compress_kernel_gbps"] >= rows[i + 1]["compress_kernel_gbps"]
        for i in range(len(rows) - 1)
    )
    mono_overall = all(
        rows[i]["compress_overall_gbps"] >= rows[i + 1]["compress_overall_gbps"]
        for i in range(len(rows) - 1)
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="cuZFP throughput vs bitrate (kernel, overall, baseline)",
        rows=rows,
        notes=[
            f"kernel throughput monotonically decreasing: {mono_kernel}; "
            f"overall monotonically decreasing: {mono_overall} (paper observes both)"
        ],
    )
