"""Figs. 2-3: the Foresight framework's components and dependency graph.

Fig. 2 diagrams the three components (CBench executes the compression,
PAT drives distributed post-hoc analyses, Cinema viewers visualize);
Fig. 3 shows the dependency graph of a Foresight study.  Both are
structural figures, so the reproduction *builds* the canonical study
workflow with the real PAT classes and reports its components and edges
— then validates the DAG and writes the sbatch submission script the
real PAT would emit.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments.base import ExperimentResult
from repro.foresight.pat import Job, Workflow

#: Fig. 2's component inventory with this repo's implementing modules.
COMPONENTS = (
    ("CBench", "executes the compression algorithms", "repro.foresight.cbench"),
    ("PAT", "distributed-computing & post hoc analyses", "repro.foresight.pat"),
    ("Cinema", "web-based viewers for the results", "repro.foresight.cinema"),
)


def canonical_workflow() -> Workflow:
    """The Fig. 3 study DAG: cbench feeds the analyses, which feed the
    plot/Cinema stage."""
    wf = Workflow("foresight-study")
    wf.add_job(Job(name="cbench", command="cbench input.json", nodes=1))
    wf.add_job(Job(name="power_spectrum", command="python pk.py",
                   depends_on=["cbench"]))
    wf.add_job(Job(name="halo_finder", command="python halos.py",
                   depends_on=["cbench"], nodes=2))
    wf.add_job(Job(name="plots", command="python plots.py",
                   depends_on=["power_spectrum", "halo_finder"]))
    wf.add_job(Job(name="cinema", command="python cinema.py",
                   depends_on=["plots"]))
    return wf


def run(profile: str = "small") -> ExperimentResult:
    wf = canonical_workflow()
    wf.validate()
    order = [j.name for j in wf.topological_order()]
    rows = []
    for name, job in wf.jobs.items():
        rows.append(
            {
                "job": name,
                "depends_on": ", ".join(job.depends_on) or "-",
                "nodes": job.nodes,
                "topological_position": order.index(name),
            }
        )
    rows.sort(key=lambda r: r["topological_position"])
    with tempfile.TemporaryDirectory() as tmp:
        script = wf.write_submission_script(Path(tmp) / "submit.sh")
    notes = [
        "Fig. 2 components: "
        + "; ".join(f"{n} ({d}) -> {m}" for n, d, m in COMPONENTS),
        f"submission script: {script.count('sbatch --parsable')} chained sbatch "
        f"calls with afterok dependencies (as PAT writes for SLURM)",
    ]
    return ExperimentResult(
        experiment_id="fig2_fig3",
        title="Foresight components and study dependency graph",
        rows=rows,
        notes=notes,
    )
