"""Command-line experiment runner.

Usage::

    python -m repro.experiments [--profile small] [fig4 fig5 ...]

Runs the selected (default: all) table/figure experiments and prints
their rendered tables — the quickest way to regenerate the paper's
evaluation without pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.experiments.base import PROFILES
from repro.experiments.runner import ALL_EXPERIMENTS, render_all, run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*ALL_EXPERIMENTS, []],
        help=f"subset to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--profile",
        default="small",
        choices=sorted(PROFILES),
        help="dataset scale (default: small)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: $REPRO_WORKERS or serial; "
             "0 = one per CPU)",
    )
    args = parser.parse_args(argv)
    try:
        results = run_all(
            args.profile, only=args.experiments or None, workers=args.workers
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_all(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
