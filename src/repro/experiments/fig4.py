"""Fig. 4: rate-distortion of GPU-SZ and cuZFP on the Nyx and HACC data.

Solid lines in the paper are GPU-SZ, dashed are cuZFP; per panel:

* (a) Nyx — six fields; GPU-SZ sweeps ABS error bounds, cuZFP sweeps
  fixed rates.  Expected shapes: near-linear PSNR vs bitrate (~6 dB/bit),
  GPU-SZ above cuZFP at matched bitrate for the density/temperature
  fields, near-identical curves for the three velocity components.
* (b) HACC — positions use ABS, velocities use PW_REL via the log
  transform (Section IV-B-4); GPU-SZ comparable to cuZFP on velocities,
  better on positions.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.rate_distortion import rate_distortion_curve
from repro.compressors.adapters import Reshaped3D
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.experiments.base import ExperimentResult, get_profile, hacc_for, nyx_for

CUZFP_RATES = (1.0, 2.0, 4.0, 8.0, 12.0, 16.0)
#: GPU-SZ ABS bounds as fractions of each field's standard deviation —
#: spans the bitrate range the fixed rates above cover.
SZ_EB_FRACTIONS = (3e-1, 1e-1, 3e-2, 1e-2, 3e-3, 1e-3)
#: PW_REL bounds for HACC velocity fields.
SZ_PWREL = (0.1, 0.03, 0.01, 3e-3, 1e-3)

NYX_FIELDS = (
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
)
HACC_POSITION_FIELDS = ("x", "y", "z")
HACC_VELOCITY_FIELDS = ("vx", "vy", "vz")


def _curve_rows(dataset_name: str, field: str, compressor: str, points) -> list[dict]:
    return [
        {
            "dataset": dataset_name,
            "field": field,
            "compressor": compressor,
            "parameter": p.parameter,
            "bitrate": p.bitrate,
            "compression_ratio": p.compression_ratio,
            "psnr": p.psnr,
        }
        for p in points
    ]


def run(profile: str = "small", fields: tuple[str, ...] | None = None) -> ExperimentResult:
    prof = get_profile(profile)
    nyx = nyx_for(prof.name)
    hacc = hacc_for(prof.name)
    sz = SZCompressor()
    zfp = ZFPCompressor()
    rows: list[dict] = []

    nyx_fields = fields or NYX_FIELDS
    for name in nyx_fields:
        data = nyx.fields[name]
        sigma = float(np.std(data))
        ebs = [max(sigma * f, 1e-12) for f in SZ_EB_FRACTIONS]
        rows += _curve_rows(
            "nyx", name, "gpu-sz",
            rate_distortion_curve(sz, data, "error_bound", ebs, "abs"),
        )
        rows += _curve_rows(
            "nyx", name, "cuzfp",
            rate_distortion_curve(zfp, data, "rate", CUZFP_RATES, "fixed_rate"),
        )

    if fields is None:
        # 1-D HACC fields go through the paper's 1-D -> 3-D conversion
        # (Section IV-B-4) before cuZFP.
        zfp3d = Reshaped3D(zfp, tail_shape=(8, 8))
        for name in HACC_POSITION_FIELDS:
            data = hacc.fields[name]
            sigma = float(np.std(data))
            ebs = [max(sigma * f, 1e-12) for f in SZ_EB_FRACTIONS]
            rows += _curve_rows(
                "hacc", name, "gpu-sz",
                rate_distortion_curve(sz, data, "error_bound", ebs, "abs"),
            )
            rows += _curve_rows(
                "hacc", name, "cuzfp",
                rate_distortion_curve(zfp3d, data, "rate", CUZFP_RATES, "fixed_rate"),
            )
        for name in HACC_VELOCITY_FIELDS:
            data = hacc.fields[name]
            rows += _curve_rows(
                "hacc", name, "gpu-sz(pw_rel)",
                rate_distortion_curve(sz, data, "pwrel", SZ_PWREL, "pw_rel"),
            )
            rows += _curve_rows(
                "hacc", name, "cuzfp",
                rate_distortion_curve(zfp3d, data, "rate", CUZFP_RATES, "fixed_rate"),
            )

    return ExperimentResult(
        experiment_id="fig4",
        title="Rate-distortion of GPU-SZ and cuZFP on HACC and Nyx",
        rows=rows,
        notes=[
            "GPU-SZ sweeps error bounds (per-field, sigma-scaled); cuZFP sweeps fixed rates",
            "HACC velocities use PW_REL via logarithmic transform, as in the paper",
        ],
    )
