"""Fig. 1: visualization + power spectral density of Nyx baryon density
reconstructed with GPU-SZ at PW_REL 0.1 and 0.25.

The paper's point: the two reconstructions are visually identical, yet
the PW_REL = 0.25 one fails the power-spectrum criterion.  We reproduce
the quantitative half — P(k) of the original and of both reconstructions,
plus the pk ratios — and report a coarse "visual" proxy (SSIM), which is
near 1 for both, making the same argument numerically.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.sz import GPUSZ
from repro.cosmo.power_spectrum import power_spectrum, power_spectrum_ratio, ratio_within_band
from repro.experiments.base import ExperimentResult, get_profile, nyx_for
from repro.metrics.ssim import ssim3d

#: The paper's two showcase bounds plus a clearly-acceptable one: on the
#: scaled-down synthetic grid the 1% band is harsher than on real 512^3
#: Nyx data, so 0.01 demonstrates the "passes" case while 0.1 vs 0.25
#: preserves the paper's ordering (0.1 is several times closer to 1).
PW_REL_BOUNDS = (0.01, 0.1, 0.25)


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    nyx = nyx_for(prof.name)
    field = nyx.fields["baryon_density"]
    sz = GPUSZ()

    ref = power_spectrum(field.astype(np.float64), nyx.box_size, nbins=14)
    rows = []
    series = {"k": ref.k, "pk_original": ref.pk}
    for pwrel in PW_REL_BOUNDS:
        buf = sz.compress_pwrel_via_log(field, pwrel)
        recon = sz.decompress(buf)
        spec = power_spectrum(recon.astype(np.float64), nyx.box_size, nbins=14)
        ratio = power_spectrum_ratio(ref, spec)
        series[f"pk_pwrel_{pwrel}"] = spec.pk
        series[f"ratio_pwrel_{pwrel}"] = ratio
        rows.append(
            {
                "pw_rel": pwrel,
                "compression_ratio": buf.compression_ratio,
                "ssim_visual_proxy": ssim3d(field, recon.astype(np.float32)),
                "max_pk_deviation": float(np.nanmax(np.abs(ratio - 1.0))),
                "pk_within_1pct": ratio_within_band(ratio, 0.01),
            }
        )
    dev = {r["pw_rel"]: r["max_pk_deviation"] for r in rows}
    notes = [
        "paper claim: reconstructions look identical (SSIM ~ 1) yet differ "
        "sharply in power-spectrum fidelity",
        f"ordering reproduced: max pk deviation at PW_REL=0.25 is "
        f"{dev[0.25] / max(dev[0.1], 1e-12):.1f}x that of PW_REL=0.1",
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Nyx baryon density: PSD of original vs GPU-SZ reconstructions",
        rows=rows,
        series=series,
        notes=notes,
    )
