"""Fig. 6: halo-finder analysis on original vs reconstructed HACC data.

GPU-SZ compresses positions with ABS bounds (the paper settles on 0.005)
and velocities with PW_REL 0.025; cuZFP needs fixed rate >= 8 for the
same halo fidelity, giving 4x vs GPU-SZ's 4.25x overall.  Halos only
depend on positions, so the sweep compresses (x, y, z) and re-runs FoF.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.halo_ratio import halo_ratio_sweep
from repro.compressors.adapters import Reshaped3D
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.experiments.base import ExperimentResult, get_profile, hacc_for

GPU_SZ_POSITION_BOUNDS = (0.005, 0.025, 0.1, 0.25)
CUZFP_RATES = (16.0, 12.0, 8.0, 4.0)
#: The paper's chosen velocity bound for GPU-SZ (PW_REL mode).
VELOCITY_PW_REL = 0.025


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    hacc = hacc_for(prof.name)
    sz = SZCompressor()
    zfp = ZFPCompressor()

    rows: list[dict] = []
    series: dict[str, np.ndarray] = {}

    sweep_sz = halo_ratio_sweep(
        sz, hacc, "error_bound", GPU_SZ_POSITION_BOUNDS, "abs", nbins=8
    )
    sweep_zfp = halo_ratio_sweep(
        Reshaped3D(zfp, tail_shape=(8, 8)), hacc, "rate", CUZFP_RATES,
        "fixed_rate", nbins=8,
    )
    series["mass_bin_centers"] = sweep_sz[0].mass_bin_centers
    series["counts_original"] = sweep_sz[0].counts_original

    for comp, sweep in (("gpu-sz", sweep_sz), ("cuzfp", sweep_zfp)):
        for p in sweep:
            series[f"{comp}_{p.parameter:g}_ratio"] = p.ratio
            series[f"{comp}_{p.parameter:g}_counts"] = p.counts_reconstructed
            rows.append(
                {
                    "compressor": comp,
                    "parameter": p.parameter,
                    "bitrate": p.bitrate,
                    "compression_ratio": p.compression_ratio,
                    "max_ratio_deviation": p.max_ratio_deviation,
                    "halos_original": int(p.counts_original.sum()),
                    "halos_reconstructed": int(p.counts_reconstructed.sum()),
                }
            )

    # Overall dataset ratio for the paper's chosen configs: positions at
    # the chosen knob + velocities at PW_REL 0.025 (GPU-SZ) / same rate
    # (cuZFP).
    notes = []
    vel_bufs = [
        sz.compress(hacc.fields[v], pwrel=VELOCITY_PW_REL, mode="pw_rel")
        for v in ("vx", "vy", "vz")
    ]
    pos_bufs = [
        sz.compress(hacc.fields[p], error_bound=GPU_SZ_POSITION_BOUNDS[0], mode="abs")
        for p in ("x", "y", "z")
    ]
    total_orig = sum(b.original_nbytes for b in vel_bufs + pos_bufs)
    total_comp = sum(b.compressed_nbytes for b in vel_bufs + pos_bufs)
    sz_overall = total_orig / total_comp
    notes.append(
        f"GPU-SZ chosen config (ABS {GPU_SZ_POSITION_BOUNDS[0]} positions, "
        f"PW_REL {VELOCITY_PW_REL} velocities): overall CR {sz_overall:.2f}x "
        "(paper: 4.25x)"
    )
    zfp_rate8 = 32.0 / 8.0
    notes.append(
        f"cuZFP at the paper's required rate 8: CR {zfp_rate8:.2f}x (paper: 4x) "
        "- fixed-rate CR is exact by construction"
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Halo-finder comparison on original and reconstructed HACC",
        rows=rows,
        series=series,
        notes=notes,
    )
