"""Run the complete experiment suite and render summaries."""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.parallel.executor import process_map

from repro.experiments import (
    fig1,
    fig2_fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    guideline,
    table1,
    table2,
)
from repro.experiments.base import ExperimentResult

ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig1": fig1.run,
    "fig2_fig3": fig2_fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "guideline": guideline.run,
}


def _run_one_experiment(profile: str, name: str) -> ExperimentResult:
    """Module-level (picklable) worker: run one experiment."""
    return ALL_EXPERIMENTS[name](profile=profile)


def run_all(
    profile: str = "small",
    only: list[str] | None = None,
    workers: int | None = None,
) -> dict[str, ExperimentResult]:
    """Run every (or selected) experiments at the given profile.

    ``workers`` fans the experiments out over worker processes
    (``None`` → ``REPRO_WORKERS`` env, 0 → one per CPU); one experiment
    per process task, since runtimes vary by an order of magnitude.
    """
    names = only or list(ALL_EXPERIMENTS)
    results = process_map(
        partial(_run_one_experiment, profile), names,
        workers=workers, chunk_size=1,
    )
    return dict(zip(names, results))


def render_all(results: dict[str, ExperimentResult]) -> str:
    """Concatenate rendered experiment tables."""
    return "\n\n".join(results[name].render() for name in results)
