"""Run the complete experiment suite and render summaries."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    fig1,
    fig2_fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    guideline,
    table1,
    table2,
)
from repro.experiments.base import ExperimentResult

ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig1": fig1.run,
    "fig2_fig3": fig2_fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "guideline": guideline.run,
}


def run_all(profile: str = "small", only: list[str] | None = None) -> dict[str, ExperimentResult]:
    """Run every (or selected) experiments at the given profile."""
    names = only or list(ALL_EXPERIMENTS)
    return {name: ALL_EXPERIMENTS[name](profile=profile) for name in names}


def render_all(results: dict[str, ExperimentResult]) -> str:
    """Concatenate rendered experiment tables."""
    return "\n\n".join(results[name].render() for name in results)
