"""Fig. 8: SZ and ZFP throughput on a 20-core Xeon Gold 6148 vs cuZFP on
a Tesla V100.

Uses the best-fit Nyx configuration from Fig. 5 (the paper keeps its
chosen settings for the throughput comparison); the ZFP-OpenMP
decompression cell is N/A, as in the paper.  The modeled claim: the GPU
path, even including PCIe transfer, beats the 20-core CPU by an order of
magnitude.
"""

from __future__ import annotations

from repro.analysis.throughput import cpu_gpu_comparison
from repro.experiments.base import ExperimentResult, get_profile

#: Effective bitrate of the paper's chosen cuZFP Nyx config
#: (4,4,4,2,2,2) -> mean 3 bits/value (CR 10.7x).
BEST_FIT_RATE = 3.0


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    rows = cpu_gpu_comparison(prof.paper_nvalues, BEST_FIT_RATE)
    gpu_overall = next(
        r for r in rows if "incl. transfer" in r["platform"]
    )["compress_gbps"]
    cpu20 = next(r for r in rows if r["platform"] == "ZFP CPU 20-core")["compress_gbps"]
    return ExperimentResult(
        experiment_id="fig8",
        title="Compression/decompression throughput: CPU (SZ, ZFP) vs GPU (cuZFP)",
        rows=rows,
        notes=[
            "multi-core ZFP decompression is N/A (unsupported at the paper's time)",
            f"cuZFP incl. transfer is {gpu_overall / cpu20:.1f}x the 20-core ZFP "
            "compression throughput (paper: 'much higher throughput than ... multi-core CPU')",
        ],
    )
