"""Fig. 9: cuZFP kernel throughput across the seven Table I GPUs.

The paper's observation: kernel throughput rises with upgraded hardware
(more shaders, higher peak FLOPS, higher memory bandwidth).  Transfer
time is identical everywhere because all GPUs sit on PCIe 3.0 x16, so
only kernels are compared.
"""

from __future__ import annotations

from repro.analysis.throughput import gpu_comparison_study
from repro.experiments.base import ExperimentResult, get_profile

RATE = 4.0


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    rows = gpu_comparison_study(prof.paper_nvalues, RATE)
    return ExperimentResult(
        experiment_id="fig9",
        title="cuZFP kernel throughput on different GPUs",
        rows=rows,
        notes=[
            f"fixed rate {RATE} bits/value; ordering follows hardware capability "
            "(Volta > Turing/Pascal > Kepler), as in the paper"
        ],
    )
