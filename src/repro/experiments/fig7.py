"""Fig. 7: breakdown of cuZFP (de)compression time on the Nyx dataset.

Stages: init (parameter upload + allocation), kernel, memcpy (compressed
bytes over PCIe), free — against the no-compression PCIe baseline.  The
headline observations the model must reproduce: (1) time grows with
bitrate, driven by memcpy; (2) the kernel is cheap relative to memcpy;
(3) every compressed configuration beats the uncompressed baseline.
"""

from __future__ import annotations

from repro.analysis.throughput import breakdown_study
from repro.experiments.base import ExperimentResult, get_profile

RATES = (1.0, 2.0, 4.0, 8.0, 16.0)


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    rows = breakdown_study(prof.paper_nvalues, RATES)
    notes = [
        f"modeled for one paper-size Nyx field ({prof.paper_nvalues:,} float32 values) "
        "on the V100 over PCIe 3.0 x16",
        "memcpy dominates the kernel at moderate-to-high rates; all configurations "
        "beat the uncompressed-transfer baseline",
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="cuZFP compression/decompression time breakdown on Nyx",
        rows=rows,
        notes=notes,
    )
