"""Section V-D end to end: the configuration-optimization guideline.

Runs the full three-step recipe on both datasets:

1. benchmark candidate configurations (CBench-style sweeps),
2. filter by post-analysis acceptability (pk ratio on Nyx grids, halo
   count ratio on HACC particles),
3. choose the highest-compression acceptable configuration per field,

and then *verifies the guideline's premise* with the GPU model: among
the acceptable configurations, the chosen (highest-ratio) one also has
the highest modeled overall throughput — Fig. 10's monotonicity is what
makes step 3 optimal on both axes at once.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.halo_ratio import halo_ratio_sweep
from repro.analysis.optimizer import ConfigCandidate, select_best_fit
from repro.analysis.pk_ratio import pk_ratio_sweep
from repro.compressors.sz import SZCompressor
from repro.experiments.base import ExperimentResult, get_profile, hacc_for, nyx_for
from repro.gpu.runtime import simulate_compression

NYX_FIELDS = ("baryon_density", "dark_matter_density", "temperature")
EB_FRACTIONS = (0.1, 0.03, 0.01, 3e-3, 1e-3)
HACC_BOUNDS = (0.25, 0.05, 0.01, 0.005)


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    nyx = nyx_for(prof.name)
    hacc = hacc_for(prof.name)
    sz = SZCompressor()
    rows: list[dict] = []
    notes: list[str] = []

    # -- Nyx: pk-ratio acceptability per field -----------------------------
    nyx_candidates: list[ConfigCandidate] = []
    for name in NYX_FIELDS:
        field = nyx.fields[name]
        sigma = float(field.std())
        points = pk_ratio_sweep(
            sz, field, nyx.box_size, "error_bound",
            [sigma * f for f in EB_FRACTIONS], "abs", nbins=10,
        )
        for p in points:
            nyx_candidates.append(
                ConfigCandidate(
                    field_name=name, compressor="gpu-sz", mode="abs",
                    parameter=p.parameter,
                    compression_ratio=p.compression_ratio,
                    acceptable=p.acceptable,
                )
            )
            rows.append(
                {
                    "dataset": "nyx", "field": name, "error_bound": p.parameter,
                    "compression_ratio": p.compression_ratio,
                    "acceptable": p.acceptable, "bitrate": p.bitrate,
                }
            )
    best_nyx = select_best_fit(nyx_candidates)
    notes.append(
        f"Nyx best fit: CR {best_nyx.overall_compression_ratio:.2f}x "
        f"with bounds {{{', '.join(f'{k}: {v:.3g}' for k, v in best_nyx.parameters().items())}}}"
    )

    # -- HACC: halo-ratio acceptability on positions -----------------------
    halo_points = halo_ratio_sweep(
        sz, hacc, "error_bound", HACC_BOUNDS, "abs", nbins=8
    )
    hacc_candidates = [
        ConfigCandidate(
            field_name="positions", compressor="gpu-sz", mode="abs",
            parameter=p.parameter, compression_ratio=p.compression_ratio,
            acceptable=bool(p.max_ratio_deviation < 0.15),
        )
        for p in halo_points
    ]
    for p, c in zip(halo_points, hacc_candidates):
        rows.append(
            {
                "dataset": "hacc", "field": "positions",
                "error_bound": p.parameter,
                "compression_ratio": p.compression_ratio,
                "acceptable": c.acceptable, "bitrate": p.bitrate,
            }
        )
    best_hacc = select_best_fit(hacc_candidates)
    notes.append(
        f"HACC best fit: positions ABS {best_hacc.parameters()['positions']:g} "
        f"(CR {best_hacc.overall_compression_ratio:.2f}x); paper picks 0.005"
    )

    # -- premise check: max ratio == max modeled throughput -----------------
    acceptable = [c for c in hacc_candidates if c.acceptable]
    if len(acceptable) >= 2:
        throughputs = {
            c.parameter: simulate_compression(
                prof.paper_nvalues, 32.0 / c.compression_ratio, codec="cusz"
            ).overall_throughput
            for c in acceptable
        }
        chosen = best_hacc.per_field["positions"].parameter
        fastest = max(throughputs, key=throughputs.get)
        agrees = chosen == fastest
        notes.append(
            "guideline premise (highest acceptable CR is also fastest): "
            + ("holds" if agrees else "VIOLATED")
            + f" — modeled throughputs {{ {', '.join(f'{k:g}: {v/1e9:.1f} GB/s' for k, v in throughputs.items())} }}"
        )
    return ExperimentResult(
        experiment_id="guideline",
        title="Section V-D: best-fit configuration guideline, end to end",
        rows=rows,
        notes=notes,
    )
