"""Table I: specifications of the GPUs used in the experiments."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.gpu.device import GPU_CATALOG


def run(profile: str = "small") -> ExperimentResult:
    """Render the device catalog as Table I's rows (profile-independent)."""
    rows = []
    for g in GPU_CATALOG:
        rows.append(
            {
                "gpu": g.name,
                "release": f"c. {g.release_year}",
                "architecture": g.architecture,
                "compute_capability": g.compute_capability,
                "memory": f"{g.memory_gb:g}GB {g.memory_type}" + (" x2" if g.dual_chip else ""),
                "shaders": f"{g.shaders}" + (" x2" if g.dual_chip else ""),
                "peak_fp32_tflops": g.peak_tflops_fp32,
                "mem_bw_gbps": g.mem_bandwidth_gbps,
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Specifications of Different GPUs Used in Our Experiments",
        rows=rows,
    )
