"""Shared experiment infrastructure: result container and size profiles."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from repro.cosmo.datasets import GridDataset, ParticleDataset
from repro.cosmo.hacc import make_hacc_dataset
from repro.cosmo.nyx import make_nyx_dataset
from repro.errors import ConfigError
from repro.foresight.visualization import format_table


@dataclass(frozen=True)
class Profile:
    """Dataset scale for an experiment run.

    The paper's data is a 512^3 Nyx grid and 1.07e9 HACC particles;
    profiles scale that down so the suite runs on one CPU.  Figures are
    shape-stable across profiles (verified by the test suite at "small").
    """

    name: str
    nyx_grid: int
    hacc_side: int
    paper_nvalues: int = 512**3  # throughput studies model paper-size data

    @property
    def hacc_particles(self) -> int:
        return self.hacc_side**3


PROFILES: dict[str, Profile] = {
    "small": Profile("small", nyx_grid=32, hacc_side=24),
    "default": Profile("default", nyx_grid=64, hacc_side=40),
    "paper": Profile("paper", nyx_grid=128, hacc_side=64),
}


def get_profile(profile: str | Profile) -> Profile:
    if isinstance(profile, Profile):
        return profile
    if profile not in PROFILES:
        raise ConfigError(f"unknown profile {profile!r}; known: {sorted(PROFILES)}")
    return PROFILES[profile]


@lru_cache(maxsize=4)
def nyx_for(profile_name: str) -> GridDataset:
    """Cached Nyx dataset for a profile (experiments share the snapshot)."""
    return make_nyx_dataset(grid_size=PROFILES[profile_name].nyx_grid)


@lru_cache(maxsize=4)
def hacc_for(profile_name: str) -> ParticleDataset:
    """Cached HACC dataset for a profile."""
    return make_hacc_dataset(particles_per_side=PROFILES[profile_name].hacc_side)


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]]
    series: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self, columns: list[str] | None = None) -> str:
        """Human-readable table plus notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.rows, columns))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
