"""Table II: details of the HACC and Nyx datasets.

Reports both the paper's published metadata and the measured ranges of
the synthetic stand-ins at the selected profile, so the substitution's
fidelity is visible in one table.
"""

from __future__ import annotations

from repro.cosmo.datasets import HACC_TABLE_II, NYX_TABLE_II, table_ii_rows
from repro.experiments.base import ExperimentResult, get_profile, hacc_for, nyx_for


def run(profile: str = "small") -> ExperimentResult:
    prof = get_profile(profile)
    hacc = hacc_for(prof.name)
    nyx = nyx_for(prof.name)

    rows = []
    for spec in HACC_TABLE_II:
        data = hacc.fields[spec.name]
        rows.append(
            {
                "dataset": "HACC",
                "field": spec.name,
                "paper_range": f"({spec.value_range[0]:g}, {spec.value_range[1]:g})",
                "synthetic_range": f"({data.min():.3g}, {data.max():.3g})",
                "elements": data.size,
                "in_range": spec.contains(data, slack=0.0),
            }
        )
    for spec in NYX_TABLE_II:
        data = nyx.fields[spec.name]
        rows.append(
            {
                "dataset": "Nyx",
                "field": spec.name,
                "paper_range": f"({spec.value_range[0]:g}, {spec.value_range[1]:g})",
                "synthetic_range": f"({data.min():.3g}, {data.max():.3g})",
                "elements": data.size,
                "in_range": spec.contains(data, slack=0.0),
            }
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Details of HACC and Nyx Dataset Used in Experiments",
        rows=rows,
        series={"paper_rows": table_ii_rows()},
        notes=[
            f"paper scale: HACC 1,073,726,359 elements (38 GB), Nyx 512^3 (6.6 GB); "
            f"profile {prof.name!r} scale: HACC {prof.hacc_particles:,}, Nyx {prof.nyx_grid}^3"
        ],
    )
