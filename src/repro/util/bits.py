"""Bit-level packing substrate shared by the SZ and ZFP codecs.

Both compressors in this library ultimately serialize sequences of
variable-length bit strings (Huffman codewords, ZFP embedded-coding
segments).  Doing that one bit at a time in Python would dominate runtime,
so the packers here are fully vectorized with numpy: a sequence of
``(code, length)`` pairs is expanded to a flat bit array with ``np.repeat``
/ broadcasting and packed with ``np.packbits`` in a handful of array
operations regardless of the number of codes.

Bit order convention: MSB-first within each code, codes concatenated in
order, and the final byte zero-padded on the right — the same convention
as ``np.packbits(bitorder="big")``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError, DataError

_MAX_CODE_BITS = 57  # codes are staged in uint64; reads use shifts below 64


def _use_scalar() -> bool:
    """Deprecated: ``True`` when the ``scalar`` kernel tier is selected.

    Kept for backward compatibility with callers that branched on
    ``REPRO_SCALAR_CODECS`` directly; new code should dispatch through
    :mod:`repro.kernels` instead.
    """
    from repro.kernels import requested_backend

    return requested_backend() == "scalar"


def pack_varlen_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Pack variable-length MSB-first codes into a byte string.

    Dispatches the ``pack.varlen`` kernel: the seed ragged formulation
    (``scalar``), the group-by-length scatter (``numpy``), or the
    compiled bit writer (``native``), all byte-identical.

    Parameters
    ----------
    codes:
        Unsigned integer array; only the low ``lengths[i]`` bits of
        ``codes[i]`` are emitted.
    lengths:
        Bit length of each code, ``0 <= lengths[i] <= 57``.  Zero-length
        codes are legal and emit nothing.

    Returns
    -------
    (payload, nbits):
        The packed bytes and the exact number of meaningful bits.
    """
    from repro.kernels import call

    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    lengths = np.ascontiguousarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise DataError("codes and lengths must have identical shapes")
    if lengths.size and (lengths.min() < 0 or lengths.max() > _MAX_CODE_BITS):
        raise DataError(f"code lengths must be in [0, {_MAX_CODE_BITS}]")
    if int(lengths.sum()) == 0:
        return b"", 0
    return call("pack.varlen", codes, lengths)


def _pack_varlen_numpy(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Group codes by bit length (Huffman emits only a handful of
    distinct lengths) and scatter each group's rectangular (count, L)
    bit matrix straight into the flat output at its cumulative start
    offsets.  Unlike a single (ncodes, max_len) rectangle this touches
    exactly ``total_bits`` elements and needs no boolean compaction."""
    total_bits = int(lengths.sum())
    starts = np.cumsum(lengths) - lengths
    bits = np.zeros(total_bits, dtype=np.uint8)
    for length in np.unique(lengths):
        length = int(length)
        if length == 0:
            continue
        sel = lengths == length
        group = codes[sel]
        cols = np.arange(length, dtype=np.int64)
        shift = (length - 1 - cols).astype(np.uint64)
        vals = (group[:, None] >> shift[None, :]) & np.uint64(1)
        bits[starts[sel][:, None] + cols[None, :]] = vals.astype(np.uint8)
    return np.packbits(bits, bitorder="big").tobytes(), total_bits


def _pack_varlen_scalar(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Seed reference: one flat ragged expansion over every output bit."""
    total_bits = int(lengths.sum())
    # Index of the source code for every output bit.
    owner = np.repeat(np.arange(codes.size, dtype=np.int64), lengths)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    # Position of each output bit inside its code, from the MSB.
    pos_in_code = np.arange(total_bits, dtype=np.int64) - starts[owner]
    shift = (lengths[owner] - 1 - pos_in_code).astype(np.uint64)
    bits = ((codes[owner] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits, bitorder="big").tobytes(), total_bits


def pack_fixed_width(values: np.ndarray, width: int) -> bytes:
    """Pack unsigned integers using exactly ``width`` bits each."""
    if width == 0:
        return b""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    lengths = np.full(values.shape, width, dtype=np.int64)
    payload, _ = pack_varlen_codes(values, lengths)
    return payload


def unpack_fixed_width(payload: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_fixed_width`; returns a uint64 array."""
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    if width < 0 or width > _MAX_CODE_BITS:
        raise DataError(f"width must be in [0, {_MAX_CODE_BITS}]")
    need_bits = width * count
    buf = np.frombuffer(payload, dtype=np.uint8)
    if buf.size * 8 < need_bits:
        raise CorruptStreamError(
            f"fixed-width payload too short: {buf.size * 8} bits < {need_bits}"
        )
    bits = np.unpackbits(buf, count=need_bits, bitorder="big")
    bits = bits.reshape(count, width).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
    return bits @ weights


class BitWriter:
    """Sequential bit writer for headers and small control streams.

    Values are buffered as ``(value, nbits)`` pairs and packed in a single
    vectorized pass by :meth:`getvalue`, so interleaving many small writes
    stays cheap.
    """

    def __init__(self) -> None:
        self._codes: list[int] = []
        self._lengths: list[int] = []

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value`` (MSB first)."""
        if nbits < 0 or nbits > _MAX_CODE_BITS:
            raise DataError(f"nbits must be in [0, {_MAX_CODE_BITS}]")
        if value < 0 or (nbits < 64 and value >> nbits):
            raise DataError(f"value {value} does not fit in {nbits} bits")
        if nbits:
            self._codes.append(value)
            self._lengths.append(nbits)

    def write_array(self, values: np.ndarray, width: int) -> None:
        """Append every element of ``values`` with a fixed ``width``."""
        for v in np.asarray(values, dtype=np.uint64).ravel():
            self.write(int(v), width)

    @property
    def bit_length(self) -> int:
        return int(sum(self._lengths))

    def getvalue(self) -> bytes:
        codes = np.array(self._codes, dtype=np.uint64)
        lengths = np.array(self._lengths, dtype=np.int64)
        payload, _ = pack_varlen_codes(codes, lengths)
        return payload


class BitReader:
    """Sequential MSB-first bit reader over a byte string."""

    def __init__(self, payload: bytes, nbits: int | None = None) -> None:
        buf = np.frombuffer(payload, dtype=np.uint8)
        self._bits = np.unpackbits(buf, bitorder="big")
        self._nbits = buf.size * 8 if nbits is None else nbits
        if self._nbits > self._bits.size:
            raise CorruptStreamError("declared bit length exceeds payload size")
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return self._nbits - self._pos

    def seek(self, bit_position: int) -> None:
        if bit_position < 0 or bit_position > self._nbits:
            raise CorruptStreamError("seek outside of bitstream")
        self._pos = bit_position

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits as an unsigned integer."""
        if nbits == 0:
            return 0
        if nbits < 0 or self._pos + nbits > self._nbits:
            raise CorruptStreamError(
                f"bitstream underflow: need {nbits} bits, have {self.remaining}"
            )
        chunk = self._bits[self._pos : self._pos + nbits]
        self._pos += nbits
        value = 0
        for b in chunk:
            value = (value << 1) | int(b)
        return value

    def read_array(self, width: int, count: int) -> np.ndarray:
        """Vectorized read of ``count`` fixed-``width`` unsigned integers."""
        if width == 0:
            return np.zeros(count, dtype=np.uint64)
        need = width * count
        if self._pos + need > self._nbits:
            raise CorruptStreamError(
                f"bitstream underflow: need {need} bits, have {self.remaining}"
            )
        bits = self._bits[self._pos : self._pos + need].reshape(count, width)
        self._pos += need
        weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
        return bits.astype(np.uint64) @ weights
