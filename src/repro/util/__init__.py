"""Shared low-level utilities: bit streams, blocking, dimension conversion."""

from repro.util.backoff import backoff_delay
from repro.util.bits import (
    BitReader,
    BitWriter,
    pack_varlen_codes,
    unpack_fixed_width,
    pack_fixed_width,
)
from repro.util.blocks import (
    block_partition,
    block_reassemble,
    iter_block_slices,
    pad_to_multiple,
)
from repro.util.dims import (
    HACC_PARTITION_ELEMS,
    convert_1d_to_3d,
    convert_3d_to_1d,
)
from repro.util.logtransform import (
    LogTransform,
    pwrel_to_abs_bound,
)
from repro.util.validation import (
    check_dtype,
    check_positive,
    check_shape_nd,
)

__all__ = [
    "backoff_delay",
    "BitReader",
    "BitWriter",
    "pack_varlen_codes",
    "pack_fixed_width",
    "unpack_fixed_width",
    "block_partition",
    "block_reassemble",
    "iter_block_slices",
    "pad_to_multiple",
    "HACC_PARTITION_ELEMS",
    "convert_1d_to_3d",
    "convert_3d_to_1d",
    "LogTransform",
    "pwrel_to_abs_bound",
    "check_dtype",
    "check_positive",
    "check_shape_nd",
]
