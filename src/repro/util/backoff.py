"""Jittered exponential backoff — the one retry-delay policy.

Three call sites in the service fabric retry with a delay: the client's
connect loop (the daemon may still be binding), the client's busy loop
(the admission queue was full), and the cluster router's re-probe of a
drained shard (is it back yet?).  They all want the same shape —
exponential growth from a base, a hard cap, a server hint that acts as
a floor, and *jitter* so a fleet of retriers decorrelates instead of
hammering in lockstep — so the arithmetic lives here once.

>>> from random import Random
>>> d = backoff_delay(0, base_s=0.1, cap_s=1.0, rng=Random(7))
>>> 0.05 <= d <= 0.15                       # base * jitter in [0.5, 1.5]
True
>>> backoff_delay(10, base_s=0.1, cap_s=1.0, jitter=(1.0, 1.0))
1.0
>>> backoff_delay(0, base_s=0.01, cap_s=1.0, hint_s=0.5, jitter=(1.0, 1.0))
0.5
"""

from __future__ import annotations

import random

__all__ = ["backoff_delay"]


def backoff_delay(
    attempt: int,
    *,
    base_s: float,
    cap_s: float,
    hint_s: float = 0.0,
    jitter: tuple[float, float] = (0.5, 1.5),
    rng: random.Random | None = None,
) -> float:
    """The delay before retry number ``attempt`` (0-based).

    ``max(hint_s, min(cap_s, base_s * 2**attempt))`` scaled by a uniform
    sample from ``jitter``.  ``hint_s`` is a server-provided floor (the
    BUSY reply's ``retry_after_ms``); the cap applies to the exponential
    term only, so a hint larger than the cap is still honored.  Pass a
    seeded ``rng`` for reproducible schedules (tests, per-client
    decorrelation by seed).
    """
    if rng is None:
        rng = random
    # Clamp the exponent before 2**attempt: a long-downed shard reaches
    # attempt counts where the power overflows a float, and the cap
    # would have won anyway.
    exp = min(cap_s, base_s * (2.0 ** min(attempt, 63)))
    lo, hi = jitter
    return max(hint_s, exp) * rng.uniform(lo, hi)
