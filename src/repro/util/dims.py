"""The paper's HACC 1-D -> 3-D dimension conversion (Section IV-B-4).

GPU-SZ only supports 3-D inputs, so the paper converts each 1-D HACC field
(1,073,726,359 values, written by an 8x8x4 MPI decomposition) into 8
partitions of 2^27 values (zero-padded), each viewed as ``512^3`` for
GPU-SZ or ``2,097,152 x 8 x 8`` for cuZFP.  The conversion is a
pointer-level reinterpretation in the paper ("we only pass the pointer and
specify the data dimension"), and it is here too: for exact partition sizes
the functions below return views.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

#: Elements per partition used by the paper: 134,217,728 = 2^27 = 512^3.
HACC_PARTITION_ELEMS = 512**3

#: The two 3-D view shapes the paper evaluates for one partition.
SHAPE_CUBE = (512, 512, 512)
SHAPE_SLAB = (2_097_152, 8, 8)


def convert_1d_to_3d(
    data: np.ndarray,
    shape: tuple[int, int, int],
    partition_elems: int | None = None,
) -> tuple[np.ndarray, int]:
    """Convert a 1-D field into a batch of zero-padded 3-D partitions.

    Parameters
    ----------
    data:
        1-D array of any length.
    shape:
        Per-partition 3-D shape; ``prod(shape)`` must equal the partition
        size.
    partition_elems:
        Elements per partition; defaults to ``prod(shape)``.

    Returns
    -------
    (partitions, original_length):
        ``partitions`` has shape ``(nparts, *shape)``; ``original_length``
        is needed by :func:`convert_3d_to_1d` to strip the zero padding.
    """
    if data.ndim != 1:
        raise DataError(f"expected 1-D data, got ndim={data.ndim}")
    elems = int(np.prod(shape))
    if partition_elems is None:
        partition_elems = elems
    if partition_elems != elems:
        raise DataError(
            f"partition size {partition_elems} does not match shape {shape}"
        )
    n = data.size
    nparts = max(1, -(-n // elems))
    padded = np.zeros(nparts * elems, dtype=data.dtype)
    padded[:n] = data
    return padded.reshape((nparts, *shape)), n


def convert_3d_to_1d(partitions: np.ndarray, original_length: int) -> np.ndarray:
    """Inverse of :func:`convert_1d_to_3d`: flatten and strip padding."""
    if partitions.ndim != 4:
        raise DataError("expected a batch of 3-D partitions (ndim == 4)")
    flat = partitions.reshape(-1)
    if original_length > flat.size:
        raise DataError(
            f"original_length {original_length} exceeds data size {flat.size}"
        )
    return flat[:original_length]
