"""Point-wise-relative error bounds via logarithmic transform.

GPU-SZ only supports absolute error bounds (ABS), but the paper needs
point-wise relative bounds (PW_REL) for the HACC velocity fields.  Following
Liang et al. (CLUSTER 2018), a PW_REL bound ``r`` on ``x`` is equivalent to
an ABS bound on ``log|x|``:

    |x' - x| <= r * |x|   <=>   |ln x' - ln x| <= ln(1 + r)   (x > 0)

Signs are carried separately, and exact zeros are preserved losslessly via a
mask, so the transform is a bijection on the non-zero values.  Compressing
``ln|x|`` with ABS bound ``ln(1 + r)`` then exponentiating back yields a
reconstruction within the requested point-wise relative bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.util.validation import check_positive


def pwrel_to_abs_bound(pwrel: float) -> float:
    """Absolute bound on ``ln|x|`` equivalent to a PW_REL bound ``pwrel``.

    With ``|ln x' - ln x| <= b`` the multiplicative error is within
    ``[e^-b, e^b]``; the binding side is the upper one, so ``b = ln(1+r)``
    guarantees both ``x' - x <= r x`` and ``x - x' <= x (1 - 1/(1+r)) <= r x``.
    """
    check_positive(pwrel, "pwrel")
    if pwrel >= 1.0:
        raise DataError("PW_REL bound must be < 1 for the log transform")
    return float(np.log1p(pwrel))


@dataclass
class LogTransform:
    """Forward/backward log transform with sign and zero bookkeeping.

    Attributes
    ----------
    signs:
        int8 array of {-1, 0, +1} recording the sign of every input value.
        Stored (losslessly, bit-packed by the caller) alongside the
        compressed log-magnitudes.
    """

    signs: np.ndarray

    @classmethod
    def forward(cls, data: np.ndarray) -> tuple[np.ndarray, "LogTransform"]:
        """Return ``ln|data|`` (zeros mapped to 0.0) and the transform state."""
        data = np.asarray(data)
        signs = np.sign(data).astype(np.int8)
        mag = np.abs(data.astype(np.float64))
        out = np.zeros_like(mag)
        nz = signs != 0
        out[nz] = np.log(mag[nz])
        return out, cls(signs=signs)

    def backward(self, logmag: np.ndarray) -> np.ndarray:
        """Invert: exponentiate and reapply signs; zeros restored exactly."""
        if logmag.shape != self.signs.shape:
            raise DataError("log-magnitude shape does not match stored signs")
        out = np.exp(logmag.astype(np.float64))
        out *= self.signs
        return out
