"""N-dimensional block partitioning used by both codecs.

ZFP operates on 4^d blocks and GPU-SZ launches one thread block per data
block, so the library needs a fast way to view an array as a dense batch of
equal-sized blocks.  For arrays whose shape is a multiple of the block size
this is a pure reshape/transpose (no copy until ``ascontiguousarray``);
otherwise the array is zero-padded (ZFP semantics pad by replicating edge
values — see ``mode`` parameter).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import DataError


def pad_to_multiple(
    data: np.ndarray, block: Sequence[int], mode: str = "edge"
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Pad ``data`` so every axis is a multiple of the block size.

    Returns the padded array and the original shape.  ``mode`` follows
    :func:`numpy.pad` (``"edge"`` replicates boundary values, which keeps
    padded blocks smooth and is what ZFP's partial-block handling
    approximates; ``"constant"`` zero-pads as GPU-SZ does for the HACC 1-D
    conversion).
    """
    if len(block) != data.ndim:
        raise DataError(f"block rank {len(block)} != data rank {data.ndim}")
    pad = []
    for size, b in zip(data.shape, block):
        if b <= 0:
            raise DataError("block sizes must be positive")
        pad.append((0, (-size) % b))
    if all(p == (0, 0) for p in pad):
        return data, data.shape
    return np.pad(data, pad, mode=mode), data.shape


def block_partition(data: np.ndarray, block: Sequence[int], mode: str = "edge") -> tuple[np.ndarray, tuple[int, ...], tuple[int, ...]]:
    """Partition ``data`` into a dense batch of blocks.

    Returns ``(blocks, grid_shape, orig_shape)`` where ``blocks`` has shape
    ``(nblocks, *block)`` and ``grid_shape`` is the number of blocks along
    each axis.  Blocks are ordered C-style over the grid.
    """
    padded, orig_shape = pad_to_multiple(data, block, mode=mode)
    grid = tuple(s // b for s, b in zip(padded.shape, block))
    # reshape to interleaved (g0, b0, g1, b1, ...) then bring grid axes first
    interleaved_shape: list[int] = []
    for g, b in zip(grid, block):
        interleaved_shape.extend((g, b))
    arr = padded.reshape(interleaved_shape)
    ndim = data.ndim
    perm = [2 * i for i in range(ndim)] + [2 * i + 1 for i in range(ndim)]
    arr = np.ascontiguousarray(arr.transpose(perm))
    return arr.reshape((-1, *block)), grid, orig_shape


def block_reassemble(
    blocks: np.ndarray,
    grid: Sequence[int],
    orig_shape: Sequence[int],
) -> np.ndarray:
    """Inverse of :func:`block_partition`; crops padding back off."""
    grid = tuple(grid)
    block = blocks.shape[1:]
    if len(grid) != len(block):
        raise DataError("grid rank does not match block rank")
    ndim = len(grid)
    arr = blocks.reshape((*grid, *block))
    perm: list[int] = []
    for i in range(ndim):
        perm.extend((i, ndim + i))
    arr = np.ascontiguousarray(arr.transpose(perm))
    padded_shape = tuple(g * b for g, b in zip(grid, block))
    arr = arr.reshape(padded_shape)
    crop = tuple(slice(0, s) for s in orig_shape)
    return arr[crop]


def iter_block_slices(shape: Sequence[int], block: Sequence[int]) -> Iterator[tuple[slice, ...]]:
    """Yield index tuples covering ``shape`` in C-order blocks.

    Unlike :func:`block_partition` this never pads: boundary blocks are
    smaller.  Used by the blocked GPU-SZ compressor whose chunks may be
    ragged at array boundaries.
    """
    if len(block) != len(shape):
        raise DataError("block rank does not match shape rank")
    counts = [int(np.ceil(s / b)) for s, b in zip(shape, block)]
    for flat in range(int(np.prod(counts))):
        idx = []
        rem = flat
        for c in reversed(counts):
            idx.append(rem % c)
            rem //= c
        idx.reverse()
        yield tuple(
            slice(i * b, min((i + 1) * b, s)) for i, b, s in zip(idx, block, shape)
        )
