"""Argument-validation helpers used across the library.

These raise :class:`repro.errors.DataError` with consistent messages so the
user-facing API fails fast with actionable diagnostics instead of numpy
broadcasting errors deep inside a codec.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError, DataError

_BYTE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_bytes(text: str | int) -> int:
    """Parse a byte count with an optional binary K/M/G suffix (``"64M"``)."""
    if isinstance(text, int):
        value = text
    else:
        raw = str(text).strip().lower()
        scale = 1
        if raw and raw[-1] in _BYTE_SUFFIXES:
            scale = _BYTE_SUFFIXES[raw[-1]]
            raw = raw[:-1]
        try:
            value = int(raw) * scale
        except ValueError as exc:
            raise ConfigError(f"cannot parse byte count {text!r}") from exc
    if value < 1:
        raise ConfigError(f"byte count must be >= 1, got {text!r}")
    return value


def check_dtype(arr: np.ndarray, allowed: Iterable[np.dtype | type], name: str = "array") -> None:
    """Raise :class:`DataError` unless ``arr.dtype`` is one of ``allowed``."""
    allowed_dtypes = tuple(np.dtype(a) for a in allowed)
    if arr.dtype not in allowed_dtypes:
        names = ", ".join(str(d) for d in allowed_dtypes)
        raise DataError(f"{name} has dtype {arr.dtype}; expected one of: {names}")


def check_positive(value: float, name: str = "value", strict: bool = True) -> None:
    """Raise :class:`DataError` unless ``value`` is positive (or nonnegative)."""
    if not np.isfinite(value):
        raise DataError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise DataError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise DataError(f"{name} must be >= 0, got {value!r}")


def check_shape_nd(arr: np.ndarray, ndim: int | Iterable[int], name: str = "array") -> None:
    """Raise :class:`DataError` unless ``arr.ndim`` matches ``ndim``.

    ``ndim`` may be a single integer or an iterable of acceptable ranks.
    """
    allowed = (ndim,) if isinstance(ndim, int) else tuple(ndim)
    if arr.ndim not in allowed:
        ranks = " or ".join(str(r) for r in allowed)
        raise DataError(f"{name} must be {ranks}-dimensional, got ndim={arr.ndim}")
    if arr.size == 0:
        raise DataError(f"{name} must be non-empty")
