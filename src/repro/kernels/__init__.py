"""Pluggable kernel backends for the SZ/ZFP hot paths.

Public surface::

    from repro import kernels

    kernels.call("sz.lorenzo", blocks, eb)     # dispatch one kernel
    kernels.active()                           # {kernel: resolved tier}
    with kernels.use("numpy"):                 # scoped override
        ...
    kernels.set_backend("native")              # process-wide override

Selection precedence: explicit ``backend=`` argument > :func:`use` /
:func:`set_backend` override > ``REPRO_BACKEND`` env var >
``REPRO_SCALAR_CODECS`` (deprecated alias for ``scalar``) > ``auto``
(best available tier per kernel: native > numpy > scalar).

The override installed by :func:`use` is **process-global**, not
thread-local, by design: the streaming engine and the service batcher
run codec stages on worker threads, and those must inherit the
selection the owning component installed.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.kernels.registry import (
    BACKEND_ENV,
    LEGACY_SCALAR_ENV,
    TIER_LEVEL,
    TIER_ORDER,
    Backend,
    KernelRegistry,
    REGISTRY,
)

__all__ = [
    "BACKEND_ENV",
    "LEGACY_SCALAR_ENV",
    "TIER_LEVEL",
    "TIER_ORDER",
    "Backend",
    "KernelRegistry",
    "REGISTRY",
    "active",
    "call",
    "current_override",
    "last_used",
    "publish_gauges",
    "requested_backend",
    "reset",
    "resolve_name",
    "set_backend",
    "use",
]


def call(kernel, *args, backend=None, **kwargs):
    """Dispatch ``kernel`` through the process registry."""
    return REGISTRY.call(kernel, *args, backend=backend, **kwargs)


def resolve_name(kernel: str, backend: str | None = None) -> str:
    """The tier :func:`call` would run ``kernel`` on right now."""
    return REGISTRY.resolve(kernel, backend)[0]


def active(backend: str | None = None) -> dict[str, str]:
    """Resolved backend per kernel under the current selection."""
    return REGISTRY.active(backend)


def last_used() -> dict[str, str]:
    """Backend that actually served the most recent call, per kernel."""
    return REGISTRY.last_used()


def requested_backend() -> str:
    """The tier this process is asking for (override > env > auto)."""
    return REGISTRY.requested_backend()


def set_backend(backend: str | None) -> None:
    """Install a process-wide backend override (``None`` clears it)."""
    REGISTRY.set_backend(backend)


def current_override() -> str | None:
    return REGISTRY.current_override()


@contextmanager
def use(backend: str | None):
    """Scoped process-wide backend override; ``None`` is a no-op."""
    if backend is None:
        yield
        return
    previous = REGISTRY.current_override()
    REGISTRY.set_backend(backend)
    try:
        yield
    finally:
        REGISTRY.set_backend(previous)


def publish_gauges(tm=None) -> dict[str, str]:
    """Export ``kernels.backend{stage=...}`` gauges; returns the mapping."""
    return REGISTRY.publish_gauges(tm)


def reset() -> None:
    """Clear probe/tripped/override state (test isolation)."""
    from repro.kernels import native

    REGISTRY.set_backend(None)
    REGISTRY.reset()
    native.reset()
