"""numba ``@njit`` flavor of the native kernel tier.

This module hard-imports :mod:`numba`; :mod:`repro.kernels.native` only
imports it after a successful probe, so a missing numba never breaks
package import.  Each function mirrors the C implementation in
``_csource.py`` line for line — same control flow, same rounding, same
guarded shifts — because both flavors must be bit-exact with the scalar
seed paths and CI runs the parity matrix against whichever flavor
resolves.

uint64 discipline: numba follows numpy's promotion rules, where mixing
``uint64`` and ``int64`` operands produces ``float64``.  Every shift
amount and mask on a plane/code word is therefore explicitly cast to
``np.uint64`` before use.
"""

from __future__ import annotations

import numpy as np
from numba import njit

_U1 = np.uint64(1)
_U8 = np.uint64(8)
_U0 = np.uint64(0)


@njit(cache=True)
def lorenzo_dualquant(data, out, nblocks, b0, b1, b2, two_eb):
    bs = b0 * b1 * b2
    limit = 4611686018427387904.0  # 2^62
    overflow = 0
    for b in range(nblocks):
        base = b * bs
        for i in range(bs):
            r = np.rint(data[base + i] / two_eb)
            if abs(r) > limit:
                overflow = 1
                r = 0.0
            out[base + i] = np.int64(r)
    if overflow:
        return 1
    s0 = b1 * b2
    for b in range(nblocks):
        base = b * bs
        for i in range(b0 - 1, 0, -1):
            for j in range(s0):
                out[base + i * s0 + j] -= out[base + (i - 1) * s0 + j]
        if b1 > 1:
            for i in range(b0):
                for j in range(b1 - 1, 0, -1):
                    for k in range(b2):
                        out[base + i * s0 + j * b2 + k] -= (
                            out[base + i * s0 + (j - 1) * b2 + k]
                        )
        if b2 > 1:
            for i in range(b0 * b1):
                for k in range(b2 - 1, 0, -1):
                    out[base + i * b2 + k] -= out[base + i * b2 + k - 1]
    return 0


@njit(cache=True)
def lorenzo_reconstruct(q, nblocks, b0, b1, b2):
    bs = b0 * b1 * b2
    s0 = b1 * b2
    for b in range(nblocks):
        base = b * bs
        for i in range(1, b0):
            for j in range(s0):
                q[base + i * s0 + j] += q[base + (i - 1) * s0 + j]
        if b1 > 1:
            for i in range(b0):
                for j in range(1, b1):
                    for k in range(b2):
                        q[base + i * s0 + j * b2 + k] += (
                            q[base + i * s0 + (j - 1) * b2 + k]
                        )
        if b2 > 1:
            for i in range(b0 * b1):
                for k in range(1, b2):
                    q[base + i * b2 + k] += q[base + i * b2 + k - 1]


@njit(cache=True)
def pack_varlen(codes, lengths, out):
    bitpos = 0
    for i in range(codes.size):
        remaining = lengths[i]
        code = codes[i]
        while remaining > 0:
            free_bits = 8 - (bitpos & 7)
            take = remaining if remaining < free_bits else free_bits
            chunk = (code >> np.uint64(remaining - take)) & np.uint64(
                (1 << take) - 1
            )
            out[bitpos >> 3] |= np.uint8(chunk << np.uint64(free_bits - take))
            bitpos += take
            remaining -= take
    return bitpos


@njit(cache=True)
def huffman_symbol_bits(symbols, lengths):
    total = 0
    for i in range(symbols.size):
        total += lengths[symbols[i]]
    return total


@njit(cache=True)
def huffman_encode(symbols, codes, lengths, chunk_size, chunk_offsets, out):
    bitpos = 0
    for i in range(symbols.size):
        if i % chunk_size == 0:
            chunk_offsets[i // chunk_size] = np.uint64(bitpos)
        sym = symbols[i]
        remaining = np.int64(lengths[sym])
        code = codes[sym]
        while remaining > 0:
            free_bits = 8 - (bitpos & 7)
            take = remaining if remaining < free_bits else free_bits
            chunk = (code >> np.uint64(remaining - take)) & np.uint64(
                (1 << take) - 1
            )
            out[bitpos >> 3] |= np.uint8(chunk << np.uint64(free_bits - take))
            bitpos += take
            remaining -= take
    return bitpos


@njit(cache=True)
def huffman_decode(body, chunk_offsets, chunk_size, n, table_sym, table_len,
                   max_len, total_bits, out):
    nbytes = body.size
    max_cursor = 0
    for c in range(chunk_offsets.size):
        cursor = chunk_offsets[c]
        base = c * chunk_size
        count = n - base
        if count > chunk_size:
            count = chunk_size
        for _s in range(count):
            # peek max_len bits at cursor; bits past the body read as 0
            v = _U0
            byte = cursor >> 3
            shift = cursor & 7
            need = (max_len + shift + 7) >> 3
            for i in range(need):
                b = np.uint64(body[byte + i]) if byte + i < nbytes else _U0
                v = (v << _U8) | b
            key = (v >> np.uint64((need << 3) - shift - max_len)) & np.uint64(
                (1 << max_len) - 1
            )
            ln = table_len[key]
            if ln == 0:
                return 1
            out[base + _s] = table_sym[key]
            cursor += ln
        if cursor > max_cursor:
            max_cursor = cursor
    if max_cursor > total_bits:
        return 2
    return 0


@njit(cache=True)
def zfp_plane_words(u, nblocks, size, nplanes, words):
    for b in range(nblocks):
        ub = b * size
        wb = b * nplanes
        for i in range(size):
            x = u[ub + i]
            for k in range(nplanes):
                if (x >> np.uint64(k)) & _U1:
                    words[wb + k] |= _U1 << np.uint64(i)


@njit(cache=True)
def zfp_words_to_coeffs(words, nblocks, nplanes, size, u):
    for b in range(nblocks):
        wb = b * nplanes
        ub = b * size
        for k in range(nplanes):
            x = words[wb + k]
            for i in range(size):
                if (x >> np.uint64(i)) & _U1:
                    u[ub + i] |= _U1 << np.uint64(k)


@njit(cache=True)
def zfp_encode(words, nonzero, e, nblocks, size, planes, budgets, kmins,
               maxbits, out, pos_out, used_bits):
    # Fused MSB-first packed emitter (mirror of the C kernel): bits land
    # directly in the final stream at a running cursor; `out` is zeroed
    # so only 1 bits are written.
    EB = 12
    BIAS = 2048
    fixed_rate = maxbits > 0
    cur = 0
    for b in range(nblocks):
        start = cur
        used_bits[b] = 0
        if nonzero[b] == 0:
            pos_out[b] = maxbits if fixed_rate else 1
            cur = start + pos_out[b]
            continue
        out[cur >> 3] |= np.uint8(1 << (7 - (cur & 7)))
        cur += 1
        biased = np.uint64(e[b] + BIAS)
        for i in range(EB):
            if (biased >> np.uint64(EB - 1 - i)) & _U1:
                c = cur + i
                out[c >> 3] |= np.uint8(1 << (7 - (c & 7)))
        cur += EB
        budget = budgets[b]
        bits = budget
        n = 0
        wb = b * planes
        for k in range(planes - 1, kmins[b] - 1, -1):
            if bits == 0:
                break
            x = words[wb + k]
            m = n if n < bits else bits
            for j in range(m):
                if (x >> np.uint64(j)) & _U1:
                    c = cur + j
                    out[c >> 3] |= np.uint8(1 << (7 - (c & 7)))
            cur += m
            bits -= m
            x = _U0 if m >= 64 else x >> np.uint64(m)
            while n < size and bits > 0:
                bits -= 1
                test = 1 if x != _U0 else 0
                if test:
                    out[cur >> 3] |= np.uint8(1 << (7 - (cur & 7)))
                cur += 1
                if test == 0:
                    break
                while n < size - 1 and bits > 0:
                    bits -= 1
                    bit = np.int64(x & _U1)
                    if bit:
                        out[cur >> 3] |= np.uint8(1 << (7 - (cur & 7)))
                    cur += 1
                    if bit:
                        break
                    x >>= _U1
                    n += 1
                x >>= _U1
                n += 1
        used_bits[b] = 1 + EB + (budget - bits)
        pos_out[b] = maxbits if fixed_rate else (cur - start)
        if fixed_rate:
            cur = start + maxbits


@njit(cache=True)
def zfp_decode(bits_arr, offsets, nonzero, nblocks, planes, size, budgets,
               kmins, words):
    EB = 12
    for b in range(nblocks):
        if nonzero[b] == 0:
            continue
        cur = offsets[b] + 1 + EB
        bits = budgets[b]
        n = 0
        wb = b * planes
        for k in range(planes - 1, kmins[b] - 1, -1):
            if bits == 0:
                break
            m = n if n < bits else bits
            x = _U0
            for j in range(m):
                x |= np.uint64(bits_arr[cur + j]) << np.uint64(j)
            cur += m
            bits -= m
            while n < size and bits > 0:
                bits -= 1
                t = bits_arr[cur]
                cur += 1
                if t == 0:
                    break
                while n < size - 1 and bits > 0:
                    bits -= 1
                    bb = bits_arr[cur]
                    cur += 1
                    if bb != 0:
                        break
                    n += 1
                x += _U1 << np.uint64(n)
                n += 1
            words[wb + k] = x
    return 0
